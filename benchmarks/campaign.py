"""Campaign-engine benchmark: plan-cache speedup and hit rate.

Drives a Fig. 6-style comparison matrix (credit / credit2 / tableau
over several VM densities and seeds on the paper's 48-core machine, at
the 1 ms latency goal of Fig. 3's hardest planner curve) three ways:

* ``serial_seed``  — the seed execution path: one shard after another
  in one process, re-planning every census from scratch (no plan memo,
  no on-disk store — exactly how the experiment drivers ran before the
  campaign engine existed);
* ``parallel_cold`` — 4 pool workers against an empty
  :class:`repro.core.plancache.PlanStore`, which they populate;
* ``parallel_warm`` — 4 pool workers against the now-warm store.

and verifies the properties the campaign engine exists for: every
aggregate is **byte-identical** to the serial one, the warm run's
planner phase is served from the content-addressed store (>=90% hits),
and the warm store beats a cold one at equal parallelism.

Historical note on the bars: before the columnar planner, planning was
5.86s of a 6.75s serial run and the warm store delivered a >=3x
wall-clock win over serial.  The columnar planner cut the serial plan
phase to ~0.14s (module-level shape/core caches are shared across
shards within one process), so on this single-CPU container the serial
path now *beats* the pool — worker processes fork cold and re-pay
process-cold planning.  The wall bar therefore moved to where the
store's effect still is: the pooled *plan phase*, cold store vs warm
store at equal parallelism (measured ~1.6-1.8x; gated at 1.3x), plus a
hard ceiling on the serial cold plan phase itself (<=2.93s, half the
pre-columnar cost) so the planner win that retired the old bar cannot
silently regress.  Wall ratios are still reported but not gated — at
~1.2x they sit inside this container's timing noise.

Run directly to (re)generate ``BENCH_campaign.json`` at the repo root::

    PYTHONPATH=src python benchmarks/campaign.py

The parallel runs execute first so pool workers fork with a cold
process-local plan memo and actually exercise the on-disk store (a
warm parent memo would shadow it).
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Sequence

from repro.campaign import (
    CampaignMatrix,
    aggregate_json,
    aggregate_records,
    fig6_matrix,
    run_campaign,
    run_shard,
)
from repro.experiments.scenarios import reset_plan_memo

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_campaign.json"

WORKERS = 4
SEEDS: Sequence[int] = (42, 43, 44)
VM_COUNTS: Sequence[int] = (120, 144, 176)
DURATION_S = 0.005
LATENCY_MS = 1.0


def bench_matrix(
    duration_s: float = DURATION_S,
    seeds: Sequence[int] = SEEDS,
    vm_counts: Sequence[int] = VM_COUNTS,
) -> CampaignMatrix:
    return fig6_matrix(
        duration_s=duration_s,
        seeds=tuple(seeds),
        topology="48core",
        vm_counts=tuple(vm_counts),
        latency_ms=LATENCY_MS,
    )


def run_seed_path(matrix: CampaignMatrix) -> Dict[str, object]:
    """The pre-campaign baseline: serial shards, a fresh plan each."""
    records = []
    start = time.perf_counter()
    for spec in matrix.expand():
        reset_plan_memo()
        records.append(run_shard(spec, None))
    wall = time.perf_counter() - start
    aggregate = aggregate_records(matrix, records)
    plans = sum(
        float((record.get("timings") or {}).get("plan", 0.0))
        for record in records
    )
    return {
        "workers": 1,
        "wall_s": round(wall, 4),
        "shards": len(records),
        "plan_phase_s": round(plans, 4),
        "aggregate_bytes": aggregate_json(aggregate),
    }


def run_pooled(
    matrix: CampaignMatrix, cache_dir: str, log_path: str
) -> Dict[str, object]:
    start = time.perf_counter()
    result = run_campaign(
        matrix, workers=WORKERS, cache_dir=cache_dir, log_path=log_path
    )
    wall = time.perf_counter() - start
    report = result.report
    assert isinstance(report["plan_cache"], dict)
    assert isinstance(report["phase_seconds"], dict)
    return {
        "workers": WORKERS,
        "wall_s": round(wall, 4),
        "shards": len(result.records),
        "failures": len(result.failures),
        "plan_cache": report["plan_cache"],
        "plan_phase_s": report["phase_seconds"].get("plan", 0.0),
        "aggregate_bytes": aggregate_json(result.aggregate),
    }


def run_all(
    duration_s: float = DURATION_S, seeds: Sequence[int] = SEEDS
) -> Dict[str, object]:
    matrix = bench_matrix(duration_s=duration_s, seeds=seeds)
    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as td:
        cache = str(Path(td) / "plan-cache")
        # Cold first: workers must fork before this process ever plans,
        # so the on-disk store (not an inherited memo) serves lookups.
        cold = run_pooled(matrix, cache, str(Path(td) / "cold.jsonl"))
        warm = run_pooled(matrix, cache, str(Path(td) / "warm.jsonl"))
        serial = run_seed_path(matrix)

    identical = (
        serial["aggregate_bytes"]
        == cold["aggregate_bytes"]
        == warm["aggregate_bytes"]
    )
    for block in (serial, cold, warm):
        del block["aggregate_bytes"]
    speedup = float(serial["wall_s"]) / float(warm["wall_s"])
    speedup_vs_cold = float(cold["wall_s"]) / float(warm["wall_s"])
    phase_speedup = float(cold["plan_phase_s"]) / float(warm["plan_phase_s"])
    warm_cache = warm["plan_cache"]
    assert isinstance(warm_cache, dict)
    return {
        "generated_by": "benchmarks/campaign.py",
        "matrix": {
            "name": matrix.name,
            "schedulers": list(matrix.schedulers),
            "seeds": list(seeds),
            "vm_counts": list(VM_COUNTS),
            "shards": len(matrix.expand()),
            "topology": matrix.topology,
            "duration_s": duration_s,
            "latency_ms": matrix.latency_ms,
        },
        "serial_seed": serial,
        "parallel_cold": cold,
        "parallel_warm": warm,
        "speedup_warm_vs_serial": round(speedup, 2),
        "speedup_warm_vs_cold": round(speedup_vs_cold, 2),
        "plan_phase_speedup_warm_vs_cold": round(phase_speedup, 2),
        "warm_hit_rate": warm_cache["hit_rate"],
        "aggregates_identical": identical,
    }


def main() -> int:
    results = run_all()
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nwrote {BENCH_PATH}")
    ok = (
        results["aggregates_identical"]
        and float(results["plan_phase_speedup_warm_vs_cold"]) >= 1.3
        and float(results["warm_hit_rate"]) >= 0.9
        and float(results["serial_seed"]["plan_phase_s"]) <= 2.93
    )
    if not ok:
        print("BENCHMARK BAR NOT MET", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
