"""Fig. 4: serialized table size vs number of VMs.

Claim: memory overhead stays below ~1.2 MiB, reached only in the most
demanding configuration (176 VMs, all with a 1 ms latency goal); the
30/60/100 ms curves are far smaller and nearly overlap.
"""

import pytest

from conftest import publish

from repro.core import MS, Planner, make_vm, serialize
from repro.experiments import LATENCY_GOALS_MS
from repro.topology import xeon_48core

TOPOLOGY = xeon_48core()
VM_COUNTS = (44, 88, 132, 176)
MIB = 1024 * 1024


def _plan(count, latency_ms, planner=None):
    planner = planner or Planner(TOPOLOGY)
    vms = [make_vm(f"vm{i:03d}", 0.25, latency_ms * MS) for i in range(count)]
    return planner.plan(vms)


def test_fig4_serialization_speed(benchmark):
    """Compiling the worst-case table to the binary format is fast."""
    plan = _plan(176, 1)
    payload = benchmark(serialize, plan.table)
    assert len(payload) > 0


def test_fig4_table_sizes(benchmark):
    """Regenerate the Fig. 4 series and check the paper's bounds."""
    planner = Planner(TOPOLOGY)

    def sweep():
        rows = []
        for latency_ms in LATENCY_GOALS_MS:
            for count in VM_COUNTS:
                plan = _plan(count, latency_ms, planner)
                rows.append((latency_ms, count, plan.stats.table_bytes))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'L (ms)':>7s} {'VMs':>5s} {'size (MiB)':>11s}"]
    for latency_ms, count, size in rows:
        lines.append(f"{latency_ms:7d} {count:5d} {size / MIB:11.3f}")
    publish("fig4_table_size", "\n".join(lines), benchmark)

    sizes = {(lm, c): s for lm, c, s in rows}
    # Paper bound: all below ~1.2 MiB.
    assert max(sizes.values()) < 1.3 * MIB
    # Shape: the 1 ms curve clearly dominates the others...
    assert sizes[(1, 176)] > 3 * sizes[(30, 176)]
    # ...which overlap at a much smaller size.
    others = [sizes[(lm, 176)] for lm in (30, 60, 100)]
    assert max(others) < 0.2 * MIB
    # And size grows with the VM census on the dominant curve.
    assert sizes[(1, 176)] > sizes[(1, 88)] > sizes[(1, 44)]
