"""Fig. 3: table-generation time vs number of VMs.

Paper setup: 48-core Xeon, four cores for dom0, up to four VMs per
remaining core (176 VMs max), every VM at one of four latency goals
(1, 30, 60, 100 ms).  Claim: generation time never exceeds two seconds,
with the 1 ms goal the slowest curve.
"""

import pytest

from conftest import publish

from repro.core import MS, Planner, make_vm
from repro.experiments import LATENCY_GOALS_MS
from repro.topology import xeon_48core

TOPOLOGY = xeon_48core()
VM_COUNTS = (44, 88, 132, 176)


def _vms(count, latency_ms):
    return [make_vm(f"vm{i:03d}", 0.25, latency_ms * MS) for i in range(count)]


@pytest.mark.parametrize("latency_ms", LATENCY_GOALS_MS)
def test_fig3_generation_time(benchmark, latency_ms):
    """Benchmark the planner at the paper's largest census per curve."""
    planner = Planner(TOPOLOGY)
    vms = _vms(176, latency_ms)
    result = benchmark(planner.plan, vms)
    assert result.stats.method == "partitioned"
    # The paper's bound: under two seconds even for the worst case.
    assert benchmark.stats["mean"] < 2.0


def test_fig3_full_curves(benchmark):
    """Regenerate the full Fig. 3 series (all curves, all VM counts)."""
    planner = Planner(TOPOLOGY)

    def sweep():
        rows = []
        for latency_ms in LATENCY_GOALS_MS:
            for count in VM_COUNTS:
                result = planner.plan(_vms(count, latency_ms))
                rows.append(
                    (latency_ms, count, result.stats.generation_seconds)
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'L (ms)':>7s} {'VMs':>5s} {'generation (s)':>15s}"]
    for latency_ms, count, seconds in rows:
        lines.append(f"{latency_ms:7d} {count:5d} {seconds:15.3f}")
        assert seconds < 2.0, "paper bound: table generation under 2 s"
    # Shape: the 1 ms curve is the slowest at max census.
    by_goal = {lm: s for lm, c, s in rows if c == 176}
    assert by_goal[1] == max(by_goal.values())
    publish("fig3_table_generation_time", "\n".join(lines), benchmark)
