"""Fig. 5: maximum scheduling delay measured by redis-cli's intrinsic
latency probe, per scheduler, capping mode, and background workload.

Key claims: (a) capped — Credit shows tick-bound delays far above its
peers (paper: up to ~44 ms), RTDS and Tableau sit at ~10 ms (the
period/budget structure); (b) uncapped — all schedulers are sub-ms on
an idle machine, but once a background workload runs, Credit and
Credit2's heuristics produce large delays while Tableau never exceeds
its table-derived 10 ms regardless of background.
"""

import pytest

from conftest import publish, sim_seconds

from repro.experiments import intrinsic_latency, plan_for, schedulers_for
from repro.topology import xeon_16core

DURATION_S = sim_seconds(quick=1.2, full=60.0)


def run_matrix(capped):
    plan = plan_for(xeon_16core(), 48, capped)
    rows = []
    for background in ("none", "io", "cpu"):
        for scheduler in schedulers_for(capped):
            rows.append(
                intrinsic_latency(
                    scheduler, capped, background, DURATION_S, plan=plan
                )
            )
    return rows


def format_rows(rows):
    lines = [f"{'bg':>5s} {'scheduler':>9s} {'max (ms)':>9s} {'mean (ms)':>10s}"]
    for r in rows:
        lines.append(
            f"{r.background:>5s} {r.scheduler:>9s} {r.max_delay_ms:9.2f} "
            f"{r.mean_delay_ms:10.2f}"
        )
    return "\n".join(lines)


def test_fig5a_capped(benchmark):
    rows = benchmark.pedantic(run_matrix, args=(True,), rounds=1, iterations=1)
    publish("fig5a_intrinsic_capped", format_rows(rows), benchmark)
    by_key = {(r.background, r.scheduler): r for r in rows}
    for background in ("none", "io", "cpu"):
        tableau = by_key[(background, "tableau")]
        # Tableau: ~10 ms regardless of background (table structure).
        assert 8.0 < tableau.max_delay_ms <= 10.5
        # RTDS controls delay comparably in this experiment (Sec. 7.3).
        assert by_key[(background, "rtds")].max_delay_ms <= 14.0
        # Credit's tick-granular cap enforcement is always worst.
        assert by_key[(background, "credit")].max_delay_ms > tableau.max_delay_ms


def test_fig5b_uncapped(benchmark):
    rows = benchmark.pedantic(run_matrix, args=(False,), rounds=1, iterations=1)
    publish("fig5b_intrinsic_uncapped", format_rows(rows), benchmark)
    by_key = {(r.background, r.scheduler): r for r in rows}
    # Idle machine: everyone achieves (sub-)millisecond delays.
    for scheduler in schedulers_for(False):
        assert by_key[("none", scheduler)].max_delay_ms < 1.0
    # With a background workload, the heuristic schedulers blow up while
    # Tableau stays within its planner-guaranteed bound.
    for background in ("io", "cpu"):
        tableau = by_key[(background, "tableau")]
        assert tableau.max_delay_ms <= 10.5
        worst_heuristic = max(
            by_key[(background, "credit")].max_delay_ms,
            by_key[(background, "credit2")].max_delay_ms,
        )
        assert worst_heuristic > tableau.max_delay_ms
