"""Table 2: scheduler-operation overheads on the 48-core, 4-socket box.

The paper's point: RTDS's global runqueue lock "does not scale" — its
mean migrate cost explodes to 168.62 us (from 9.42 us on 16 cores),
while Tableau's core-local design rises only modestly (0.43 -> 0.66 us).
"""

import pytest

from conftest import publish, sim_seconds

from repro.experiments import (
    PAPER_TABLE2,
    format_table,
    measure_overheads,
)
from repro.topology import xeon_48core

DURATION_S = sim_seconds(quick=0.35, full=60.0)


def test_table2_overheads_48core(benchmark):
    rows = benchmark.pedantic(
        lambda: {
            name: measure_overheads(name, xeon_48core(), DURATION_S)
            for name in PAPER_TABLE2
        },
        rounds=1,
        iterations=1,
    )
    publish(
        "table2_overheads_48core",
        format_table(list(rows.values()), PAPER_TABLE2),
        benchmark,
    )
    tableau, rtds = rows["tableau"], rows["rtds"]
    # Tableau stays cheap on the big machine (paper: 2.49/1.82/0.66 us).
    assert tableau.schedule_us < 3.5
    assert tableau.migrate_us < 1.0
    # RTDS's migrate path collapses: far above its own 16-core value and
    # the most expensive cell in the whole table by an order of magnitude.
    assert rtds.migrate_us > 4 * PAPER_TABLE2["rtds"]["schedule"]
    assert rtds.migrate_us == max(
        r.migrate_us for r in rows.values()
    )
    assert rtds.migrate_us > 25.0  # paper: 168.62; we reproduce the blow-up


def test_table2_credit_scales_worse_than_tableau(benchmark):
    rows = benchmark.pedantic(
        lambda: {
            name: measure_overheads(name, xeon_48core(), DURATION_S)
            for name in ("credit", "tableau")
        },
        rounds=1,
        iterations=1,
    )
    credit, tableau = rows["credit"], rows["tableau"]
    # Paper: Credit 16.40 us vs Tableau 2.49 us schedule cost at 48 cores.
    assert credit.schedule_us / tableau.schedule_us > 4.0
    publish(
        "table2_credit_vs_tableau",
        f"credit schedule {credit.schedule_us:.2f} us vs tableau "
        f"{tableau.schedule_us:.2f} us",
        benchmark,
    )
