"""Smoke check for the lint wall-time budget: the cache must earn its keep.

Single-run (not median) version of ``benchmarks/lint_wall.py``; the
hard bar — a warm flow run under half the cold wall time — holds with a
10x margin in practice, so one sample is enough even on a noisy
container.  Full medians live in ``BENCH_lint.json``; regenerate with
``PYTHONPATH=src python benchmarks/lint_wall.py``.
"""

from __future__ import annotations

import time

from conftest import publish

from lint_wall import SRC
from repro.lint import lint_paths


def timed_once(**kwargs):
    start = time.perf_counter()
    report = lint_paths([SRC], **kwargs)
    return time.perf_counter() - start, report


def test_warm_cache_under_half_cold(tmp_path):
    cache = str(tmp_path / "lint-cache.json")
    cold_s, cold = timed_once()
    timed_once(cache_path=cache)  # populate
    warm_s, warm = timed_once(cache_path=cache)

    assert cold.findings == [] and warm.findings == []
    assert warm.cache_hits == warm.files_checked
    assert warm.cache_misses == 0
    assert warm.flow_functions == cold.flow_functions
    assert warm.flow_edges == cold.flow_edges
    assert warm_s < 0.5 * cold_s, (
        f"warm flow lint {warm_s:.3f}s vs cold {cold_s:.3f}s — cache bar is 0.5x"
    )
    publish(
        "perf_lint_wall",
        "\n".join([
            "full lint of src/repro (single-site + flow rules)",
            f"cold     {cold_s:8.3f} s  ({cold.files_checked} files, "
            f"{cold.flow_functions} functions, {cold.flow_edges} edges)",
            f"warm     {warm_s:8.3f} s  ({warm.cache_hits} cache hits)",
            f"ratio    {warm_s / cold_s:8.2f} x  (bar: < 0.50x)",
        ]),
    )
