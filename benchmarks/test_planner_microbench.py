"""Microbenchmarks of the planner's building blocks.

Not a paper figure; establishes where table-generation time goes (the
paper suggests "tables can be incrementally re-computed" and "a
low-level language" as future optimizations — these numbers show what
those would buy).
"""

import pytest

from repro.core import (
    MS,
    Planner,
    deserialize,
    make_vm,
    semi_partition,
    serialize,
    simulate_edf,
    worst_fit_decreasing,
)
from repro.core.schedulability import edf_schedulable
from repro.core.tasks import PeriodicTask, vcpus_to_tasks
from repro.core.params import flatten_vcpus
from repro.topology import xeon_16core

HYPERPERIOD = 102_702_600


def paper_tasks():
    vms = [make_vm(f"vm{i:02d}", 0.25, 20 * MS) for i in range(48)]
    return vcpus_to_tasks(flatten_vcpus(vms))


def test_bench_vcpu_mapping(benchmark):
    vms = [make_vm(f"vm{i:02d}", 0.25, 20 * MS) for i in range(48)]
    vcpus = flatten_vcpus(vms)
    benchmark(vcpus_to_tasks, vcpus)


def test_bench_partitioning(benchmark):
    tasks = paper_tasks()
    result = benchmark(worst_fit_decreasing, tasks, list(range(12)))
    assert result.success


def test_bench_edf_simulation_per_core(benchmark):
    tasks = paper_tasks()[:4]  # one core's worth
    table = benchmark(simulate_edf, tasks, HYPERPERIOD)
    assert table.busy_ns > 0


def test_bench_schedulability_test(benchmark):
    tasks = paper_tasks()[:4]
    assert benchmark(edf_schedulable, tasks, HYPERPERIOD)


def test_bench_semi_partitioning_with_splits(benchmark):
    period = 1_027_026
    tasks = [
        PeriodicTask(name=f"t{i}", cost=int(0.6 * period), period=period)
        for i in range(3)
    ]
    result = benchmark(semi_partition, tasks, [0, 1], HYPERPERIOD)
    assert result.success


def test_bench_full_plan_16core(benchmark):
    planner = Planner(xeon_16core())
    vms = [make_vm(f"vm{i:02d}", 0.25, 20 * MS) for i in range(48)]
    result = benchmark(planner.plan, vms)
    assert result.stats.method == "partitioned"


def test_bench_round_trip_serialization(benchmark):
    plan = Planner(xeon_16core()).plan(
        [make_vm(f"vm{i:02d}", 0.25, 1 * MS) for i in range(48)]
    )
    payload = serialize(plan.table)

    def round_trip():
        return deserialize(serialize(plan.table))

    restored = benchmark(round_trip)
    assert restored.length_ns == plan.table.length_ns
