"""Lint wall-time benchmark: cold vs warm-cache vs parallel flow runs.

The whole-program passes gate every PR in CI, so their wall time is a
budget of its own.  This script times three configurations of the full
rule set (single-site + flow) over ``src/repro``:

* **cold** — no cache: every file parsed, summarized, and rule-checked;
* **warm** — second run against a populated content-hash cache: no file
  is parsed, the flow passes start from cached summaries;
* **jobs** — cold run with extraction and rules on a process pool.

The acceptance bar (asserted here and in CI): a warm flow run finishes
in under half the cold wall time.

Run directly to (re)generate ``BENCH_lint.json`` at the repo root::

    PYTHONPATH=src python benchmarks/lint_wall.py
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_lint.json"
SRC = str(REPO_ROOT / "src" / "repro")

RUNS = 5


def timed(label, runs=RUNS, **kwargs):
    """Median wall seconds (and the last report) for ``lint_paths``."""
    samples = []
    report = None
    for _ in range(runs):
        start = time.perf_counter()
        report = lint_paths([SRC], **kwargs)
        samples.append(time.perf_counter() - start)
    return {
        "label": label,
        "wall_s": round(statistics.median(samples), 4),
        "runs": runs,
        "files": report.files_checked,
        "findings": len(report.findings),
        "flow_functions": report.flow_functions,
        "flow_edges": report.flow_edges,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
    }


def measure():
    with tempfile.TemporaryDirectory() as tmp:
        cache = os.path.join(tmp, "lint-cache.json")
        cold = timed("cold")
        # Populate, then measure the warm steady state.
        lint_paths([SRC], cache_path=cache)
        warm = timed("warm", cache_path=cache)
        jobs = max(2, min(4, os.cpu_count() or 2))
        pooled = timed("jobs", jobs=jobs)
        pooled["jobs"] = jobs
    return cold, warm, pooled


def main():
    cold, warm, pooled = measure()
    ratio = warm["wall_s"] / cold["wall_s"] if cold["wall_s"] else 0.0
    document = {
        "benchmark": "lint_wall",
        "target": SRC.replace(str(REPO_ROOT) + os.sep, ""),
        "cold": cold,
        "warm": warm,
        "parallel": pooled,
        "warm_over_cold": round(ratio, 3),
        "bar": "warm < 0.5 * cold",
    }
    BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(json.dumps(document, indent=2, sort_keys=True))
    if ratio >= 0.5:
        print(
            f"FAIL: warm run at {ratio:.2f}x cold — cache bar is < 0.5x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
