"""Fig. 6: average and maximum round-trip ping latency to the vantage VM.

The paper's four panels: (a) uncapped average — ~100 us for every
scheduler on an idle machine, Tableau visibly higher (but bounded) only
with a CPU-bound background; (b) capped average — Tableau's table
structure shows as a few ms of average latency, below the 20 ms goal;
(c) uncapped max — heuristic schedulers degrade with background load
(paper: Credit approaches 75 ms); (d) capped max — RTDS and Tableau
bound the delay (~9-10 ms) while Credit does not.
"""

import pytest

from conftest import publish, sim_seconds

from repro.experiments import ping_latency, plan_for, schedulers_for
from repro.topology import xeon_16core

DURATION_S = sim_seconds(quick=2.0, full=500.0)
PINGS = int(sim_seconds(quick=120, full=5_000))


def run_matrix(capped):
    plan = plan_for(xeon_16core(), 48, capped)
    rows = []
    for background in ("none", "io", "cpu"):
        for scheduler in schedulers_for(capped):
            rows.append(
                ping_latency(
                    scheduler,
                    capped,
                    background,
                    duration_s=DURATION_S,
                    pings_per_thread=PINGS,
                    plan=plan,
                )
            )
    return rows


def format_rows(rows):
    lines = [f"{'bg':>5s} {'scheduler':>9s} {'avg (ms)':>9s} {'max (ms)':>9s}"]
    for r in rows:
        lines.append(
            f"{r.background:>5s} {r.scheduler:>9s} {r.avg_ms:9.2f} {r.max_ms:9.2f}"
        )
    return "\n".join(lines)


def test_fig6_uncapped(benchmark):
    rows = benchmark.pedantic(run_matrix, args=(False,), rounds=1, iterations=1)
    publish("fig6_ping_uncapped", format_rows(rows), benchmark)
    by_key = {(r.background, r.scheduler): r for r in rows}
    # (a) Idle machine: ~100 us averages across the board.
    for scheduler in schedulers_for(False):
        assert by_key[("none", scheduler)].avg_ms < 0.5
    # (c) Tableau's max stays bounded by the table under any background.
    for background in ("none", "io", "cpu"):
        assert by_key[(background, "tableau")].max_ms <= 10.5
    # Heuristic schedulers exceed Tableau's bound under load.
    worst = max(
        by_key[("io", "credit")].max_ms,
        by_key[("io", "credit2")].max_ms,
        by_key[("cpu", "credit")].max_ms,
        by_key[("cpu", "credit2")].max_ms,
    )
    assert worst > by_key[("io", "tableau")].max_ms


def test_fig6_capped(benchmark):
    rows = benchmark.pedantic(run_matrix, args=(True,), rounds=1, iterations=1)
    publish("fig6_ping_capped", format_rows(rows), benchmark)
    by_key = {(r.background, r.scheduler): r for r in rows}
    for background in ("none", "io", "cpu"):
        tableau = by_key[(background, "tableau")]
        # (b) Rigid but bounded: a few ms average, well below the 20 ms
        # goal; (d) max never above the table's ~10 ms blackout.
        assert 1.0 < tableau.avg_ms < 8.0
        assert tableau.max_ms <= 10.5
        # RTDS bounds the delay within its period (paper: ~9 ms max,
        # occasionally a bit more as budget forfeiture bites).
        assert by_key[(background, "rtds")].max_ms <= 16.0
