"""Fig. 8: 100 KiB web serving with a cache-thrashing (fully CPU-bound)
background workload.

Claims: (capped) the background never invokes the scheduler voluntarily,
so overheads stop mattering and all schedulers perform similarly —
including RTDS; (uncapped) Credit's boost heuristic finally works as
intended (the vantage VM is the only I/O-bound guest), Credit2 lags
without boosting, and Tableau shows *no* capped-to-uncapped drop since
its guarantees never depended on runtime heuristics.
"""

import pytest

from conftest import publish, sim_seconds

from repro.experiments import SLA_P99_NS, plan_for, sweep_rates
from repro.metrics import compare_peaks
from repro.topology import xeon_16core
from repro.workloads import KIB

DURATION_S = sim_seconds(quick=1.5, full=30.0)
RATES = (200, 350, 500)
SIZE = 100 * KIB


def run_cell(scheduler, capped):
    plan = plan_for(xeon_16core(), 48, capped)
    return sweep_rates(
        scheduler,
        RATES,
        SIZE,
        capped=capped,
        background="cpu",
        duration_s=DURATION_S,
        plan=plan,
    )


def format_curves(curves):
    lines = []
    for curve in curves:
        for offered, achieved, mean_ms, p99_ms, max_ms in curve.rows():
            lines.append(
                f"{curve.label:>8s} {offered:6.0f} -> {achieved:7.1f} req/s  "
                f"mean {mean_ms:8.2f}  p99 {p99_ms:8.2f}  max {max_ms:8.2f} ms"
            )
    return "\n".join(lines)


def test_fig8_capped_parity(benchmark):
    curves = benchmark.pedantic(
        lambda: [run_cell(s, True) for s in ("credit", "rtds", "tableau")],
        rounds=1,
        iterations=1,
    )
    publish("fig8_capped", format_curves(curves), benchmark)
    peaks = compare_peaks(curves, SLA_P99_NS)
    # "Little differentiation among the schedulers": everyone sustains
    # the whole grid within the SLA.
    for label, peak in peaks.items():
        assert peak is not None and peak >= RATES[-1] * 0.95, label


def test_fig8_uncapped(benchmark):
    curves = benchmark.pedantic(
        lambda: [run_cell(s, False) for s in ("credit", "credit2", "tableau")],
        rounds=1,
        iterations=1,
    )
    publish("fig8_uncapped", format_curves(curves), benchmark)
    by_label = {c.label: c for c in curves}
    # Credit's boost works here: the vantage VM is the sole I/O guest,
    # so its tails beat Credit2's (which has no boost to offer).
    credit_p99 = max(p.latency.p99_ns for p in by_label["credit"].points)
    credit2_p99 = max(p.latency.p99_ns for p in by_label["credit2"].points)
    assert credit_p99 < credit2_p99
    # Tableau: guaranteed slots -> flat p99 at the table bound.
    assert all(
        p.latency.p99_ns <= 11_000_000 for p in by_label["tableau"].points
    )


def test_fig8_tableau_no_capped_uncapped_drop(benchmark):
    """Sec. 7.4: "we see no drop in Tableau's peak throughput" between
    capped and uncapped under the CPU-bound background."""
    capped, uncapped = benchmark.pedantic(
        lambda: (run_cell("tableau", True), run_cell("tableau", False)),
        rounds=1,
        iterations=1,
    )
    peak_capped = capped.sla_peak_throughput(SLA_P99_NS)
    peak_uncapped = uncapped.sla_peak_throughput(SLA_P99_NS)
    assert peak_capped is not None and peak_uncapped is not None
    assert peak_uncapped >= peak_capped * 0.95
    publish(
        "fig8_tableau_capped_vs_uncapped",
        f"capped peak {peak_capped:.0f} req/s, uncapped {peak_uncapped:.0f}",
        benchmark,
    )
