"""Sec. 7.4's second-level scheduler statistic.

The paper traced Tableau's decisions at 700 req/s (uncapped, I/O
background) and found "over 85% of the scheduling decisions resulting in
the vantage VM's execution were made by the level-2 round-robin
scheduler" — i.e., the work-conserving second level, not the table,
carries the uncapped throughput advantage.
"""

import pytest

from conftest import publish, sim_seconds

from repro.experiments import run_web_load
from repro.sim import Tracer
from repro.workloads import KIB

DURATION_S = sim_seconds(quick=1.5, full=30.0)


def test_l2_share_dominates_uncapped_dispatches(benchmark):
    tracer = Tracer(keep_dispatches=True)
    result = benchmark.pedantic(
        run_web_load,
        args=("tableau", 700, 100 * KIB),
        kwargs={
            "capped": False,
            "background": "io",
            "duration_s": DURATION_S,
            "tracer": tracer,
        },
        rounds=1,
        iterations=1,
    )
    assert result.l2_share is not None
    publish(
        "l2_scheduler_share",
        f"level-2 share of vantage dispatches at 700 req/s uncapped: "
        f"{result.l2_share:.1%} (paper: >85%)",
        benchmark,
    )
    # The level-2 scheduler makes the majority of the vantage VM's
    # dispatches (paper: >85%; exact share depends on wake phasing).
    assert result.l2_share > 0.5


def test_l2_share_zero_when_capped(benchmark):
    tracer = Tracer(keep_dispatches=True)
    result = benchmark.pedantic(
        run_web_load,
        args=("tableau", 400, 100 * KIB),
        kwargs={
            "capped": True,
            "background": "io",
            "duration_s": DURATION_S,
            "tracer": tracer,
        },
        rounds=1,
        iterations=1,
    )
    assert result.l2_share == 0.0  # capped VMs never use the second level
