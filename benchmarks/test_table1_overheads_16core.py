"""Table 1: mean scheduler-operation overheads on the 16-core machine.

Paper values (us): Credit 8.08/2.12/0.32, Credit2 3.51/5.19/5.55,
RTDS 2.86/3.90/9.42, Tableau 1.43/1.06/0.43 (schedule/wakeup/migrate)
under the I/O-intensive stress workload.  Headline: Tableau's schedule
cost is ~5.6x below Credit, ~2.4x below Credit2, ~2x below RTDS.
"""

import pytest

from conftest import publish, sim_seconds

from repro.experiments import (
    PAPER_TABLE1,
    format_table,
    measure_overheads,
)
from repro.topology import xeon_16core

DURATION_S = sim_seconds(quick=0.8, full=60.0)


@pytest.mark.parametrize("scheduler", ["tableau", "credit", "credit2", "rtds"])
def test_table1_overheads(benchmark, scheduler):
    row = benchmark.pedantic(
        measure_overheads,
        args=(scheduler,),
        kwargs={"topology": xeon_16core(), "duration_s": DURATION_S},
        rounds=1,
        iterations=1,
    )
    expected = PAPER_TABLE1[scheduler]
    text = (
        f"{scheduler}: schedule {row.schedule_us:.2f} us (paper "
        f"{expected['schedule']:.2f}), wakeup {row.wakeup_us:.2f} us "
        f"(paper {expected['wakeup']:.2f}), migrate {row.migrate_us:.2f} us "
        f"(paper {expected['migrate']:.2f})"
    )
    publish(f"table1_{scheduler}", text, benchmark)
    # Calibration tolerance: within 40% of every paper cell.
    assert row.schedule_us == pytest.approx(expected["schedule"], rel=0.4)
    assert row.wakeup_us == pytest.approx(expected["wakeup"], rel=0.4)
    assert row.migrate_us == pytest.approx(expected["migrate"], rel=0.4)


def test_table1_tableau_is_cheapest(benchmark):
    rows = benchmark.pedantic(
        lambda: {
            name: measure_overheads(name, xeon_16core(), DURATION_S)
            for name in PAPER_TABLE1
        },
        rounds=1,
        iterations=1,
    )
    publish(
        "table1_overheads_16core",
        format_table(list(rows.values()), PAPER_TABLE1),
        benchmark,
    )
    tableau = rows["tableau"]
    # The paper's headline ratios, loosely: Tableau's schedule op is the
    # cheapest by a wide margin.
    assert rows["credit"].schedule_us / tableau.schedule_us > 4.0
    assert rows["credit2"].schedule_us / tableau.schedule_us > 1.8
    assert rows["rtds"].schedule_us / tableau.schedule_us > 1.5
    # And its wakeup path beats everyone too.
    assert tableau.wakeup_us == min(r.wakeup_us for r in rows.values())
