"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures and
writes the reproduced rows/series to ``benchmarks/results/<name>.txt``
(they are also attached to pytest-benchmark's ``extra_info`` so they
appear in ``--benchmark-json`` output).

Scale: by default simulations run scaled-down durations so the whole
suite finishes in minutes; set ``REPRO_FULL=1`` for paper-scale runs
(tens of simulated seconds per cell, hours of wall time).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper-scale vs quick-scale simulated durations (seconds).
FULL_SCALE = bool(int(os.environ.get("REPRO_FULL", "0")))


def sim_seconds(quick: float, full: float) -> float:
    return full if FULL_SCALE else quick


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    yield


def publish(name: str, text: str, benchmark=None) -> None:
    """Write a reproduced table/figure to the results directory."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    if benchmark is not None:
        benchmark.extra_info["reproduction"] = text
    print(f"\n=== {name} ===\n{text}")
