"""Fig. 7: nginx HTTPS throughput-vs-latency curves with an I/O-intensive
background workload (capped and uncapped, three file sizes).

Headline claims reproduced as assertions:

* Tableau's tail latency stays flat (at its table bound) until the
  server saturates, while Credit's creeps upward well before its peak;
* SLA-aware peak throughput (p99 <= 100 ms): Tableau >= Credit > RTDS at
  1 KiB (paper: 1,600 / 1,400 / 1,000 req/s);
* capped 1 MiB is the one case where Credit beats Tableau — the rigid
  table lets the NIC drain and idle between slots (Sec. 7.5);
* uncapped, Tableau's second-level scheduler erases that penalty.
"""

import pytest

from conftest import publish, sim_seconds

from repro.experiments import SLA_P99_NS, plan_for, sweep_rates
from repro.metrics import compare_peaks
from repro.topology import xeon_16core
from repro.workloads import KIB, MIB

DURATION_S = sim_seconds(quick=1.5, full=30.0)

RATE_GRIDS = {
    KIB: (400, 800, 1_200, 1_600, 2_000),
    100 * KIB: (200, 400, 600, 800),
    MIB: (20, 60, 100, 160, 240),
}


def run_cell(scheduler, size, capped):
    plan = plan_for(xeon_16core(), 48, capped)
    return sweep_rates(
        scheduler,
        RATE_GRIDS[size],
        size,
        capped=capped,
        background="io",
        duration_s=DURATION_S,
        plan=plan,
    )


def format_curves(curves):
    lines = [
        f"{'sched':>8s} {'offered':>8s} {'achieved':>9s} {'mean':>9s} "
        f"{'p99':>9s} {'max':>9s}  (ms)"
    ]
    for curve in curves:
        for offered, achieved, mean_ms, p99_ms, max_ms in curve.rows():
            lines.append(
                f"{curve.label:>8s} {offered:8.0f} {achieved:9.1f} "
                f"{mean_ms:9.2f} {p99_ms:9.2f} {max_ms:9.2f}"
            )
    return "\n".join(lines)


def test_fig7_capped_1kib(benchmark):
    curves = benchmark.pedantic(
        lambda: [run_cell(s, KIB, True) for s in ("credit", "rtds", "tableau")],
        rounds=1,
        iterations=1,
    )
    publish("fig7_capped_1kib", format_curves(curves), benchmark)
    peaks = compare_peaks(curves, SLA_P99_NS)
    # Tableau achieves the highest SLA-aware peak throughput.
    assert peaks["tableau"] is not None
    assert peaks["tableau"] >= peaks["credit"]
    assert peaks["tableau"] >= 1_400
    # Tableau's p99 stays at its table bound until saturation.
    tableau = next(c for c in curves if c.label == "tableau")
    pre_knee = [p for p in tableau.points if p.offered_rate <= 1_600]
    assert all(p.latency.p99_ns <= 11_000_000 for p in pre_knee)
    # Credit's tails creep upward before its peak (unpredictability).
    credit = next(c for c in curves if c.label == "credit")
    creeping = [p for p in credit.points if 800 <= p.offered_rate <= 1_600]
    assert max(p.latency.p99_ns for p in creeping) > 20_000_000


def test_fig7_capped_100kib(benchmark):
    curves = benchmark.pedantic(
        lambda: [run_cell(s, 100 * KIB, True) for s in ("credit", "rtds", "tableau")],
        rounds=1,
        iterations=1,
    )
    publish("fig7_capped_100kib", format_curves(curves), benchmark)
    tableau = next(c for c in curves if c.label == "tableau")
    assert tableau.sla_peak_throughput(SLA_P99_NS) >= 400


def test_fig7_capped_1mib_credit_wins(benchmark):
    """Sec. 7.5: the one scenario a rigid table loses — large files,
    capped: the NIC drains its ring and idles during Tableau's blackout,
    while Credit's finer-grained slices keep the device busier."""
    curves = benchmark.pedantic(
        lambda: [run_cell(s, MIB, True) for s in ("credit", "tableau")],
        rounds=1,
        iterations=1,
    )
    publish("fig7_capped_1mib", format_curves(curves), benchmark)
    peaks = compare_peaks(curves, SLA_P99_NS)
    assert peaks["credit"] is not None and peaks["tableau"] is not None
    assert peaks["credit"] > peaks["tableau"]


def test_fig7_uncapped_100kib(benchmark):
    curves = benchmark.pedantic(
        lambda: [
            run_cell(s, 100 * KIB, False) for s in ("credit", "credit2", "tableau")
        ],
        rounds=1,
        iterations=1,
    )
    publish("fig7_uncapped_100kib", format_curves(curves), benchmark)
    tableau = next(c for c in curves if c.label == "tableau")
    credit2 = next(c for c in curves if c.label == "credit2")
    # Tableau sustains the top of the grid with flat, table-bounded p99.
    assert tableau.sla_peak_throughput(SLA_P99_NS) >= 800
    assert all(p.latency.p99_ns <= 11_000_000 for p in tableau.points)
    # Credit2 meets the SLA but with visibly worse tail latency.
    assert min(p.latency.p99_ns for p in credit2.points) > max(
        p.latency.p99_ns for p in tableau.points
    )


def test_fig7_uncapped_1mib_l2_erases_nic_penalty(benchmark):
    """Fig. 7(p)-(r): uncapped, Tableau's second-level scheduler lets the
    vantage VM fill idle cycles, keeping the NIC busy for large files."""
    curves = benchmark.pedantic(
        lambda: [run_cell(s, MIB, False) for s in ("tableau",)],
        rounds=1,
        iterations=1,
    )
    publish("fig7_uncapped_1mib", format_curves(curves), benchmark)
    uncapped_peak = curves[0].sla_peak_throughput(SLA_P99_NS)
    capped_peak = run_cell("tableau", MIB, True).sla_peak_throughput(SLA_P99_NS)
    assert uncapped_peak is not None and capped_peak is not None
    assert uncapped_peak > capped_peak
