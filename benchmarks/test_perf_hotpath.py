"""Perf-regression smoke checks for the two hot paths.

Quick-scale versions of ``benchmarks/hotpath.py``: the dispatch loop and
the planner's replanning burst, each published as events/plans per
second.  These are smoke checks, not gates — container timing is far too
noisy for hard thresholds in CI — but they do hard-assert the properties
an optimization must not break:

* same-seed simulations are bit-identical (trace fingerprints match);
* repeated replanning converges on the same table (plan fingerprint);
* the planner's core-table memo actually hits on incremental replans.

Full-scale numbers (and the frozen seed baseline) live in
``BENCH_hotpath.json``; regenerate with
``PYTHONPATH=src python benchmarks/hotpath.py``.
"""

from __future__ import annotations

from conftest import sim_seconds, publish

from hotpath import (
    bench_daemon_regeneration,
    bench_dispatch,
    bench_planner,
)
from repro.core import MS, Planner, make_vm
from repro.topology import xeon_16core


def test_dispatch_throughput():
    result = bench_dispatch(sim_seconds=sim_seconds(0.1, 0.5), runs=2)
    # bench_dispatch raises if the two same-seed runs' traces diverge.
    assert result["events"] > 0
    publish(
        "perf_dispatch_hotpath",
        "dispatch-loop throughput (quick scale)\n"
        f"events/cycle      {result['events']}\n"
        f"events_per_sec    {result['events_per_sec']:.0f}\n"
        f"trace fingerprint {result['fingerprint'][:16]}",
    )


def test_planner_throughput():
    result = bench_planner(repeats=1)
    regen = bench_daemon_regeneration(cycles=4)
    assert result["plans"] == 16
    assert result["fingerprint"] is not None
    publish(
        "perf_planner_hotpath",
        "planner replanning throughput (quick scale)\n"
        f"burst plans_per_sec  {result['plans_per_sec']:.0f}\n"
        f"regen plans_per_sec  {regen['plans_per_sec']:.0f}\n"
        f"plan fingerprint     {result['fingerprint'][:16]}",
    )


def test_incremental_replan_hits_core_cache():
    planner = Planner(xeon_16core())
    planner.plan([make_vm(f"vm{i:02d}", 0.25, 20 * MS) for i in range(40)])
    assert planner.core_cache_hits == 0
    misses_first = planner.core_cache_misses
    # One more VM: only the cores receiving new tasks should re-simulate.
    planner.plan([make_vm(f"vm{i:02d}", 0.25, 20 * MS) for i in range(41)])
    assert planner.core_cache_hits > 0
    assert planner.core_cache_misses - misses_first < misses_first
