"""Perf-regression smoke checks for the two hot paths.

Quick-scale versions of ``benchmarks/hotpath.py``: the dispatch loop and
the planner's replanning burst, each published as events/plans per
second.  These are smoke checks, not gates — container timing is far too
noisy for hard thresholds in CI — but they do hard-assert the properties
an optimization must not break:

* same-seed simulations are bit-identical (trace fingerprints match);
* repeated replanning converges on the same table (plan fingerprint);
* the planner's core-table memo actually hits on incremental replans.

Full-scale numbers (and the frozen seed baseline) live in
``BENCH_hotpath.json``; regenerate with
``PYTHONPATH=src python benchmarks/hotpath.py``.
"""

from __future__ import annotations

import json

from conftest import sim_seconds, publish

from hotpath import (
    BENCH_PATH,
    SEED_BASELINE,
    bench_daemon_regeneration,
    bench_dispatch,
    bench_dispatch_backends,
    bench_plan_transport,
    bench_planner,
    bench_planner_delta,
)
from repro.core import MS, Planner, make_vm
from repro.topology import xeon_16core

#: Full-scale (0.5 s, seed 42) reference fingerprints.  These freeze the
#: fault-free simulated behavior: the health layer, being observational,
#: must reproduce them bit for bit.
DISPATCH_FINGERPRINT_PREFIX = "eb99ea934a2278f6"
PLAN_FINGERPRINT_PREFIX = "478c6f53501c6324"


def test_dispatch_throughput():
    result = bench_dispatch(sim_seconds=sim_seconds(0.1, 0.5), runs=2)
    # bench_dispatch raises if the two same-seed runs' traces diverge.
    assert result["events"] > 0
    publish(
        "perf_dispatch_hotpath",
        "dispatch-loop throughput (quick scale)\n"
        f"events/cycle      {result['events']}\n"
        f"events_per_sec    {result['events_per_sec']:.0f}\n"
        f"trace fingerprint {result['fingerprint'][:16]}",
    )


def test_planner_throughput():
    result = bench_planner(repeats=1)
    regen = bench_daemon_regeneration(cycles=4)
    assert result["plans"] == 16
    assert result["fingerprint"] is not None
    publish(
        "perf_planner_hotpath",
        "planner replanning throughput (quick scale)\n"
        f"burst plans_per_sec  {result['plans_per_sec']:.0f}\n"
        f"regen plans_per_sec  {regen['plans_per_sec']:.0f}\n"
        f"plan fingerprint     {result['fingerprint'][:16]}",
    )


def test_health_layer_preserves_fingerprints_and_throughput():
    """The supervision layer must be invisible to a fault-free machine.

    Runs the full-scale dispatch benchmark twice — bare and with the
    complete ``repro.health`` stack armed (per-core watchdogs, guarantee
    monitor, supervisor sweep) — and asserts the trace fingerprints are
    bit-identical and match the frozen reference.  Throughput is guarded
    against the frozen ``BENCH_hotpath.json`` baseline: less than 5%
    regression in dispatch events/sec.  Wall seconds are *not* compared
    across the two modes: health timers add (cheap) engine events, so
    events/sec is the like-for-like throughput metric.
    """
    bare_walls: list = []
    health_walls: list = []
    bare_fp = health_fp = None
    bare_events = health_events = 0
    # Interleave the two modes so container-load drift hits both alike.
    for _ in range(3):
        bare = bench_dispatch(sim_seconds=0.5, seed=42, runs=1)
        health = bench_dispatch(sim_seconds=0.5, seed=42, runs=1, health=True)
        assert bare_fp in (None, bare["fingerprint"])
        assert health_fp in (None, health["fingerprint"])
        bare_fp, health_fp = bare["fingerprint"], health["fingerprint"]
        bare_events, health_events = bare["events"], health["events"]
        bare_walls.append(bare["wall_s"])
        health_walls.append(health["wall_s"])

    assert bare_fp.startswith(DISPATCH_FINGERPRINT_PREFIX)
    assert health_fp == bare_fp

    plan = bench_planner(repeats=1)
    assert plan["fingerprint"].startswith(PLAN_FINGERPRINT_PREFIX)

    # The 5% gate is relative and interleaved: an absolute wall-clock
    # floor against a frozen file cannot distinguish a code regression
    # from a loaded container (the seed baseline itself had to be
    # measured interleaved for the same reason).  Best-of-N approximates
    # the unloaded cost of each mode.
    bare_eps = bare_events / min(bare_walls)
    health_eps = health_events / min(health_walls)
    assert health_eps > 0.95 * bare_eps, (
        f"health layer costs >5% dispatch throughput: "
        f"{health_eps:.0f} ev/s armed vs {bare_eps:.0f} ev/s bare"
    )
    # Against BENCH_hotpath.json only a catastrophic-regression tripwire
    # is load-safe; halving throughput fails it on any container.
    baseline = json.loads(BENCH_PATH.read_text())["after"]["dispatch"]
    assert bare_eps > 0.5 * baseline["events_per_sec"], (
        f"dispatch throughput collapsed: {bare_eps:.0f} ev/s vs frozen "
        f"baseline {baseline['events_per_sec']:.0f}"
    )
    publish(
        "perf_health_overhead",
        "health-layer overhead (full scale, 0.5 s, seed 42)\n"
        f"fingerprint        {bare_fp[:16]} (identical armed/bare)\n"
        f"bare   events/sec  {bare_eps:.0f}\n"
        f"health events/sec  {health_eps:.0f}\n"
        f"baseline events/sec {baseline['events_per_sec']:.0f}",
    )


def test_array_backend_is_bit_identical_and_clears_5x_seed():
    """ISSUE 6 acceptance: batched table playback at >= 5x seed throughput.

    Both backends run the full-scale benchmark interleaved.  Three gates:

    * exactness — the array trace fingerprint equals the object one and
      matches the frozen reference (no behavioral drift, ever);
    * relative — the array engine decisively outruns the object engine
      (measured ratio ~1.7x; the 1.4x gate leaves room for scheduling
      noise but fails if the batching advantage evaporates);
    * the 5x-vs-seed floor, load-normalized: the bar scales by how far
      the object engine itself is currently displaced from its frozen
      ``BENCH_hotpath.json`` speed, so host steal (which slows both
      backends alike) cannot fail the gate, while a real array-engine
      regression still does.  On an unloaded container the factor is
      1.0 and the full 5x floor applies.
    """
    backends = bench_dispatch_backends(sim_seconds=0.5, seed=42, rounds=3)
    obj, arr = backends["object"], backends["array"]

    assert arr["fingerprint"] == obj["fingerprint"]
    assert arr["fingerprint"].startswith(DISPATCH_FINGERPRINT_PREFIX)

    obj_eps = obj["events_per_sec"]
    arr_eps = arr["events_per_sec"]
    assert arr_eps > 1.4 * obj_eps, (
        f"array backend lost its batching advantage: {arr_eps:.0f} ev/s "
        f"vs {obj_eps:.0f} ev/s object"
    )

    seed_eps = SEED_BASELINE["dispatch"]["events_per_sec"]
    frozen_obj_eps = json.loads(BENCH_PATH.read_text())["after"]["dispatch"][
        "events_per_sec"
    ]
    load_factor = min(1.0, obj_eps / frozen_obj_eps)
    floor = 5.0 * seed_eps * load_factor
    assert arr_eps > floor, (
        f"array backend under the 5x-vs-seed floor: {arr_eps:.0f} ev/s "
        f"vs floor {floor:.0f} (load factor {load_factor:.2f})"
    )
    publish(
        "perf_array_backend",
        "array dispatch backend (full scale, 0.5 s, seed 42)\n"
        f"fingerprint       {arr['fingerprint'][:16]} (identical to object)\n"
        f"object events/sec {obj_eps:.0f}\n"
        f"array  events/sec {arr_eps:.0f} ({arr_eps / seed_eps:.1f}x seed, "
        f"{arr_eps / obj_eps:.2f}x object)\n"
        f"5x floor          {floor:.0f} (load factor {load_factor:.2f})",
    )


def test_planner_delta_matches_scratch_and_outruns_full_burst():
    """Delta replans: differential correctness plus a relative gate.

    ``bench_planner_delta`` itself raises if the churned plan drifts
    from the base fingerprint, so running it *is* the differential
    check.  The throughput gate is relative to this tree's own full
    burst (both measured here, same container load): census-diff
    replans skip census rebuilding and WFD repacking of untouched
    cores, so they must beat the full-replan burst rate.
    """
    delta = bench_planner_delta(cycles=25)
    full = bench_planner(repeats=1)
    assert delta["plans"] == 50
    assert delta["plans_per_sec"] > full["plans_per_sec"], (
        f"delta replans ({delta['plans_per_sec']:.0f}/s) no faster than "
        f"full burst ({full['plans_per_sec']:.0f}/s)"
    )
    publish(
        "perf_planner_delta",
        "census-diff (delta) replanning (quick scale)\n"
        f"delta plans_per_sec {delta['plans_per_sec']:.0f}\n"
        f"full  plans_per_sec {full['plans_per_sec']:.0f}\n"
        f"fingerprint         {delta['fingerprint'][:16]} (drift-checked)",
    )


def test_plan_transport_travels_as_deltas():
    """Zero-copy transport: steady-state churn must push 'TBLD' deltas.

    Payload size is deterministic (same census diff → same columns), so
    the 4x bytes bar is a hard gate, unlike the timing smoke above.
    """
    transport = bench_plan_transport(cycles=16)
    assert transport["delta_pushes"] == transport["pushes"], (
        f"only {transport['delta_pushes']}/{transport['pushes']} churn "
        "pushes travelled as deltas"
    )
    assert transport["full_pushes"] == 1  # the boot push only
    assert transport["delta_fallbacks"] == 0
    assert transport["bytes_ratio"] >= 4.0, (
        f"delta payloads only {transport['bytes_ratio']}x smaller than "
        "a full table"
    )
    publish(
        "perf_plan_transport",
        "delta table transport (quick scale)\n"
        f"pushes_per_sec   {transport['pushes_per_sec']:.0f}\n"
        f"delta pushes     {transport['delta_pushes']}/{transport['pushes']}\n"
        f"payload bytes    {transport['delta_bytes']} vs "
        f"{transport['full_table_bytes']} full "
        f"({transport['bytes_ratio']}x smaller)",
    )


def test_incremental_replan_hits_core_cache():
    planner = Planner(xeon_16core())
    planner.plan([make_vm(f"vm{i:02d}", 0.25, 20 * MS) for i in range(40)])
    assert planner.core_cache_hits == 0
    misses_first = planner.core_cache_misses
    # One more VM: only the cores receiving new tasks should re-simulate.
    planner.plan([make_vm(f"vm{i:02d}", 0.25, 20 * MS) for i in range(41)])
    assert planner.core_cache_hits > 0
    assert planner.core_cache_misses - misses_first < misses_first
