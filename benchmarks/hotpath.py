"""Hot-path microbenchmarks: dispatch-loop events/sec and planner plans/sec.

This module is the repo's perf-regression yardstick.  It drives the two
paths every experiment funnels through — the discrete-event dispatch
loop (``SimEngine`` + ``Machine`` + ``TableauScheduler``) and the
planner's table-(re)generation pipeline — and reports throughput plus a
determinism fingerprint, so an optimization can prove both that it is
faster and that it changed no simulated behavior.

Run directly to (re)generate ``BENCH_hotpath.json`` at the repo root::

    PYTHONPATH=src python benchmarks/hotpath.py

The JSON records a frozen "before" baseline (measured at the seed
commit, on the reference container) next to freshly measured "after"
numbers; `benchmarks/test_perf_hotpath.py` runs scaled-down versions of
the same loops as a smoke check.
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core import MS, CensusDelta, Planner, make_vm
from repro.core.table import SystemTable
from repro.experiments.scenarios import build_scenario
from repro.schedulers import TableauScheduler
from repro.sim import ArrayTracer, Tracer
from repro.topology import xeon_16core
from repro.workloads import IoLoop
from repro.xen.daemon import PlannerDaemon
from repro.xen.hypercall import TableHypercall

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_hotpath.json"

#: Frozen baseline, measured at the growth seed (commit 91162aa) on the
#: reference container with the workloads below, interleaved with
#: current-tree runs to cancel machine-load drift.  The events count is
#: the number of executed simulation events, which is exact: same-seed
#: simulations are bit-identical across versions, so the seed processed
#: the same 38,188 events.  Wall seconds are medians over 12 runs.
SEED_BASELINE = {
    "dispatch": {"events": 38188, "wall_s": 0.611, "events_per_sec": 62500.0},
    "planner": {"plans": 48, "wall_s": 0.1748, "plans_per_sec": 274.6},
    "daemon_regeneration": {"plans": 8, "wall_s": 0.0358, "plans_per_sec": 223.4},
}


# ----------------------------------------------------------------------
# Dispatch loop
# ----------------------------------------------------------------------


def dispatch_scenario(seed: int = 42, health: bool = False, engine: str = "object"):
    """The benchmark machine: the paper's 16-core, 4-VMs/core I/O matrix.

    With ``health=True`` the full :mod:`repro.health` supervision layer
    (per-core watchdogs, guarantee monitor, supervisor sweep) is armed
    before the run.  On a fault-free machine it is purely observational,
    so the trace fingerprint must not change.

    ``engine="array"`` installs the batched table-playback backend (with
    its columnar dispatch log); the trace fingerprint must still not
    change — the array engine is a pure performance substitution.
    """
    tracer_cls = ArrayTracer if engine == "array" else Tracer
    tracer = tracer_cls(keep_dispatches=True)
    scenario = build_scenario(
        "tableau",
        IoLoop(),
        capped=False,
        background="io",
        seed=seed,
        tracer=tracer,
        engine=engine,
    )
    if health:
        from repro.health import HealthSupervisor

        supervisor = HealthSupervisor(scenario.machine, scenario.machine.scheduler)
        supervisor.start()
    return scenario


def trace_fingerprint(scenario) -> str:
    """SHA-256 over everything observable about a finished simulation.

    Two runs produce the same digest iff they dispatched the same vCPUs
    at the same times with the same modelled costs — the "bit-identical
    traces" bar optimizations must clear.
    """
    machine = scenario.machine
    hasher = hashlib.sha256()
    for record in machine.tracer.dispatches:
        hasher.update(
            f"{record.time},{record.cpu},{record.vcpu},{record.level};".encode()
        )
    for op, stats in sorted(machine.tracer.ops.items()):
        hasher.update(f"{op}:{stats.count}:{stats.total_ns!r}:{stats.max_ns!r};".encode())
    hasher.update(
        f"cs={machine.tracer.context_switches},mig={machine.tracer.migrations};".encode()
    )
    for name in sorted(machine.vcpus):
        vcpu = machine.vcpus[name]
        hasher.update(f"{name}={vcpu.runtime_ns},{vcpu.dispatch_count};".encode())
    hasher.update(f"now={machine.engine.now}".encode())
    return hasher.hexdigest()


def bench_dispatch(
    sim_seconds: float = 0.5,
    seed: int = 42,
    runs: int = 3,
    health: bool = False,
    engine: str = "object",
) -> Dict[str, object]:
    """Run the dispatch-loop benchmark and return throughput + fingerprint.

    The wall time is the median over ``runs`` independent simulations
    (container timing is noisy); all runs must produce the same trace
    fingerprint, which doubles as a same-seed determinism check.

    ``health=True`` arms the supervision layer.  Note that the health
    timers add engine events, so ``events``/``events_per_sec`` are not
    comparable across the two modes — compare ``wall_s`` instead.
    """
    walls: List[float] = []
    events = 0
    fingerprint = None
    for _ in range(max(1, runs)):
        scenario = dispatch_scenario(seed=seed, health=health, engine=engine)
        start = time.perf_counter()
        scenario.run_seconds(sim_seconds)
        walls.append(time.perf_counter() - start)
        sim_engine = scenario.machine.engine
        events = getattr(sim_engine, "events_processed", None)
        if events is None:  # seed engine: count from the trace instead
            events = sum(s.count for s in scenario.machine.tracer.ops.values())
        digest = trace_fingerprint(scenario)
        if fingerprint is None:
            fingerprint = digest
        elif digest != fingerprint:
            raise AssertionError(
                f"same-seed runs diverged: {digest} != {fingerprint}"
            )
    wall = sorted(walls)[len(walls) // 2]
    return {
        "sim_seconds": sim_seconds,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1),
        "fingerprint": fingerprint,
    }


def bench_dispatch_backends(
    sim_seconds: float = 0.5, seed: int = 42, rounds: int = 5
) -> Dict[str, Dict[str, object]]:
    """Benchmark both dispatch backends, interleaved round by round.

    Interleaving (object, array, object, array, ...) means container-load
    drift hits both backends alike, so the reported ratio survives noisy
    machines where back-to-back blocks would not.  Each backend reports
    its best-of-rounds wall: the minimum is the run least contaminated
    by host steal, approximating the unloaded cost (the same rationale
    as ``test_perf_hotpath``'s interleaved gates).  The two backends'
    trace fingerprints must be identical (the array engine's whole
    contract).
    """
    walls: Dict[str, List[float]] = {"object": [], "array": []}
    results: Dict[str, Dict[str, object]] = {}
    for _ in range(max(1, rounds)):
        for engine in ("object", "array"):
            result = bench_dispatch(
                sim_seconds=sim_seconds, seed=seed, runs=1, engine=engine
            )
            previous = results.get(engine)
            if previous is not None and previous["fingerprint"] != result["fingerprint"]:
                raise AssertionError(f"{engine} same-seed runs diverged")
            results[engine] = result
            walls[engine].append(result["wall_s"])
    if results["object"]["fingerprint"] != results["array"]["fingerprint"]:
        raise AssertionError(
            "array backend diverged from object backend: "
            f"{results['array']['fingerprint']} != {results['object']['fingerprint']}"
        )
    for engine, engine_walls in walls.items():
        wall = min(engine_walls)
        events = results[engine]["events"]
        results[engine].update(
            wall_s=round(wall, 4), events_per_sec=round(events / wall, 1)
        )
    return results


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------


def planner_census(n: int) -> List:
    return [make_vm(f"vm{i:02d}", 0.25, 20 * MS) for i in range(n)]


def bench_planner(repeats: int = 1) -> Dict[str, object]:
    """Daemon-style repeated replanning: a VM create burst from 33 to 48 VMs.

    Each census differs from the previous by one VM, the planner's
    actual invocation pattern (Sec. 3: replan on every create/teardown).
    A single `Planner` instance is reused across the burst, exactly as
    the daemon holds one.

    With ``repeats > 1`` the reported wall is the best burst (minimum
    over repeats) — the same load normalization the dispatch benchmarks
    use: the fastest repeat is the one least contaminated by host
    steal, and, because a fresh ``Planner`` still shares the module-
    level shape/core caches, it reflects the daemon's warm steady state
    rather than one-off process-cold costs.
    """
    table_digest: Optional[str] = None
    walls: List[float] = []
    plans = 0
    for _ in range(max(1, repeats)):
        planner = Planner(xeon_16core())
        plans = 0
        start = time.perf_counter()
        for n in range(33, 49):
            result = planner.plan(planner_census(n))
            plans += 1
        walls.append(time.perf_counter() - start)
        table_digest = plan_fingerprint(result)
    wall = min(walls)
    return {
        "plans": plans,
        "wall_s": round(wall, 4),
        "plans_per_sec": round(plans / wall, 1),
        "fingerprint": table_digest,
    }


def plan_fingerprint(result) -> str:
    """SHA-256 over the final plan's table (layout must not change)."""
    hasher = hashlib.sha256()
    for cpu in sorted(result.table.cores):
        table = result.table.cores[cpu]
        for alloc in table.allocations:
            hasher.update(f"{cpu}:{alloc.start}:{alloc.end}:{alloc.vcpu};".encode())
    return hasher.hexdigest()


def bench_daemon_regeneration(cycles: int = 8) -> Dict[str, object]:
    """The daemon's periodic same-census regeneration (incremental path)."""
    daemon = PlannerDaemon(xeon_16core())
    specs = planner_census(48)
    start = time.perf_counter()
    for i in range(cycles):
        daemon.replan(specs, reason=f"regeneration {i}")
    wall = time.perf_counter() - start
    return {
        "plans": cycles,
        "wall_s": round(wall, 4),
        "plans_per_sec": round(cycles / wall, 1),
    }


def bench_planner_delta(cycles: int = 100) -> Dict[str, object]:
    """Census-diff replans: ``CensusDelta`` create/destroy churn.

    A live planner absorbs a create-then-destroy pair per cycle, the
    service layer's steady-state pattern.  Each create introduces a new
    VM name (never memoized); each destroy returns to the base census.
    The final table must fingerprint identically to the base plan — the
    benchmark doubles as a differential check that delta replans never
    drift from from-scratch planning.

    The base census is 47 VMs, one short of the machine's 12-guest-core
    capacity, so the created VM always admits.
    """
    planner = Planner(xeon_16core())
    base = planner.plan(planner_census(47))
    base_digest = plan_fingerprint(base)
    result = base
    start = time.perf_counter()
    for i in range(cycles):
        vm = make_vm(f"delta{i:03d}", 0.25, 20 * MS)
        planner.plan(CensusDelta(create=[vm]))
        result = planner.plan(CensusDelta(destroy=[vm.name]))
    wall = time.perf_counter() - start
    if plan_fingerprint(result) != base_digest:
        raise AssertionError("delta replans drifted from the base plan")
    plans = 2 * cycles
    return {
        "plans": plans,
        "wall_s": round(wall, 4),
        "plans_per_sec": round(plans / wall, 1),
        "fingerprint": base_digest,
    }


def bench_plan_transport(cycles: int = 100) -> Dict[str, object]:
    """Plan transport: delta ('TBLD') pushes vs full-table payloads.

    A daemon attached to a hypervisor-side hypercall alternates between
    a 47- and 48-VM census; after the boot push every change is small
    enough to travel as changed per-core columns only.  Reports push
    throughput plus the payload-size ratio (full table bytes over the
    mean delta bytes) — the zero-copy transport's whole point.
    """
    scheduler = TableauScheduler(SystemTable(length_ns=MS, cores={}))
    hypercall = TableHypercall(scheduler)
    daemon = PlannerDaemon(xeon_16core(), hypercall=hypercall)
    base = planner_census(47)
    grown = base + [make_vm("vm47", 0.25, 20 * MS)]
    daemon.replan(base, reason="boot")
    full_bytes = daemon.history[-1].push.table_bytes
    start = time.perf_counter()
    for i in range(cycles):
        daemon.replan(grown if i % 2 == 0 else base, reason=f"churn {i}")
    wall = time.perf_counter() - start
    delta_sizes = [
        record.push.table_bytes
        for record in daemon.history
        if record.push is not None and record.push.delta
    ]
    delta_bytes = (
        round(sum(delta_sizes) / len(delta_sizes)) if delta_sizes else 0
    )
    return {
        "pushes": cycles,
        "wall_s": round(wall, 4),
        "pushes_per_sec": round(cycles / wall, 1),
        "delta_pushes": daemon.delta_pushes,
        "full_pushes": daemon.full_pushes,
        "delta_fallbacks": daemon.delta_fallbacks,
        "full_table_bytes": full_bytes,
        "delta_bytes": delta_bytes,
        "bytes_ratio": round(full_bytes / delta_bytes, 1) if delta_bytes else 0.0,
    }


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


def run_all(sim_seconds: float = 0.5, planner_repeats: int = 3) -> Dict[str, object]:
    backends = bench_dispatch_backends(sim_seconds=sim_seconds)
    dispatch = backends["object"]
    array = backends["array"]
    planner = bench_planner(repeats=planner_repeats)
    regeneration = bench_daemon_regeneration()
    planner_delta = bench_planner_delta()
    transport = bench_plan_transport()
    planner_norm = {
        **planner,
        "plans_per_sec": round(planner["plans"] / planner["wall_s"], 1),
    }
    return {
        "generated_by": "benchmarks/hotpath.py",
        "before": SEED_BASELINE,
        "after": {
            "dispatch": {
                k: dispatch[k] for k in ("events", "wall_s", "events_per_sec")
            },
            "dispatch_array": {
                k: array[k] for k in ("events", "wall_s", "events_per_sec")
            },
            "planner": {
                k: planner_norm[k] for k in ("plans", "wall_s", "plans_per_sec")
            },
            "daemon_regeneration": regeneration,
            "planner_delta": {
                k: planner_delta[k] for k in ("plans", "wall_s", "plans_per_sec")
            },
            "plan_transport": {
                k: transport[k]
                for k in (
                    "pushes",
                    "wall_s",
                    "pushes_per_sec",
                    "delta_pushes",
                    "full_pushes",
                    "full_table_bytes",
                    "delta_bytes",
                    "bytes_ratio",
                )
            },
        },
        "speedup": {
            "dispatch": round(
                dispatch["events_per_sec"]
                / SEED_BASELINE["dispatch"]["events_per_sec"],
                2,
            ),
            "dispatch_array": round(
                array["events_per_sec"]
                / SEED_BASELINE["dispatch"]["events_per_sec"],
                2,
            ),
            "dispatch_array_vs_object": round(
                array["events_per_sec"] / dispatch["events_per_sec"], 2
            ),
            "planner": round(
                planner_norm["plans_per_sec"]
                / SEED_BASELINE["planner"]["plans_per_sec"],
                2,
            ),
            "daemon_regeneration": round(
                regeneration["plans_per_sec"]
                / SEED_BASELINE["daemon_regeneration"]["plans_per_sec"],
                2,
            ),
            # New scenarios (no seed baseline): delta replans measured
            # against this tree's own full-replan burst, and the delta
            # transport's payload-size advantage over a full table.
            "planner_delta_vs_full_burst": round(
                planner_delta["plans_per_sec"] / planner_norm["plans_per_sec"], 2
            ),
            "plan_transport_bytes": transport["bytes_ratio"],
        },
        "fingerprints": {
            "dispatch_trace": dispatch["fingerprint"],
            "dispatch_trace_array": array["fingerprint"],
            "final_plan": planner["fingerprint"],
        },
    }


def main() -> None:
    report = run_all()
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {BENCH_PATH}", file=sys.stderr)


if __name__ == "__main__":
    main()
