"""Benchmarks for the paper's suggested extensions (Secs. 5, 7.1, 7.5).

Quantifies what each optional pass buys: the peephole pass's preemption
reduction, the table cache's speedup for tier-based clouds, and the cost
of split compensation.
"""

import pytest

from conftest import publish

from repro.core import MS, Planner, TableCache, make_vm
from repro.topology import uniform, xeon_16core


def mixed_latency_vms():
    """Mixed latency goals -> mixed periods -> EDF preemptions to remove."""
    vms = []
    for i in range(4):
        vms.append(make_vm(f"tight{i}", 0.2, 2 * MS))
        vms.append(make_vm(f"loose{i}", 0.5, 100 * MS))
    return vms


def test_ablation_peephole_pass(benchmark):
    vms = mixed_latency_vms()

    def run():
        return Planner(uniform(4), peephole=True).plan(vms)

    result = benchmark(run)
    report = result.stats.peephole
    publish(
        "ablation_peephole",
        f"preemptions per table cycle: {report.preemptions_before} -> "
        f"{report.preemptions_after} ({report.swaps_applied} swaps applied, "
        f"{report.swaps_rejected} rejected by deadline validation)",
        benchmark,
    )
    assert report.preemptions_after <= report.preemptions_before


def test_ablation_table_cache_speedup(benchmark):
    """A tier-based cloud replans same-shape censuses constantly; the
    cache turns those replans into O(table) renames (Sec. 7.1)."""
    planner = Planner(xeon_16core())
    cache = TableCache(planner)
    shapes = [
        [make_vm(f"gen{g}vm{i}", 0.25, 20 * MS) for i in range(48)]
        for g in range(6)
    ]
    from repro.core.params import flatten_vcpus

    cache.plan(flatten_vcpus(shapes[0]))  # warm the cache

    def churn():
        for census in shapes[1:]:
            cache.plan(flatten_vcpus(census))

    benchmark(churn)
    publish(
        "ablation_table_cache",
        f"cache hit rate over a 6-generation churn: "
        f"{cache.stats.hit_rate:.0%} (cold plan avoided on every hit)",
        benchmark,
    )
    assert cache.stats.hit_rate > 0.5


def test_ablation_split_compensation_cost(benchmark):
    """Compensating a split vCPU costs the pool a few percent of one
    core — the price Sec. 7.5 says makes migration overhead fair."""
    vms = [make_vm(f"vm{i}", 0.6, 100 * MS) for i in range(3)]

    def run():
        plain = Planner(uniform(2)).plan(vms)
        compensated = Planner(uniform(2), split_compensation=0.05).plan(vms)
        return plain, compensated

    plain, compensated = benchmark.pedantic(run, rounds=1, iterations=1)
    victim = compensated.stats.compensated_vcpus[0]
    extra = (
        compensated.vcpus[victim].utilization - plain.vcpus[victim].utilization
    )
    publish(
        "ablation_split_compensation",
        f"split vCPU {victim} compensated by {extra:.3f} of a core "
        f"(5% of its reservation)",
        benchmark,
    )
    assert extra == pytest.approx(0.03, abs=0.005)
