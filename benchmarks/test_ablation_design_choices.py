"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but measurements that justify its design
decisions with data from this reproduction:

* worst-fit vs first-fit partitioning (Sec. 5 chooses WFD for even load);
* the slice table's O(1) lookup vs binary search (Sec. 6's "O(1)
  dispatch" argument);
* the divisor-constrained period set vs unconstrained maximal periods
  (Sec. 5's "bounding table lengths");
* the second-level scheduler on vs off (Sec. 4's work-conservation).
"""

import random

import pytest

from conftest import publish, sim_seconds

from repro.core import (
    MS,
    Planner,
    first_fit_decreasing,
    make_vm,
    select_period,
    worst_fit_decreasing,
)
from repro.core.periods import all_divisors, hyperperiod_of
from repro.core.tasks import PeriodicTask
from repro.schedulers import TableauScheduler
from repro.sim import Machine, VCpu
from repro.topology import uniform, xeon_16core
from repro.workloads import CpuHog, IoLoop


def random_tasks(count, seed):
    rng = random.Random(seed)
    tasks = []
    for i in range(count):
        period = 1_000_000
        utilization = rng.uniform(0.1, 0.6)
        tasks.append(
            PeriodicTask(name=f"t{i}", cost=int(utilization * period), period=period)
        )
    return tasks


def test_ablation_wfd_spreads_load_better_than_ffd(benchmark):
    def spread_gap():
        wfd_spread, ffd_spread = 0.0, 0.0
        for seed in range(30):
            tasks = random_tasks(12, seed)
            cores = list(range(6))
            wfd_spread += worst_fit_decreasing(tasks, cores).spread()
            ffd_spread += first_fit_decreasing(tasks, cores).spread()
        return wfd_spread / 30, ffd_spread / 30

    wfd, ffd = benchmark(spread_gap)
    publish(
        "ablation_partitioning",
        f"mean max-min core load: WFD {wfd:.3f} vs FFD {ffd:.3f}",
        benchmark,
    )
    assert wfd < ffd  # the paper's rationale for worst-fit


def test_ablation_slice_lookup_is_o1(benchmark):
    """Slice-table lookups cost the same on small and large tables."""
    plan_small = Planner(uniform(1)).plan(
        [make_vm(f"vm{i}", 0.2, 100 * MS) for i in range(4)]
    )
    plan_large = Planner(uniform(1)).plan(
        [make_vm(f"vm{i}", 0.2, 1 * MS) for i in range(4)]
    )
    small_table = plan_small.table.cores[0]
    large_table = plan_large.table.cores[0]
    assert len(large_table.allocations) > 5 * len(small_table.allocations)

    points = list(range(0, 102_702_600, 1_027_027))

    def lookup_all(table):
        for t in points:
            table.lookup(t)

    benchmark(lookup_all, large_table)
    # O(1): the time per lookup must not scale with allocation count;
    # pytest-benchmark records it, and a generous absolute bound guards
    # against accidental linear scans.
    assert benchmark.stats["mean"] / len(points) < 50e-6


def test_ablation_unconstrained_periods_explode_hyperperiod(benchmark):
    """Sec. 5: picking maximal periods per-vCPU (instead of divisors of
    the fixed hyperperiod) can yield astronomically long tables."""

    def compare():
        rng = random.Random(7)
        constrained, unconstrained = [], []
        for _ in range(40):
            utilization = rng.uniform(0.1, 0.9)
            latency = rng.randint(1 * MS, 100 * MS)
            constrained.append(select_period(utilization, latency))
            # Unconstrained: the exact latency-derived bound.
            unconstrained.append(
                max(100_000, int(latency / (2 * (1 - utilization))))
            )
        return hyperperiod_of(constrained), hyperperiod_of(unconstrained)

    constrained_h, unconstrained_h = benchmark(compare)
    publish(
        "ablation_hyperperiod",
        f"table length: divisor-constrained {constrained_h / 1e6:.1f} ms vs "
        f"unconstrained {unconstrained_h / 1e6:.3e} ms",
        benchmark,
    )
    assert constrained_h <= 102_702_600
    assert unconstrained_h > 1_000 * constrained_h


def test_ablation_second_level_scheduler_value(benchmark):
    """Work conservation: disabling the L2 scheduler strands idle cycles
    (the paper's justification for the two-level design, Sec. 4)."""
    duration = int(sim_seconds(quick=0.5, full=10.0) * 1e9)

    def run(work_conserving):
        vms = [make_vm(f"vm{i}", 0.25, 20 * MS) for i in range(8)]
        plan = Planner(uniform(2)).plan(vms)
        sched = TableauScheduler(plan.table, work_conserving=work_conserving)
        machine = Machine(uniform(2), sched, seed=1)
        machine.add_vcpu(VCpu("vm0.vcpu0", CpuHog()))
        for i in range(1, 8):
            machine.add_vcpu(VCpu(f"vm{i}.vcpu0", IoLoop()))
        machine.run(duration)
        return machine.utilization_of("vm0.vcpu0")

    with_l2, without_l2 = benchmark.pedantic(
        lambda: (run(True), run(False)), rounds=1, iterations=1
    )
    publish(
        "ablation_second_level",
        f"hog utilization: L2 on {with_l2:.3f} vs off {without_l2:.3f}",
        benchmark,
    )
    assert without_l2 == pytest.approx(0.25, abs=0.02)  # naive table only
    assert with_l2 > without_l2 + 0.15  # L2 harvests idle slots
