"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.vms == 48
        assert args.utilization == 0.25
        assert args.topology == "16core"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestPlanCommand:
    def test_basic_plan(self, capsys):
        assert main(["plan", "--vms", "8", "--topology", "2"]) == 0
        out = capsys.readouterr().out
        assert "method=partitioned" in out
        assert "worst blackout" in out

    def test_verbose_lists_cores(self, capsys):
        main(["plan", "--vms", "8", "--topology", "2", "--verbose"])
        out = capsys.readouterr().out
        assert "pCPU 0" in out

    def test_custom_parameters_flow_through(self, capsys):
        main(
            [
                "plan",
                "--vms",
                "4",
                "--utilization",
                "0.5",
                "--latency-ms",
                "10",
                "--topology",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert "goal 10.0ms" in out


class TestDelayCommand:
    def test_intrinsic_probe_runs(self, capsys):
        assert main(["delay", "--probe", "intrinsic", "--seconds", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "tableau" in out
        assert "max" in out

    def test_ping_probe_runs(self, capsys):
        assert main(
            ["delay", "--probe", "ping", "--seconds", "0.3", "--uncapped"]
        ) == 0
        out = capsys.readouterr().out
        assert "credit2" in out  # uncapped matrix includes credit2


class TestWebCommand:
    def test_single_operating_point(self, capsys):
        assert main(["web", "--rate", "200", "--seconds", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "req/s" in out
        assert "p99" in out


class TestScalingCommand:
    def test_runs_full_sweep(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "gen (s)" in out
        assert "176" in out


class TestServeCommand:
    ARGS = [
        "serve", "--seconds", "60", "--topology", "8",
        "--population", "12",
    ]

    def test_summary_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "service[tableau]" in out
        assert "batching:" in out
        assert "replan latency:" in out

    def test_json_report_is_deterministic(self, capsys, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(self.ARGS + ["--report", str(first)]) == 0
        assert main(self.ARGS + ["--json", "--report", str(second)]) == 0
        stdout = capsys.readouterr().out
        assert first.read_bytes() == second.read_bytes()
        assert second.read_text() in stdout  # --json prints the report

    def test_hours_flag_overrides_seconds(self, capsys):
        args = [a for a in self.ARGS if a not in ("--seconds", "60")]
        assert main(args + ["--hours", "0.01", "--arrival-rate", "2"]) == 0
        out = capsys.readouterr().out
        assert "36s simulated" in out


class TestServeCrashRecovery:
    ARGS = [
        "serve", "--seconds", "20", "--topology", "8",
        "--population", "10", "--arrival-rate", "6", "--json",
    ]

    def test_crash_then_recover_is_byte_identical(self, capsys, tmp_path):
        wal = str(tmp_path / "wal.bin")
        assert main(self.ARGS) == 0
        reference = capsys.readouterr().out

        # The armed crashpoint kills the run: exit 3, journal durable.
        code = main(
            self.ARGS
            + ["--journal", wal, "--crash-plan", "service.commit@2"]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "simulated crash at service.commit" in captured.err

        assert main(self.ARGS + ["--journal", wal, "--recover"]) == 0
        assert capsys.readouterr().out == reference

    def test_populated_journal_without_recover_is_refused(
        self, capsys, tmp_path
    ):
        wal = str(tmp_path / "wal.bin")
        main(
            self.ARGS
            + ["--journal", wal, "--crash-plan", "service.admit@5"]
        )
        capsys.readouterr()
        code = main(self.ARGS + ["--journal", wal])
        captured = capsys.readouterr()
        assert code == 2
        assert "--recover" in captured.err

    def test_crash_flags_require_a_journal(self, capsys):
        assert main(self.ARGS + ["--recover"]) == 2
        assert main(self.ARGS + ["--crash-plan", "service.admit"]) == 2
        assert "require --journal" in capsys.readouterr().err


class TestFsckCommand:
    def _warm_store(self, tmp_path):
        store = str(tmp_path / "store")
        assert (
            main(
                [
                    "serve", "--seconds", "20", "--topology", "8",
                    "--population", "10", "--store", store,
                ]
            )
            == 0
        )
        return store

    def test_clean_store_exits_zero(self, capsys, tmp_path):
        store = self._warm_store(tmp_path)
        capsys.readouterr()
        assert main(["fsck", store]) == 0
        out = capsys.readouterr().out
        assert "store clean" in out

    def test_damaged_store_quarantines_and_exits_one(
        self, capsys, tmp_path
    ):
        from pathlib import Path

        store = self._warm_store(tmp_path)
        entry = next(Path(store).rglob("*.plan"))
        entry.write_bytes(b"garbage")
        capsys.readouterr()
        assert main(["fsck", store, "--json"]) == 1
        out = capsys.readouterr().out
        assert '"clean": false' in out
        assert '"quarantined": 1' in out
        # The damage was repaired: a second pass is clean.
        assert main(["fsck", store]) == 0
