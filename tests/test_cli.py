"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.vms == 48
        assert args.utilization == 0.25
        assert args.topology == "16core"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestPlanCommand:
    def test_basic_plan(self, capsys):
        assert main(["plan", "--vms", "8", "--topology", "2"]) == 0
        out = capsys.readouterr().out
        assert "method=partitioned" in out
        assert "worst blackout" in out

    def test_verbose_lists_cores(self, capsys):
        main(["plan", "--vms", "8", "--topology", "2", "--verbose"])
        out = capsys.readouterr().out
        assert "pCPU 0" in out

    def test_custom_parameters_flow_through(self, capsys):
        main(
            [
                "plan",
                "--vms",
                "4",
                "--utilization",
                "0.5",
                "--latency-ms",
                "10",
                "--topology",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert "goal 10.0ms" in out


class TestDelayCommand:
    def test_intrinsic_probe_runs(self, capsys):
        assert main(["delay", "--probe", "intrinsic", "--seconds", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "tableau" in out
        assert "max" in out

    def test_ping_probe_runs(self, capsys):
        assert main(
            ["delay", "--probe", "ping", "--seconds", "0.3", "--uncapped"]
        ) == 0
        out = capsys.readouterr().out
        assert "credit2" in out  # uncapped matrix includes credit2


class TestWebCommand:
    def test_single_operating_point(self, capsys):
        assert main(["web", "--rate", "200", "--seconds", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "req/s" in out
        assert "p99" in out


class TestScalingCommand:
    def test_runs_full_sweep(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "gen (s)" in out
        assert "176" in out


class TestServeCommand:
    ARGS = [
        "serve", "--seconds", "60", "--topology", "8",
        "--population", "12",
    ]

    def test_summary_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "service[tableau]" in out
        assert "batching:" in out
        assert "replan latency:" in out

    def test_json_report_is_deterministic(self, capsys, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(self.ARGS + ["--report", str(first)]) == 0
        assert main(self.ARGS + ["--json", "--report", str(second)]) == 0
        stdout = capsys.readouterr().out
        assert first.read_bytes() == second.read_bytes()
        assert second.read_text() in stdout  # --json prints the report

    def test_hours_flag_overrides_seconds(self, capsys):
        args = [a for a in self.ARGS if a not in ("--seconds", "60")]
        assert main(args + ["--hours", "0.01", "--arrival-rate", "2"]) == 0
        out = capsys.readouterr().out
        assert "36s simulated" in out
