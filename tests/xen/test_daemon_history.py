"""Bounded daemon history: memory-flat audit rings, exact counters.

Regression tests for the unbounded-growth fix: before it,
``PlannerDaemon.history`` and ``push_backoffs_ns`` were plain lists that
grew one entry per replan forever — a persistent scheduler-as-a-service
control plane replanning every couple of simulated seconds would leak
without bound.  These tests fail on that code (``len(history)`` equals
the replan count instead of the ring limit).
"""

import sys

import pytest

from repro.core import MS, Planner, make_vm
from repro.errors import TablePushError
from repro.faults import FaultPlan
from repro.schedulers import TableauScheduler
from repro.topology import uniform
from repro.xen import STATUS_COMMITTED, TableHypercall
from repro.xen.daemon import PlannerDaemon


def census(n=4, utilization=0.2):
    return [make_vm(f"vm{i}", utilization, 20 * MS) for i in range(n)]


def canned_daemon(**kwargs):
    """A daemon whose planning step is a canned constant-time result.

    Lets the tests drive tens of thousands of replans without paying for
    real table generation; the daemon's bookkeeping paths are exercised
    unchanged.
    """
    daemon = PlannerDaemon(uniform(2), **kwargs)
    result = daemon.planner.plan(census())
    daemon.planner.plan = lambda specs: result  # type: ignore[method-assign]
    if daemon.cache is not None:
        daemon.cache.planner.plan = lambda specs: result  # type: ignore
    return daemon


class TestBoundedHistory:
    def test_history_is_capped_at_limit(self):
        daemon = canned_daemon(history_limit=64)
        for i in range(1_000):
            daemon.replan(census(), reason=f"churn {i}")
        assert len(daemon.history) == 64
        assert daemon.total_replans == 1_000
        assert daemon.committed_replans == 1_000
        assert daemon.failed_replans == 0

    def test_ring_keeps_most_recent_episodes(self):
        daemon = canned_daemon(history_limit=8)
        for i in range(20):
            daemon.replan(census(), reason=f"churn {i}")
        assert [r.reason for r in daemon.history] == [
            f"churn {i}" for i in range(12, 20)
        ]

    def test_counters_exact_across_eviction_with_failures(self):
        faults = FaultPlan.persistent_push_failure()
        topo = uniform(2)
        boot = Planner(topo).plan(census())
        sched = TableauScheduler(boot.table)
        hypercall = TableHypercall(sched)
        daemon = PlannerDaemon(topo, hypercall, history_limit=4, push_retries=0)
        result = daemon.planner.plan(census())
        daemon.planner.plan = lambda specs: result  # type: ignore[method-assign]
        for i in range(30):
            if i % 3 == 2:
                hypercall.faults = faults
                with pytest.raises(TablePushError):
                    daemon.replan(census(), reason=f"churn {i}")
                hypercall.faults = None
            else:
                daemon.replan(census(), reason=f"churn {i}")
        assert daemon.total_replans == 30
        assert daemon.committed_replans == 20
        assert daemon.failed_replans == 10
        assert len(daemon.history) == 4

    def test_memory_footprint_flat_across_100k_replans(self):
        """The audit rings do not grow with the replan count.

        Byte-level check: after 100k replans the containers' allocated
        sizes are no larger than right after the ring first filled (a
        rotating deque may *consolidate* blocks, never accrete them) —
        flat memory, not merely "less than unbounded".  On the pre-fix
        list-backed daemon, ``len(history)`` is 100_000 here and the
        byte size is ~400x the warm size.
        """
        daemon = canned_daemon(history_limit=256)
        for i in range(256):
            daemon.replan(census(), reason="warm")
        warm_history = sys.getsizeof(daemon.history)
        warm_backoffs = sys.getsizeof(daemon.push_backoffs_ns)
        for i in range(100_000 - 256):
            daemon.replan(census(), reason="steady")
        assert daemon.total_replans == 100_000
        assert len(daemon.history) == 256
        assert sys.getsizeof(daemon.history) <= warm_history
        assert sys.getsizeof(daemon.push_backoffs_ns) <= warm_backoffs
        assert daemon.history[-1].status == STATUS_COMMITTED
