"""Tests for the daemon's caching and split-rotation extensions."""

import pytest

from repro.core import MS, make_vm
from repro.topology import uniform
from repro.xen import PlannerDaemon


def specs(prefix, count=8, utilization=0.25):
    return [make_vm(f"{prefix}{i}", utilization, 20 * MS) for i in range(count)]


class TestDaemonCache:
    def test_same_shape_census_hits_cache(self):
        daemon = PlannerDaemon(uniform(2), cache=True)
        daemon.replan(specs("web"), reason="boot")
        daemon.replan(specs("db"), reason="rename-church")
        assert daemon.cache.stats.hits == 1

    def test_cached_plan_covers_new_names(self):
        daemon = PlannerDaemon(uniform(2), cache=True)
        daemon.replan(specs("web"), reason="boot")
        result = daemon.replan(specs("db"), reason="swap")
        assert set(result.vcpus) == {f"db{i}.vcpu0" for i in range(8)}
        for name in result.vcpus:
            assert result.table.utilization_of(name) == pytest.approx(
                0.25, abs=1e-3
            )

    def test_cache_disabled_by_default(self):
        daemon = PlannerDaemon(uniform(2))
        assert daemon.cache is None


class TestSplitRotation:
    def _split_specs(self):
        # Three 0.6 VMs on two cores: one must be split.
        return [make_vm(f"vm{i}", 0.6, 100 * MS) for i in range(3)]

    def test_rotation_moves_the_split_victim(self):
        daemon = PlannerDaemon(uniform(2))
        victims = set()
        plan = daemon.replan(self._split_specs(), reason="boot")
        victims.add(next(n for n in plan.vcpus if plan.table.is_split(n)))
        for _ in range(4):
            plan = daemon.rotate_table(self._split_specs())
            victims.add(next(n for n in plan.vcpus if plan.table.is_split(n)))
        # Over a few rotations, more than one VM takes the penalty.
        assert len(victims) >= 2

    def test_rotation_preserves_guarantees(self):
        daemon = PlannerDaemon(uniform(2))
        daemon.replan(self._split_specs(), reason="boot")
        plan = daemon.rotate_table(self._split_specs())
        for name in plan.vcpus:
            assert plan.table.utilization_of(name) == pytest.approx(
                0.6, abs=1e-3
            )
            assert plan.table.max_blackout_ns(name) <= 100 * MS

    def test_rotation_recorded_in_history(self):
        daemon = PlannerDaemon(uniform(2))
        daemon.replan(self._split_specs(), reason="boot")
        daemon.rotate_table(self._split_specs())
        assert daemon.history[-1].reason == "rotate split victim"
