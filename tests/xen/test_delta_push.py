"""The delta table push: changed per-core columns only (zero-copy).

Covers both ends of the 'TBLD' transport: the hypercall's validation
and base-token protocol, and the daemon's eligibility gating plus the
mismatch → full-push fallback.
"""

import pytest

from repro.core import MS, CensusDelta, Planner, make_vm, serialize
from repro.core.serialize import serialize_delta
from repro.core.table import SystemTable
from repro.errors import TableDeltaMismatchError, TableFormatError
from repro.faults import FaultPlan
from repro.schedulers import TableauScheduler
from repro.topology import uniform, xeon_16core
from repro.xen import PlannerDaemon, TableHypercall


def census(count, prefix="vm"):
    return [make_vm(f"{prefix}{i:02d}", 0.25, 20 * MS) for i in range(count)]


def build_daemon(topo=None):
    topo = topo or uniform(4)
    sched = TableauScheduler(SystemTable(length_ns=MS, cores={}))
    hypercall = TableHypercall(sched)
    return PlannerDaemon(topo, hypercall=hypercall), hypercall, sched


class TestHypercallDeltaProtocol:
    def test_delta_before_any_push_is_a_mismatch(self):
        _, hypercall, _ = build_daemon()
        plan = Planner(uniform(4)).plan(census(4))
        payload = serialize_delta(plan.table, [], 0)
        with pytest.raises(TableDeltaMismatchError, match="no previously pushed"):
            hypercall.push_table_delta(payload)
        assert not hypercall.pushes  # nothing staged

    def test_stale_base_token_rejected(self):
        daemon, hypercall, _ = build_daemon()
        daemon.replan(census(4), "boot")
        plan = daemon.current_plan
        stale = serialize_delta(plan.table, [], hypercall.delta_generation - 1)
        with pytest.raises(TableDeltaMismatchError, match="base token"):
            hypercall.push_table_delta(stale)

    def test_length_mismatch_rejected(self):
        daemon, hypercall, _ = build_daemon()
        daemon.replan(census(4), "boot")
        other = Planner(uniform(4), hyperperiod_ns=200 * MS).plan(
            [make_vm("odd", 0.3, 30 * MS)]
        )
        assert other.table.length_ns != daemon.current_plan.table.length_ns
        payload = serialize_delta(other.table, [], hypercall.delta_generation)
        with pytest.raises(TableDeltaMismatchError, match="length"):
            hypercall.push_table_delta(payload)

    def test_unknown_core_rejected(self):
        daemon, hypercall, _ = build_daemon()
        daemon.replan(census(4), "boot")
        base = daemon.current_plan.table
        ghost_cpu = max(base.cores) + 17
        ghost = SystemTable(
            length_ns=base.length_ns,
            cores=dict(base.cores),
        )
        # Hand-build a delta naming a core the base does not have.
        donor_cpu = next(iter(base.cores))
        donor = base.cores[donor_cpu]
        ghost.cores[ghost_cpu] = donor
        payload = serialize_delta(ghost, [ghost_cpu], hypercall.delta_generation)
        with pytest.raises(TableDeltaMismatchError, match="absent from the base"):
            hypercall.push_table_delta(payload)

    def test_successful_delta_shares_unchanged_cores(self):
        daemon, hypercall, sched = build_daemon(xeon_16core())
        vms = census(44)
        daemon.replan(vms, "boot")
        base_staged = hypercall.staged_table
        daemon.replan(vms + [make_vm("vm44", 0.25, 20 * MS)], "create")
        record = daemon.history[-1].push
        assert record.delta
        staged = hypercall.staged_table
        changed = set(daemon.current_plan.stats.changed_cores or ())
        assert changed  # the create really did repack something
        for cpu, core in staged.cores.items():
            if cpu not in changed:
                assert core is base_staged.cores[cpu]

    def test_zero_core_delta_for_identical_replan(self):
        daemon, hypercall, _ = build_daemon(xeon_16core())
        vms = census(44)
        daemon.replan(vms, "boot")
        full_bytes = daemon.history[-1].push.table_bytes
        daemon.replan(vms, "regen")
        record = daemon.history[-1].push
        assert record.delta
        assert record.table_bytes < full_bytes // 4

    def test_generation_token_advances_per_push(self):
        daemon, hypercall, _ = build_daemon()
        daemon.replan(census(4), "boot")
        daemon.replan(census(5), "grow")
        daemon.replan(census(5), "noop")
        assert hypercall.delta_generation == 3
        assert len(hypercall.pushes) == 3

    def test_corrupt_delta_payload_is_a_format_error(self):
        daemon, hypercall, _ = build_daemon()
        daemon.replan(census(4), "boot")
        plan = daemon.current_plan
        payload = serialize_delta(plan.table, [], hypercall.delta_generation)
        garbled = b"TBLX" + payload[4:]
        with pytest.raises(TableFormatError):
            hypercall.push_table_delta(garbled)


class TestDaemonDeltaGating:
    def test_boot_push_is_full(self):
        daemon, _, _ = build_daemon()
        daemon.replan(census(4), "boot")
        assert daemon.full_pushes == 1
        assert daemon.delta_pushes == 0
        assert not daemon.history[-1].push.delta

    def test_small_change_travels_as_delta(self):
        daemon, _, _ = build_daemon(xeon_16core())
        vms = census(44)
        daemon.replan(vms, "boot")
        daemon.replan(vms + [make_vm("vm44", 0.25, 20 * MS)], "create")
        assert daemon.delta_pushes == 1
        assert daemon.delta_fallbacks == 0

    def test_semi_partitioned_plan_forces_full_push(self):
        daemon, _, _ = build_daemon(uniform(2))
        awkward = [make_vm(f"vm{i}", 0.6, 100 * MS) for i in range(3)]
        daemon.replan(awkward[:2], "boot")
        daemon.replan(awkward, "grow")  # escalates to semi-partitioning
        assert daemon.delta_pushes == 0
        assert daemon.full_pushes == 2

    def test_peephole_planner_forces_full_push(self):
        topo = uniform(4)
        sched = TableauScheduler(SystemTable(length_ns=MS, cores={}))
        hypercall = TableHypercall(sched)
        daemon = PlannerDaemon(topo, hypercall=hypercall, peephole=True)
        vms = census(8)
        daemon.replan(vms, "boot")
        daemon.replan(vms + [make_vm("vm99", 0.25, 20 * MS)], "create")
        assert daemon.delta_pushes == 0
        assert daemon.full_pushes == 2

    def test_stale_base_falls_back_to_full_push(self):
        daemon, hypercall, _ = build_daemon(xeon_16core())
        vms = census(44)
        daemon.replan(vms, "boot")
        # Another writer advances the generation behind the daemon.
        hypercall.push_system_table(daemon.current_plan.table)
        daemon.replan(vms + [make_vm("vm44", 0.25, 20 * MS)], "create")
        assert daemon.delta_fallbacks == 1
        assert daemon.full_pushes == 2
        assert daemon.history[-1].committed
        # Re-synced: the next incremental change deltas again.
        daemon.replan(vms, "destroy")
        assert daemon.delta_pushes == 1

    def test_delta_and_full_tables_dispatch_identically(self):
        # The staged table assembled from a delta must equal the one a
        # full push of the same plan would install.
        daemon, hypercall, _ = build_daemon(xeon_16core())
        vms = census(44)
        daemon.replan(vms, "boot")
        grown = vms + [make_vm("vm44", 0.25, 20 * MS)]
        daemon.replan(grown, "create")
        staged = hypercall.staged_table
        scratch = Planner(xeon_16core()).plan(grown)
        assert staged.length_ns == scratch.table.length_ns
        assert set(staged.cores) == set(scratch.table.cores)
        for cpu, core in scratch.table.cores.items():
            assert staged.cores[cpu].allocations == core.allocations
        staged.validate()


class TestDeltaPlannerIntegration:
    def test_census_delta_replan_pushes_only_changed_columns(self):
        # End-to-end: CensusDelta at the planner, 'TBLD' on the wire.
        daemon, hypercall, _ = build_daemon(xeon_16core())
        vms = census(44)
        daemon.replan(vms, "boot")
        planner = daemon.planner
        delta_result = planner.plan(
            CensusDelta(create=[make_vm("vm44", 0.25, 20 * MS)])
        )
        changed = delta_result.stats.changed_cores
        assert changed is not None and len(changed) >= 1
        payload = serialize_delta(
            delta_result.table, changed, hypercall.delta_generation
        )
        full = serialize(delta_result.table)
        assert len(payload) < len(full) // 4
        record = hypercall.push_table_delta(payload)
        assert record.delta
