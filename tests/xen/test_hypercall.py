"""Tests for the table-push hypercall and lock-free table switches."""

import pytest

from repro.core import MS, Planner, make_vm, serialize
from repro.errors import TableFormatError
from repro.schedulers import TableauScheduler
from repro.sim import Machine, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog, IntrinsicLatencyProbe
from repro.xen import TableHypercall


def build(num_vms=2, cores=1):
    vms = [make_vm(f"vm{i}", 0.25, 20 * MS, capped=True) for i in range(num_vms)]
    plan = Planner(uniform(cores)).plan(vms)
    sched = TableauScheduler(plan.table)
    machine = Machine(uniform(cores), sched, seed=1)
    return plan, sched, machine


class TestPushValidation:
    def test_valid_push_staged(self):
        plan, sched, machine = build()
        hypercall = TableHypercall(sched)
        new_plan = Planner(uniform(1)).plan(
            [make_vm(f"vm{i}", 0.25, 20 * MS, capped=True) for i in range(2)]
        )
        record = hypercall.push_table(serialize(new_plan.table))
        assert record.activation_cycle >= 1
        assert hypercall.pushes

    def test_garbage_payload_rejected(self):
        _, sched, _ = build()
        hypercall = TableHypercall(sched)
        with pytest.raises(TableFormatError):
            hypercall.push_table(b"garbage bytes here")
        assert not hypercall.pushes  # nothing staged

    def test_rejected_push_does_not_disturb_dispatcher(self):
        plan, sched, machine = build()
        hypercall = TableHypercall(sched)
        try:
            hypercall.push_table(b"\x00" * 64)
        except TableFormatError:
            pass
        assert sched.table is plan.table


class TestActivationTiming:
    def test_push_early_in_cycle_activates_next_wrap(self):
        plan, sched, machine = build()
        hypercall = TableHypercall(sched)
        machine.add_vcpu(VCpu("vm0.vcpu0", CpuHog(), capped=True))
        machine.add_vcpu(VCpu("vm1.vcpu0", CpuHog(), capped=True))
        length = plan.table.length_ns
        machine.run(length // 4)  # first quarter of cycle 0
        record = hypercall.push_system_table(plan.table)
        assert record.activation_cycle == 1

    def test_push_late_in_cycle_defers_one_extra_wrap(self):
        # Sec 6: "tables are never set during or close to a table wrap".
        plan, sched, machine = build()
        hypercall = TableHypercall(sched)
        machine.add_vcpu(VCpu("vm0.vcpu0", CpuHog(), capped=True))
        machine.add_vcpu(VCpu("vm1.vcpu0", CpuHog(), capped=True))
        length = plan.table.length_ns
        machine.run(length - length // 10)  # last tenth of cycle 0
        record = hypercall.push_system_table(plan.table)
        assert record.activation_cycle == 2

    def test_switch_happens_and_is_counted(self):
        plan, sched, machine = build()
        hypercall = TableHypercall(sched)
        machine.add_vcpu(VCpu("vm0.vcpu0", CpuHog(), capped=True))
        machine.add_vcpu(VCpu("vm1.vcpu0", CpuHog(), capped=True))
        machine.run(10 * MS)
        new_plan = Planner(uniform(1)).plan(
            [make_vm(f"vm{i}", 0.25, 20 * MS, capped=True) for i in range(2)]
        )
        hypercall.push_system_table(new_plan.table)
        machine.run(3 * plan.table.length_ns)
        assert sched.table_switches == 1

    def test_guarantees_hold_across_push(self):
        plan, sched, machine = build()
        hypercall = TableHypercall(sched)
        probe = IntrinsicLatencyProbe()
        machine.add_vcpu(VCpu("vm0.vcpu0", probe, capped=True))
        machine.add_vcpu(VCpu("vm1.vcpu0", CpuHog(), capped=True))
        machine.run(50 * MS)
        hypercall.push_system_table(plan.table)
        machine.run(400 * MS)
        assert probe.max_gap_ns <= 20 * MS

    def test_old_tables_garbage_collected(self):
        plan, sched, machine = build()
        hypercall = TableHypercall(sched)
        for _ in range(5):
            hypercall.push_system_table(plan.table)
        assert hypercall.retired_table_count <= 2
