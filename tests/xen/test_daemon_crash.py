"""The daemon.replan.mid-retry crashpoint: dying inside the bounded
push-retry loop loses the whole uncommitted episode."""

import pytest

from repro.core import MS, Planner, make_vm
from repro.crashpoints import CRASH_DAEMON_MID_RETRY
from repro.faults import CrashPlan, FaultPlan, SimulatedCrash, crashes_armed
from repro.schedulers import TableauScheduler
from repro.topology import uniform
from repro.xen import STATUS_COMMITTED, TableHypercall
from repro.xen.daemon import PlannerDaemon


def census(n=4, utilization=0.2):
    return [make_vm(f"vm{i}", utilization, 20 * MS) for i in range(n)]


def stack(faults=None, cores=2):
    boot = Planner(uniform(cores)).plan(census())
    sched = TableauScheduler(boot.table)
    hypercall = TableHypercall(sched, faults=faults)
    daemon = PlannerDaemon(uniform(cores), hypercall)
    return daemon, hypercall


class TestMidRetryCrash:
    def test_crash_in_retry_loop_loses_the_episode(self):
        # A transient push failure puts the daemon into its retry
        # branch; the armed crashpoint kills it there, before commit.
        daemon, hypercall = stack(
            faults=FaultPlan.transient_push_failure(calls=(1,))
        )
        plan = CrashPlan.at(CRASH_DAEMON_MID_RETRY, call=1)
        with crashes_armed(plan):
            with pytest.raises(SimulatedCrash) as exc:
                daemon.replan(census(), reason="create")
        assert exc.value.point == CRASH_DAEMON_MID_RETRY
        # Nothing committed: no plan, no history record, no backoff
        # charge — the episode evaporated exactly as process death
        # would leave it.
        assert daemon.current_plan is None
        assert len(daemon.history) == 0
        assert daemon.total_push_backoff_ns == 0
        assert list(daemon.push_backoffs_ns) == []
        assert daemon.committed_replans == 0

    def test_crash_unwinds_through_the_retry_handler(self):
        # SimulatedCrash is a BaseException: the daemon's own
        # `except TablePushError` must not absorb it into a
        # STATUS_PUSH_FAILED record.
        daemon, _ = stack(
            faults=FaultPlan.transient_push_failure(calls=(1,))
        )
        plan = CrashPlan.at(CRASH_DAEMON_MID_RETRY, call=1)
        with crashes_armed(plan):
            with pytest.raises(SimulatedCrash):
                daemon.replan(census(), reason="create")
        assert daemon.failed_replans == 0

    def test_rebuilt_daemon_rerun_matches_uninterrupted(self):
        # The crash-consistency contract: re-running the episode on a
        # fresh daemon (the restarted process) produces exactly the
        # state an uninterrupted retry would have.
        reference, _ = stack(
            faults=FaultPlan.transient_push_failure(calls=(1,))
        )
        reference.replan(census(), reason="create")

        crashed, _ = stack(
            faults=FaultPlan.transient_push_failure(calls=(1,))
        )
        with crashes_armed(CrashPlan.at(CRASH_DAEMON_MID_RETRY, call=1)):
            with pytest.raises(SimulatedCrash):
                crashed.replan(census(), reason="create")
        rebuilt, _ = stack()  # transient fault already consumed pre-crash
        rebuilt.replan(census(), reason="create")

        ref_record = reference.history[-1]
        new_record = rebuilt.history[-1]
        assert ref_record.status == new_record.status == STATUS_COMMITTED
        assert rebuilt.current_plan is not None
        assert rebuilt.committed_replans == reference.committed_replans

    def test_uninterrupted_retry_still_commits(self):
        # Control: with no crash plan armed the same fault schedule
        # commits after one retry (the crashpoint is inert).
        daemon, _ = stack(
            faults=FaultPlan.transient_push_failure(calls=(1,))
        )
        daemon.replan(census(), reason="create")
        assert daemon.history[-1].status == STATUS_COMMITTED
        assert daemon.history[-1].push_retries == 1
