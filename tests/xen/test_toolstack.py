"""Tests for the Xen control-plane model (toolstack, daemon, domains)."""

import pytest

from repro.core import MS
from repro.errors import AdmissionError, ConfigurationError
from repro.topology import uniform
from repro.xen import DomainState, Toolstack
from repro.xen.domain import DomainRegistry
from repro.core.params import make_vm


class TestDomainRegistry:
    def test_domids_monotonic_from_one(self):
        registry = DomainRegistry()
        a = registry.add(make_vm("a", 0.2, 10 * MS))
        b = registry.add(make_vm("b", 0.2, 10 * MS))
        assert (a.domid, b.domid) == (1, 2)

    def test_duplicate_rejected(self):
        registry = DomainRegistry()
        registry.add(make_vm("a", 0.2, 10 * MS))
        with pytest.raises(ConfigurationError):
            registry.add(make_vm("a", 0.2, 10 * MS))

    def test_remove_marks_shutdown(self):
        registry = DomainRegistry()
        registry.add(make_vm("a", 0.2, 10 * MS))
        domain = registry.remove("a")
        assert domain.state is DomainState.SHUTDOWN
        assert "a" not in registry

    def test_remove_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            DomainRegistry().remove("ghost")

    def test_domids_not_reused(self):
        registry = DomainRegistry()
        registry.add(make_vm("a", 0.2, 10 * MS))
        registry.remove("a")
        b = registry.add(make_vm("b", 0.2, 10 * MS))
        assert b.domid == 2


class TestToolstack:
    def test_create_triggers_replan(self):
        ts = Toolstack(uniform(4))
        ts.create_vm("web", 0.25, 20 * MS)
        assert ts.daemon.total_replans == 1
        assert ts.current_plan is not None
        assert "web.vcpu0" in ts.current_plan.vcpus

    def test_destroy_triggers_replan(self):
        ts = Toolstack(uniform(4))
        ts.create_vm("web", 0.25, 20 * MS)
        ts.create_vm("db", 0.25, 20 * MS)
        ts.destroy_vm("web")
        assert ts.domain_count() == 1
        assert "web.vcpu0" not in ts.current_plan.vcpus

    def test_admission_failure_leaves_registry_unchanged(self):
        ts = Toolstack(uniform(1))
        ts.create_vm("a", 0.6, 50 * MS)
        with pytest.raises(AdmissionError):
            ts.create_vm("b", 0.6, 50 * MS)
        assert ts.domain_count() == 1
        # Current plan still describes only the admitted domain.
        assert set(ts.current_plan.vcpus) == {"a.vcpu0"}

    def test_reconfigure_changes_reservation(self):
        ts = Toolstack(uniform(2))
        ts.create_vm("web", 0.25, 20 * MS)
        ts.reconfigure_vm("web", 0.5, 10 * MS)
        vcpu = ts.current_plan.vcpus["web.vcpu0"]
        assert vcpu.utilization == 0.5
        assert vcpu.latency_ns == 10 * MS

    def test_reconfigure_rolls_back_on_admission_failure(self):
        ts = Toolstack(uniform(1))
        ts.create_vm("a", 0.5, 50 * MS)
        ts.create_vm("b", 0.4, 50 * MS)
        with pytest.raises(AdmissionError):
            ts.reconfigure_vm("b", 0.9, 50 * MS)
        assert ts.registry.get("b").spec.vcpus[0].utilization == 0.4
        assert ts.current_plan.vcpus["b.vcpu0"].utilization == 0.4

    def test_provisioning_reports_attribute_planning_time(self):
        ts = Toolstack(uniform(4))
        ts.create_vm("web", 0.25, 20 * MS)
        report = ts.reports[-1]
        assert report.operation == "create"
        assert report.planning_ns > 0
        assert 0 < report.planning_share < 1

    def test_planning_cheap_relative_to_xen_create(self):
        # Sec 7.1's argument: planning delay is small next to the many 
        # seconds a Xen domain build takes.
        ts = Toolstack(uniform(8))
        for i in range(16):
            ts.create_vm(f"vm{i}", 0.25, 20 * MS)
        report = ts.reports[-1]
        assert report.planning_share < 0.5

    def test_multi_vcpu_domain(self):
        ts = Toolstack(uniform(4))
        ts.create_vm("smp", 0.25, 20 * MS, vcpu_count=4)
        assert len(ts.current_plan.vcpus) == 4
