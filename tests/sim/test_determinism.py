"""Same-seed simulations must be bit-identical, trace and all.

The perf harness (``benchmarks/hotpath.py``) relies on this property to
prove optimizations change no simulated behavior: its before/after
comparison hashes the full trace.  This test pins the property at the
machine level — not just final runtimes, but every dispatch record,
every operation count, and the exact accumulated overheads.
"""

from repro.core import MS, Planner, make_vm
from repro.schedulers import TableauScheduler
from repro.sim import Machine, Tracer, VCpu
from repro.topology import uniform
from repro.workloads import IoLoop


def full_trace(seed):
    plan = Planner(uniform(2)).plan(
        [make_vm(f"vm{i}", 0.25, 20 * MS, capped=False) for i in range(4)]
    )
    tracer = Tracer(keep_dispatches=True)
    machine = Machine(
        uniform(2), TableauScheduler(plan.table), seed=seed, tracer=tracer
    )
    for name in plan.vcpus:
        machine.add_vcpu(VCpu(name, IoLoop(), capped=False))
    machine.run(200 * MS)
    return {
        "dispatches": [
            (d.time, d.cpu, d.vcpu, d.level) for d in tracer.dispatches
        ],
        "ops": {
            op: (stats.count, stats.total_ns, stats.max_ns)
            for op, stats in tracer.ops.items()
        },
        "context_switches": tracer.context_switches,
        "migrations": tracer.migrations,
        "runtimes": {n: v.runtime_ns for n, v in machine.vcpus.items()},
        "overhead_ns": machine.total_overhead_ns(),
        "now": machine.engine.now,
        "pending": machine.engine.pending_events,
    }


class TestFullTraceDeterminism:
    def test_identical_seeds_produce_identical_traces(self):
        assert full_trace(7) == full_trace(7)

    def test_different_seeds_diverge(self):
        assert full_trace(7)["dispatches"] != full_trace(8)["dispatches"]
