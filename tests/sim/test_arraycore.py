"""Differential backend suite: the array engine is bit-identical.

The array dispatch backend (``repro.sim.arraycore``) is a pure
performance substitution — ISSUE 6's acceptance bar is that every
observable simulation output matches the object engine *bit for bit*:
trace fingerprints, event counts, per-vCPU utilization, and overhead
accounting.  This suite sweeps the scheduler x seed grid fault-free,
then the regimes where the array engine must *fall back* per call
rather than diverge: the full chaos runtime preset (skew and timer
faults, lost/delayed IPIs, stuck guests) and health-supervised
degraded-mode dispatch after a corrupted table switch.
"""

import hashlib

import pytest

from repro.experiments.scenarios import build_scenario
from repro.faults.plan import (
    SITE_IPI_LOST,
    SITE_TABLE_SWITCH,
    FaultPlan,
    FaultSpec,
    runtime_preset,
)
from repro.health import run_chaos
from repro.sim.arraycore import ENGINES, ArrayMachine, ArrayTracer
from repro.sim.machine import Machine
from repro.sim.tracing import Tracer
from repro.topology import uniform
from repro.workloads import IoLoop

SCHEDULERS = ("tableau", "credit", "credit2", "rtds")
SEEDS = (42, 43, 101)


def trace_fingerprint(tracer):
    """Order-sensitive digest of the full dispatch trace."""
    digest = hashlib.sha256()
    for record in tracer.dispatches:
        digest.update(
            f"{record.time}|{record.cpu}|{record.vcpu}|{record.level}\n".encode()
        )
    return digest.hexdigest()


def observables(machine):
    """Everything the simulation produced that experiments consume."""
    return {
        "events": machine.engine.events_processed,
        "now": machine.engine.now,
        "trace": trace_fingerprint(machine.tracer),
        "context_switches": machine.tracer.context_switches,
        "migrations": machine.tracer.migrations,
        "overhead_ns": machine.total_overhead_ns(),
        "utilization": {
            name: vcpu.runtime_ns for name, vcpu in machine.vcpus.items()
        },
    }


def run_cell(scheduler, seed, engine):
    scenario = build_scenario(
        scheduler,
        vantage_workload=IoLoop(),
        capped=(scheduler == "rtds"),
        background="io",
        topology=uniform(4),
        num_vms=8,
        seed=seed,
        tracer=Tracer(keep_dispatches=True),
        engine=engine,
    )
    scenario.run_seconds(0.02)
    return scenario


class TestFaultFreeDifferential:
    """4 schedulers x 3 seeds: identical output on both backends."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_backends_agree(self, scheduler, seed):
        obj = run_cell(scheduler, seed, "object")
        arr = run_cell(scheduler, seed, "array")
        assert isinstance(obj.machine, Machine)
        assert isinstance(arr.machine, ArrayMachine)
        assert observables(obj.machine) == observables(arr.machine)

    def test_tableau_actually_compiles_a_program(self):
        arr = run_cell("tableau", 42, "array")
        assert arr.machine.program is not None
        assert arr.machine.program.compiles >= 1

    def test_non_tableau_schedulers_fall_back_whole_hog(self):
        # Non-table schedulers have no array program; the ArrayMachine
        # seam must run them unchanged rather than refuse.
        for scheduler in ("credit", "credit2", "rtds"):
            arr = run_cell(scheduler, 42, "array")
            assert arr.machine.program is None
            assert arr.machine.engine.events_processed > 0


class TestFaultedDifferential:
    """The fallback regimes: faults and degradation must not diverge."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_preset_backends_agree(self, seed):
        runs = {
            engine: run_chaos(
                runtime_preset("chaos", seed=seed),
                seconds=0.05,
                seed=seed,
                engine=engine,
            )
            for engine in ENGINES
        }
        assert observables(runs["object"].machine) == observables(
            runs["array"].machine
        )
        assert runs["object"].injected_by_site == runs["array"].injected_by_site
        assert runs["object"].health_report == runs["array"].health_report
        assert runs["array"].audit_clean

    def test_degraded_mode_backends_agree(self):
        # One core's table corrupts mid-activation and a dead IPI wire
        # rides along (the ISSUE 3 survival scenario): the degraded core
        # serves round-robin through the object path while healthy cores
        # keep playing arrays, then recovery restores table dispatch.
        def corruption_plan():
            return FaultPlan(
                seed=3,
                specs=[
                    FaultSpec(
                        site=SITE_TABLE_SWITCH, calls=(1,), cpu=4, corrupt=True
                    ),
                    FaultSpec(
                        site=SITE_IPI_LOST,
                        key="cpu4",
                        probability=1.0,
                        persistent_from=1,
                    ),
                ],
            )

        runs = {
            engine: run_chaos(
                corruption_plan(), seconds=0.5, seed=3, engine=engine
            )
            for engine in ENGINES
        }
        # The scenario genuinely exercised degraded dispatch + recovery.
        assert runs["array"].scheduler.degraded_picks > 0
        assert runs["array"].scheduler.degraded_cores == {}
        assert runs["array"].audit_clean
        assert observables(runs["object"].machine) == observables(
            runs["array"].machine
        )
        assert runs["object"].health_report == runs["array"].health_report

    @pytest.mark.parametrize("seed", SEEDS)
    def test_stuck_guest_quarantine_backends_agree(self, seed):
        # Stuck vCPUs route through the quarantine fallback gate.
        runs = {
            engine: run_chaos(
                runtime_preset("stuck-vcpu", seed=seed),
                seconds=0.05,
                seed=seed,
                engine=engine,
            )
            for engine in ENGINES
        }
        assert runs["array"].health_report["quarantines"]
        assert observables(runs["object"].machine) == observables(
            runs["array"].machine
        )
        assert runs["object"].health_report == runs["array"].health_report


class TestArrayTracer:
    """The columnar tracer is a drop-in for trace consumers."""

    def test_columnar_dispatch_log_matches_object_records(self):
        obj = build_scenario(
            "tableau",
            vantage_workload=IoLoop(),
            capped=False,
            topology=uniform(4),
            num_vms=8,
            seed=42,
            tracer=Tracer(keep_dispatches=True),
            engine="object",
        )
        arr = build_scenario(
            "tableau",
            vantage_workload=IoLoop(),
            capped=False,
            topology=uniform(4),
            num_vms=8,
            seed=42,
            tracer=ArrayTracer(keep_dispatches=True),
            engine="array",
        )
        obj.run_seconds(0.02)
        arr.run_seconds(0.02)
        assert trace_fingerprint(obj.machine.tracer) == trace_fingerprint(
            arr.machine.tracer
        )
        assert len(arr.machine.tracer.dispatches) == len(
            obj.machine.tracer.dispatches
        )
