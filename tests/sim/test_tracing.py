"""Tests for the tracing framework and overhead cost primitives."""

import pytest

from repro.sim.overheads import CostModel, GlobalLock, make_cost_model
from repro.sim.tracing import (
    OP_MIGRATE,
    OP_SCHEDULE,
    OP_WAKEUP,
    DispatchRecord,
    OpStats,
    Tracer,
)
from repro.topology import uniform, xeon_16core, xeon_48core


class TestOpStats:
    def test_streaming_mean(self):
        stats = OpStats()
        for value in (1_000, 2_000, 3_000):
            stats.add(value)
        assert stats.mean_ns == 2_000
        assert stats.mean_us == 2.0

    def test_max_tracked(self):
        stats = OpStats()
        stats.add(10)
        stats.add(500)
        stats.add(20)
        assert stats.max_ns == 500

    def test_empty_mean_is_zero(self):
        assert OpStats().mean_ns == 0.0


class TestTracer:
    def test_record_op_aggregates(self):
        tracer = Tracer()
        tracer.record_op(OP_SCHEDULE, 0, 0, 1_000)
        tracer.record_op(OP_SCHEDULE, 10, 1, 3_000)
        assert tracer.mean_us(OP_SCHEDULE) == 2.0

    def test_samples_kept_only_when_enabled(self):
        silent = Tracer(keep_samples=False)
        silent.record_op(OP_WAKEUP, 0, 0, 1_000)
        assert silent.samples[OP_WAKEUP] == []
        chatty = Tracer(keep_samples=True)
        chatty.record_op(OP_WAKEUP, 5, 2, 1_000)
        assert chatty.samples[OP_WAKEUP] == [(5, 2, 1_000)]

    def test_dispatches_kept_only_when_enabled(self):
        tracer = Tracer(keep_dispatches=True)
        tracer.record_dispatch(0, 0, "v", level=1)
        tracer.record_dispatch(1, 0, "v", level=2)
        assert len(tracer.dispatches) == 2

    def test_level2_share(self):
        tracer = Tracer(keep_dispatches=True)
        for level in (1, 2, 2, 2):
            tracer.record_dispatch(0, 0, "vantage", level)
        tracer.record_dispatch(0, 0, "other", 1)
        assert tracer.level2_share("vantage") == pytest.approx(0.75)

    def test_level2_share_no_data(self):
        assert Tracer(keep_dispatches=True).level2_share("ghost") == 0.0

    def test_context_switch_and_migration_counters(self):
        tracer = Tracer()
        tracer.record_context_switch(migrated=False)
        tracer.record_context_switch(migrated=True)
        assert tracer.context_switches == 2
        assert tracer.migrations == 1

    def test_summary_structure(self):
        tracer = Tracer()
        tracer.record_op(OP_MIGRATE, 0, 0, 500)
        summary = tracer.summary()
        assert summary[OP_MIGRATE]["count"] == 1
        assert summary[OP_MIGRATE]["mean_us"] == 0.5


class TestCostModel:
    def test_two_sockets_is_baseline(self):
        model = make_cost_model(xeon_16core())
        assert model.socket_factor == 1.0

    def test_four_sockets_scales_up(self):
        model = make_cost_model(xeon_48core())
        assert model.socket_factor == 2.0

    def test_remote_costs_more_than_local(self):
        model = make_cost_model(xeon_16core())
        assert model.remote() > model.local()

    def test_scan_scales_with_entries(self):
        model = make_cost_model(xeon_16core())
        assert model.scan(10) == 10 * model.scan(1)


class TestGlobalLock:
    def test_uncontended_acquire_is_free(self):
        lock = GlobalLock()
        assert lock.acquire(1_000, hold_ns=500) == 0.0

    def test_back_to_back_acquire_waits(self):
        lock = GlobalLock()
        lock.acquire(1_000, hold_ns=500)
        wait = lock.acquire(1_200, hold_ns=500)
        assert wait == pytest.approx(300)

    def test_wait_capped_by_max_waiters(self):
        lock = GlobalLock(max_waiters=2)
        lock.acquire(0, hold_ns=10_000)
        for _ in range(10):
            lock.acquire(0, hold_ns=10_000)
        wait = lock.acquire(0, hold_ns=10_000)
        assert wait <= 2 * 10_000

    def test_short_path_wait_bound(self):
        lock = GlobalLock(max_waiters=64)
        lock.acquire(0, hold_ns=100_000)
        wait = lock.acquire(0, hold_ns=1_000, max_wait_holds=4)
        assert wait <= 4 * 1_000

    def test_statistics(self):
        lock = GlobalLock()
        lock.acquire(0, 100)
        lock.acquire(0, 100)
        assert lock.acquisitions == 2
        assert lock.mean_wait_ns == pytest.approx(50)

    def test_lock_frees_over_time(self):
        lock = GlobalLock()
        lock.acquire(0, hold_ns=1_000)
        assert lock.acquire(10_000, hold_ns=1_000) == 0.0
