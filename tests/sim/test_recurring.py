"""Regression tests for RecurringHandle cancellation semantics.

A recurring callback that cancels its own handle (a watchdog deciding
it is done) or raises (a strict auditor) must not have its next firing
rescheduled behind its back.  Pre-fix, ``_fire`` cleared ``_event``
before invoking the callback, so a self-cancel found nothing to cancel
and the series kept running forever.
"""

import pytest

from repro.errors import InvariantViolation
from repro.sim.engine import SimEngine


class TestSelfCancel:
    def test_callback_cancelling_itself_stops_the_series(self):
        engine = SimEngine()
        fired = []

        def tick():
            fired.append(engine.now)
            if len(fired) == 2:
                handle.cancel()

        handle = engine.every(100, tick)
        engine.run_until(1_000)
        assert fired == [100, 200]
        assert not handle.active

    def test_self_cancel_leaves_no_pending_event(self):
        engine = SimEngine()

        def tick():
            handle.cancel()

        handle = engine.every(100, tick)
        engine.run_until(100)
        assert engine.pending_events == 0
        engine.run_until(10_000)
        assert handle.fires == 1

    def test_cancel_after_self_cancel_is_idempotent(self):
        engine = SimEngine()

        def tick():
            handle.cancel()

        handle = engine.every(100, tick)
        engine.run_until(100)
        handle.cancel()
        assert not handle.active
        assert handle.fires == 1


class TestRaisingCallback:
    def test_raising_callback_does_not_reschedule(self):
        engine = SimEngine()
        fires = []

        def tick():
            fires.append(engine.now)
            raise InvariantViolation("strict auditor tripped")

        handle = engine.every(100, tick)
        with pytest.raises(InvariantViolation):
            engine.run_until(1_000)
        assert fires == [100]
        assert not handle.active
        # The series is dead: resuming the simulation fires nothing.
        engine.run_until(10_000)
        assert fires == [100]

    def test_normal_series_still_recurs(self):
        engine = SimEngine()
        fired = []
        handle = engine.every(250, lambda: fired.append(engine.now))
        engine.run_until(1_000)
        assert fired == [250, 500, 750, 1_000]
        assert handle.active
        assert handle.fires == 4


class TestSetPeriod:
    """Adaptive cadence via :meth:`RecurringHandle.set_period`.

    The service control plane widens/narrows its batch-flush window on
    the live handle; re-creating the series instead would consume fresh
    event sequence numbers and perturb same-seed determinism.
    """

    def test_set_period_respaces_after_next_firing(self):
        engine = SimEngine()
        fired = []
        handle = engine.every(100, lambda: fired.append(engine.now))
        engine.run_until(100)
        handle.set_period(300)
        engine.run_until(1_100)
        # The already-scheduled occurrence at 200 keeps its slot; the
        # new cadence applies from there on.
        assert fired == [100, 200, 500, 800, 1_100]

    def test_set_period_from_inside_callback(self):
        engine = SimEngine()
        fired = []

        def tick():
            fired.append(engine.now)
            if len(fired) == 2:
                handle.set_period(50)

        handle = engine.every(200, tick)
        engine.run_until(700)
        assert fired == [200, 400, 450, 500, 550, 600, 650, 700]

    def test_set_period_rejects_non_positive(self):
        from repro.errors import SimulationError

        engine = SimEngine()
        handle = engine.every(100, lambda: None)
        with pytest.raises(SimulationError):
            handle.set_period(0)
        with pytest.raises(SimulationError):
            handle.set_period(-5)
        assert handle.period == 100
