"""Tests for the machine's dispatch mechanics (using the round-robin
reference scheduler, which has zero modelled overhead)."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.schedulers.simple import RoundRobinScheduler
from repro.sim import CONTEXT_SWITCH_NS, Machine, VCpu, VCpuState, Workload
from repro.topology import uniform
from repro.workloads import CpuHog, IoLoop

MS = 1_000_000


def make_machine(cores=1, timeslice=MS, seed=0):
    return Machine(uniform(cores), RoundRobinScheduler(timeslice_ns=timeslice), seed=seed)


class TestBasicExecution:
    def test_single_hog_uses_whole_core(self):
        m = make_machine()
        m.add_vcpu(VCpu("hog", CpuHog()))
        m.run(100 * MS)
        # Only context switches at quantum boundaries cost anything, and
        # re-picking the same vCPU does not context switch.
        assert m.utilization_of("hog") > 0.999

    def test_two_hogs_share_fairly(self):
        m = make_machine()
        m.add_vcpu(VCpu("a", CpuHog()))
        m.add_vcpu(VCpu("b", CpuHog()))
        m.run(100 * MS)
        assert m.utilization_of("a") == pytest.approx(0.5, abs=0.02)
        assert m.utilization_of("b") == pytest.approx(0.5, abs=0.02)

    def test_hogs_spread_across_cores(self):
        m = make_machine(cores=2)
        m.add_vcpu(VCpu("a", CpuHog()))
        m.add_vcpu(VCpu("b", CpuHog()))
        m.run(50 * MS)
        assert m.utilization_of("a") > 0.95
        assert m.utilization_of("b") > 0.95

    def test_blocked_vcpu_consumes_nothing(self):
        m = make_machine()
        m.add_vcpu(VCpu("sleeper", Workload()))  # default workload blocks
        m.run(10 * MS)
        assert m.utilization_of("sleeper") == 0.0
        assert m.idle_fraction() == pytest.approx(1.0, abs=0.01)

    def test_io_loop_duty_cycle(self):
        m = make_machine()
        m.add_vcpu(VCpu("io", IoLoop(compute_ns=200_000, io_ns=800_000, jitter=0.0)))
        m.run(200 * MS)
        # 200 us on / 800 us off -> ~20% duty (minus context switches).
        assert m.utilization_of("io") == pytest.approx(0.2, abs=0.02)

    def test_runtime_conservation(self):
        m = make_machine()
        m.add_vcpu(VCpu("a", CpuHog()))
        m.add_vcpu(VCpu("b", IoLoop(jitter=0.0)))
        m.run(100 * MS)
        busy = sum(c.busy_ns for c in m.cpus)
        total_runtime = sum(v.runtime_ns for v in m.vcpus.values())
        assert busy == total_runtime
        assert busy <= 100 * MS


class TestWakeups:
    def test_wake_dispatches_blocked_vcpu(self):
        m = make_machine()
        class OneShot(Workload):
            def __init__(self):
                super().__init__()
                self.ran_at = None
            def on_wake(self, now):
                self.vcpu.begin_burst(1_000)
            def on_burst_complete(self, now):
                self.ran_at = now
                self.vcpu.set_blocked()
        wl = OneShot()
        v = m.add_vcpu(VCpu("v", wl))
        m.run(1 * MS)
        m.engine.at(m.engine.now + 5 * MS, lambda: m.wake(v))
        m.run(10 * MS)
        assert wl.ran_at is not None
        # Dispatched promptly: wake + resched + context switch, well under 1 ms.
        assert wl.ran_at - (1 * MS + 5 * MS) < MS

    def test_wake_of_runnable_vcpu_is_harmless(self):
        m = make_machine()
        v = m.add_vcpu(VCpu("hog", CpuHog()))
        m.run(1 * MS)
        m.wake(v)  # already runnable
        m.run(1 * MS)
        assert v.state in (VCpuState.RUNNING, VCpuState.RUNNABLE)

    def test_ignored_wake_leaves_vcpu_blocked(self):
        m = make_machine()
        v = m.add_vcpu(VCpu("v", Workload()))  # on_wake does nothing
        m.run(1 * MS)
        m.wake(v)
        m.run(1 * MS)
        assert v.state is VCpuState.BLOCKED


class TestOverheadCharging:
    def test_scheduler_cost_reduces_throughput(self):
        lossless = Machine(uniform(1), RoundRobinScheduler(timeslice_ns=MS, cost_ns=0))
        lossless.add_vcpu(VCpu("hog", CpuHog()))
        lossless.run(100 * MS)
        taxed = Machine(
            uniform(1), RoundRobinScheduler(timeslice_ns=MS, cost_ns=100_000)
        )
        taxed.add_vcpu(VCpu("hog", CpuHog()))
        taxed.run(100 * MS)
        assert taxed.utilization_of("hog") < lossless.utilization_of("hog") - 0.05

    def test_overhead_accounted(self):
        m = Machine(uniform(1), RoundRobinScheduler(timeslice_ns=MS, cost_ns=50_000))
        m.add_vcpu(VCpu("hog", CpuHog()))
        m.run(50 * MS)
        assert m.total_overhead_ns() > 0

    def test_trace_counts_operations(self):
        m = make_machine()
        m.add_vcpu(VCpu("io", IoLoop(jitter=0.0)))
        m.run(20 * MS)
        assert m.tracer.ops["schedule"].count > 0
        assert m.tracer.ops["wakeup"].count > 0


class TestLifecycleErrors:
    def test_duplicate_vcpu_rejected(self):
        m = make_machine()
        m.add_vcpu(VCpu("v", CpuHog()))
        with pytest.raises(ConfigurationError):
            m.add_vcpu(VCpu("v", CpuHog()))

    def test_add_after_start_rejected(self):
        m = make_machine()
        m.add_vcpu(VCpu("v", CpuHog()))
        m.run(MS)
        with pytest.raises(SimulationError):
            m.add_vcpu(VCpu("late", CpuHog()))

    def test_run_can_be_resumed(self):
        m = make_machine()
        m.add_vcpu(VCpu("hog", CpuHog()))
        m.run(10 * MS)
        first = m.vcpus["hog"].runtime_ns
        m.run(10 * MS)
        assert m.vcpus["hog"].runtime_ns > first
        assert m.now == 20 * MS


class TestDeterminism:
    def test_identical_seeds_identical_outcomes(self):
        def run(seed):
            m = make_machine(cores=2, seed=seed)
            m.add_vcpu(VCpu("a", IoLoop()))
            m.add_vcpu(VCpu("b", IoLoop()))
            m.add_vcpu(VCpu("c", CpuHog()))
            m.run(50 * MS)
            return tuple(v.runtime_ns for v in m.vcpus.values())

        assert run(3) == run(3)
        assert run(3) != run(4)
