"""Property-based tests (hypothesis) for simulator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.simple import RoundRobinScheduler
from repro.sim import Machine, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog, IoLoop

MS = 1_000_000


def build_machine(num_hogs, num_io, cores, seed, timeslice_ms=1):
    machine = Machine(
        uniform(cores),
        RoundRobinScheduler(timeslice_ns=timeslice_ms * MS),
        seed=seed,
    )
    for i in range(num_hogs):
        machine.add_vcpu(VCpu(f"hog{i}", CpuHog()))
    for i in range(num_io):
        machine.add_vcpu(VCpu(f"io{i}", IoLoop()))
    return machine


class TestConservationLaws:
    @given(
        num_hogs=st.integers(min_value=0, max_value=4),
        num_io=st.integers(min_value=0, max_value=4),
        cores=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_runtime_never_exceeds_wall_capacity(self, num_hogs, num_io, cores, seed):
        machine = build_machine(num_hogs, num_io, cores, seed)
        machine.run(50 * MS)
        total = sum(v.runtime_ns for v in machine.vcpus.values())
        assert total <= 50 * MS * cores

    @given(
        num_hogs=st.integers(min_value=0, max_value=4),
        num_io=st.integers(min_value=0, max_value=4),
        cores=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_busy_accounting_matches_vcpu_runtime(self, num_hogs, num_io, cores, seed):
        machine = build_machine(num_hogs, num_io, cores, seed)
        machine.run(50 * MS)
        busy = sum(c.busy_ns for c in machine.cpus)
        runtime = sum(v.runtime_ns for v in machine.vcpus.values())
        assert busy == runtime

    @given(
        cores=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_hogs_saturate_available_cores(self, cores, seed):
        machine = build_machine(num_hogs=cores + 2, num_io=0, cores=cores, seed=seed)
        machine.run(50 * MS)
        # Work-conserving round robin with zero cost: near-full machine.
        assert machine.idle_fraction() < 0.02


class TestFairnessProperties:
    @given(
        num_hogs=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_identical_hogs_get_equal_shares(self, num_hogs, seed):
        machine = build_machine(num_hogs, 0, cores=1, seed=seed)
        machine.run(100 * MS)
        utils = [machine.utilization_of(f"hog{i}") for i in range(num_hogs)]
        assert max(utils) - min(utils) < 0.05

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_determinism_across_identical_runs(self, seed):
        def fingerprint():
            machine = build_machine(2, 2, cores=2, seed=seed)
            machine.run(40 * MS)
            return tuple(sorted((n, v.runtime_ns) for n, v in machine.vcpus.items()))

        assert fingerprint() == fingerprint()


class TestTableauInvariantsUnderRandomWorkloads:
    @given(
        io_count=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=15, deadline=None)
    def test_capped_reservation_is_hard_under_any_mix(self, io_count, seed):
        from repro.core import MS as CMS
        from repro.core import Planner, make_vm
        from repro.schedulers import TableauScheduler

        vms = [make_vm(f"vm{i}", 0.25, 20 * CMS, capped=True) for i in range(4)]
        plan = Planner(uniform(1)).plan(vms)
        machine = Machine(uniform(1), TableauScheduler(plan.table), seed=seed)
        machine.add_vcpu(VCpu("vm0.vcpu0", CpuHog(), capped=True))
        for i in range(1, 1 + io_count):
            machine.add_vcpu(VCpu(f"vm{i}.vcpu0", IoLoop(), capped=True))
        for i in range(1 + io_count, 4):
            machine.add_vcpu(VCpu(f"vm{i}.vcpu0", CpuHog(), capped=True))
        machine.run(200 * MS)
        # The hard reservation: the hog gets its 25%, never much more.
        assert 0.22 < machine.utilization_of("vm0.vcpu0") < 0.27
