"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimEngine()
        order = []
        engine.at(300, lambda: order.append("c"))
        engine.at(100, lambda: order.append("a"))
        engine.at(200, lambda: order.append("b"))
        engine.run_until(1_000)
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        engine = SimEngine()
        order = []
        for tag in ("first", "second", "third"):
            engine.at(100, lambda t=tag: order.append(t))
        engine.run_until(100)
        assert order == ["first", "second", "third"]

    def test_after_is_relative(self):
        engine = SimEngine()
        times = []
        engine.at(500, lambda: engine.after(250, lambda: times.append(engine.now)))
        engine.run_until(1_000)
        assert times == [750]

    def test_clock_advances_to_end_even_without_events(self):
        engine = SimEngine()
        engine.run_until(12_345)
        assert engine.now == 12_345

    def test_events_beyond_horizon_not_run(self):
        engine = SimEngine()
        fired = []
        engine.at(2_000, lambda: fired.append(True))
        engine.run_until(1_000)
        assert not fired
        engine.run_until(2_000)
        assert fired

    def test_past_scheduling_rejected(self):
        engine = SimEngine()
        engine.at(100, lambda: None)
        engine.run_until(100)
        with pytest.raises(SimulationError):
            engine.at(50, lambda: None)

    def test_negative_delay_rejected(self):
        engine = SimEngine()
        with pytest.raises(SimulationError):
            engine.after(-1, lambda: None)

    def test_callbacks_can_schedule_at_current_time(self):
        engine = SimEngine()
        order = []
        def chain():
            order.append("outer")
            engine.at(engine.now, lambda: order.append("inner"))
        engine.at(100, chain)
        engine.run_until(100)
        assert order == ["outer", "inner"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimEngine()
        fired = []
        handle = engine.at(100, lambda: fired.append(True))
        handle.cancel()
        engine.run_until(1_000)
        assert not fired

    def test_cancel_is_idempotent(self):
        engine = SimEngine()
        handle = engine.at(100, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.active

    def test_pending_count_excludes_cancelled(self):
        engine = SimEngine()
        keep = engine.at(100, lambda: None)
        drop = engine.at(200, lambda: None)
        drop.cancel()
        assert engine.pending_events == 1

    def test_peek_skips_cancelled(self):
        engine = SimEngine()
        first = engine.at(100, lambda: None)
        engine.at(200, lambda: None)
        first.cancel()
        assert engine.peek_next_time() == 200


class TestDeterminism:
    def test_rng_reproducible_across_engines(self):
        a, b = SimEngine(seed=7), SimEngine(seed=7)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        a, b = SimEngine(seed=1), SimEngine(seed=2)
        assert a.rng.random() != b.rng.random()

    def test_run_until_not_reentrant(self):
        engine = SimEngine()
        def recurse():
            engine.run_until(500)
        engine.at(100, recurse)
        with pytest.raises(SimulationError):
            engine.run_until(1_000)
