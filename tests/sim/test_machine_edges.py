"""Edge-case tests for machine dispatch mechanics."""

import pytest

from repro.errors import SimulationError
from repro.schedulers.base import Decision, Scheduler, WakeAction
from repro.schedulers.simple import RoundRobinScheduler
from repro.sim import Machine, VCpu, VCpuState, Workload
from repro.topology import uniform
from repro.workloads import CpuHog, IoLoop

MS = 1_000_000


class TestQuantumBurstInteraction:
    def test_burst_shorter_than_quantum_blocks_early(self):
        machine = Machine(uniform(1), RoundRobinScheduler(timeslice_ns=50 * MS))
        workload = IoLoop(compute_ns=MS, io_ns=MS, jitter=0.0)
        machine.add_vcpu(VCpu("io", workload))
        machine.run(20 * MS)
        # ~10 compute phases of 1 ms each despite the 50 ms quantum.
        assert workload.io_completions >= 8

    def test_quantum_shorter_than_burst_preempts(self):
        machine = Machine(uniform(1), RoundRobinScheduler(timeslice_ns=MS))
        machine.add_vcpu(VCpu("a", CpuHog(chunk_ns=100 * MS)))
        machine.add_vcpu(VCpu("b", CpuHog(chunk_ns=100 * MS)))
        machine.run(20 * MS)
        # Both progressed despite 100 ms bursts: quantum preemption works
        # mid-burst and progress is preserved across preemptions.
        assert machine.utilization_of("a") > 0.4
        assert machine.utilization_of("b") > 0.4


class TestStolenTime:
    def test_wakeup_charges_delay_running_vcpu(self):
        class ExpensiveWakeScheduler(RoundRobinScheduler):
            def on_wakeup(self, vcpu, now):
                action = super().on_wakeup(vcpu, now)
                return WakeAction(
                    cpu=0, cost_ns=500_000, resched_cpu=action.resched_cpu
                )

        def run(scheduler):
            machine = Machine(uniform(1), scheduler)
            machine.add_vcpu(VCpu("hog", CpuHog()))
            machine.add_vcpu(
                VCpu("io", IoLoop(compute_ns=100_000, io_ns=400_000, jitter=0.0))
            )
            machine.run(200 * MS)
            return machine

        taxed = run(ExpensiveWakeScheduler(timeslice_ns=5 * MS))
        lossless = run(RoundRobinScheduler(timeslice_ns=5 * MS))
        taxed_total = sum(v.runtime_ns for v in taxed.vcpus.values())
        lossless_total = sum(v.runtime_ns for v in lossless.vcpus.values())
        # Each I/O wake steals 0.5 ms from whoever runs on cpu 0, so the
        # taxed machine delivers visibly less guest runtime.
        assert taxed_total < lossless_total
        assert taxed.total_overhead_ns() > lossless.total_overhead_ns()


class TestMisbehavingWorkloads:
    def test_workload_that_does_nothing_after_burst_raises(self):
        class Broken(Workload):
            def start(self, now):
                self.vcpu.begin_burst(MS)

            def on_burst_complete(self, now):
                pass  # neither blocks nor queues another burst

        machine = Machine(uniform(1), RoundRobinScheduler())
        machine.add_vcpu(VCpu("broken", Broken()))
        with pytest.raises(SimulationError):
            machine.run(10 * MS)

    def test_scheduler_returning_blocked_vcpu_raises(self):
        class Dishonest(Scheduler):
            name = "dishonest"

            def add_vcpu(self, vcpu):
                self.victim = vcpu

            def pick_next(self, cpu, now):
                return Decision(self.victim, quantum_end=None)

            def on_wakeup(self, vcpu, now):
                return WakeAction(cpu=0)

        machine = Machine(uniform(1), Dishonest())
        machine.add_vcpu(VCpu("sleeper", Workload()))  # stays BLOCKED
        with pytest.raises(SimulationError):
            machine.run(MS)


class TestRescheduleCoalescing:
    def test_repeated_resched_requests_coalesce(self):
        machine = Machine(uniform(1), RoundRobinScheduler())
        machine.add_vcpu(VCpu("hog", CpuHog()))
        machine.run(MS)
        before = machine.tracer.ops["schedule"].count
        for _ in range(10):
            machine.request_resched(0)
        machine.run(MS)
        after = machine.tracer.ops["schedule"].count
        # Ten requests at the same instant collapse into few decisions.
        assert after - before <= 4
