"""Byte-stability of the service report and its integer percentiles."""

import json

from repro.metrics import (
    format_service_report,
    percentile_rank_ns,
    service_report,
    service_report_json,
)
from repro.service import ChurnConfig, run_service
from repro.topology import uniform


class TestPercentileRank:
    def test_empty_is_zero(self):
        assert percentile_rank_ns([], 990) == 0

    def test_single_sample_is_every_quantile(self):
        assert percentile_rank_ns([7], 500) == 7
        assert percentile_rank_ns([7], 999) == 7

    def test_nearest_rank_on_a_known_population(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile_rank_ns(samples, 500) == 50
        assert percentile_rank_ns(samples, 990) == 99
        assert percentile_rank_ns(samples, 999) == 100
        assert percentile_rank_ns(samples, 1000) == 100

    def test_order_independent(self):
        shuffled = [5, 1, 4, 2, 3]
        assert percentile_rank_ns(shuffled, 500) == 3
        assert percentile_rank_ns(shuffled, 999) == 5

    def test_p999_separates_the_tail(self):
        samples = [1] * 999 + [1_000_000]
        assert percentile_rank_ns(samples, 990) == 1
        assert percentile_rank_ns(samples, 999) == 1
        assert percentile_rank_ns(samples, 1000) == 1_000_000


class TestServiceReport:
    def _service(self):
        churn = ChurnConfig(seed=3, target_population=8)
        return run_service(uniform(8), duration_s=60.0, churn=churn)

    def test_report_carries_the_required_blocks(self):
        report = service_report(self._service())
        for block in ("p50", "p99", "p999", "max", "count"):
            assert block in report["replan_latency_ns"]
            assert block in report["sojourn_ns"]
        assert set(report["rejected"]["by_reason"]) == {
            "admission", "backpressure", "plan-failed", "unknown-tenant",
        }
        assert report["slo"]["violations"] >= 0
        assert report["batching"]["table_pushes"] > 0

    def test_json_is_canonical(self):
        report = service_report(self._service())
        encoded = service_report_json(report)
        assert encoded.endswith("\n")
        decoded = json.loads(encoded)
        assert decoded == json.loads(service_report_json(decoded))
        # Sorted keys: re-encoding with the same options is stable.
        assert encoded == json.dumps(decoded, indent=2, sort_keys=True) + "\n"

    def test_human_format_mentions_the_headline_numbers(self):
        report = service_report(self._service())
        text = format_service_report(report)
        assert "service[tableau]" in text
        assert "batching:" in text
        assert "replan latency:" in text
        assert "SLO violations" in text
