"""Tests for latency summaries and throughput-curve metrics."""

import pytest

from repro.metrics import (
    EMPTY_SUMMARY,
    LatencySummary,
    OperatingPoint,
    ThroughputCurve,
    compare_peaks,
    corrected_latencies,
    percentile_ns,
    service_gaps_ns,
    summarize_ns,
)

MS = 1_000_000


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize_ns([1 * MS, 2 * MS, 3 * MS, 4 * MS])
        assert summary.count == 4
        assert summary.mean_ns == pytest.approx(2.5 * MS)
        assert summary.max_ns == 4 * MS

    def test_percentiles(self):
        samples = list(range(1, 101))
        summary = summarize_ns(samples)
        assert summary.p50_ns == pytest.approx(50.5)
        assert summary.p99_ns == pytest.approx(99.01)

    def test_empty_input(self):
        assert summarize_ns([]) is EMPTY_SUMMARY
        assert EMPTY_SUMMARY.count == 0

    def test_unit_conversions(self):
        summary = summarize_ns([5 * MS])
        assert summary.mean_ms == 5.0
        assert summary.p99_ms == 5.0
        assert summary.max_ms == 5.0

    def test_percentile_helper(self):
        assert percentile_ns([], 99) == 0.0
        assert percentile_ns([10, 20, 30], 50) == 20


class TestCorrectedLatencies:
    def test_pairs_intended_with_completion(self):
        latencies = corrected_latencies([0, 100, 200], [50, 400, 900])
        assert latencies == [50, 300, 700]

    def test_missing_completions_excluded(self):
        latencies = corrected_latencies([0, 100, 200], [50, 400])
        assert latencies == [50, 300]


class TestServiceGaps:
    def test_gaps_between_intervals(self):
        gaps = service_gaps_ns([(0, 10), (30, 40), (100, 110)])
        assert gaps == [20, 60]

    def test_wraparound_gap(self):
        gaps = service_gaps_ns([(10, 20), (50, 60)], wrap_ns=100)
        assert gaps == [30, 50]  # 60 -> 110 across the wrap

    def test_unsorted_input_handled(self):
        gaps = service_gaps_ns([(50, 60), (0, 10)])
        assert gaps == [40]


class TestThroughputCurve:
    def _curve(self):
        def point(offered, achieved, p99_ms):
            return OperatingPoint(
                offered_rate=offered,
                achieved_rate=achieved,
                latency=LatencySummary(
                    count=100,
                    mean_ns=p99_ms * MS / 4,
                    p50_ns=p99_ms * MS / 4,
                    p99_ns=p99_ms * MS,
                    max_ns=p99_ms * MS * 2,
                ),
            )

        return ThroughputCurve(
            label="test",
            points=[
                point(400, 400, 8),
                point(800, 800, 12),
                point(1_200, 1_200, 60),
                point(1_600, 1_450, 450),
            ],
        )

    def test_sla_peak_throughput(self):
        curve = self._curve()
        assert curve.sla_peak_throughput(100 * MS) == 1_200

    def test_stricter_sla_lowers_peak(self):
        curve = self._curve()
        assert curve.sla_peak_throughput(10 * MS) == 400

    def test_unmeetable_sla_returns_none(self):
        curve = self._curve()
        assert curve.sla_peak_throughput(1 * MS) is None

    def test_sla_metric_selection(self):
        curve = self._curve()
        # max latency is 2x p99 in the fixture, so the max-based peak
        # at 120 ms matches the p99-based peak at 60 ms.
        assert curve.sla_peak_throughput(
            120 * MS, metric="max"
        ) == curve.sla_peak_throughput(60 * MS, metric="p99")

    def test_saturation_rate(self):
        curve = self._curve()
        assert curve.saturation_rate() == 1_600

    def test_rows_sorted_by_offered(self):
        rows = self._curve().rows()
        assert [r[0] for r in rows] == [400, 800, 1_200, 1_600]

    def test_compare_peaks(self):
        curve = self._curve()
        other = ThroughputCurve(label="other", points=curve.points[:1])
        peaks = compare_peaks([curve, other], sla_ns=100 * MS)
        assert peaks == {"test": 1_200, "other": 400}
