"""Hot-path rule family (hot-*): positive and negative coverage."""

from repro.hotpath import hotpath
from repro.lint import lint_source

from tests.lint.util import lint_fixture, rule_ids

_MARKED = (
    "def hotpath(f):\n"
    "    return f\n"
    "\n"
    "\n"
    "@hotpath\n"
)


class TestHotPathFixtures:
    def test_bad_fixture_trips_every_rule(self):
        ids = rule_ids(lint_fixture("repro/sim/hot_bad.py"))
        assert "hot-comprehension" in ids
        assert "hot-closure" in ids
        assert "hot-fstring" in ids
        assert "hot-star-args" in ids

    def test_good_fixture_is_clean(self):
        report = lint_fixture("repro/sim/hot_good.py")
        assert report.findings == []


class TestArraycoreKernelFixtures:
    """The compiled-kernel pattern: hot bodies clean, factories cold."""

    def test_allocating_kernel_trips_every_rule(self):
        ids = rule_ids(lint_fixture("repro/sim/hot_kernel_bad.py"))
        assert "hot-comprehension" in ids
        assert "hot-closure" in ids
        assert "hot-fstring" in ids
        assert "hot-star-args" in ids

    def test_factory_time_allocation_is_clean(self):
        # The factory's comprehensions/f-strings are cold code; only
        # the marked kernel body is held to the allocation-free bar.
        report = lint_fixture("repro/sim/hot_kernel_good.py")
        assert report.findings == []


class TestHotRules:
    def test_comprehension_in_marked_body_flagged(self):
        source = _MARKED + "def f(q):\n    return [v for v in q]\n"
        assert rule_ids(lint_source(source)) == ["hot-comprehension"]

    def test_unmarked_function_not_flagged(self):
        source = "def f(q):\n    return [v for v in q]\n"
        assert lint_source(source).findings == []

    def test_nested_function_flagged(self):
        source = _MARKED + "def f(q):\n    def key(v):\n        return v\n    return key\n"
        assert rule_ids(lint_source(source)) == ["hot-closure"]

    def test_fstring_flagged(self):
        source = _MARKED + "def f(v):\n    return f'{v}'\n"
        assert rule_ids(lint_source(source)) == ["hot-fstring"]

    def test_star_call_flagged(self):
        source = _MARKED + "def f(g, args):\n    return g(*args)\n"
        assert rule_ids(lint_source(source)) == ["hot-star-args"]

    def test_dotted_decorator_recognised(self):
        source = (
            "import repro.hotpath\n"
            "\n"
            "\n"
            "@repro.hotpath.hotpath\n"
            "def f(q):\n"
            "    return [v for v in q]\n"
        )
        assert rule_ids(lint_source(source)) == ["hot-comprehension"]


class TestHotpathDecorator:
    def test_marks_without_wrapping(self):
        def pick():
            return 7

        marked = hotpath(pick)
        assert marked is pick
        assert marked.__repro_hotpath__ is True
        assert marked() == 7
