"""Determinism rule family (det-*): positive and negative coverage."""

from repro.lint import lint_source

from tests.lint.util import lint_fixture, rule_ids


class TestDeterminismFixtures:
    def test_bad_fixture_trips_every_rule(self):
        ids = rule_ids(lint_fixture("repro/sim/det_bad.py"))
        assert "det-unseeded-rng" in ids
        assert "det-wallclock" in ids
        assert "det-env-branch" in ids
        assert "det-unordered-iter" in ids

    def test_good_fixture_is_clean(self):
        report = lint_fixture("repro/sim/det_good.py")
        assert report.findings == []
        assert report.ok

    def test_scope_excludes_non_scheduling_code(self):
        bad = (lint_fixture("repro/sim/det_bad.py").files_checked, None)
        assert bad[0] == 1
        source = "import time\n\n\ndef now():\n    return time.time()\n"
        outside = lint_source(source, path="tools/gen.py", module="repro.analysis")
        assert "det-wallclock" not in rule_ids(outside)


class TestUnseededRng:
    def test_global_draw_flagged(self):
        report = lint_source(
            "import random\nx = random.random()\n", module="repro.sim.m"
        )
        assert rule_ids(report) == ["det-unseeded-rng"]

    def test_from_import_flagged(self):
        report = lint_source(
            "from random import shuffle\n", module="repro.sim.m"
        )
        assert rule_ids(report) == ["det-unseeded-rng"]

    def test_seeded_constructor_ok(self):
        report = lint_source(
            "import random\nrng = random.Random(7)\ny = rng.random()\n",
            module="repro.sim.m",
        )
        assert report.findings == []

    def test_numpy_global_flagged_default_rng_ok(self):
        bad = lint_source(
            "import numpy as np\nx = np.random.rand()\n", module="repro.core.m"
        )
        good = lint_source(
            "import numpy as np\nr = np.random.default_rng(1)\n",
            module="repro.core.m",
        )
        assert rule_ids(bad) == ["det-unseeded-rng"]
        assert good.findings == []


class TestUnorderedIteration:
    def test_set_literal_iteration_flagged(self):
        report = lint_source(
            "for c in {1, 2, 3}:\n    print(c)\n", module="repro.schedulers.m"
        )
        assert rule_ids(report) == ["det-unordered-iter"]

    def test_tracked_set_binding_flagged(self):
        source = "cores = set()\nout = list(cores)\n"
        report = lint_source(source, module="repro.schedulers.m")
        assert rule_ids(report) == ["det-unordered-iter"]

    def test_rebound_name_not_flagged(self):
        source = "cores = set()\ncores = [1, 2]\nfor c in cores:\n    print(c)\n"
        report = lint_source(source, module="repro.schedulers.m")
        assert report.findings == []

    def test_sorted_iteration_ok(self):
        report = lint_source(
            "for c in sorted({3, 1}):\n    print(c)\n", module="repro.sim.m"
        )
        assert report.findings == []

    def test_ordered_popitem_ok(self):
        report = lint_source(
            "def f(d):\n    return d.popitem(last=False)\n", module="repro.core.m"
        )
        assert report.findings == []

    def test_membership_only_set_ok(self):
        source = "seen = set()\nif 3 in seen:\n    print('dup')\n"
        report = lint_source(source, module="repro.core.m")
        assert report.findings == []
