"""The four interprocedural rule families against their fixture packages.

Each scenario under ``fixtures/flow/`` is a miniature package tree whose
files map into the ``repro.*`` namespace; the bad twin must fire its
family's rule with a multi-hop trace naming every call edge, and the
good twin must be clean under the *same* rules — the escape hatches
(seeded RNG, ``int()`` casts, declared-float names, ``@coldpath``,
early-exit validation) are part of the contract.
"""

from repro.lint import lint_paths
from repro.lint.flow.rules import FLOW_RULE_IDS

from tests.lint.util import FIXTURES

FLOW = FIXTURES / "flow"


def flow_lint(scenario):
    return lint_paths([str(FLOW / scenario)], rules=sorted(FLOW_RULE_IDS))


def by_rule(report):
    grouped = {}
    for finding in report.findings:
        grouped.setdefault(finding.rule_id, []).append(finding)
    return grouped


class TestTaintFlow:
    def test_bad_fires_all_three_kinds(self):
        grouped = by_rule(flow_lint("taint_bad"))
        assert set(grouped) == {
            "flow-taint-wallclock",
            "flow-taint-rng",
            "flow-taint-env",
        }

    def test_wallclock_trace_names_every_hop(self):
        (finding,) = by_rule(flow_lint("taint_bad"))["flow-taint-wallclock"]
        assert finding.path.endswith("repro/core/decide.py")
        # Source -> intermediate helper -> in-scope consumer: the trace
        # walks the laundering chain hop by hop, source first.
        assert len(finding.trace) == 3
        assert "raw_stamp" in finding.trace[0] and "time.time" in finding.trace[0]
        assert "stamp_ns" in finding.trace[1]
        assert "plan_epoch" in finding.trace[2]

    def test_env_taint_found_through_environ_get(self):
        (finding,) = by_rule(flow_lint("taint_bad"))["flow-taint-env"]
        assert "node_label" in finding.message
        assert any("os.environ" in hop for hop in finding.trace)

    def test_good_twin_is_clean(self):
        assert flow_lint("taint_good").findings == []


class TestUnitInference:
    def test_bad_fires_on_assign_and_kwarg_sinks(self):
        findings = by_rule(flow_lint("units_bad"))["flow-unit-escape"]
        sunk = {f.message.split("'")[1] for f in findings}
        assert sunk == {"slice_ns", "deadline_ns"}

    def test_trace_crosses_the_helper_boundary(self):
        findings = by_rule(flow_lint("units_bad"))["flow-unit-escape"]
        for finding in findings:
            assert len(finding.trace) == 3
            assert "smoothing" in finding.trace[0]
            assert "scaled_budget" in finding.trace[1]

    def test_int_cast_and_declared_float_are_clean(self):
        assert flow_lint("units_good").findings == []


class TestTransitiveHotPath:
    def test_alloc_two_hops_below_hotpath_root(self):
        (finding,) = by_rule(flow_lint("hot_bad"))["flow-hot-transitive"]
        # The finding lands on the allocating helper, not the root.
        assert "census" in finding.message
        assert finding.line == 13
        # Trace: root marker, then one line per call edge, then the
        # allocation site.
        assert "@hotpath" in finding.trace[0] and "drain" in finding.trace[0]
        assert "tally" in finding.trace[1]
        assert "census" in finding.trace[2]
        assert "ListComp" in finding.trace[3]

    def test_coldpath_prunes_the_walk(self):
        assert flow_lint("hot_good").findings == []


class TestCrashProtocol:
    def test_bad_fires_all_three_violations(self):
        grouped = by_rule(flow_lint("crash_bad"))
        (unjournaled,) = grouped["flow-unjournaled-effect"]
        assert "_accepted" in unjournaled.message
        assert unjournaled.line == 24
        order = grouped["flow-effect-order"]
        assert {f.line for f in order} == {33, 36}
        messages = " ".join(f.message for f in order)
        assert "after the commit marker" in messages
        assert "crashpoint" in messages

    def test_protocol_respecting_twin_is_clean(self):
        assert flow_lint("crash_good").findings == []


class TestFullRuleRuns:
    """The bad fixtures fire *only* their flow rules under the full set —
    the single-site families genuinely cannot see these defects."""

    def test_flow_rules_are_the_only_findings(self):
        for scenario, expected in [
            ("taint_bad", {"flow-taint-wallclock", "flow-taint-rng",
                           "flow-taint-env"}),
            ("units_bad", {"flow-unit-escape"}),
            ("hot_bad", {"flow-hot-transitive"}),
            ("crash_bad", {"flow-unjournaled-effect", "flow-effect-order"}),
        ]:
            report = lint_paths([str(FLOW / scenario)])
            assert {f.rule_id for f in report.findings} == expected, scenario

    def test_no_flow_misses_every_defect(self):
        for scenario in ["taint_bad", "units_bad", "hot_bad", "crash_bad"]:
            report = lint_paths([str(FLOW / scenario)], flow=False)
            assert report.findings == [], scenario
