"""Tests for :mod:`repro.lint`, the repo-specific static analysis."""
