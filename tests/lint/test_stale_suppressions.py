"""Stale-suppression detection and the allow-comment inventory.

A ``# repro: allow[rule-id]`` comment that no longer silences anything
is itself a finding (``lint-stale-allow``) on full runs — dead
suppressions are how real defects sneak back in.  The inventory behind
``--list-suppressions`` renders per-id liveness in the line format CI
diffs against the checked-in allowlist.
"""

from repro.lint import format_suppressions, lint_paths


def write_tree(tmp_path, name, source):
    target = tmp_path / "repro" / "sim" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


class TestStaleDetection:
    def test_unused_allow_is_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            "stale.py",
            "def f():\n    return 1  # repro: allow[det-wallclock]\n",
        )
        report = lint_paths([str(tmp_path)])
        (finding,) = report.findings
        assert finding.rule_id == "lint-stale-allow"
        assert "det-wallclock" in finding.message
        assert finding.line == 2

    def test_live_allow_is_not_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            "live.py",
            "import time\n"
            "\n"
            "\n"
            "def f():\n"
            "    return time.time()  # repro: allow[det-wallclock]\n",
        )
        report = lint_paths([str(tmp_path)])
        assert report.findings == []
        assert report.suppressed == 1

    def test_mixed_site_reports_only_the_stale_id(self, tmp_path):
        write_tree(
            tmp_path,
            "mixed.py",
            "import time\n"
            "\n"
            "\n"
            "def f():\n"
            "    return time.time()  # repro: allow[det-wallclock, hot-fstring]\n",
        )
        report = lint_paths([str(tmp_path)])
        (finding,) = report.findings
        assert finding.rule_id == "lint-stale-allow"
        assert "hot-fstring" in finding.message
        assert "det-wallclock" not in finding.message

    def test_stale_finding_is_itself_suppressable(self, tmp_path):
        write_tree(
            tmp_path,
            "meta.py",
            "def f():\n"
            "    return 1  # repro: allow[det-wallclock, lint-stale-allow]\n",
        )
        report = lint_paths([str(tmp_path)])
        assert report.findings == []

    def test_rule_subset_runs_skip_stale_detection(self, tmp_path):
        write_tree(
            tmp_path,
            "stale.py",
            "def f():\n    return 1  # repro: allow[det-wallclock]\n",
        )
        report = lint_paths([str(tmp_path)], rules=["det-wallclock"])
        assert report.findings == []


class TestCommentParsingPrecision:
    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        write_tree(
            tmp_path,
            "doc.py",
            '"""Docs quoting a comment: ``# repro: allow[det-wallclock]``."""\n'
            "\n"
            "\n"
            "def f():\n"
            "    return 1\n",
        )
        report = lint_paths([str(tmp_path)])
        assert report.findings == []
        assert report.suppression_sites == []

    def test_string_literal_mention_is_not_a_suppression(self, tmp_path):
        write_tree(
            tmp_path,
            "lit.py",
            "EXAMPLE = '# repro: allow[det-wallclock]'\n",
        )
        report = lint_paths([str(tmp_path)])
        assert report.findings == []
        assert report.suppression_sites == []


class TestInventory:
    def test_format_and_liveness_tags(self, tmp_path):
        write_tree(
            tmp_path,
            "inv.py",
            "import time\n"
            "\n"
            "\n"
            "def f():\n"
            "    return time.time()  # repro: allow[det-wallclock]\n"
            "\n"
            "\n"
            "def g():\n"
            "    return 1  # repro: allow[det-unseeded-rng, lint-stale-allow]\n",
        )
        report = lint_paths([str(tmp_path)])
        text = format_suppressions(report)
        lines = text.splitlines()
        assert lines[-1] == "3 suppression id(s)"
        tagged = {
            line.rsplit(" ", 2)[1]: line.rsplit(" ", 2)[2]
            for line in lines[:-1]
        }
        assert tagged["det-wallclock"] == "live"
        assert tagged["det-unseeded-rng"] == "STALE"
        # file:line prefix is part of the diffable contract.
        assert all(":" in line.split(" ")[0] for line in lines[:-1])
