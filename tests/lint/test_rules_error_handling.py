"""Error-handling rule family (err-*): positive and negative coverage."""

from repro.lint import lint_source

from tests.lint.util import lint_fixture, rule_ids


class TestErrorHandlingFixtures:
    def test_bad_fixture_trips_every_rule(self):
        ids = rule_ids(lint_fixture("repro/xen/err_bad.py"))
        assert "err-bare-except" in ids
        assert "err-swallowed-error" in ids
        assert "err-registry-rollback" in ids

    def test_good_fixture_is_clean(self):
        report = lint_fixture("repro/xen/err_good.py")
        assert report.findings == []


class TestBareExcept:
    def test_bare_except_flagged_everywhere(self):
        source = "try:\n    f()\nexcept:\n    pass\n"
        assert "err-bare-except" in rule_ids(lint_source(source))

    def test_typed_except_ok(self):
        source = "try:\n    f()\nexcept ValueError:\n    raise\n"
        assert lint_source(source).findings == []


class TestSwallowedError:
    def test_silent_pass_flagged(self):
        source = "try:\n    f()\nexcept ReproError:\n    pass\n"
        assert "err-swallowed-error" in rule_ids(lint_source(source))

    def test_recording_handler_ok(self):
        source = "try:\n    f()\nexcept ReproError as e:\n    log.append(e)\n"
        assert lint_source(source).findings == []

    def test_reraising_handler_ok(self):
        source = "try:\n    f()\nexcept PlanningError:\n    raise\n"
        assert lint_source(source).findings == []


class TestRegistryRollback:
    def test_unprotected_mutation_then_replan_flagged(self):
        source = (
            "def create(self, spec):\n"
            "    self.registry.add(spec)\n"
            "    self.daemon.replan(self.registry.specs)\n"
        )
        report = lint_source(source, module="repro.xen.m")
        assert rule_ids(report) == ["err-registry-rollback"]

    def test_try_with_reraise_protects(self):
        source = (
            "def create(self, spec):\n"
            "    self.registry.add(spec)\n"
            "    try:\n"
            "        self.daemon.replan(self.registry.specs)\n"
            "    except PlanningError:\n"
            "        self.registry.remove(spec.name)\n"
            "        raise\n"
        )
        report = lint_source(source, module="repro.xen.m")
        assert report.findings == []

    def test_rule_scoped_to_xen(self):
        source = (
            "def create(self, spec):\n"
            "    self.registry.add(spec)\n"
            "    self.daemon.replan(self.registry.specs)\n"
        )
        report = lint_source(source, module="repro.health.m")
        assert "err-registry-rollback" not in rule_ids(report)
