"""Error-handling rule family (err-*): positive and negative coverage."""

from repro.lint import lint_source

from tests.lint.util import lint_fixture, rule_ids


class TestErrorHandlingFixtures:
    def test_bad_fixture_trips_every_rule(self):
        ids = rule_ids(lint_fixture("repro/xen/err_bad.py"))
        assert "err-bare-except" in ids
        assert "err-swallowed-error" in ids
        assert "err-registry-rollback" in ids

    def test_good_fixture_is_clean(self):
        report = lint_fixture("repro/xen/err_good.py")
        assert report.findings == []


class TestBareExcept:
    def test_bare_except_flagged_everywhere(self):
        source = "try:\n    f()\nexcept:\n    pass\n"
        assert "err-bare-except" in rule_ids(lint_source(source))

    def test_typed_except_ok(self):
        source = "try:\n    f()\nexcept ValueError:\n    raise\n"
        assert lint_source(source).findings == []


class TestSwallowedError:
    def test_silent_pass_flagged(self):
        source = "try:\n    f()\nexcept ReproError:\n    pass\n"
        assert "err-swallowed-error" in rule_ids(lint_source(source))

    def test_recording_handler_ok(self):
        source = "try:\n    f()\nexcept ReproError as e:\n    log.append(e)\n"
        assert lint_source(source).findings == []

    def test_reraising_handler_ok(self):
        source = "try:\n    f()\nexcept PlanningError:\n    raise\n"
        assert lint_source(source).findings == []


class TestRegistryRollback:
    def test_unprotected_mutation_then_replan_flagged(self):
        source = (
            "def create(self, spec):\n"
            "    self.registry.add(spec)\n"
            "    self.daemon.replan(self.registry.specs)\n"
        )
        report = lint_source(source, module="repro.xen.m")
        assert rule_ids(report) == ["err-registry-rollback"]

    def test_try_with_reraise_protects(self):
        source = (
            "def create(self, spec):\n"
            "    self.registry.add(spec)\n"
            "    try:\n"
            "        self.daemon.replan(self.registry.specs)\n"
            "    except PlanningError:\n"
            "        self.registry.remove(spec.name)\n"
            "        raise\n"
        )
        report = lint_source(source, module="repro.xen.m")
        assert report.findings == []

    def test_rule_scoped_to_xen(self):
        source = (
            "def create(self, spec):\n"
            "    self.registry.add(spec)\n"
            "    self.daemon.replan(self.registry.specs)\n"
        )
        report = lint_source(source, module="repro.health.m")
        assert "err-registry-rollback" not in rule_ids(report)


class TestNonatomicWrite:
    def test_bad_fixture_trips_every_write_shape(self):
        report = lint_fixture("repro/service/atomic_bad.py")
        ids = rule_ids(report)
        # Literal "w", conditional "a"/"w", mode="xb" keyword,
        # write_bytes, write_text — five torn-write shapes.
        assert ids.count("err-nonatomic-write") == 5

    def test_good_fixture_is_clean(self):
        report = lint_fixture("repro/service/atomic_good.py")
        assert report.findings == []

    def test_truncating_open_flagged_in_scope(self):
        source = 'open(p, "w")\n'
        for module in (
            "repro.service.journal",
            "repro.core.plancache",
            "repro.campaign.report",
        ):
            report = lint_source(source, module=module)
            assert "err-nonatomic-write" in rule_ids(report), module

    def test_out_of_scope_packages_unflagged(self):
        source = 'open(p, "w")\n'
        for module in ("repro.xen.daemon", "repro.core.serialize", "repro.cli"):
            report = lint_source(source, module=module)
            assert "err-nonatomic-write" not in rule_ids(report), module

    def test_append_and_read_modes_allowed(self):
        for mode in ("a", "ab", "r", "rb"):
            source = f'open(p, "{mode}")\n'
            report = lint_source(source, module="repro.service.m")
            assert report.findings == [], mode

    def test_conditional_mode_with_truncating_branch_flagged(self):
        source = 'open(p, "a" if resume else "w")\n'
        report = lint_source(source, module="repro.campaign.runner")
        assert "err-nonatomic-write" in rule_ids(report)

    def test_mode_keyword_flagged(self):
        source = 'open(p, mode="wb")\n'
        report = lint_source(source, module="repro.service.m")
        assert "err-nonatomic-write" in rule_ids(report)

    def test_dynamic_mode_not_guessed_at(self):
        # A mode the rule cannot prove truncating is left alone.
        source = "open(p, mode)\n"
        report = lint_source(source, module="repro.service.m")
        assert "err-nonatomic-write" not in rule_ids(report)

    def test_path_writers_flagged(self):
        for call in ("Path(p).write_bytes(b)", "target.write_text(s)"):
            report = lint_source(call + "\n", module="repro.core.plancache")
            assert "err-nonatomic-write" in rule_ids(report), call

    def test_suppression_comment_honored(self):
        source = 'open(p, "w")  # repro: allow[err-nonatomic-write]\n'
        report = lint_source(source, module="repro.service.m")
        assert report.findings == []
