"""The shipped tree must be lint-clean, and the CLI must report bad code.

This is the acceptance gate for the whole pass: ``tableau-repro lint
src/repro`` exits 0 on the repository as committed, and exits non-zero
— naming the rule id and file:line — on the seeded bad fixtures.
"""

import json
import shutil
import subprocess
import sys

import pytest

from repro.cli import main
from repro.lint import lint_paths

from tests.lint.util import FIXTURES, REPO_ROOT

SRC = REPO_ROOT / "src" / "repro"


class TestShippedTreeIsClean:
    def test_src_repro_has_no_findings(self):
        # Full run: single-site rules, the whole-program flow passes,
        # and stale-suppression detection all at once.
        report = lint_paths([str(SRC)])
        assert report.findings == [], "\n".join(
            f"{f.location()} {f.rule_id}: {f.message}" for f in report.findings
        )
        assert report.parse_errors == 0
        assert report.files_checked > 50
        # The flow passes really ran: the project call graph is there.
        assert report.flow_functions > 500
        assert report.flow_edges > 500
        # Every shipped allow-comment still silences something.
        stale = [
            f"{site.path}:{site.line} {sorted(site.stale_ids)}"
            for site in report.suppression_sites
            if site.stale_ids
        ]
        assert stale == []

    def test_cli_exits_zero_on_shipped_tree(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "[flow:" in out

    def test_cli_no_flow_still_clean(self, capsys):
        assert main(["lint", "--no-flow", str(SRC)]) == 0
        assert "[flow:" not in capsys.readouterr().out


class TestCliOnBadFixtures:
    def test_nonzero_exit_with_rule_id_and_location(self, capsys):
        bad = FIXTURES / "repro" / "sim" / "det_bad.py"
        code = main(["lint", str(bad)])
        out = capsys.readouterr().out
        assert code != 0
        assert "det-wallclock" in out
        assert f"{bad}:13:" in out  # file:line of the time.time() call

    def test_json_report(self, capsys):
        bad = FIXTURES / "repro" / "sim" / "time_bad.py"
        code = main(["lint", str(bad), "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert code != 0
        assert document["ok"] is False
        rules = {f["rule"] for f in document["findings"]}
        assert {"time-float-ns", "time-truediv-ns", "time-unit-mismatch"} <= rules

    def test_output_file(self, tmp_path, capsys):
        bad = FIXTURES / "repro" / "schedulers" / "lay_bad.py"
        target = tmp_path / "report.json"
        code = main(["lint", str(bad), "--format", "json", "--output", str(target)])
        capsys.readouterr()
        assert code != 0
        assert json.loads(target.read_text())["findings"]

    def test_rule_filter(self, capsys):
        bad = FIXTURES / "repro" / "sim" / "det_bad.py"
        code = main(["lint", str(bad), "--rules", "det-wallclock"])
        out = capsys.readouterr().out
        assert code != 0
        assert "det-wallclock" in out
        assert "det-unseeded-rng" not in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "det-unseeded-rng",
            "time-float-ns",
            "hot-comprehension",
            "err-bare-except",
            "lay-import",
        ):
            assert rule_id in out


class TestExternalTools:
    """mypy/ruff run in CI; locally they are exercised when installed."""

    def test_pyproject_declares_tool_configs(self):
        tomllib = pytest.importorskip("tomllib")
        config = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        assert config["tool"]["mypy"]["packages"] == [
            "repro.core",
            "repro.sim",
            "repro.schedulers",
        ]
        assert config["tool"]["ruff"]["line-length"] == 88
        assert "I" in config["tool"]["ruff"]["lint"]["select"]

    @pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
    def test_ruff_clean(self):
        result = subprocess.run(
            ["ruff", "check", "src", "tests", "benchmarks"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    @pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
    def test_mypy_clean(self):
        result = subprocess.run(
            [sys.executable, "-m", "mypy"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
