"""Shared helpers for the lint test suite.

Fixture modules live under ``fixtures/repro/...`` so the driver's
module-name inference maps them into the real package namespace
(``fixtures/repro/sim/det_bad.py`` lints as ``repro.sim.det_bad``),
which lets package-scoped rules fire without the fixtures living in
``src/``.
"""

from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint import LintReport, lint_source

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_fixture(rel: str, rules: Optional[Sequence[str]] = None) -> LintReport:
    """Lint one fixture file (path relative to the fixtures dir)."""
    path = FIXTURES / rel
    return lint_source(
        path.read_text(encoding="utf-8"), path=str(path), rules=rules
    )


def rule_ids(report: LintReport) -> List[str]:
    return [finding.rule_id for finding in report.findings]
