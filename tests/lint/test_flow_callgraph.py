"""Call-graph resolution over synthetic module sets.

Each test parses a couple of in-memory modules, builds the graph, and
asserts the edges the resolver must find: bare names through imports,
method dispatch through the class hierarchy (defining ancestor plus
descendant overrides), typed and attribute-typed receivers,
constructors, ``functools.partial`` deferral, and dotted module calls.
"""

import ast

from repro.lint.flow import build_call_graph, summarize_module


def graph_of(modules):
    summaries = {
        module: summarize_module(module, f"<{module}>", ast.parse(source), {})
        for module, source in modules.items()
    }
    return build_call_graph(summaries)


def callees(graph, node):
    return sorted(edge.callee for edge in graph.out_edges(node))


class TestNameResolution:
    def test_local_call(self):
        graph = graph_of({"a": "def g():\n    return 1\n\ndef f():\n    return g()\n"})
        assert callees(graph, "a:f") == ["a:g"]

    def test_from_import(self):
        graph = graph_of({
            "a": "def g():\n    return 1\n",
            "b": "from a import g\n\ndef h():\n    return g()\n",
        })
        assert callees(graph, "b:h") == ["a:g"]

    def test_import_alias(self):
        graph = graph_of({
            "a": "def g():\n    return 1\n",
            "b": "from a import g as helper\n\ndef h():\n    return helper()\n",
        })
        assert callees(graph, "b:h") == ["a:g"]

    def test_dotted_module_call(self):
        graph = graph_of({
            "pkg.util": "def helper():\n    return 1\n",
            "app": "import pkg.util\n\ndef f():\n    return pkg.util.helper()\n",
        })
        assert callees(graph, "app:f") == ["pkg.util:helper"]


class TestMethodDispatch:
    def test_self_call_same_class(self):
        graph = graph_of({
            "m": (
                "class C:\n"
                "    def run(self):\n"
                "        return self.step()\n"
                "    def step(self):\n"
                "        return 0\n"
            ),
        })
        assert callees(graph, "m:C.run") == ["m:C.step"]

    def test_inherited_method_and_override(self):
        # Base.run calls self.step: conservative dispatch targets the
        # defining ancestor *and* every override below it, across
        # modules.
        graph = graph_of({
            "base": (
                "class Base:\n"
                "    def run(self):\n"
                "        return self.step()\n"
                "    def step(self):\n"
                "        return 0\n"
            ),
            "sub": (
                "from base import Base\n"
                "class Sub(Base):\n"
                "    def step(self):\n"
                "        return 1\n"
            ),
        })
        assert callees(graph, "base:Base.run") == ["base:Base.step", "sub:Sub.step"]

    def test_subclass_calls_inherited_method(self):
        graph = graph_of({
            "base": (
                "class Base:\n"
                "    def helper(self):\n"
                "        return 0\n"
            ),
            "sub": (
                "from base import Base\n"
                "class Sub(Base):\n"
                "    def go(self):\n"
                "        return self.helper()\n"
            ),
        })
        assert callees(graph, "sub:Sub.go") == ["base:Base.helper"]

    def test_annotated_receiver(self):
        graph = graph_of({
            "m": (
                "class C:\n"
                "    def ping(self):\n"
                "        return 0\n"
                "def f(c: C):\n"
                "    return c.ping()\n"
            ),
        })
        assert callees(graph, "m:f") == ["m:C.ping"]

    def test_receiver_typed_via_init_attribute(self):
        graph = graph_of({
            "m": (
                "class Dep:\n"
                "    def ping(self):\n"
                "        return 1\n"
                "class App:\n"
                "    def __init__(self):\n"
                "        self.dep = Dep()\n"
                "    def go(self):\n"
                "        return self.dep.ping()\n"
            ),
        })
        assert "m:Dep.ping" in callees(graph, "m:App.go")


class TestSpecialForms:
    def test_constructor_resolves_to_init(self):
        graph = graph_of({
            "m": (
                "class C:\n"
                "    def __init__(self):\n"
                "        self.x = 0\n"
                "def f():\n"
                "    return C()\n"
            ),
        })
        assert callees(graph, "m:f") == ["m:C.__init__"]

    def test_partial_defers_an_edge(self):
        graph = graph_of({
            "m": (
                "from functools import partial\n"
                "def g(x):\n"
                "    return x\n"
                "def f():\n"
                "    return partial(g, 1)\n"
            ),
        })
        edges = graph.out_edges("m:f")
        assert [e.callee for e in edges if e.kind == "partial"] == ["m:g"]


class TestExports:
    def test_json_and_dot(self):
        graph = graph_of({"a": "def g():\n    return 1\n\ndef f():\n    return g()\n"})
        doc = graph.to_json_dict()
        assert {n["id"] for n in doc["nodes"]} == {"a:f", "a:g"}
        assert doc["edges"][0]["caller"] == "a:f"
        dot = graph.to_dot()
        assert dot.startswith("digraph")
        assert '"a.f" -> "a.g"' in dot
