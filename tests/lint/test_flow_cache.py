"""Incremental cache: warm runs reuse summaries without changing results.

The cache stores per-file summaries keyed by content hash and raw
single-site findings additionally keyed by the project symbol digest;
the flow passes always re-run but start from cached summaries.  The
invariants: a warm run returns byte-identical findings, an edited file
misses alone yet its effects propagate project-wide (the flow passes
see the new summary), and a corrupt or version-skewed cache file is
discarded, never trusted.
"""

import json
import shutil

from repro.lint import lint_paths

from tests.lint.util import FIXTURES

FLOW = FIXTURES / "flow"


def as_tuples(report):
    return [
        (f.rule_id, f.path.rsplit("/repro/", 1)[-1], f.line, f.message)
        for f in report.findings
    ]


def units_tree(tmp_path):
    tree = tmp_path / "units"
    shutil.copytree(FLOW / "units_bad", tree)
    return tree


class TestWarmRuns:
    def test_cold_then_warm_identical_findings(self, tmp_path):
        tree = units_tree(tmp_path)
        cache = tmp_path / "lint-cache.json"
        cold = lint_paths([str(tree)], cache_path=str(cache))
        assert cold.cache_misses == 2 and cold.cache_hits == 0
        assert len(cold.findings) == 2
        warm = lint_paths([str(tree)], cache_path=str(cache))
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert as_tuples(warm) == as_tuples(cold)

    def test_edit_invalidates_one_file_but_flows_everywhere(self, tmp_path):
        tree = units_tree(tmp_path)
        cache = tmp_path / "lint-cache.json"
        lint_paths([str(tree)], cache_path=str(cache))
        # Fix the float leak in the *helper* module: the sink module's
        # file is untouched (cache hit), but the flow pass must still
        # see the new summary and drop both findings.
        convert = tree / "repro" / "telemetry" / "convert.py"
        convert.write_text(
            "def smoothing():\n"
            "    return 0.25\n"
            "\n"
            "\n"
            "def scaled_budget(base_ns):\n"
            "    return int(base_ns * smoothing())\n"
        )
        warm = lint_paths([str(tree)], cache_path=str(cache))
        assert warm.cache_hits == 1 and warm.cache_misses == 1
        assert warm.findings == []

    def test_symbol_change_reclassifies_a_cached_sink(self, tmp_path):
        tree = units_tree(tmp_path)
        cache = tmp_path / "lint-cache.json"
        cold = lint_paths([str(tree)], cache_path=str(cache))
        assert len(cold.findings) == 2
        # Declare the callee's parameter float: the kwarg sink becomes
        # sanctioned, the assignment sink stays a defect.
        budget = tree / "repro" / "core" / "budget.py"
        budget.write_text(
            budget.read_text().replace("deadline_ns: int", "deadline_ns: float")
        )
        warm = lint_paths([str(tree)], cache_path=str(cache))
        messages = [f.message for f in warm.findings]
        assert len(messages) == 1 and "'slice_ns'" in messages[0]


class TestCacheRobustness:
    def test_version_skew_discards_the_cache(self, tmp_path):
        tree = units_tree(tmp_path)
        cache = tmp_path / "lint-cache.json"
        lint_paths([str(tree)], cache_path=str(cache))
        document = json.loads(cache.read_text())
        document["cache_version"] = -1
        cache.write_text(json.dumps(document))
        report = lint_paths([str(tree)], cache_path=str(cache))
        assert report.cache_misses == 2
        assert len(report.findings) == 2

    def test_corrupt_cache_file_is_discarded(self, tmp_path):
        tree = units_tree(tmp_path)
        cache = tmp_path / "lint-cache.json"
        cache.write_text("{not json")
        report = lint_paths([str(tree)], cache_path=str(cache))
        assert report.cache_misses == 2
        assert len(report.findings) == 2

    def test_rule_subset_runs_bypass_the_cache(self, tmp_path):
        tree = units_tree(tmp_path)
        cache = tmp_path / "lint-cache.json"
        report = lint_paths(
            [str(tree)], rules=["flow-unit-escape"], cache_path=str(cache)
        )
        assert len(report.findings) == 2
        assert not cache.exists()


class TestParallelEquivalence:
    def test_jobs_pool_matches_serial(self, tmp_path):
        tree = units_tree(tmp_path)
        serial = lint_paths([str(tree)])
        pooled = lint_paths([str(tree)], jobs=2)
        assert as_tuples(pooled) == as_tuples(serial)

    def test_jobs_pool_with_cache(self, tmp_path):
        tree = units_tree(tmp_path)
        cache = tmp_path / "lint-cache.json"
        cold = lint_paths([str(tree)], cache_path=str(cache), jobs=2)
        warm = lint_paths([str(tree)], cache_path=str(cache), jobs=2)
        assert warm.cache_hits == 2
        assert as_tuples(warm) == as_tuples(cold)
