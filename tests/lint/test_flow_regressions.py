"""Fixed-defect regressions: hot-path allocations the flow pass caught.

First run of ``flow-hot-transitive`` over the shipped tree reported
four helpers allocating per call while reachable from ``@hotpath``
roots.  Three were real defects and were rewritten as plain loops:

* ``TableauScheduler._l2_members`` — built the trailing-policy slice
  with a generator passed to ``list.extend`` on every L2 pick;
* ``Credit2Scheduler._reset_if_needed`` — ran ``all()`` over a
  generator on every credit settlement;
* ``RtdsScheduler._runqueue_census`` — ran ``sum()`` over a generator
  after every deschedule and wakeup.

The fourth (``TableauScheduler._pick_degraded``) is a deliberate
emergency fallback and is marked ``@coldpath``.  These tests pin all
four outcomes at the summary level — against the pre-fix sources,
each of the three functions shows a per-call comprehension/generator
allocation and the first three assertions fail.
"""

import ast

from repro.lint.flow import summarize_module

from tests.lint.util import REPO_ROOT

SCHEDULERS = REPO_ROOT / "src" / "repro" / "schedulers"


def summary_of(filename):
    path = SCHEDULERS / filename
    module = f"repro.schedulers.{filename[:-3]}"
    return summarize_module(module, str(path), ast.parse(path.read_text()), {})


def comprehension_allocs(summary, function):
    fn = summary.functions[function]
    return [a for a in fn.allocs if a.kind == "comprehension" and not a.in_raise]


class TestHotPathDefectsStayFixed:
    def test_tableau_l2_members(self):
        summary = summary_of("tableau.py")
        assert comprehension_allocs(summary, "TableauScheduler._l2_members") == []

    def test_credit2_reset_if_needed(self):
        summary = summary_of("credit2.py")
        assert comprehension_allocs(summary, "Credit2Scheduler._reset_if_needed") == []

    def test_rtds_runqueue_census(self):
        summary = summary_of("rtds.py")
        assert comprehension_allocs(summary, "RtdsScheduler._runqueue_census") == []

    def test_pick_degraded_is_explicitly_cold(self):
        summary = summary_of("tableau.py")
        fn = summary.functions["TableauScheduler._pick_degraded"]
        assert fn.cold, "degraded fallback must stay @coldpath, not silently hot"
