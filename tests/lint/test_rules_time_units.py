"""Time-unit rule family (time-*): positive and negative coverage."""

from repro.lint import lint_source

from tests.lint.util import lint_fixture, rule_ids


class TestTimeUnitFixtures:
    def test_bad_fixture_trips_every_rule(self):
        ids = rule_ids(lint_fixture("repro/sim/time_bad.py"))
        assert "time-float-ns" in ids
        assert "time-truediv-ns" in ids
        assert "time-unit-mismatch" in ids
        assert "time-lossy-div-ns" in ids

    def test_good_fixture_is_clean(self):
        report = lint_fixture("repro/sim/time_good.py")
        assert report.findings == []


class TestFloatNs:
    def test_float_literal_assignment_flagged(self):
        report = lint_source("delay_ns = 1.5\n", module="repro.sim.m")
        assert rule_ids(report) == ["time-float-ns"]

    def test_declared_float_annotation_exempt(self):
        report = lint_source("cost_ns: float = 1.5\n", module="repro.sim.m")
        assert report.findings == []

    def test_module_level_declaration_covers_later_assignments(self):
        source = "mean_ns: float = 0.0\n\n\ndef f(x):\n    global mean_ns\n    mean_ns = x * 0.5\n"
        report = lint_source(source, module="repro.sim.m")
        assert report.findings == []

    def test_int_cast_exempt(self):
        report = lint_source("delay_ns = int(1.5 * 3)\n", module="repro.sim.m")
        assert report.findings == []

    def test_float_into_ns_keyword_flagged(self):
        report = lint_source(
            "engine.at(delay_ns=0.5)\n", module="repro.sim.m"
        )
        assert rule_ids(report) == ["time-float-ns"]

    def test_keyword_of_declared_float_parameter_exempt(self):
        source = (
            "def charge(cost_ns: float) -> None:\n"
            "    pass\n"
            "\n"
            "\n"
            "charge(cost_ns=0.5)\n"
        )
        report = lint_source(source, module="repro.sim.m")
        assert report.findings == []

    def test_rate_suffix_not_treated_as_ns(self):
        report = lint_source("bytes_per_ns = 0.8\n", module="repro.sim.m")
        assert report.findings == []


class TestTrueDivNs:
    def test_truediv_assignment_flagged(self):
        report = lint_source("period_ns = total / n\n", module="repro.core.m")
        assert rule_ids(report) == ["time-truediv-ns"]

    def test_floordiv_ok(self):
        report = lint_source("period_ns = total // n\n", module="repro.core.m")
        assert report.findings == []

    def test_int_wrapped_truediv_ok(self):
        report = lint_source(
            "period_ns = int(total / n)\n", module="repro.core.m"
        )
        assert report.findings == []


class TestLossyDivNs:
    """Products divided in float space under an int(...) cast.

    Regression coverage: the ``int(duration_s * 1e9 / parts)`` form
    (shipped in the campaign shards) passed every time rule because the
    int cast exempts ``time-truediv-ns`` — these tests fail on the
    pre-rule linter.
    """

    def test_product_divided_in_float_space_flagged(self):
        report = lint_source(
            "spacing_ns = int(duration_s * 1e9 / parts)\n",
            module="repro.sim.m",
        )
        assert rule_ids(report) == ["time-lossy-div-ns"]

    def test_flagged_even_inside_outer_call(self):
        report = lint_source(
            "spacing_ns = max(1, int(duration_s * 1e9 / parts))\n",
            module="repro.sim.m",
        )
        assert rule_ids(report) == ["time-lossy-div-ns"]

    def test_flagged_on_ns_keyword(self):
        report = lint_source(
            "probe.run(spacing_ns=int(d * 1e9 / n))\n", module="repro.sim.m"
        )
        assert rule_ids(report) == ["time-lossy-div-ns"]

    def test_plain_rate_inversion_not_flagged(self):
        # int(1e9 / rate) has no product to lose bits from; it is the
        # idiomatic rate inversion and stays exempt.
        report = lint_source(
            "gap_ns = int(1e9 / rate_per_s)\n", module="repro.sim.m"
        )
        assert report.findings == []

    def test_integer_pipeline_not_flagged(self):
        report = lint_source(
            "spacing_ns = seconds_to_ns(duration_s) // parts\n",
            module="repro.sim.m",
        )
        assert report.findings == []


class TestUnitMismatch:
    def test_ms_name_into_ns_parameter_flagged(self):
        report = lint_source(
            "timer.arm(deadline_ns=delay_ms)\n", module="repro.sim.m"
        )
        assert rule_ids(report) == ["time-unit-mismatch"]

    def test_converted_value_ok(self):
        report = lint_source(
            "timer.arm(deadline_ns=delay_ms * 1_000_000)\n",
            module="repro.sim.m",
        )
        assert report.findings == []
