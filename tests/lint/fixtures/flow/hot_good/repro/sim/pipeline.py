"""Good fixture: the hot chain counts in place; rebuilds are ``@coldpath``.

``tally`` walks without allocating, and the allocating ``rebuild``
fallback is explicitly marked cold, which prunes it from the transitive
hot walk (the same escape hatch the shipped schedulers use for their
degraded-mode paths).
"""

from repro.hotpath import coldpath, hotpath


@coldpath
def rebuild(rows):
    return [row for row in rows if row.live]


def tally(rows):
    count = 0
    for row in rows:
        if row.live:
            count += 1
    return count


@hotpath
def drain(rows, scratch):
    if not rows:
        return rebuild(scratch)
    return tally(rows)
