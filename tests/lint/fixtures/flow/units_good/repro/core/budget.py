"""Good fixture: integer-ns discipline held across the helper boundary.

``scaled_budget`` already returns int, and the one deliberately float
quantity (a measured cost) is declared ``cost_ns: float``, which is the
sanctioned escape hatch the symbol table records.
"""

from repro.telemetry.convert import scaled_budget


def arm_timer(deadline_ns: int):
    return deadline_ns


def record_cost(cost_ns: float):
    return cost_ns


def quantum_for(base_ns):
    slice_ns = scaled_budget(base_ns)
    return slice_ns


def schedule(base_ns):
    return arm_timer(deadline_ns=scaled_budget(base_ns))
