"""Good fixture: the helper truncates back to integer ns itself."""


def smoothing():
    return 0.25


def scaled_budget(base_ns):
    return int(base_ns * smoothing())
