"""Good fixture: the same consumers as ``taint_bad``, clean helpers."""

from repro.telemetry.feeds import entropy, node_label, stamp_ns


def plan_epoch(now_ns):
    return stamp_ns(now_ns)


def tie_break(candidates):
    return candidates[int(entropy() * len(candidates))]


def placement_hint(config):
    return node_label(config)
