"""Good fixture: the deterministic twins of ``taint_bad``'s helpers.

Time comes from the caller's engine clock, randomness from a seeded
generator, and configuration from an explicit dict — nothing reads the
host, so calls from deterministic scope are clean.
"""

import random

_RNG = random.Random(1_234)


def stamp_ns(engine_now_ns):
    return engine_now_ns


def entropy():
    return _RNG.random()


def node_label(config):
    return config.get("node_label", "")
