"""Bad fixture: nondeterministic helpers outside the deterministic scope.

None of these functions is a finding on its own (``repro.telemetry`` is
not in DETERMINISM_SCOPE); the taint only becomes a defect when an
in-scope module calls them — which is exactly what the single-site
``det-*`` rules cannot see and the ``flow-taint-*`` passes can.
"""

import os
import random
import time


def raw_stamp():
    return time.time()


def stamp_ns():
    # The int() cast does not launder wall-clock taint.
    return int(raw_stamp() * 1e9)


def entropy():
    return random.random()


def node_label():
    return os.environ.get("NODE_LABEL", "")
