"""Bad fixture: in-scope consumers laundering taint through helpers.

``repro.core`` is inside DETERMINISM_SCOPE, so every call below pulls a
nondeterministic value across the scope boundary: wall clock via two
hops (``stamp_ns`` -> ``raw_stamp`` -> ``time.time``), unseeded RNG via
``entropy``, and host environment via ``node_label``.
"""

from repro.telemetry.feeds import entropy, node_label, stamp_ns


def plan_epoch():
    return stamp_ns()


def tie_break(candidates):
    return candidates[int(entropy() * len(candidates))]


def placement_hint():
    return node_label()
