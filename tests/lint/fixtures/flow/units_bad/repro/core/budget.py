"""Bad fixture: float values escaping into integer-nanosecond names.

``scaled_budget`` returns float (through the ``smoothing`` helper in
another module), and this module binds that result to ``*_ns`` names —
once by assignment, once as a keyword argument to a callee whose
``deadline_ns`` parameter is integer-typed.
"""

from repro.telemetry.convert import scaled_budget


def arm_timer(deadline_ns: int):
    return deadline_ns


def quantum_for(base_ns):
    slice_ns = scaled_budget(base_ns)
    return slice_ns


def schedule(base_ns):
    return arm_timer(deadline_ns=scaled_budget(base_ns))
