"""Bad fixture: float-producing helpers two hops from any ``*_ns`` name.

``smoothing`` returns a float literal; ``scaled_budget`` multiplies an
integer budget by it and so returns float transitively.  Neither module
mentions a ``*_ns`` sink, so the single-site ``time-*`` rules stay
silent here.
"""


def smoothing():
    return 0.25


def scaled_budget(base_ns):
    return base_ns * smoothing()
