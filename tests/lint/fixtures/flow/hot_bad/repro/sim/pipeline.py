"""Bad fixture: allocation reached transitively from a ``@hotpath`` root.

``census`` builds a list per call.  It carries no marker itself, so the
single-site ``hot-*`` rules ignore it — but it is two call hops below
the ``@hotpath`` root ``drain``, which is exactly the laundering the
``flow-hot-transitive`` pass exists to catch.
"""

from repro.hotpath import hotpath


def census(rows):
    return [row for row in rows if row.live]


def tally(rows):
    return len(census(rows))


@hotpath
def drain(rows):
    return tally(rows)
