"""Good fixture: the journal protocol observed.

Every observable mutation sits between the WAL append and the commit
marker; the crashpoint lands after the WAL append so the campaign only
exercises journaled states; the early-return rejection counter is
off the commit path entirely (the suite ends by exiting).
"""

from repro.faults.crash import crashpoint


class Controller:
    def __init__(self, journal, store):
        self._journal = journal
        self._store = store
        self._accepted = 0
        self._rejected = 0

    def admit(self, request):
        if not request.valid:
            self._rejected += 1
            return False
        self._journal.append_request(request)
        crashpoint("controller-admit")
        self._store.apply(request)
        self._accepted += 1
        self._journal.append_commit(request)
        return True
