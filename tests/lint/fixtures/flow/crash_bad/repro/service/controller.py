"""Bad fixture: observable effects outside the journal's crash window.

Three protocol violations for the crash-consistency passes:

* ``admit`` mutates accepted-count state *before* the WAL append — a
  crash between the two loses the effect with no record to replay.
* ``settle`` mutates *after* the commit marker — replay after a crash
  there double-applies the effect.
* ``enroll`` consults a crashpoint before the WAL append, so the crash
  campaign exercises a state the journal never covers.
"""

from repro.faults.crash import crashpoint


class Controller:
    def __init__(self, journal, store):
        self._journal = journal
        self._store = store
        self._accepted = 0
        self._settled = 0

    def admit(self, request):
        self._accepted += 1
        self._journal.append_request(request)
        self._store.apply(request)
        self._journal.append_commit(request)

    def settle(self, request):
        self._journal.append_request(request)
        self._store.apply(request)
        self._journal.append_commit(request)
        self._settled += 1

    def enroll(self, request):
        crashpoint("controller-enroll")
        self._journal.append_request(request)
        self._store.apply(request)
        self._journal.append_commit(request)
