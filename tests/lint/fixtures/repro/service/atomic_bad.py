"""Fixture: durable writes that tear on crash (err-nonatomic-write)."""

from pathlib import Path


def save_report(path, payload):
    with open(path, "w", encoding="utf-8") as handle:  # truncating mode
        handle.write(payload)


def save_log(path, resume, payload):
    # Conditional mode that can evaluate to "w" — still truncating.
    handle = open(path, "a" if resume else "w", encoding="utf-8")
    handle.write(payload)
    handle.close()


def save_exclusive(path, payload):
    with open(path, mode="xb") as handle:  # exclusive-create truncates too
        handle.write(payload)


def save_bytes(path, payload):
    Path(path).write_bytes(payload)  # in-place truncation


def save_text(path, payload):
    Path(path).write_text(payload)  # in-place truncation
