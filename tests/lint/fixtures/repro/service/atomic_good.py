"""Fixture: durable writes done right — atomic helper or append-only."""

from repro.core.atomicio import atomic_write_bytes, atomic_write_text


def save_report(path, payload):
    atomic_write_text(path, payload)


def save_entry(path, header, body):
    atomic_write_bytes(path, header + body)


def append_journal(path, frame):
    # Append-only files are exempt: appending is their atomicity story.
    with open(path, "ab") as handle:
        handle.write(frame)


def read_back(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def read_default_mode(path):
    with open(path) as handle:
        return handle.read()
