"""Known-good error-handling fixture: transactional mutation."""

from repro.errors import ReproError


class Toolstack:
    def __init__(self, registry, daemon, log):
        self.registry = registry
        self.daemon = daemon
        self.log = log

    def create_vm(self, spec):
        self.registry.add(spec)
        try:
            self.daemon.replan(self.registry.specs)
        except ReproError:
            self.registry.remove(spec.name)
            raise

    def probe(self):
        try:
            self.daemon.replan(self.registry.specs)
        except ReproError as error:
            self.log.append(error)
