"""Known-bad error-handling fixture: every err-* rule must fire."""


class Toolstack:
    def __init__(self, registry, daemon):
        self.registry = registry
        self.daemon = daemon

    def create_vm(self, spec):
        self.registry.add(spec)  # mutation with no rollback protection
        self.daemon.replan(self.registry.specs)  # err-registry-rollback

    def probe(self):
        try:
            self.daemon.replan(self.registry.specs)
        except:  # err-bare-except  # noqa: E722
            pass

    def ignore(self):
        try:
            self.daemon.replan(self.registry.specs)
        except ReproError:  # err-swallowed-error  # noqa: F821
            pass
