"""Known-bad layering fixture: health bypassing the PlannerDaemon."""

from repro.core import Planner  # lay-import (name smuggle)  # noqa: F401
from repro.core.planner import PlanResult  # lay-import  # noqa: F401
