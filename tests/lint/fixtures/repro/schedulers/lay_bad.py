"""Known-bad layering fixture: a scheduler importing the control plane."""

from repro.xen.toolstack import Toolstack  # lay-import  # noqa: F401
