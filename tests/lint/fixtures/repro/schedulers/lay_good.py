"""Known-good layering fixture: schedulers consume planner artifacts."""

from repro.core.table import SystemTable


def cores_of(system: SystemTable):
    return sorted(system.cores)
