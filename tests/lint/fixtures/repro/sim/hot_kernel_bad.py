"""Known-bad arraycore-style kernel: allocation inside the playback loop.

The compiled-kernel pattern (``repro.sim.arraycore``) binds all hot
state as default arguments at factory time; the kernel body then runs
allocation-free.  This fixture does it wrong in every way the hot-*
family bans: per-call comprehension over the segment columns, a closure
rebuilt per dispatch, f-string trace labels, and *-unpacked calls.
"""


def hotpath(func):
    return func


def compile_kernel(seg_ends, seg_vcpu, cursors, tracer):
    @hotpath
    def kernel(cpu, seg_ends=seg_ends, seg_vcpu=seg_vcpu, cursors=cursors):
        # hot-comprehension: rebuilds a list every table playback step.
        live = [end for end in seg_ends[cpu] if end > cursors[cpu]]
        # hot-closure: a fresh cell + function object per dispatch.
        pick = lambda index: seg_vcpu[cpu][index]  # noqa: E731
        # hot-fstring: per-call label assembly on the dispatch path.
        label = f"cpu{cpu}@{cursors[cpu]}"
        # hot-star-args: tuple packing per trace record.
        tracer.record(*live)
        return pick, label

    return kernel


def compile_wake(queues):
    @hotpath
    def wake(vcpu, *cores):  # hot-star-args at the def site
        for core in cores:
            queues[core].append(vcpu)

    return wake
