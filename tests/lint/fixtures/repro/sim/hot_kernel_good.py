"""Known-good arraycore-style kernel: all allocation at factory time.

The factory itself is cold code — comprehensions and f-strings are fine
there — and everything the kernel touches per call is bound once as a
default argument, so the marked body is pure index arithmetic over
preallocated columns.
"""


def hotpath(func):
    return func


def compile_kernel(program, cpu):
    # Cold: runs once per table compile, never per dispatch.
    seg_ends = [int(end) for end in program.segment_ends(cpu)]
    seg_vcpu = list(program.segment_vcpus(cpu))
    label = f"cpu{cpu}"

    @hotpath
    def kernel(
        now,
        seg_ends=seg_ends,
        seg_vcpu=seg_vcpu,
        cursors=program.cursors,
        index=cpu,
        record=program.tracer.record,
    ):
        cursor = cursors[index]
        while seg_ends[cursor] <= now:
            cursor += 1
        cursors[index] = cursor
        record(now, index, seg_vcpu[cursor])
        return seg_vcpu[cursor]

    kernel.__name__ = "kernel_" + label
    return kernel
