"""Known-good determinism fixture: seeded RNG, ordered iteration."""

import random


def jitter(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random()


def drain(items):
    pending = {item for item in items}
    for item in sorted(pending):
        yield item


def steal(ordered_mapping):
    return ordered_mapping.popitem(last=False)
