"""Known-bad determinism fixture: every det-* rule must fire."""

import os
import random
import time


def jitter() -> float:
    return random.random()  # det-unseeded-rng


def now() -> float:
    return time.time()  # det-wallclock


def tuning() -> int:
    if os.environ.get("REPRO_FAST"):  # det-env-branch
        return 1
    return 2


def drain(items):
    pending = {item for item in items}
    for item in pending:  # det-unordered-iter
        yield item


def steal(mapping):
    return mapping.popitem()  # det-unordered-iter
