"""Known-bad hot-path fixture: every hot-* rule must fire."""


def hotpath(func):
    return func


@hotpath
def dispatch(queue, cores):
    ready = [vcpu for vcpu in queue]  # hot-comprehension
    order = lambda vcpu: vcpu.deadline  # hot-closure  # noqa: E731
    label = f"ready={len(ready)}"  # hot-fstring
    queue.tickle(*cores)  # hot-star-args
    return ready, order, label


@hotpath
def burst(*samples):  # hot-star-args (def site)
    total = 0
    for sample in samples:
        total += sample
    return total
