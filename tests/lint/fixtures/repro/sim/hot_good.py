"""Known-good hot-path fixture: marked bodies are allocation-free."""


def hotpath(func):
    return func


@hotpath
def dispatch(queue):
    best = None
    for vcpu in queue:
        if best is None or vcpu.deadline < best.deadline:
            best = vcpu
    return best


def cold_path(queue):
    # Unmarked functions may allocate freely.
    return [vcpu.name for vcpu in queue]
