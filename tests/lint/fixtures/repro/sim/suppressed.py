"""Bad patterns silenced by allow-comments — must lint clean."""

import time


def now() -> float:
    return time.time()  # repro: allow[det-wallclock] -- exercises trailing form


def steal(mapping):
    # repro: allow[det-unordered-iter] -- exercises the line-above form
    return mapping.popitem()


def multi(mapping, delay_ms):
    # Comma-separated ids on one comment cover several rules at once.
    # repro: allow[time-unit-mismatch, time-float-ns]
    mapping.schedule(deadline_ns=delay_ms, grace_ns=0.5)
