"""Known-good time-unit fixture: integer ticks, declared-float stats."""

US = 1_000


def settle(now_ns: int, vcpus: int) -> int:
    budget_ns = 1_500 * US
    slice_ns = budget_ns // max(vcpus, 1)
    return now_ns + slice_ns


def quantize(total_ns: int, parts: int) -> int:
    # An explicit int(...) cast marks a deliberate unit boundary.
    chunk_ns = int(total_ns / parts)
    return chunk_ns


class LatencyStats:
    # Measured quantities are floats and say so with an annotation.
    mean_ns: float = 0.0

    def record(self, sample_ns: float) -> None:
        self.mean_ns = (self.mean_ns + sample_ns) / 2
