"""Known-bad time-unit fixture: every time-* rule must fire."""


def settle(now_ns: int, vcpus: int) -> int:
    budget_ns = 1_500.0  # time-float-ns
    slice_ns = budget_ns / vcpus  # time-truediv-ns
    return now_ns + int(slice_ns)


def arm(timer, delay_ms: int) -> None:
    timer.schedule(deadline_ns=delay_ms)  # time-unit-mismatch
