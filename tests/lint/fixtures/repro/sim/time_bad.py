"""Known-bad time-unit fixture: every time-* rule must fire."""


def settle(now_ns: int, vcpus: int) -> int:
    budget_ns = 1_500.0  # time-float-ns
    slice_ns = budget_ns / vcpus  # time-truediv-ns
    return now_ns + int(slice_ns)


def arm(timer, delay_ms: int) -> None:
    timer.schedule(deadline_ns=delay_ms)  # time-unit-mismatch


def spread(duration_s: float, parts: int) -> int:
    # The exact form the campaign shards used to ship: the product is
    # exact but the division happens in float space.
    spacing_ns = max(1, int(duration_s * 1e9 / parts))  # time-lossy-div-ns
    return spacing_ns
