"""Layering rule (lay-import): positive and negative coverage."""

from repro.lint import lint_source

from tests.lint.util import lint_fixture, rule_ids


class TestLayeringFixtures:
    def test_scheduler_importing_xen_flagged(self):
        ids = rule_ids(lint_fixture("repro/schedulers/lay_bad.py"))
        assert ids == ["lay-import"]

    def test_scheduler_importing_core_ok(self):
        report = lint_fixture("repro/schedulers/lay_good.py")
        assert report.findings == []

    def test_health_reaching_planner_flagged(self):
        ids = rule_ids(lint_fixture("repro/health/lay_bad.py"))
        assert ids == ["lay-import", "lay-import"]


class TestLayeringEdges:
    def test_core_importing_sim_flagged(self):
        report = lint_source(
            "from repro.sim.engine import SimEngine\n", module="repro.core.m"
        )
        assert rule_ids(report) == ["lay-import"]

    def test_sim_importing_schedulers_flagged(self):
        report = lint_source(
            "import repro.schedulers.tableau\n", module="repro.sim.m"
        )
        assert rule_ids(report) == ["lay-import"]

    def test_type_checking_import_exempt(self):
        source = (
            "from typing import TYPE_CHECKING\n"
            "\n"
            "if TYPE_CHECKING:\n"
            "    from repro.schedulers.base import Scheduler\n"
        )
        report = lint_source(source, module="repro.sim.m")
        assert report.findings == []

    def test_relative_import_resolved(self):
        # ``from ..xen import toolstack`` inside repro.schedulers.m is
        # still a schedulers -> xen edge.
        report = lint_source(
            "from ..xen import toolstack\n", module="repro.schedulers.m"
        )
        assert rule_ids(report) == ["lay-import"]

    def test_non_repro_module_ignored(self):
        report = lint_source(
            "from repro.xen.toolstack import Toolstack\n",
            path="examples/demo.py",
            module="examples.demo",
        )
        assert report.findings == []
