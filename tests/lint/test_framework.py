"""Framework behavior: suppressions, registry, driver, reporters."""

import json

import pytest

from repro.lint import (
    discover_files,
    format_human,
    format_json,
    iter_rules,
    lint_paths,
    lint_source,
    rule_ids,
)

from tests.lint.util import lint_fixture


class TestSuppressions:
    def test_trailing_allow_comment(self):
        source = "import time\nt = time.time()  # repro: allow[det-wallclock]\n"
        report = lint_source(source, module="repro.sim.m")
        assert report.findings == []
        assert report.suppressed == 1

    def test_allow_comment_on_line_above(self):
        source = (
            "import time\n"
            "# repro: allow[det-wallclock] -- reason text is free-form\n"
            "t = time.time()\n"
        )
        report = lint_source(source, module="repro.sim.m")
        assert report.findings == []
        assert report.suppressed == 1

    def test_wrong_rule_id_does_not_silence(self):
        source = "import time\nt = time.time()  # repro: allow[det-env-branch]\n"
        report = lint_source(source, module="repro.sim.m")
        assert [f.rule_id for f in report.findings] == ["det-wallclock"]
        assert report.suppressed == 0

    def test_comma_separated_ids(self):
        report = lint_fixture("repro/sim/suppressed.py")
        assert report.findings == []
        assert report.suppressed >= 4

    def test_suppressions_do_not_fail_the_run(self):
        source = "import time\nt = time.time()  # repro: allow[det-wallclock]\n"
        report = lint_source(source, module="repro.sim.m")
        assert report.ok
        assert report.exit_code == 0


class TestRegistry:
    def test_all_families_registered(self):
        families = {rule.family for rule in iter_rules()}
        assert {
            "determinism",
            "time-units",
            "hot-path",
            "error-handling",
            "layering",
        } <= families

    def test_rule_ids_are_kebab_case(self):
        for rule_id in rule_ids():
            assert rule_id == rule_id.lower()
            assert " " not in rule_id

    def test_rule_selection(self):
        selected = list(iter_rules(["det-wallclock"]))
        assert [rule.id for rule in selected] == ["det-wallclock"]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            list(iter_rules(["no-such-rule"]))


class TestDriver:
    def test_discover_skips_pycache_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.py").write_text("x = 1\n")
        found = discover_files([str(tmp_path)])
        assert [f.rsplit("/", 1)[-1] for f in found] == ["a.py", "b.py"]

    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = lint_paths([str(bad)])
        assert report.parse_errors == 1
        assert [f.rule_id for f in report.findings] == ["lint-parse-error"]
        assert report.exit_code != 0

    def test_findings_sorted_by_location(self):
        source = "import time\nb_ns = 1.5\nt = time.time()\n"
        report = lint_source(source, module="repro.sim.m")
        locations = [(f.line, f.col) for f in report.findings]
        assert locations == sorted(locations)


class TestReporters:
    def test_human_format_has_location_and_rule(self):
        report = lint_source(
            "import time\nt = time.time()\n", path="pkg/m.py", module="repro.sim.m"
        )
        text = format_human(report)
        assert "pkg/m.py:2:5: det-wallclock" in text
        assert "1 finding(s)" in text

    def test_human_format_clean(self):
        report = lint_source("x = 1\n")
        assert "clean" in format_human(report)

    def test_json_format_round_trips(self):
        report = lint_source(
            "import time\nt = time.time()\n", path="pkg/m.py", module="repro.sim.m"
        )
        document = json.loads(format_json(report))
        assert document["ok"] is False
        assert document["files_checked"] == 1
        (finding,) = document["findings"]
        assert finding["rule"] == "det-wallclock"
        assert finding["path"] == "pkg/m.py"
        assert finding["line"] == 2
        assert finding["col"] == 5
