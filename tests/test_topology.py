"""Tests for machine topology descriptions."""

import pytest

from repro.errors import ConfigurationError
from repro.topology import Topology, uniform, xeon_16core, xeon_48core


class TestPaperPlatforms:
    def test_16core_shape(self):
        topo = xeon_16core()
        assert topo.num_cores == 16
        assert topo.sockets == 2
        assert len(topo.guest_cores) == 12  # 4 reserved for dom0

    def test_48core_shape(self):
        topo = xeon_48core()
        assert topo.num_cores == 48
        assert topo.sockets == 4
        assert len(topo.guest_cores) == 44

    def test_dom0_cores_are_lowest(self):
        assert xeon_16core().reserved_cores == (0, 1, 2, 3)

    def test_custom_dom0_reservation(self):
        topo = xeon_16core(reserved_for_dom0=2)
        assert len(topo.guest_cores) == 14


class TestSocketMapping:
    def test_socket_of(self):
        topo = xeon_16core()
        assert topo.socket_of(0) == 0
        assert topo.socket_of(7) == 0
        assert topo.socket_of(8) == 1
        assert topo.socket_of(15) == 1

    def test_same_socket(self):
        topo = xeon_16core()
        assert topo.same_socket(4, 7)
        assert not topo.same_socket(7, 8)

    def test_cores_of_socket(self):
        topo = xeon_48core()
        assert topo.cores_of_socket(1) == list(range(12, 24))

    def test_socket_map_covers_all_cores(self):
        topo = xeon_48core()
        assert set(topo.socket_map) == set(range(48))

    def test_out_of_range_core_rejected(self):
        with pytest.raises(ConfigurationError):
            xeon_16core().socket_of(16)


class TestValidation:
    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(sockets=0, cores_per_socket=8)

    def test_reserving_everything_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(sockets=1, cores_per_socket=2, reserved_cores=(0, 1))

    def test_reserved_core_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(sockets=1, cores_per_socket=2, reserved_cores=(5,))

    def test_uniform_requires_even_split(self):
        with pytest.raises(ConfigurationError):
            uniform(10, sockets=3)

    def test_uniform_defaults(self):
        topo = uniform(8)
        assert topo.num_cores == 8
        assert topo.sockets == 1
        assert topo.guest_cores == list(range(8))
