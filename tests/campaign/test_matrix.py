"""Tests for campaign matrix declaration, expansion, and loading."""

import json

import pytest

from repro.campaign import (
    BUILTIN_MATRICES,
    CampaignMatrix,
    fig6_matrix,
    load_matrix,
    resolve_topology,
)
from repro.errors import ConfigurationError


class TestResolveTopology:
    def test_named_machines(self):
        assert resolve_topology("16core").num_cores == 16
        assert resolve_topology("48core").num_cores == 48

    def test_plain_and_socketed_counts(self):
        assert resolve_topology("8").num_cores == 8
        topo = resolve_topology("8x2")
        assert topo.num_cores == 8 and topo.sockets == 2


class TestExpansion:
    def test_canonical_order_and_ids(self):
        matrix = CampaignMatrix(
            schedulers=("credit", "tableau"),
            vm_counts=(8,),
            seeds=(1, 2),
            presets=("none", "lost-ipi"),
            topology="4",
        )
        shards = matrix.expand()
        assert len(shards) == 8
        assert [s.index for s in shards] == list(range(8))
        # scheduler is the slowest axis, preset the fastest.
        assert shards[0].shard_id == "0000.credit.v8.s1.none"
        assert shards[1].shard_id == "0001.credit.v8.s1.lost-ipi"
        assert shards[4].scheduler == "tableau"
        # Specs inherit the matrix-wide knobs.
        assert all(s.latency_ms == 20.0 for s in shards)
        assert all(s.duration_s == 0.5 for s in shards)

    def test_zero_vm_count_means_paper_density(self):
        matrix = CampaignMatrix(
            schedulers=("credit",), vm_counts=(0,), topology="4"
        )
        assert matrix.default_vm_count() == 4 * len(
            resolve_topology("4").guest_cores
        )
        assert matrix.expand()[0].num_vms == matrix.default_vm_count()

    def test_ids_are_unique(self):
        shards = fig6_matrix(seeds=(1, 2, 3)).expand()
        assert len({s.shard_id for s in shards}) == len(shards)


class TestValidation:
    def test_unknown_probe(self):
        with pytest.raises(ConfigurationError):
            CampaignMatrix(probe="uart")

    def test_unknown_scheduler(self):
        with pytest.raises(ConfigurationError):
            CampaignMatrix(schedulers=("credit", "cfs"))

    def test_credit2_needs_uncapped(self):
        with pytest.raises(ConfigurationError):
            CampaignMatrix(schedulers=("credit2",), capped=True)

    def test_rtds_needs_capped(self):
        with pytest.raises(ConfigurationError):
            CampaignMatrix(schedulers=("rtds",), capped=False)

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError):
            CampaignMatrix(presets=("meteor-strike",))

    def test_empty_axis(self):
        with pytest.raises(ConfigurationError):
            CampaignMatrix(seeds=())

    def test_nonpositive_duration_and_latency(self):
        with pytest.raises(ConfigurationError):
            CampaignMatrix(duration_s=0)
        with pytest.raises(ConfigurationError):
            CampaignMatrix(latency_ms=0)

    def test_bad_topology_token(self):
        with pytest.raises(ValueError):
            CampaignMatrix(topology="moon")


class TestSerialization:
    def test_json_round_trip(self):
        matrix = CampaignMatrix(
            name="rt", schedulers=("credit", "rtds"), capped=True,
            seeds=(7,), presets=("none",), topology="4", latency_ms=30.0,
        )
        again = CampaignMatrix.from_dict(json.loads(matrix.to_json()))
        assert again == matrix

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown matrix key"):
            CampaignMatrix.from_dict({"schedulres": ["credit"]})

    def test_axes_must_be_lists(self):
        with pytest.raises(ConfigurationError, match="must be a list"):
            CampaignMatrix.from_dict({"seeds": 42})

    def test_from_file(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(
            json.dumps({"schedulers": ["tableau"], "topology": "4"})
        )
        assert load_matrix(str(path)).schedulers == ("tableau",)

    def test_file_must_hold_object(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="object"):
            load_matrix(str(path))


class TestLoadMatrix:
    def test_builtins_build(self):
        for name in BUILTIN_MATRICES:
            assert load_matrix(name).name

    def test_unknown_token(self):
        with pytest.raises(ConfigurationError, match="neither a builtin"):
            load_matrix("no-such-matrix")
