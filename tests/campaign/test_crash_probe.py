"""The campaign's crash-recovery probe: seeded crash/recover cycles
per cell, byte-verified against the uninterrupted run."""

import pytest

from repro.campaign.matrix import (
    CampaignMatrix,
    crash_recovery_matrix,
    load_matrix,
)
from repro.campaign.report import aggregate_json
from repro.campaign.runner import run_campaign
from repro.campaign.shard import CRASH_CYCLES, run_shard
from repro.errors import ConfigurationError
from repro.faults import SERVICE_CRASHPOINTS


def crash_matrix(**overrides) -> CampaignMatrix:
    kwargs = dict(
        name="crash",
        probe="crash-recovery",
        schedulers=("tableau",),
        vm_counts=(10,),
        seeds=(42,),
        topology="8",
        duration_s=20.0,
        arrival_rates=(6.0,),
        batch_windows_ms=(1000.0,),
    )
    kwargs.update(overrides)
    return CampaignMatrix(**kwargs)


class TestMatrix:
    def test_builtin_matrices_load(self):
        assert load_matrix("crash-recovery").probe == "crash-recovery"
        smoke = load_matrix("crash-smoke")
        assert smoke.probe == "crash-recovery"
        assert len(smoke.expand()) == 1

    def test_shard_ids_carry_the_service_axes(self):
        spec = crash_matrix().expand()[0]
        assert spec.shard_id == "0000.tableau.v10.s42.none.a6.w1000"
        assert spec.arrival_rate == 6.0
        assert spec.batch_window_ms == 1000.0

    def test_rejects_fault_presets_health_and_array(self):
        with pytest.raises(ConfigurationError):
            crash_matrix(presets=("chaos-lite",))
        with pytest.raises(ConfigurationError):
            crash_matrix(health=True)
        with pytest.raises(ConfigurationError):
            crash_matrix(engines=("array",))

    def test_default_matrix_shape(self):
        matrix = crash_recovery_matrix()
        assert matrix.schedulers == ("tableau",)
        assert len(matrix.expand()) == 2  # two seeds


class TestShard:
    def test_every_cycle_recovers_byte_identical(self):
        record = run_shard(crash_matrix().expand()[0])
        assert record["status"] == "ok"
        metrics = record["metrics"]
        assert metrics["cycles"] == CRASH_CYCLES
        assert metrics["identical_cycles"] == CRASH_CYCLES
        assert metrics["crashes"] >= CRASH_CYCLES
        cycles = metrics["crash_cycles"]
        assert len(cycles) == CRASH_CYCLES
        for i, cycle in enumerate(cycles):
            # Point rotation: (seed + i) % len, call index i + 1.
            expected = SERVICE_CRASHPOINTS[
                (42 + i) % len(SERVICE_CRASHPOINTS)
            ]
            assert cycle["point"] == expected
            assert cycle["call"] == i + 1
            assert cycle["identical"] is True
            assert cycle["fsck"]["clean"] is True

    def test_campaign_runs_and_aggregates_deterministically(self):
        matrix = crash_matrix()
        first = run_campaign(matrix, workers=1)
        second = run_campaign(matrix, workers=1)
        assert first.ok and second.ok
        assert aggregate_json(first.aggregate) == aggregate_json(
            second.aggregate
        )
