"""Campaign runner timeout accounting: shared deadlines, no pool stall.

Regression tests for two entangled bugs in the old ``_run_parallel``:

1. **Deadline leakage** — futures were awaited in submission order with
   ``future.result(timeout=shard_timeout_s)`` each, so every await
   restarted the clock and a slow early shard silently granted all
   later shards its elapsed time; a queue of N hung shards took
   N*timeout wall-clock.
2. **Timed-out-shard stall** — after a timeout the runner called
   ``future.cancel()`` (a no-op on a running task) and then blocked in
   the executor's ``__exit__``, which waits for every worker, so the
   campaign queued behind the very shard it had just declared dead.

The pool workers here are forked children, so monkeypatching
``repro.campaign.runner.run_shard`` in the parent is inherited — the
stand-ins below must be module-level (picklable by reference).
"""

import time

from repro.campaign import CampaignMatrix, run_campaign
from repro.campaign.shard import run_shard as real_run_shard


def tiny_matrix(**overrides):
    defaults = dict(
        name="deadline",
        probe="intrinsic",
        schedulers=("credit",),
        vm_counts=(4,),
        seeds=(42, 43, 44),
        topology="2",
        duration_s=0.005,
    )
    defaults.update(overrides)
    return CampaignMatrix(**defaults)


def _hang(spec, cache_dir):
    """A shard that outlives any reasonable deadline (but not the test)."""
    time.sleep(5.0)
    return real_run_shard(spec, None)


def _hang_first_seed(spec, cache_dir):
    """Seed 42 hangs; every other shard is an ordinary fast run."""
    if spec.seed == 42:
        time.sleep(5.0)
    return real_run_shard(spec, None)


class TestSharedDeadline:
    def test_hung_round_costs_one_deadline_not_n(self, monkeypatch):
        """Three hung shards, two workers: two deadlines, no worker join.

        Round 1 runs two shards to the shared 0.4s deadline and requeues
        the never-started third; round 2 times that one out.  Fails on
        the pre-fix runner, where each await restarted the clock (0.4s
        per shard, serialized) and the pool ``__exit__`` then joined the
        hung workers for the rest of their 5s sleeps.
        """
        monkeypatch.setattr("repro.campaign.runner.run_shard", _hang)
        started = time.monotonic()
        result = run_campaign(tiny_matrix(), workers=2, shard_timeout_s=0.4)
        wall = time.monotonic() - started
        assert not result.ok
        assert wall < 2.5  # pre-fix: >= 5s (joins the hung workers)
        statuses = [r["status"] for r in result.records]
        assert statuses == ["timeout", "timeout", "timeout"]

    def test_fast_siblings_of_a_hung_shard_still_succeed(self, monkeypatch):
        """A hung shard must not take its round's finished siblings down.

        With two workers, seed 42 hangs while 43 runs (and finishes)
        beside it; 44 never starts.  The deadline sweep must harvest
        43's completed result and requeue 44, recording a timeout only
        for 42.  Fails on the pre-fix runner, which blocked in the pool
        ``__exit__`` behind the hung worker (~5s here) before later
        shards were even looked at.
        """
        monkeypatch.setattr(
            "repro.campaign.runner.run_shard", _hang_first_seed
        )
        started = time.monotonic()
        result = run_campaign(tiny_matrix(), workers=2, shard_timeout_s=1.0)
        wall = time.monotonic() - started
        assert wall < 4.0  # did not wait out the 5s hang
        by_seed = {r["spec"]["seed"]: r["status"] for r in result.records}
        assert by_seed[42] == "timeout"
        assert by_seed[43] == "ok"
        assert by_seed[44] == "ok"
        assert result.failures == [f"{result.records[0]['shard']}: timeout"]

    def test_timeout_round_does_not_block_pool_exit(self, monkeypatch):
        """Wall-clock stays near the deadline, not the shard runtime.

        Fails on the pre-fix runner: ``with ProcessPoolExecutor(...)``
        joined the hung worker on exit, so a 0.3s timeout still cost
        the full 5s sleep.
        """
        monkeypatch.setattr("repro.campaign.runner.run_shard", _hang)
        started = time.monotonic()
        result = run_campaign(
            tiny_matrix(seeds=(42,)), workers=2, shard_timeout_s=0.3
        )
        wall = time.monotonic() - started
        assert wall < 2.5
        assert result.records[0]["status"] == "timeout"

    def test_requeued_shards_keep_their_records_in_matrix_order(
        self, monkeypatch
    ):
        monkeypatch.setattr("repro.campaign.runner.run_shard", _hang)
        result = run_campaign(tiny_matrix(), workers=2, shard_timeout_s=0.2)
        assert [r["spec"]["seed"] for r in result.records] == [42, 43, 44]
        assert all(r["status"] == "timeout" for r in result.records)
