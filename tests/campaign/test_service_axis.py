"""The campaign matrix's service scenario axis.

Service campaigns sweep arrival rate x batch window x scheduler; the
axes are defaulted/validated per probe, shard ids carry the cell's
coordinates, and the deterministic aggregate stays byte-identical
across worker counts like every other probe.
"""

import pytest

from repro.campaign.matrix import CampaignMatrix, load_matrix
from repro.campaign.report import aggregate_json
from repro.campaign.runner import run_campaign
from repro.campaign.shard import run_shard
from repro.errors import ConfigurationError


def service_matrix(**overrides) -> CampaignMatrix:
    kwargs = dict(
        name="svc",
        probe="service",
        schedulers=("tableau",),
        vm_counts=(8,),
        seeds=(42,),
        topology="4",
        duration_s=20.0,
        arrival_rates=(4.0,),
        batch_windows_ms=(500.0,),
    )
    kwargs.update(overrides)
    return CampaignMatrix(**kwargs)


class TestMatrixAxes:
    def test_expansion_covers_rate_x_window(self):
        matrix = service_matrix(
            schedulers=("credit", "tableau"),
            arrival_rates=(2.0, 8.0),
            batch_windows_ms=(250.0, 1000.0),
        )
        shards = matrix.expand()
        assert len(shards) == 2 * 2 * 2
        assert shards[0].shard_id == "0000.credit.v8.s42.none.a2.w250"
        assert shards[-1].shard_id == "0007.tableau.v8.s42.none.a8.w1000"
        assert shards[0].arrival_rate == 2.0
        assert shards[-1].batch_window_ms == 1000.0

    def test_service_axes_default_when_omitted(self):
        matrix = service_matrix(arrival_rates=(), batch_windows_ms=())
        assert matrix.arrival_rates == (4.0,)
        assert matrix.batch_windows_ms == (1000.0,)

    def test_non_service_probe_rejects_service_axes(self):
        with pytest.raises(ConfigurationError):
            service_matrix(probe="ping", batch_windows_ms=(500.0,))

    def test_non_service_shards_carry_zeroed_axes(self):
        matrix = CampaignMatrix(probe="ping", topology="4", vm_counts=(8,))
        spec = matrix.expand()[0]
        assert spec.arrival_rate == 0.0
        assert spec.batch_window_ms == 0.0
        assert ".a" not in spec.shard_id

    def test_service_rejects_fault_presets_health_and_array(self):
        with pytest.raises(ConfigurationError):
            service_matrix(presets=("chaos-lite",))
        with pytest.raises(ConfigurationError):
            service_matrix(health=True)
        with pytest.raises(ConfigurationError):
            service_matrix(engines=("array",))

    def test_from_dict_tuples_the_service_axes(self):
        matrix = CampaignMatrix.from_dict(
            {
                "probe": "service",
                "schedulers": ["tableau"],
                "vm_counts": [8],
                "topology": "4",
                "arrival_rates": [2.0, 4.0],
                "batch_windows_ms": [500.0],
            }
        )
        assert matrix.arrival_rates == (2.0, 4.0)
        assert len(matrix.expand()) == 2

    def test_builtin_service_matrices_load(self):
        assert load_matrix("service").probe == "service"
        smoke = load_matrix("service-smoke")
        assert smoke.probe == "service"
        assert len(smoke.expand()) == 2  # credit + tableau


class TestServiceShards:
    def test_run_shard_returns_service_metrics(self):
        spec = service_matrix().expand()[0]
        record = run_shard(spec)
        assert record["status"] == "ok"
        metrics = record["metrics"]
        for key in (
            "requests",
            "replan_p50_ms",
            "replan_p99_ms",
            "replan_p999_ms",
            "sojourn_p99_ms",
            "batching_ratio",
            "table_pushes",
            "rejection_rate",
            "slo_violations",
        ):
            assert key in metrics
        assert metrics["service"]["scheduler"] == "tableau"

    def test_aggregate_bytes_match_across_worker_counts(self):
        matrix = service_matrix(seeds=(42, 43))
        serial = run_campaign(matrix, workers=1)
        parallel = run_campaign(matrix, workers=2)
        assert serial.ok and parallel.ok
        assert aggregate_json(serial.aggregate) == aggregate_json(
            parallel.aggregate
        )
        summary = serial.aggregate["by_scheduler"]["tableau"]
        assert summary["cells"] == 2
        assert "mean_batching_ratio" in summary
        assert "worst_replan_p999_ms" in summary
