"""Campaign determinism: parallel == serial == resumed, byte for byte.

The engine's core promise (ISSUE acceptance): a 2 x 2 x 3 campaign run
with ``--workers 4`` produces an aggregate JSON byte-identical to
``--workers 1``, and resuming a half-complete JSONL log skips the
completed shards while yielding the same final report.
"""

import json
from dataclasses import replace

import pytest

from repro.campaign import (
    CampaignMatrix,
    aggregate_json,
    load_run_log,
    run_campaign,
)


@pytest.fixture(scope="module")
def matrix():
    # 2 schedulers x 2 seeds x 3 presets = 12 shards, small enough to
    # run twice in the suite but wide enough to shuffle under a pool.
    return CampaignMatrix(
        name="det",
        probe="intrinsic",
        schedulers=("credit", "tableau"),
        vm_counts=(8,),
        seeds=(42, 43),
        presets=("none", "lost-ipi", "clock-skew"),
        topology="4",
        duration_s=0.02,
    )


@pytest.fixture(scope="module")
def serial(matrix, tmp_path_factory):
    td = tmp_path_factory.mktemp("serial")
    return run_campaign(
        matrix, workers=1, cache_dir=str(td / "cache"),
        log_path=str(td / "run.jsonl"),
    )


class TestParallelMatchesSerial:
    def test_workers4_aggregate_is_byte_identical(
        self, matrix, serial, tmp_path
    ):
        parallel = run_campaign(
            matrix, workers=4, cache_dir=str(tmp_path / "cache"),
            log_path=str(tmp_path / "run.jsonl"),
        )
        assert parallel.ok and serial.ok
        assert aggregate_json(parallel.aggregate) == aggregate_json(
            serial.aggregate
        )

    def test_records_come_back_in_matrix_order(self, matrix, serial):
        assert [r["shard"] for r in serial.records] == [
            s.shard_id for s in matrix.expand()
        ]

    def test_warm_cache_changes_nothing(self, matrix, serial, tmp_path):
        cache = str(tmp_path / "cache")
        run_campaign(matrix, workers=1, cache_dir=cache)
        warm = run_campaign(matrix, workers=2, cache_dir=cache)
        assert aggregate_json(warm.aggregate) == aggregate_json(
            serial.aggregate
        )

    def test_aggregate_holds_no_wall_clock(self, serial):
        # Wall-clock and cache luck live in the report, never the
        # aggregate — that is what makes it byte-stable.
        flat = aggregate_json(serial.aggregate)
        assert "wall_s" not in flat
        assert "timings" not in flat
        assert "plan_cache" not in flat


class TestResume:
    def test_resume_skips_completed_and_matches(
        self, matrix, serial, tmp_path
    ):
        log = tmp_path / "run.jsonl"
        full = run_campaign(matrix, workers=1, log_path=str(log))
        lines = full.log_path.read_text().splitlines(keepends=True)
        assert len(lines) == 12
        # Keep half, plus a torn final line (crash mid-write).
        log.write_text("".join(lines[:6]) + lines[6][: len(lines[6]) // 2])

        resumed = run_campaign(
            matrix, workers=2, log_path=str(log), resume=True
        )
        assert resumed.resumed == 6
        assert aggregate_json(resumed.aggregate) == aggregate_json(
            serial.aggregate
        )
        # The log now holds every shard exactly once.
        assert len(load_run_log(log)) == 12

    def test_resume_of_complete_log_runs_nothing(self, matrix, tmp_path):
        log = tmp_path / "run.jsonl"
        first = run_campaign(matrix, workers=1, log_path=str(log))
        again = run_campaign(
            matrix, workers=1, log_path=str(log), resume=True
        )
        assert again.resumed == 12
        assert aggregate_json(again.aggregate) == aggregate_json(
            first.aggregate
        )

    def test_foreign_records_are_ignored(self, matrix, tmp_path):
        log = tmp_path / "run.jsonl"
        log.write_text(
            json.dumps({"shard": "9999.other.v1.s1.none", "status": "ok"})
            + "\n"
        )
        result = run_campaign(
            matrix, workers=1, log_path=str(log), resume=True
        )
        assert result.resumed == 0 and result.ok

    def test_failed_records_rerun_on_resume(self, matrix, tmp_path):
        shard_id = matrix.expand()[0].shard_id
        log = tmp_path / "run.jsonl"
        log.write_text(
            json.dumps({"shard": shard_id, "status": "failed"}) + "\n"
        )
        result = run_campaign(
            matrix, workers=1, log_path=str(log), resume=True
        )
        assert result.resumed == 0
        assert result.records[0]["status"] == "ok"


class TestArrayBackend:
    """ISSUE 6: the array dispatch engine as a campaign sweep axis.

    The determinism promise must hold per backend (parallel == serial,
    byte for byte, on the array engine) *and* across backends (an array
    cell's deterministic metrics equal its object twin's).
    """

    @pytest.fixture(scope="class")
    def array_matrix(self, matrix):
        return replace(matrix, name="det-array", engines=("array",))

    def test_parallel_matches_serial_on_array_backend(
        self, array_matrix, tmp_path
    ):
        serial = run_campaign(
            array_matrix, workers=1, cache_dir=str(tmp_path / "c1")
        )
        parallel = run_campaign(
            array_matrix, workers=4, cache_dir=str(tmp_path / "c2")
        )
        assert serial.ok and parallel.ok
        assert aggregate_json(parallel.aggregate) == aggregate_json(
            serial.aggregate
        )

    def test_array_cells_reproduce_object_metrics(self, matrix, tmp_path):
        both = replace(
            matrix, name="det-both", engines=("object", "array")
        )
        result = run_campaign(both, workers=2, cache_dir=str(tmp_path / "c"))
        assert result.ok
        # Engines expand innermost, so records pair up cell by cell;
        # deterministic metrics must match exactly within each pair.
        records = result.records
        assert len(records) % 2 == 0
        for obj_rec, arr_rec in zip(records[0::2], records[1::2]):
            assert obj_rec["spec"]["engine"] == "object"
            assert arr_rec["spec"]["engine"] == "array"
            # Ids share the cell key; only the index and engine token
            # differ (engine tokens are omitted for the object default).
            obj_key = obj_rec["shard"].split(".", 1)[1]
            arr_key = arr_rec["shard"].split(".", 1)[1]
            assert arr_key == obj_key + ".array"
            assert arr_rec["metrics"] == obj_rec["metrics"]
