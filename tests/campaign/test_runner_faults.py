"""Campaign runner failure paths: crashes, timeouts, shard errors.

The pool workers here are forked children, so monkeypatching
``repro.campaign.runner.run_shard`` in the parent is inherited — the
stand-ins below must be module-level (picklable by reference).
"""

import os
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignMatrix, run_campaign
from repro.campaign.shard import run_shard as real_run_shard


def tiny_matrix(**overrides):
    defaults = dict(
        name="faulty",
        probe="intrinsic",
        schedulers=("credit",),
        vm_counts=(4,),
        seeds=(42,),
        topology="2",
        duration_s=0.005,
    )
    defaults.update(overrides)
    return CampaignMatrix(**defaults)


def _crash_once(spec, cache_dir):
    """Kill the worker hard on each shard's first attempt only."""
    marker = Path(cache_dir) / f"{spec.shard_id}.crashed"
    if not marker.exists():
        marker.write_text("x")
        os._exit(1)
    return real_run_shard(spec, None)


def _always_crash(spec, cache_dir):
    os._exit(1)


def _always_raise(spec, cache_dir):
    raise ValueError("deterministic shard bug")


def _sleep(spec, cache_dir):
    time.sleep(1.5)
    return real_run_shard(spec, None)


class TestWorkerCrash:
    def test_crashed_shard_is_retried_once_and_succeeds(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(
            "repro.campaign.runner.run_shard", _crash_once
        )
        result = run_campaign(
            tiny_matrix(), workers=2, cache_dir=str(tmp_path)
        )
        assert result.ok
        assert result.retried == 1
        assert result.records[0]["status"] == "ok"

    def test_double_crash_records_failure_without_raising(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(
            "repro.campaign.runner.run_shard", _always_crash
        )
        result = run_campaign(
            tiny_matrix(), workers=2, cache_dir=str(tmp_path)
        )
        assert not result.ok
        assert result.retried == 1
        assert result.records[0]["status"] == "crashed"
        assert "crashed twice" in result.failures[0]

    def test_crash_record_reaches_the_log(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            "repro.campaign.runner.run_shard", _always_crash
        )
        log = tmp_path / "run.jsonl"
        run_campaign(
            tiny_matrix(), workers=2, cache_dir=str(tmp_path),
            log_path=str(log),
        )
        assert '"crashed"' in log.read_text()


class TestDeterministicFailure:
    def test_exception_becomes_failed_record_no_retry(self, monkeypatch):
        monkeypatch.setattr(
            "repro.campaign.runner.run_shard", _always_raise
        )
        result = run_campaign(tiny_matrix(), workers=2)
        assert not result.ok
        assert result.retried == 0
        record = result.records[0]
        assert record["status"] == "failed"
        assert "deterministic shard bug" in record["error"]

    def test_serial_path_isolates_shard_errors_too(self, monkeypatch):
        monkeypatch.setattr(
            "repro.campaign.runner.run_shard", _always_raise
        )
        result = run_campaign(tiny_matrix(), workers=1)
        assert not result.ok
        assert result.records[0]["status"] == "failed"

    def test_failed_shards_are_excluded_from_summaries(self, monkeypatch):
        monkeypatch.setattr(
            "repro.campaign.runner.run_shard", _always_raise
        )
        result = run_campaign(tiny_matrix(), workers=1)
        summary = result.aggregate["by_scheduler"]["credit"]
        assert summary["cells"] == 0


class TestTimeout:
    def test_slow_shard_records_timeout(self, monkeypatch):
        monkeypatch.setattr("repro.campaign.runner.run_shard", _sleep)
        result = run_campaign(
            tiny_matrix(), workers=2, shard_timeout_s=0.2
        )
        assert not result.ok
        assert result.records[0]["status"] == "timeout"
        assert "timeout" in result.failures[0]
