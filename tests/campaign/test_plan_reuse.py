"""Plan reuse across the experiment drivers (ISSUE satellite a).

``experiments.scenarios.plan_for`` and the Fig. 3/4 scaling sweeps
route through the content-addressed :class:`PlanStore`; both expose
cache-hit counters so campaigns and tests can verify planning work was
actually skipped.
"""

import pytest

from repro.core import PlanStore
from repro.experiments import scenarios
from repro.experiments.planner_scaling import (
    full_sweep,
    measure_point,
    scaling_curve,
)
from repro.topology import uniform


@pytest.fixture(autouse=True)
def fresh_memo():
    scenarios.reset_plan_memo()
    yield
    scenarios.reset_plan_memo()


class TestPlanForMemo:
    def test_repeat_census_hits_memo(self):
        before = scenarios.plan_for_cache_hits
        first = scenarios.plan_for(uniform(4), 8, False)
        assert scenarios.plan_for_cache_hits == before
        second = scenarios.plan_for(uniform(4), 8, False)
        assert scenarios.plan_for_cache_hits == before + 1
        assert second is first
        assert second.stats.plan_cache_hit

    def test_distinct_censuses_do_not_collide(self):
        a = scenarios.plan_for(uniform(4), 8, False)
        b = scenarios.plan_for(uniform(4), 8, True)
        c = scenarios.plan_for(uniform(4), 8, False, latency_ns=1_000_000)
        assert a is not b and a is not c

    def test_store_serves_across_memo_resets(self, tmp_path):
        store = PlanStore(tmp_path / "cache")
        scenarios.plan_for(uniform(4), 8, False, store=store)
        assert store.stats.misses == 1

        scenarios.reset_plan_memo()  # new process, same disk
        result = scenarios.plan_for(uniform(4), 8, False, store=store)
        assert store.stats.hits == 1
        assert result.stats.plan_cache_hit


class TestScalingSweepStore:
    def test_measure_point_reports_store_hit(self, tmp_path):
        store = PlanStore(tmp_path / "cache")
        topo = uniform(4)
        cold = measure_point(8, 30, topo, store=store)
        assert not cold.cache_hit
        warm = measure_point(8, 30, topo, store=store)
        assert warm.cache_hit
        assert warm.table_bytes == cold.table_bytes

    def test_repetitions_hit_within_one_point(self, tmp_path):
        store = PlanStore(tmp_path / "cache")
        point = measure_point(
            8, 30, uniform(4), repetitions=3, store=store
        )
        assert point.cache_hit  # reps 2..3 were served by the store
        assert store.stats.hits == 2 and store.stats.misses == 1

    def test_curve_and_sweep_thread_the_store(self, tmp_path):
        store = PlanStore(tmp_path / "cache")
        topo = uniform(4)
        scaling_curve(30, vm_counts=(4, 8), topology=topo, store=store)
        again = scaling_curve(
            30, vm_counts=(4, 8), topology=topo, store=store
        )
        assert all(p.cache_hit for p in again)

        sweep = full_sweep(topology=topo, vm_counts=(4,), store=store)
        assert len(sweep) == 4  # one point per latency goal

    def test_without_store_nothing_is_cached(self):
        point = measure_point(8, 30, uniform(4))
        assert not point.cache_hit
