"""Pickle round-trips for everything the process pool ships.

Campaign workers receive :class:`ShardSpec` values and module-level
functions; nothing in a built scenario (schedulers, workloads, pending
engine events) may capture a lambda or closure, or the pool dies with
an opaque ``PicklingError``.
"""

import pickle

import pytest

from repro.campaign import CampaignMatrix, ShardSpec
from repro.campaign.shard import run_shard
from repro.experiments.scenarios import build_scenario
from repro.topology import uniform
from repro.workloads import IoLoop, PingResponder, run_ping_load

ALL_SCHEDULERS = ("tableau", "credit", "credit2", "rtds")


class TestShardSpecPickle:
    def test_round_trip_equality(self):
        spec = CampaignMatrix(topology="4", vm_counts=(8,)).expand()[0]
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec and clone.as_dict() == spec.as_dict()

    def test_run_shard_is_pickled_by_reference(self):
        assert pickle.loads(pickle.dumps(run_shard)) is run_shard


class TestScenarioPickle:
    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_fresh_scenario_round_trips(self, scheduler):
        capped = scheduler == "rtds"
        scenario = build_scenario(
            scheduler, IoLoop(), capped=capped, background="io",
            topology=uniform(4), num_vms=8, seed=42,
        )
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone.scheduler_name == scheduler
        # The unpickled machine must still simulate.
        clone.run_seconds(0.005)
        assert clone.machine.engine.events_processed > 0

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_mid_simulation_machine_round_trips(self, scheduler):
        """Pending engine events (timers, replenishments) must pickle."""
        capped = scheduler == "rtds"
        probe = PingResponder()
        scenario = build_scenario(
            scheduler, probe, capped=capped, background="io",
            topology=uniform(4), num_vms=8, seed=42,
        )
        run_ping_load(
            scenario.machine, probe, threads=2, pings_per_thread=5,
            max_spacing_ns=1_000_000,
        )
        scenario.run_seconds(0.002)
        clone = pickle.loads(pickle.dumps(scenario))
        before = clone.machine.engine.events_processed
        clone.run_seconds(0.002)
        assert clone.machine.engine.events_processed > before

    def test_pickled_continuation_is_deterministic(self):
        """Run A->B straight vs. pickle at A: identical end state."""
        def fresh():
            return build_scenario(
                "tableau", IoLoop(), capped=False, background="io",
                topology=uniform(4), num_vms=8, seed=42,
            )

        straight = fresh()
        straight.run_seconds(0.004)

        half = fresh()
        half.run_seconds(0.002)
        resumed = pickle.loads(pickle.dumps(half))
        resumed.run_seconds(0.002)

        assert (
            resumed.machine.engine.events_processed
            == straight.machine.engine.events_processed
        )
        assert resumed.machine.engine.now == straight.machine.engine.now
        assert (
            resumed.vantage.runtime_ns == straight.vantage.runtime_ns
        )
