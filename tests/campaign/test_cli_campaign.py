"""Tests for the ``tableau-repro campaign`` subcommand."""

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError


@pytest.fixture
def matrix_file(tmp_path):
    path = tmp_path / "matrix.json"
    path.write_text(
        json.dumps(
            {
                "name": "cli",
                "probe": "intrinsic",
                "schedulers": ["credit", "tableau"],
                "vm_counts": [4],
                "seeds": [42],
                "topology": "2",
                "duration_s": 0.005,
            }
        )
    )
    return str(path)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.matrix == "fig6-smoke"
        assert args.workers == 1
        assert not args.resume
        assert args.shard_timeout is None

    def test_all_flags_parse(self):
        args = build_parser().parse_args(
            [
                "campaign", "--matrix", "fig6", "--workers", "4",
                "--cache-dir", "/tmp/c", "--log", "/tmp/l.jsonl",
                "--resume", "--shard-timeout", "30",
                "--report", "/tmp/r.json", "--aggregate", "/tmp/a.json",
            ]
        )
        assert args.workers == 4 and args.resume
        assert args.shard_timeout == 30.0


class TestCommand:
    def test_runs_matrix_file_and_writes_artifacts(
        self, matrix_file, tmp_path, capsys
    ):
        report = tmp_path / "report.json"
        aggregate = tmp_path / "aggregate.json"
        log = tmp_path / "run.jsonl"
        code = main(
            [
                "campaign", "--matrix", matrix_file,
                "--workers", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--log", str(log),
                "--report", str(report),
                "--aggregate", str(aggregate),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign cli: 2 shards" in out
        assert "plan cache" in out

        body = json.loads(report.read_text())
        assert body["workers"] == 2
        assert set(body["phase_seconds"]) == {
            "plan", "build", "simulate", "aggregate"
        }
        agg = json.loads(aggregate.read_text())
        assert agg["shards"] == 2 and agg["ok"] == 2
        assert len(log.read_text().splitlines()) == 2

    def test_resume_skips_completed(self, matrix_file, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        argv = [
            "campaign", "--matrix", matrix_file, "--log", str(log),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        assert "2 resumed" in capsys.readouterr().out

    def test_unknown_matrix_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            main(["campaign", "--matrix", "not-a-matrix"])

    def test_builtin_smoke_matrix_runs(self, capsys):
        assert main(["campaign", "--matrix", "fig6-smoke"]) == 0
        assert "fig6" in capsys.readouterr().out
