"""Full-stack integration tests: planner -> binary table -> hypercall ->
dispatcher -> workloads, including live reconfiguration under load.

These exercise the complete pipeline the paper's Fig. 1 draws, end to
end, inside one simulation.
"""

import pytest

from repro.core import MS, Planner, deserialize, make_vm, serialize
from repro.schedulers import TableauScheduler
from repro.sim import Machine, Tracer, VCpu
from repro.topology import uniform, xeon_16core
from repro.workloads import CpuHog, IntrinsicLatencyProbe, IoLoop
from repro.xen import TableHypercall


class TestPlannerToDispatcherPipeline:
    def test_binary_table_drives_dispatcher(self):
        """The dispatcher can run directly from a deserialized payload,
        as the hypervisor does after a hypercall."""
        vms = [make_vm(f"vm{i}", 0.25, 20 * MS, capped=True) for i in range(8)]
        plan = Planner(uniform(2)).plan(vms)
        restored = deserialize(serialize(plan.table))

        sched = TableauScheduler(restored)
        machine = Machine(uniform(2), sched, seed=3)
        for i in range(8):
            machine.add_vcpu(VCpu(f"vm{i}.vcpu0", CpuHog(), capped=True))
        machine.run(300 * MS)
        for i in range(8):
            assert machine.utilization_of(f"vm{i}.vcpu0") == pytest.approx(
                0.25, abs=0.01
            )

    def test_split_vcpu_runs_correctly_end_to_end(self):
        """Semi-partitioned plans execute without parallel self-execution
        and deliver the reserved utilization."""
        vms = [make_vm(f"vm{i}", 0.6, 100 * MS, capped=True) for i in range(3)]
        plan = Planner(uniform(2)).plan(vms)
        assert plan.stats.split_tasks == 1
        split_name = next(n for n in plan.vcpus if plan.table.is_split(n))

        sched = TableauScheduler(plan.table)
        machine = Machine(uniform(2), sched, seed=3)
        for i in range(3):
            machine.add_vcpu(VCpu(f"vm{i}.vcpu0", CpuHog(), capped=True))
        machine.run(500 * MS)
        for i in range(3):
            assert machine.utilization_of(f"vm{i}.vcpu0") == pytest.approx(
                0.6, abs=0.02
            )
        # The split vCPU really ran on both of its cores.
        assert len(plan.table.home_cores[split_name]) == 2


class TestLiveReconfiguration:
    def test_reconfigure_under_load_preserves_guarantees(self):
        """Push a new table mid-run (the VM census changes); the probe's
        bound must hold before, across, and after the switch."""
        topo = uniform(2)
        old_vms = [make_vm(f"vm{i}", 0.25, 20 * MS, capped=True) for i in range(8)]
        plan = Planner(topo).plan(old_vms)
        sched = TableauScheduler(plan.table)
        machine = Machine(topo, sched, seed=3)
        hypercall = TableHypercall(sched)

        probe = IntrinsicLatencyProbe()
        machine.add_vcpu(VCpu("vm0.vcpu0", probe, capped=True))
        for i in range(1, 8):
            machine.add_vcpu(VCpu(f"vm{i}.vcpu0", IoLoop(), capped=True))
        machine.run(150 * MS)

        # vm7 "is destroyed": replan for the remaining census, push.
        new_plan = Planner(topo).plan(old_vms[:-1])
        hypercall.push_system_table(new_plan.table)
        machine.run(600 * MS)

        assert sched.table_switches == 1
        assert probe.max_gap_ns <= 20 * MS
        assert machine.utilization_of("vm0.vcpu0") == pytest.approx(
            0.25, abs=0.02
        )

    def test_departed_vcpu_stops_being_scheduled_after_switch(self):
        topo = uniform(1)
        vms = [make_vm(f"vm{i}", 0.25, 50 * MS, capped=True) for i in range(4)]
        plan = Planner(topo).plan(vms)
        sched = TableauScheduler(plan.table)
        machine = Machine(topo, sched, seed=3)
        hypercall = TableHypercall(sched)
        for i in range(4):
            machine.add_vcpu(VCpu(f"vm{i}.vcpu0", CpuHog(), capped=True))
        machine.run(150 * MS)

        survivor_plan = Planner(topo).plan(vms[:3])
        hypercall.push_system_table(survivor_plan.table)
        machine.run(300 * MS)
        departed = machine.vcpus["vm3.vcpu0"]
        runtime_at_switch = departed.runtime_ns
        machine.run(300 * MS)
        # No allocations in the new table -> no further runtime.
        assert departed.runtime_ns == runtime_at_switch


class TestPaperScenarioEndToEnd:
    def test_full_16core_census_through_binary_format(self):
        """The paper's 48-VM census, planned, serialized, deserialized,
        dispatched, and measured — one pipeline."""
        topo = xeon_16core()
        vms = [make_vm(f"vm{i:02d}", 0.25, 20 * MS, capped=True) for i in range(48)]
        plan = Planner(topo).plan(vms)
        payload = serialize(plan.table)
        assert len(payload) < 64 * 1024  # one hypercall-sized blob

        sched = TableauScheduler(deserialize(payload))
        tracer = Tracer(keep_dispatches=True)
        machine = Machine(topo, sched, seed=9, tracer=tracer)
        probe = IntrinsicLatencyProbe()
        machine.add_vcpu(VCpu("vm00.vcpu0", probe, capped=True))
        for i in range(1, 48):
            machine.add_vcpu(VCpu(f"vm{i:02d}.vcpu0", IoLoop(), capped=True))
        machine.run(400 * MS)

        assert probe.max_gap_ns <= 20 * MS
        assert machine.utilization_of("vm00.vcpu0") == pytest.approx(
            0.25, abs=0.02
        )
        assert tracer.mean_us("schedule") < 2.5  # Tableau's Table 1 regime
