"""Tests for the analysis exporters and (smoke) the claim report."""

import csv
import io

import pytest

from repro.analysis import (
    delay_rows,
    overhead_rows,
    ping_rows,
    scaling_rows,
    throughput_rows,
    to_csv,
    write_csv,
)
from repro.experiments.delay import DelayResult, PingResult
from repro.experiments.overheads import OverheadRow
from repro.experiments.planner_scaling import ScalingPoint
from repro.metrics import LatencySummary, OperatingPoint, ThroughputCurve


def sample_summary(p99_ms):
    ns = p99_ms * 1_000_000
    return LatencySummary(count=10, mean_ns=ns / 3, p50_ns=ns / 3, p99_ns=ns, max_ns=2 * ns)


class TestTidyRows:
    def test_overhead_rows_one_per_operation(self):
        rows = overhead_rows(
            [OverheadRow("tableau", 1.4, 1.0, 0.4)], machine="16core"
        )
        assert len(rows) == 3
        assert {r["operation"] for r in rows} == {"schedule", "wakeup", "migrate"}

    def test_scaling_rows(self):
        rows = scaling_rows(
            [ScalingPoint(num_vms=44, latency_ms=1, generation_s=0.5,
                          table_bytes=1024 * 1024)]
        )
        assert rows[0]["table_mib"] == pytest.approx(1.0)

    def test_delay_and_ping_rows(self):
        d = delay_rows([DelayResult("tableau", True, "io", 9.6, 9.6)])
        assert d[0]["max_delay_ms"] == 9.6
        p = ping_rows([PingResult("credit", False, "cpu", sample_summary(15))])
        assert p[0]["max_ms"] == pytest.approx(30.0)

    def test_throughput_rows(self):
        curve = ThroughputCurve(
            label="tableau",
            points=[OperatingPoint(800, 799, sample_summary(10))],
        )
        rows = throughput_rows([curve], capped=True, size_bytes=1024,
                               background="io")
        assert rows[0]["scheduler"] == "tableau"
        assert rows[0]["achieved_rps"] == 799


class TestCsv:
    def test_round_trips_through_csv_reader(self):
        rows = scaling_rows(
            [
                ScalingPoint(44, 1, 0.5, 1024),
                ScalingPoint(88, 30, 0.1, 2048),
            ]
        )
        parsed = list(csv.DictReader(io.StringIO(to_csv(rows))))
        assert len(parsed) == 2
        assert parsed[1]["num_vms"] == "88"

    def test_empty_rows_empty_csv(self):
        assert to_csv([]) == ""

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        count = write_csv(scaling_rows([ScalingPoint(44, 1, 0.5, 1024)]), str(path))
        assert count == 1
        assert "num_vms" in path.read_text()


class TestClaimReport:
    def test_planner_claims_all_pass(self):
        from repro.analysis.report import check_planner_claims

        claims = check_planner_claims()
        assert all(c.passed for c in claims), [
            c.description for c in claims if not c.passed
        ]

    def test_report_renders(self):
        from repro.analysis.report import Claim

        claim = Claim("sample", "1", "1", True)
        assert claim.passed
