"""Tests for co-scheduling (affinity / anti-affinity) constraints."""

import pytest

from repro.core import MS, Planner, make_vm
from repro.core.affinity import CoschedulingPolicy, constrained_worst_fit
from repro.core.tasks import PeriodicTask
from repro.errors import ConfigurationError, PlanningError
from repro.topology import uniform


def task(name, utilization, period=1_000_000):
    return PeriodicTask(name=name, cost=int(utilization * period), period=period)


class TestPolicyConstruction:
    def test_build_normalizes_groups(self):
        policy = CoschedulingPolicy.build(
            affine=[("a", "b")], anti_affine=[("c", "d")]
        )
        assert policy.affine == (frozenset({"a", "b"}),)
        assert policy.anti_affine == (frozenset({"c", "d"}),)

    def test_non_pairwise_anti_affinity_rejected(self):
        with pytest.raises(ConfigurationError):
            CoschedulingPolicy.build(anti_affine=[("a", "b", "c")])

    def test_contradictory_rules_rejected(self):
        with pytest.raises(ConfigurationError):
            CoschedulingPolicy.build(
                affine=[("a", "b")], anti_affine=[("a", "b")]
            )

    def test_transitive_affinity_merging(self):
        policy = CoschedulingPolicy.build(affine=[("a", "b"), ("b", "c")])
        groups = policy.merged_groups(["a", "b", "c", "d"])
        merged = next(g for g in groups if "a" in g)
        assert merged == {"a", "b", "c"}
        assert {"d"} in groups


class TestConstrainedWorstFit:
    def test_affine_tasks_share_a_core(self):
        tasks = [task("a", 0.3), task("b", 0.3), task("c", 0.3), task("d", 0.3)]
        policy = CoschedulingPolicy.build(affine=[("a", "b")])
        result = constrained_worst_fit(tasks, [0, 1], policy)
        assert result.success
        core_of = {
            t.name: core for core, ts in result.assignment.items() for t in ts
        }
        assert core_of["a"] == core_of["b"]

    def test_anti_affine_tasks_separated(self):
        tasks = [task("a", 0.3), task("b", 0.3)]
        policy = CoschedulingPolicy.build(anti_affine=[("a", "b")])
        result = constrained_worst_fit(tasks, [0, 1], policy)
        assert result.success
        core_of = {
            t.name: core for core, ts in result.assignment.items() for t in ts
        }
        assert core_of["a"] != core_of["b"]

    def test_oversized_affine_group_unassignable(self):
        tasks = [task("a", 0.6), task("b", 0.6)]
        policy = CoschedulingPolicy.build(affine=[("a", "b")])
        result = constrained_worst_fit(tasks, [0, 1], policy)
        assert not result.success
        assert {t.name for t in result.unassigned} == {"a", "b"}

    def test_anti_affinity_can_force_failure(self):
        # Three mutually anti-affine tasks on two cores cannot be placed.
        tasks = [task("a", 0.1), task("b", 0.1), task("c", 0.1)]
        policy = CoschedulingPolicy.build(
            anti_affine=[("a", "b"), ("b", "c"), ("a", "c")]
        )
        result = constrained_worst_fit(tasks, [0, 1], policy)
        assert not result.success

    def test_no_rules_behaves_like_wfd(self):
        tasks = [task(f"t{i}", 0.25) for i in range(8)]
        policy = CoschedulingPolicy.build()
        result = constrained_worst_fit(tasks, [0, 1], policy)
        assert result.success
        assert all(len(ts) == 4 for ts in result.assignment.values())


class TestPlannerIntegration:
    def test_planner_honors_anti_affinity(self):
        policy = CoschedulingPolicy.build(
            anti_affine=[("replica0.vcpu0", "replica1.vcpu0")]
        )
        vms = [make_vm(f"replica{i}", 0.3, 20 * MS) for i in range(2)]
        vms += [make_vm(f"fill{i}", 0.3, 20 * MS) for i in range(2)]
        result = Planner(uniform(2), policy=policy).plan(vms)
        assert result.table.core_of("replica0.vcpu0") != result.table.core_of(
            "replica1.vcpu0"
        )

    def test_planner_honors_affinity(self):
        policy = CoschedulingPolicy.build(
            affine=[("pair.vcpu0", "pair.vcpu1")]
        )
        vms = [make_vm("pair", 0.2, 20 * MS, vcpu_count=2),
               make_vm("other", 0.4, 20 * MS)]
        result = Planner(uniform(2), policy=policy).plan(vms)
        assert result.table.core_of("pair.vcpu0") == result.table.core_of(
            "pair.vcpu1"
        )

    def test_unsatisfiable_policy_raises(self):
        policy = CoschedulingPolicy.build(
            affine=[("a.vcpu0", "b.vcpu0")]
        )
        vms = [make_vm("a", 0.6, 50 * MS), make_vm("b", 0.6, 50 * MS)]
        with pytest.raises(PlanningError, match="co-scheduling"):
            Planner(uniform(2), policy=policy).plan(vms)

    def test_guarantees_hold_under_policy(self):
        policy = CoschedulingPolicy.build(
            anti_affine=[("a.vcpu0", "b.vcpu0")]
        )
        vms = [make_vm(n, 0.25, 20 * MS) for n in ("a", "b", "c", "d")]
        result = Planner(uniform(2), policy=policy).plan(vms)
        for name in result.vcpus:
            assert result.table.utilization_of(name) == pytest.approx(
                0.25, abs=1e-3
            )
            assert result.table.max_blackout_ns(name) <= 20 * MS
