"""Differential suite: delta replans must equal from-scratch plans.

The columnar planner's delta path (``Planner.plan(CensusDelta)``) reuses
core tables WFD did not repack.  The contract pinned here: for every
census-diff sequence, the delta-accumulated plan and a cold planner's
from-scratch plan of the same census are *equal* — same method, same
allocations, identical plan fingerprint — across all four schedulers'
census flavors, three seeds, and create/reconfigure/destroy sequences
(including replanning on top of a recovered service, the PR-8 replay
path).
"""

import hashlib
import random

import pytest

from repro.core import (
    METHOD_PARTITIONED,
    METHOD_SEMI_PARTITIONED,
    MS,
    CensusDelta,
    Planner,
    make_vm,
)
from repro.errors import PlanningError
from repro.experiments.scenarios import SCHEDULERS
from repro.topology import uniform

#: Capping mode per scheduler (rtds is capped-only, credit2 uncapped;
#: the flag flows into every VCpuSpec and thus into planning).
CAPPED = {"tableau": False, "credit": True, "credit2": False, "rtds": True}
SEEDS = (101, 202, 303)

UTILS = (0.1, 0.15, 0.2, 0.25)
LATENCIES = (10 * MS, 20 * MS, 50 * MS)


def plan_fingerprint(result) -> str:
    """sha256 over every allocation, core-sorted (matches benchmarks)."""
    hasher = hashlib.sha256()
    for cpu in sorted(result.table.cores):
        for alloc in result.table.cores[cpu].allocations:
            hasher.update(f"{cpu}:{alloc.start}:{alloc.end}:{alloc.vcpu};".encode())
    return hasher.hexdigest()


def base_census(scheduler, seed, count=10):
    rng = random.Random(seed)
    return [
        make_vm(
            f"{scheduler}-s{seed}-vm{i:02d}",
            rng.choice(UTILS),
            rng.choice(LATENCIES),
            capped=CAPPED[scheduler],
        )
        for i in range(count)
    ]


def mutation_steps(census, scheduler, seed, steps=6):
    """A deterministic create/reconfigure/destroy sequence.

    Yields ``(delta, census)`` pairs: the ``CensusDelta`` for the live
    planner and the full census after applying it (for the from-scratch
    control plan).  ``census`` is mutated in place across steps.
    """
    rng = random.Random(seed * 7919 + 13)
    capped = CAPPED[scheduler]
    serial = 0
    for step in range(steps):
        op = rng.choice(("create", "reconfigure", "destroy"))
        if op == "destroy" and len(census) <= 4:
            op = "create"
        if op == "create":
            vm = make_vm(
                f"{scheduler}-s{seed}-new{serial}",
                rng.choice(UTILS),
                rng.choice(LATENCIES),
                capped=capped,
            )
            serial += 1
            delta = CensusDelta(create=[vm])
            census.append(vm)
        elif op == "reconfigure":
            index = rng.randrange(len(census))
            old = census[index]
            vm = make_vm(
                old.name, rng.choice(UTILS), rng.choice(LATENCIES), capped=capped
            )
            delta = CensusDelta(reconfigure=[vm])
            census[index] = vm
        else:
            index = rng.randrange(len(census))
            victim = census.pop(index)
            delta = CensusDelta(destroy=[victim.name])
        yield delta, census


def assert_plans_equal(live, scratch):
    assert live.stats.method == scratch.stats.method
    assert live.table.length_ns == scratch.table.length_ns
    assert set(live.table.cores) == set(scratch.table.cores)
    for cpu, core in scratch.table.cores.items():
        assert live.table.cores[cpu].allocations == core.allocations
    assert set(live.vcpus) == set(scratch.vcpus)
    assert plan_fingerprint(live) == plan_fingerprint(scratch)


class TestDeltaEqualsScratch:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_census_diff_sequence(self, scheduler, seed):
        topo = uniform(4)
        census = base_census(scheduler, seed)
        live_planner = Planner(topo)
        previous = live_planner.plan(list(census))
        for delta, full in mutation_steps(census, scheduler, seed):
            live = live_planner.plan(delta)
            scratch = Planner(topo).plan(list(full))
            assert_plans_equal(live, scratch)
            # Untouched cores are structurally shared with the previous
            # plan — the zero-copy contract the daemon's delta push
            # builds on.
            changed = set(live.stats.changed_cores or [])
            for cpu, core in live.table.cores.items():
                if cpu in changed or cpu not in previous.table.cores:
                    continue
                assert core is previous.table.cores[cpu]
            previous = live

    def test_combined_delta_matches_hand_edit(self):
        topo = uniform(4)
        census = base_census("tableau", 7)
        planner = Planner(topo)
        planner.plan(list(census))
        created = make_vm("combo-new", 0.2, 20 * MS)
        reconf = make_vm(census[3].name, 0.25, 10 * MS)
        doomed = census[0].name
        live = planner.plan(
            CensusDelta(create=[created], reconfigure=[reconf], destroy=[doomed])
        )
        edited = [reconf if vm.name == reconf.name else vm for vm in census[1:]]
        edited.append(created)
        scratch = Planner(topo).plan(edited)
        assert_plans_equal(live, scratch)

    def test_delta_without_base_census_is_refused(self):
        planner = Planner(uniform(2))
        with pytest.raises(PlanningError, match="without a base census"):
            planner.plan(CensusDelta(create=[make_vm("vm0", 0.25, 20 * MS)]))

    def test_semi_partitioned_delta_matches_scratch(self):
        # Splits couple cores; the delta path must still land on the
        # exact from-scratch plan when the method escalates.
        topo = uniform(2)
        census = [make_vm(f"vm{i}", 0.6, 100 * MS) for i in range(2)]
        planner = Planner(topo)
        planner.plan(list(census))
        census.append(make_vm("vm2", 0.6, 100 * MS))
        live = planner.plan(CensusDelta(create=[census[-1]]))
        scratch = Planner(topo).plan(list(census))
        assert live.stats.method == METHOD_SEMI_PARTITIONED
        assert_plans_equal(live, scratch)

    def test_peephole_delta_matches_scratch(self):
        topo = uniform(4)
        census = base_census("tableau", 11)
        planner = Planner(topo, peephole=True)
        planner.plan(list(census))
        census.append(make_vm("peep-new", 0.25, 20 * MS))
        live = planner.plan(CensusDelta(create=[census[-1]]))
        scratch = Planner(topo, peephole=True).plan(list(census))
        assert_plans_equal(live, scratch)


class TestRecoveredServiceDelta:
    def test_delta_on_recovered_daemon_matches_scratch(self, tmp_path):
        """PR-8 replay path: a recovered daemon's planner (warm from
        journal replay) must delta-plan to the same table a cold
        planner produces from scratch."""
        from repro.core.params import vms_from_tiers
        from repro.crashpoints import CRASH_SERVICE_FLUSH_POST_PUSH
        from repro.faults import CrashPlan
        from repro.service import ChurnConfig, ServiceConfig, crash_recover_resume
        from repro.topology import uniform as uniform_topo

        outcome = crash_recover_resume(
            uniform_topo(8),
            20.0,
            tmp_path / "wal.bin",
            CrashPlan.at(CRASH_SERVICE_FLUSH_POST_PUSH, call=2, seed=42),
            churn=ChurnConfig(seed=42, arrival_rate_per_s=6.0, target_population=10),
            config=ServiceConfig(batch_window_ms=1000.0),
        )
        service = outcome.service
        assert outcome.crash_count == 1
        census = vms_from_tiers(
            sorted(service.committed.items()), tiers=service.config.tiers
        )
        if not census:
            pytest.skip("churn drained the census; nothing to delta-plan")
        recovered_planner = service.daemon.planner
        recovered_planner.plan(list(census))
        census.append(make_vm("post-recovery", 0.125, 100 * MS))
        live = recovered_planner.plan(CensusDelta(create=[census[-1]]))
        scratch = Planner(uniform_topo(8)).plan(list(census))
        assert_plans_equal(live, scratch)
        assert live.stats.method == METHOD_PARTITIONED
