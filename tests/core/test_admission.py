"""Tests for admission control."""

import pytest

from repro.core.admission import admit_or_raise, check_admission
from repro.core.params import MS, VCpuSpec
from repro.errors import AdmissionError


def vcpu(name, utilization, latency_ms=20):
    return VCpuSpec(name, utilization, latency_ms * MS)


class TestCheckAdmission:
    def test_feasible_set_admitted(self):
        vcpus = [vcpu(f"v{i}", 0.25) for i in range(16)]
        report = check_admission(vcpus, num_cores=4)
        assert report.admitted
        assert report.shared_utilization == pytest.approx(4.0)

    def test_exact_capacity_admitted(self):
        vcpus = [vcpu(f"v{i}", 1.0) for i in range(4)]
        report = check_admission(vcpus, num_cores=4)
        assert report.admitted
        assert len(report.dedicated) == 4

    def test_over_utilization_rejected(self):
        vcpus = [vcpu(f"v{i}", 0.3) for i in range(14)]  # 4.2 on 4 cores
        report = check_admission(vcpus, num_cores=4)
        assert not report.admitted
        assert any("exceeds capacity" in r for r in report.reasons)

    def test_too_many_dedicated_vcpus_rejected(self):
        vcpus = [vcpu(f"v{i}", 1.0) for i in range(5)]
        report = check_admission(vcpus, num_cores=4)
        assert not report.admitted

    def test_dedicated_vcpus_shrink_shared_pool(self):
        vcpus = [vcpu("big", 1.0)] + [vcpu(f"v{i}", 0.5) for i in range(7)]
        # 3.5 shared utilization on 3 remaining cores: over capacity.
        report = check_admission(vcpus, num_cores=4)
        assert not report.admitted
        assert report.shared_cores == 3

    def test_infeasible_latency_rejected(self):
        vcpus = [VCpuSpec("v", 0.25, 10_000)]  # 10 us goal, impossible
        report = check_admission(vcpus, num_cores=4)
        assert not report.admitted
        assert any("infeasible" in r for r in report.reasons)

    def test_zero_cores_rejected(self):
        report = check_admission([vcpu("v", 0.1)], num_cores=0)
        assert not report.admitted

    def test_empty_vcpu_set_admitted(self):
        assert check_admission([], num_cores=4).admitted


class TestAdmitOrRaise:
    def test_raises_with_reasons(self):
        vcpus = [vcpu(f"v{i}", 0.9) for i in range(6)]
        with pytest.raises(AdmissionError, match="exceeds capacity"):
            admit_or_raise(vcpus, num_cores=4)

    def test_returns_report_on_success(self):
        report = admit_or_raise([vcpu("v", 0.5)], num_cores=2)
        assert report.admitted
