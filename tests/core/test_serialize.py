"""Tests for the binary scheduling-table format."""

import struct

import pytest

from repro.core.serialize import (
    ARRAY_MAGIC,
    MAGIC,
    deserialize,
    deserialize_arrays,
    serialize,
    serialize_arrays,
    table_size_bytes,
)
from repro.core.table import Allocation, CoreTable, SystemTable
from repro.errors import TableFormatError


def sample_system():
    return SystemTable(
        length_ns=10_000,
        cores={
            0: CoreTable(
                cpu=0,
                length_ns=10_000,
                allocations=[Allocation(0, 2_500, "vm0.vcpu0"), Allocation(2_500, 5_000, "vm1.vcpu0")],
            ),
            1: CoreTable(
                cpu=1,
                length_ns=10_000,
                allocations=[Allocation(1_000, 4_000, "vm2.vcpu0"), Allocation(6_000, 7_000, None)],
            ),
        },
    )


class TestRoundTrip:
    def test_allocations_survive(self):
        system = sample_system()
        restored = deserialize(serialize(system))
        for cpu in system.cores:
            assert restored.cores[cpu].allocations == system.cores[cpu].allocations

    def test_length_and_core_count_survive(self):
        restored = deserialize(serialize(sample_system()))
        assert restored.length_ns == 10_000
        assert restored.num_cores == 2

    def test_slice_tables_survive(self):
        system = sample_system()
        system.build_slices()
        restored = deserialize(serialize(system))
        for cpu in system.cores:
            assert restored.cores[cpu].slices == system.cores[cpu].slices
            assert restored.cores[cpu].slice_len_ns == system.cores[cpu].slice_len_ns

    def test_lookups_agree_after_round_trip(self):
        system = sample_system()
        system.build_slices()
        restored = deserialize(serialize(system))
        for t in range(0, 10_000, 113):
            for cpu in system.cores:
                assert restored.cores[cpu].lookup(t) == system.cores[cpu].lookup(t)

    def test_idle_allocation_round_trips(self):
        restored = deserialize(serialize(sample_system()))
        assert restored.cores[1].allocations[1].vcpu is None

    def test_empty_table_round_trips(self):
        system = SystemTable(length_ns=5_000, cores={0: CoreTable(cpu=0, length_ns=5_000)})
        restored = deserialize(serialize(system))
        assert restored.cores[0].allocations == []


class TestFormatErrors:
    def test_bad_magic_rejected(self):
        payload = bytearray(serialize(sample_system()))
        payload[:4] = b"XXXX"
        with pytest.raises(TableFormatError):
            deserialize(bytes(payload))

    def test_bad_version_rejected(self):
        payload = bytearray(serialize(sample_system()))
        struct.pack_into("<H", payload, 4, 99)
        with pytest.raises(TableFormatError):
            deserialize(bytes(payload))

    def test_truncated_payload_rejected(self):
        payload = serialize(sample_system())
        with pytest.raises(TableFormatError):
            deserialize(payload[: len(payload) // 2])

    def test_empty_payload_rejected(self):
        with pytest.raises(TableFormatError):
            deserialize(b"")


class TestArrayFormat:
    """The dispatcher-side structure-of-arrays payload ('TBLA')."""

    def test_columns_round_trip(self):
        system = sample_system()
        length_ns, names, columns = deserialize_arrays(serialize_arrays(system))
        assert length_ns == system.length_ns
        assert names == system.vcpu_names
        expected = system.as_arrays()
        assert set(columns) == set(expected)
        for cpu, (ends, handles) in columns.items():
            exp_starts, exp_ends, exp_handles = expected[cpu]
            assert ends == exp_ends
            assert handles == exp_handles

    def test_segments_cover_cycle_without_gaps(self):
        length_ns, _names, columns = deserialize_arrays(
            serialize_arrays(sample_system())
        )
        for ends, _handles in columns.values():
            # Starts are implicit: end[i-1] (0 for the first segment),
            # so full coverage means the last end is the cycle length.
            assert list(ends) == sorted(ends)
            assert ends[-1] == length_ns

    def test_playback_agrees_with_record_format_lookup(self):
        system = sample_system()
        system.build_slices()
        length_ns, names, columns = deserialize_arrays(serialize_arrays(system))
        for cpu, (ends, handles) in columns.items():
            cursor = 0
            start = 0
            for t in range(0, length_ns, 113):
                while ends[cursor] <= t:
                    start = ends[cursor]
                    cursor += 1
                handle = handles[cursor]
                expected = system.cores[cpu].lookup(t)
                if handle < 0:
                    assert expected is None or expected.vcpu is None
                else:
                    assert expected is not None
                    assert names[handle] == expected.vcpu

    def test_magic_is_first_bytes(self):
        assert serialize_arrays(sample_system())[:4] == ARRAY_MAGIC

    def test_bad_magic_rejected(self):
        payload = bytearray(serialize_arrays(sample_system()))
        payload[:4] = b"XXXX"
        with pytest.raises(TableFormatError):
            deserialize_arrays(bytes(payload))

    def test_bad_version_rejected(self):
        payload = bytearray(serialize_arrays(sample_system()))
        struct.pack_into("<H", payload, 4, 99)
        with pytest.raises(TableFormatError):
            deserialize_arrays(bytes(payload))

    def test_truncated_payload_rejected(self):
        payload = serialize_arrays(sample_system())
        with pytest.raises(TableFormatError):
            deserialize_arrays(payload[: len(payload) - 8])

    def test_empty_payload_rejected(self):
        with pytest.raises(TableFormatError):
            deserialize_arrays(b"")


class TestTableSize:
    def test_size_matches_serialized_length(self):
        system = sample_system()
        assert table_size_bytes(system) == len(serialize(system))

    def test_size_grows_with_allocations(self):
        small = sample_system()
        big = SystemTable(
            length_ns=10_000,
            cores={
                0: CoreTable(
                    cpu=0,
                    length_ns=10_000,
                    allocations=[
                        Allocation(i * 100, i * 100 + 50, f"v{i}") for i in range(50)
                    ],
                )
            },
        )
        assert table_size_bytes(big) > table_size_bytes(small)

    def test_magic_is_first_bytes(self):
        assert serialize(sample_system())[:4] == MAGIC
