"""Tests for the peephole preemption-reduction pass."""

import pytest

from repro.core.edf import preemption_count, simulate_edf
from repro.core.peephole import optimize_core
from repro.core.table import Allocation, CoreTable, validate_against_tasks
from repro.core.tasks import PeriodicTask


def fragmented_tasks():
    """A short-period task fragments a long job under EDF."""
    return [
        PeriodicTask(name="fast", cost=200, period=1_000),
        PeriodicTask(name="slow", cost=2_400, period=4_000),
    ]


class TestOptimizeCore:
    def test_reduces_preemptions_when_possible(self):
        tasks = fragmented_tasks()
        table = simulate_edf(tasks, 4_000)
        before = preemption_count(table, tasks)
        assert before > 0  # EDF fragments the slow job
        optimized, report = optimize_core(table, tasks)
        assert report.preemptions_after <= report.preemptions_before
        assert report.preemptions_before == before

    def test_result_still_serves_every_job(self):
        tasks = fragmented_tasks()
        table = simulate_edf(tasks, 4_000)
        optimized, _ = optimize_core(table, tasks)
        validate_against_tasks(optimized, tasks)

    def test_result_layout_valid(self):
        tasks = fragmented_tasks()
        table = simulate_edf(tasks, 4_000)
        optimized, _ = optimize_core(table, tasks)
        optimized.validate_layout()

    def test_busy_time_conserved(self):
        tasks = fragmented_tasks()
        table = simulate_edf(tasks, 4_000)
        optimized, _ = optimize_core(table, tasks)
        assert optimized.busy_ns == table.busy_ns

    def test_noop_on_unfragmented_table(self):
        tasks = [PeriodicTask(name=f"t{i}", cost=250, period=1_000) for i in range(4)]
        table = simulate_edf(tasks, 2_000)
        optimized, report = optimize_core(table, tasks)
        assert report.swaps_applied == 0
        assert optimized.allocations == table.allocations

    def test_deadline_violating_swap_rejected(self):
        # A zero-laxity piece cannot be pushed later: any swap moving it
        # off its release must be rejected by validation.
        tasks = [
            PeriodicTask(name="zl", cost=500, period=2_000, deadline=500),
            PeriodicTask(name="bulk", cost=1_400, period=2_000),
        ]
        table = simulate_edf(tasks, 4_000)
        optimized, _ = optimize_core(table, tasks)
        validate_against_tasks(optimized, tasks)  # still correct
        # The zero-laxity piece still runs entirely within [kT, kT+500).
        for start, end in optimized.service_intervals("zl"):
            assert end - (start // 2_000) * 2_000 <= 500

    def test_many_task_mix_converges(self):
        tasks = [
            PeriodicTask(name="a", cost=150, period=500),
            PeriodicTask(name="b", cost=300, period=1_000),
            PeriodicTask(name="c", cost=700, period=2_000),
        ]
        table = simulate_edf(tasks, 2_000)
        optimized, report = optimize_core(table, tasks)
        validate_against_tasks(optimized, tasks)
        assert report.preemptions_after <= report.preemptions_before


class TestPlannerIntegration:
    def test_planner_peephole_reduces_fragmentation(self):
        from repro.core import MS, Planner, make_vm
        from repro.topology import uniform

        # Mixed latency goals produce mixed periods, hence fragmentation.
        vms = [
            make_vm("tight", 0.3, 2 * MS),
            make_vm("loose", 0.5, 100 * MS),
        ]
        plain = Planner(uniform(1)).plan(vms)
        optimized = Planner(uniform(1), peephole=True).plan(vms)
        assert optimized.stats.peephole is not None
        assert (
            optimized.stats.peephole.preemptions_after
            <= optimized.stats.peephole.preemptions_before
        )
        # Guarantees hold either way.
        for name in optimized.vcpus:
            assert optimized.table.utilization_of(name) == pytest.approx(
                plain.table.utilization_of(name), abs=1e-3
            )
