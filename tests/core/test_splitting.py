"""Tests for C=D semi-partitioning."""

import pytest

from repro.core.edf import simulate_edf
from repro.core.schedulability import edf_schedulable
from repro.core.splitting import pieces_of, semi_partition, verify_chain
from repro.core.table import validate_against_tasks
from repro.core.tasks import PeriodicTask

PERIOD = 1_000_000
HORIZON = 4_000_000


def task(name, utilization, period=PERIOD):
    return PeriodicTask(name=name, cost=int(utilization * period), period=period)


class TestSemiPartition:
    def test_partitionable_set_needs_no_splits(self):
        tasks = [task(f"t{i}", 0.25) for i in range(8)]
        result = semi_partition(tasks, [0, 1], HORIZON)
        assert result.success
        assert result.split_count == 0

    def test_classic_three_tasks_two_cores(self):
        # Three 0.6 tasks cannot be partitioned on two cores but are
        # trivially semi-partitionable (total utilization 1.8 < 2).
        tasks = [task(f"t{i}", 0.6) for i in range(3)]
        result = semi_partition(tasks, [0, 1], HORIZON, min_piece_ns=1_000)
        assert result.success
        assert result.split_count == 1

    def test_split_chain_is_consistent(self):
        tasks = [task(f"t{i}", 0.6) for i in range(3)]
        result = semi_partition(tasks, [0, 1], HORIZON, min_piece_ns=1_000)
        (split_name, placed) = next(iter(result.splits.items()))
        original = next(t for t in tasks if t.name == split_name)
        assert verify_chain([p for _c, p in placed], original)

    def test_pieces_live_on_distinct_cores(self):
        tasks = [task(f"t{i}", 0.6) for i in range(3)]
        result = semi_partition(tasks, [0, 1], HORIZON, min_piece_ns=1_000)
        for placed in result.splits.values():
            cores = [core for core, _p in placed]
            assert len(cores) == len(set(cores))

    def test_each_core_remains_schedulable(self):
        tasks = [task(f"t{i}", 0.6) for i in range(3)]
        result = semi_partition(tasks, [0, 1], HORIZON, min_piece_ns=1_000)
        for core_tasks in result.assignment.values():
            assert edf_schedulable(core_tasks, HORIZON)

    def test_edf_simulation_validates_split_schedule(self):
        # Ground truth: simulate each core and check every job's budget.
        tasks = [task(f"t{i}", 0.6) for i in range(3)]
        result = semi_partition(tasks, [0, 1], HORIZON, min_piece_ns=1_000)
        for core, core_tasks in result.assignment.items():
            table = simulate_edf(core_tasks, HORIZON, cpu=core)
            validate_against_tasks(table, core_tasks)

    def test_pieces_never_execute_in_parallel(self):
        tasks = [task(f"t{i}", 0.6) for i in range(3)]
        result = semi_partition(tasks, [0, 1], HORIZON, min_piece_ns=1_000)
        tables = {
            core: simulate_edf(core_tasks, HORIZON, cpu=core)
            for core, core_tasks in result.assignment.items()
        }
        for split_name, placed in result.splits.items():
            intervals = []
            for core, piece in placed:
                intervals.extend(tables[core].service_intervals(piece.name))
            intervals.sort()
            for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1, f"{split_name} runs in parallel at {s2}"

    def test_high_density_near_full_system(self):
        # 0.95 utilization per core across 4 cores with awkward task sizes.
        tasks = [task(f"t{i}", 0.38) for i in range(10)]  # total 3.8
        result = semi_partition(tasks, [0, 1, 2, 3], HORIZON, min_piece_ns=1_000)
        assert result.success

    def test_genuinely_infeasible_set_reports_unassigned(self):
        tasks = [task(f"t{i}", 0.9) for i in range(3)]  # total 2.7 on 2 cores
        result = semi_partition(tasks, [0, 1], HORIZON, min_piece_ns=1_000)
        assert not result.success
        assert result.unassigned

    def test_budget_conserved_across_split(self):
        tasks = [task(f"t{i}", 0.6) for i in range(3)]
        result = semi_partition(tasks, [0, 1], HORIZON, min_piece_ns=1_000)
        for split_name, placed in result.splits.items():
            original = next(t for t in tasks if t.name == split_name)
            assert sum(p.cost for _c, p in placed) == original.cost

    def test_pieces_of_accessor(self):
        tasks = [task(f"t{i}", 0.6) for i in range(3)]
        result = semi_partition(tasks, [0, 1], HORIZON, min_piece_ns=1_000)
        split_name = next(iter(result.splits))
        assert pieces_of(result, split_name)
        assert pieces_of(result, "t-does-not-exist") == []


class TestVerifyChain:
    def test_valid_chain(self):
        original = task("t", 0.6)
        piece, remainder = original.split(200_000)
        assert verify_chain([piece, remainder], original)

    def test_rejects_wrong_budget(self):
        original = task("t", 0.6)
        piece, remainder = original.split(200_000)
        bad_piece, _ = original.split(100_000)
        assert not verify_chain([bad_piece, remainder], original)

    def test_rejects_empty_chain(self):
        assert not verify_chain([], task("t", 0.5))
