"""End-to-end tests for the Tableau planner."""

import pytest

from repro.core import (
    METHOD_CLUSTERED,
    METHOD_PARTITIONED,
    METHOD_SEMI_PARTITIONED,
    MS,
    Planner,
    VCpuSpec,
    deserialize,
    make_vm,
    serialize,
)
from repro.errors import AdmissionError, PlanningError
from repro.topology import uniform, xeon_16core


def plan_uniform(num_vms, utilization, latency_ms, cores=4, **kwargs):
    vms = [make_vm(f"vm{i:03d}", utilization, latency_ms * MS) for i in range(num_vms)]
    return Planner(uniform(cores), **kwargs).plan(vms)


class TestPaperConfiguration:
    """The paper's evaluation setup: 4 single-vCPU VMs per core at 25%."""

    @pytest.fixture(scope="class")
    def result(self):
        vms = [make_vm(f"vm{i:02d}", 0.25, 20 * MS) for i in range(48)]
        return Planner(xeon_16core()).plan(vms)

    def test_partitioning_suffices(self, result):
        assert result.stats.method == METHOD_PARTITIONED

    def test_period_matches_paper(self, result):
        # Sec 7.2: "period of roughly 13 ms with a budget of about 3.2 ms".
        task = result.task_of("vm00.vcpu0")
        assert 12 * MS <= task.period <= 14 * MS
        assert 3 * MS <= task.cost <= 3_400_000

    def test_blackout_under_latency_goal_for_all_vms(self, result):
        for name in result.vcpus:
            assert result.table.max_blackout_ns(name) <= 20 * MS

    def test_utilization_guarantee_for_all_vms(self, result):
        for name in result.vcpus:
            assert result.table.utilization_of(name) == pytest.approx(0.25, abs=1e-4)

    def test_guest_cores_only(self, result):
        reserved = set(xeon_16core().reserved_cores)
        assert not (set(result.table.cores) & reserved)

    def test_four_vms_per_core(self, result):
        for core, tasks in result.assignment.items():
            assert len(tasks) == 4

    def test_no_split_vcpus(self, result):
        assert all(not result.table.is_split(v) for v in result.vcpus)

    def test_table_round_trips(self, result):
        restored = deserialize(serialize(result.table))
        assert restored.length_ns == result.table.length_ns


class TestMethodEscalation:
    def test_easy_set_is_partitioned(self):
        result = plan_uniform(8, 0.25, 100, cores=2)
        assert result.stats.method == METHOD_PARTITIONED

    def test_awkward_set_is_semi_partitioned(self):
        result = plan_uniform(3, 0.6, 100, cores=2)
        assert result.stats.method == METHOD_SEMI_PARTITIONED
        assert result.stats.split_tasks >= 1

    def test_semi_partitioned_guarantees_hold(self):
        result = plan_uniform(3, 0.6, 100, cores=2)
        for name in result.vcpus:
            assert result.table.utilization_of(name) == pytest.approx(0.6, abs=1e-3)
            assert result.table.max_blackout_ns(name) <= 100 * MS

    def test_split_vcpu_flagged_in_table(self):
        result = plan_uniform(3, 0.6, 100, cores=2)
        assert any(result.table.is_split(v) for v in result.vcpus)

    def test_no_parallel_service_for_split_vcpus(self):
        result = plan_uniform(3, 0.6, 100, cores=2)
        assert result.table.overlapping_service() == []


class TestDedicatedCores:
    def test_full_utilization_vcpu_gets_own_core(self):
        vms = [make_vm("big", 1.0, MS)] + [
            make_vm(f"small{i}", 0.25, 100 * MS) for i in range(4)
        ]
        result = Planner(uniform(2)).plan(vms)
        core = result.table.core_of("big.vcpu0")
        allocations = result.table.cores[core].allocations
        assert len(allocations) == 1
        assert allocations[0].vcpu == "big.vcpu0"
        assert allocations[0].length == result.table.length_ns

    def test_dedicated_vcpu_has_zero_blackout(self):
        vms = [make_vm("big", 1.0, MS)]
        result = Planner(uniform(1)).plan(vms)
        assert result.table.max_blackout_ns("big.vcpu0") == 0


class TestAdmission:
    def test_over_utilization_rejected(self):
        with pytest.raises(AdmissionError):
            plan_uniform(20, 0.25, 100, cores=4)  # 5.0 on 4 cores

    def test_infeasible_latency_rejected(self):
        vms = [make_vm("vm0", 0.25, 1)]  # 1 ns latency goal
        with pytest.raises(AdmissionError):
            Planner(uniform(1)).plan(vms)

    def test_empty_workload_yields_idle_table(self):
        result = Planner(uniform(2)).plan([])
        assert result.table.num_cores == 0 or all(
            not t.allocations for t in result.table.cores.values()
        )


class TestHeterogeneousWorkloads:
    def test_mixed_latency_goals(self):
        vms = [
            make_vm("tight", 0.3, 1 * MS),
            make_vm("medium", 0.3, 30 * MS),
            make_vm("loose", 0.3, 100 * MS),
        ]
        result = Planner(uniform(2)).plan(vms)
        tight = result.task_of("tight.vcpu0")
        loose = result.task_of("loose.vcpu0")
        assert tight.period < loose.period
        assert result.table.max_blackout_ns("tight.vcpu0") <= 1 * MS

    def test_mixed_utilizations(self):
        vms = [
            make_vm("a", 0.7, 50 * MS),
            make_vm("b", 0.5, 50 * MS),
            make_vm("c", 0.4, 50 * MS),
            make_vm("d", 0.3, 50 * MS),
        ]
        result = Planner(uniform(2)).plan(vms)
        for vm in vms:
            name = vm.vcpus[0].name
            assert result.table.utilization_of(name) == pytest.approx(
                vm.vcpus[0].utilization, abs=1e-3
            )

    def test_multi_vcpu_vms(self):
        vms = [make_vm("smp", 0.4, 50 * MS, vcpu_count=4)]
        result = Planner(uniform(2)).plan(vms)
        assert len(result.vcpus) == 4
        for vcpu in vms[0].vcpus:
            assert result.table.utilization_of(vcpu.name) == pytest.approx(
                0.4, abs=1e-3
            )


class TestPlanStats:
    def test_generation_time_recorded(self):
        result = plan_uniform(8, 0.25, 100, cores=2)
        assert result.stats.generation_seconds > 0

    def test_table_bytes_recorded(self):
        result = plan_uniform(8, 0.25, 100, cores=2)
        assert result.stats.table_bytes > 0

    def test_vcpu_and_task_counts(self):
        result = plan_uniform(8, 0.25, 100, cores=2)
        assert result.stats.num_vcpus == 8
        assert result.stats.num_tasks == 8


class TestSliceInvariant:
    def test_slices_lazy_until_install(self):
        # The planner no longer builds slice tables eagerly — the array
        # engine plays back segment columns and the object scheduler
        # builds slices at install time — so a fresh plan has none.
        result = plan_uniform(8, 0.25, 30, cores=2)
        for table in result.table.cores.values():
            assert not table.slices

    def test_slices_built_on_demand_for_all_cores(self):
        result = plan_uniform(8, 0.25, 30, cores=2)
        result.table.build_slices()
        for table in result.table.cores.values():
            assert table.slices
            if table.allocations:
                assert table.slice_len_ns == table.min_allocation_ns()
