"""Tests for QPA (Quick Processor-demand Analysis) and its agreement
with the exhaustive demand-bound test."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedulability import edf_schedulable, qpa_schedulable
from repro.core.tasks import PeriodicTask

HORIZON = 1_200_000
PERIODS = [100_000, 150_000, 200_000, 300_000, 400_000, 600_000, 1_200_000]


def task(name, cost, period, deadline=None):
    return PeriodicTask(name=name, cost=cost, period=period, deadline=deadline)


class TestQpaBasics:
    def test_empty_set(self):
        assert qpa_schedulable([], HORIZON)

    def test_full_utilization_implicit(self):
        tasks = [task(f"t{i}", 300_000, 1_200_000) for i in range(4)]
        assert qpa_schedulable(tasks, HORIZON)

    def test_over_utilization_rejected(self):
        tasks = [task(f"t{i}", 400_000, 1_200_000) for i in range(4)]
        assert not qpa_schedulable(tasks, HORIZON)

    def test_tight_deadline_infeasibility(self):
        tasks = [
            task("a", 500, 1_000),
            task("b", 550, 1_200, deadline=560),
        ]
        assert not qpa_schedulable(tasks, 1_200_000)

    def test_zero_laxity_pair(self):
        tasks = [
            task("a", 300, 1_200, deadline=300),
            task("b", 300, 1_200, deadline=600),
        ]
        assert qpa_schedulable(tasks, 1_200_000)


class TestAgreementWithDbf:
    @st.composite
    def random_task_set(draw):
        count = draw(st.integers(min_value=1, max_value=5))
        tasks = []
        for i in range(count):
            period = draw(st.sampled_from(PERIODS))
            cost = draw(st.integers(min_value=1, max_value=period))
            deadline = draw(st.integers(min_value=cost, max_value=period))
            tasks.append(task(f"t{i}", cost, period, deadline))
        return tasks

    @given(tasks=random_task_set())
    @settings(max_examples=200, deadline=None)
    def test_qpa_equals_dbf_on_random_sets(self, tasks):
        assert qpa_schedulable(tasks, HORIZON) == edf_schedulable(tasks, HORIZON)

    def test_seeded_fuzz_agreement(self):
        rng = random.Random(42)
        for _ in range(300):
            count = rng.randint(1, 6)
            tasks = []
            for i in range(count):
                period = rng.choice(PERIODS)
                cost = rng.randint(1, period)
                deadline = rng.randint(cost, period)
                tasks.append(task(f"t{i}", cost, period, deadline))
            assert qpa_schedulable(tasks, HORIZON) == edf_schedulable(
                tasks, HORIZON
            ), [(t.cost, t.deadline, t.period) for t in tasks]
