"""Tests for the demand-bound EDF schedulability analysis."""

import numpy as np
import pytest

from repro.core.schedulability import (
    demand_bound,
    edf_schedulable,
    max_cd_piece,
)
from repro.core.tasks import PeriodicTask


def task(name, cost, period, deadline=None):
    return PeriodicTask(name=name, cost=cost, period=period, deadline=deadline)


HORIZON = 1_200_000  # common multiple of the periods used below


class TestDemandBound:
    def test_implicit_deadline_demand_at_period(self):
        tasks = [task("a", 300, 1_000)]
        demand = demand_bound(tasks, np.array([1_000, 2_000, 2_500], dtype=np.int64))
        # One full job by t=1000, two by t=2000; the third job's deadline
        # (t=3000) is beyond 2500, so demand stays at 2 jobs.
        assert list(demand) == [300, 600, 600]

    def test_constrained_deadline_shifts_demand(self):
        tasks = [task("a", 300, 1_000, deadline=500)]
        demand = demand_bound(tasks, np.array([499, 500, 1_499, 1_500], dtype=np.int64))
        assert list(demand) == [0, 300, 300, 600]

    def test_demand_is_additive(self):
        a, b = task("a", 200, 1_000), task("b", 100, 2_000)
        times = np.array([2_000, 4_000], dtype=np.int64)
        combined = demand_bound([a, b], times)
        assert list(combined) == [
            demand_bound([a], times)[0] + demand_bound([b], times)[0],
            demand_bound([a], times)[1] + demand_bound([b], times)[1],
        ]


class TestEdfSchedulable:
    def test_empty_set_schedulable(self):
        assert edf_schedulable([], HORIZON)

    def test_full_utilization_implicit_deadlines(self):
        tasks = [task(f"t{i}", 250, 1_000) for i in range(4)]
        assert edf_schedulable(tasks, HORIZON)

    def test_over_utilization_rejected(self):
        tasks = [task(f"t{i}", 300, 1_000) for i in range(4)]
        assert not edf_schedulable(tasks, HORIZON)

    def test_constrained_deadlines_can_fail_at_low_utilization(self):
        # Two zero-laxity tasks with the same period cannot coexist if
        # their combined cost exceeds the shorter deadline.
        tasks = [
            task("a", 400, 1_200, deadline=400),
            task("b", 300, 1_200, deadline=300),
        ]
        assert not edf_schedulable(tasks, HORIZON)

    def test_compatible_zero_laxity_pair(self):
        tasks = [
            task("a", 300, 1_200, deadline=300),
            task("b", 300, 1_200, deadline=600),
        ]
        assert edf_schedulable(tasks, HORIZON)

    def test_classic_dbf_counterexample(self):
        # Utilization ~0.96 but a tight deadline makes it infeasible:
        # dbf(1000) = 500 + 550 = 1050 > 1000.
        tasks = [
            task("a", 500, 1_000),
            task("b", 550, 1_200, deadline=560),
        ]
        assert not edf_schedulable(tasks, HORIZON)


class TestMaxCdPiece:
    def test_empty_core_fits_full_piece(self):
        piece = max_cd_piece([], period=1_000, max_cost=400, horizon=HORIZON)
        assert piece == 400

    def test_full_core_fits_nothing(self):
        existing = [task("a", 1_000, 1_000)]
        assert max_cd_piece(existing, 1_000, 400, HORIZON) is None

    def test_piece_bounded_by_utilization_slack(self):
        existing = [task("a", 600, 1_200)]  # U = 0.5
        piece = max_cd_piece(existing, period=1_200, max_cost=1_200, horizon=HORIZON)
        assert piece is not None
        assert piece <= 600

    def test_result_is_actually_schedulable(self):
        existing = [task("a", 400, 1_000), task("b", 100, 2_000)]
        piece = max_cd_piece(existing, period=2_000, max_cost=2_000, horizon=HORIZON)
        assert piece is not None
        probe = task("p", piece, 2_000, deadline=piece)
        assert edf_schedulable(existing + [probe], HORIZON)

    def test_result_is_maximal(self):
        existing = [task("a", 400, 1_000)]
        piece = max_cd_piece(existing, period=2_000, max_cost=2_000, horizon=HORIZON)
        assert piece is not None
        bigger = task("p", piece + 1, 2_000, deadline=piece + 1)
        assert not edf_schedulable(existing + [bigger], HORIZON)

    def test_min_piece_respected(self):
        existing = [task("a", 990, 1_000)]
        piece = max_cd_piece(
            existing, period=1_000, max_cost=500, horizon=HORIZON, min_piece_ns=50
        )
        assert piece is None  # only ~10ns of slack exists, below the minimum

    def test_monotone_in_available_budget(self):
        existing = [task("a", 300, 1_000)]
        small = max_cd_piece(existing, 1_000, 200, HORIZON)
        large = max_cd_piece(existing, 1_000, 700, HORIZON)
        assert small is not None and large is not None
        assert small <= large
