"""Tests for table data structures: slice tables, lookups, blackout."""

import pytest

from repro.core.table import Allocation, CoreTable, SystemTable
from repro.errors import ConfigurationError, PlanningError


def core_table(allocs, length=10_000, cpu=0):
    table = CoreTable(
        cpu=cpu,
        length_ns=length,
        allocations=[Allocation(s, e, v) for s, e, v in allocs],
    )
    table.validate_layout()
    return table


class TestAllocation:
    def test_length(self):
        assert Allocation(100, 350, "v").length == 250

    def test_rejects_empty_interval(self):
        with pytest.raises(ConfigurationError):
            Allocation(100, 100, "v")

    def test_rejects_negative_start(self):
        with pytest.raises(ConfigurationError):
            Allocation(-1, 100, "v")


class TestLayoutValidation:
    def test_overlap_detected(self):
        table = CoreTable(
            cpu=0,
            length_ns=1_000,
            allocations=[Allocation(0, 500, "a"), Allocation(400, 800, "b")],
        )
        with pytest.raises(PlanningError):
            table.validate_layout()

    def test_allocation_beyond_table_detected(self):
        table = CoreTable(cpu=0, length_ns=1_000, allocations=[Allocation(0, 2_000, "a")])
        with pytest.raises(PlanningError):
            table.validate_layout()


class TestSliceTable:
    def test_slice_len_equals_shortest_allocation(self):
        table = core_table([(0, 1_000, "a"), (2_000, 2_500, "b"), (5_000, 9_000, "c")])
        table.build_slices()
        assert table.slice_len_ns == 500

    def test_at_most_two_allocations_per_slice(self):
        # The paper's key invariant for O(1) dispatch.
        table = core_table(
            [(0, 700, "a"), (700, 1_400, "b"), (1_500, 2_200, "c"), (2_300, 9_100, "d")]
        )
        table.build_slices()
        for first, second in table.slices:
            assert first != -2  # never needs the fallback path
        # Reconstruct overlap counts independently.
        for index in range(len(table.slices)):
            lo = index * table.slice_len_ns
            hi = min(lo + table.slice_len_ns, table.length_ns)
            overlapping = [
                a for a in table.allocations if a.start < hi and a.end > lo
            ]
            assert len(overlapping) <= 2

    def test_lookup_hits_correct_allocation(self):
        table = core_table([(0, 1_000, "a"), (2_000, 3_000, "b")])
        table.build_slices()
        assert table.lookup(500).vcpu == "a"
        assert table.lookup(2_500).vcpu == "b"

    def test_lookup_idle_gap_returns_none(self):
        table = core_table([(0, 1_000, "a"), (2_000, 3_000, "b")])
        table.build_slices()
        assert table.lookup(1_500) is None
        assert table.lookup(3_500) is None

    def test_lookup_wraps_modulo_table_length(self):
        table = core_table([(0, 1_000, "a")])
        table.build_slices()
        assert table.lookup(10_500).vcpu == "a"  # 10_500 % 10_000 = 500
        assert table.lookup(123 * 10_000 + 999).vcpu == "a"

    def test_lookup_boundary_semantics(self):
        table = core_table([(1_000, 2_000, "a")])
        table.build_slices()
        assert table.lookup(1_000).vcpu == "a"  # inclusive start
        assert table.lookup(2_000) is None  # exclusive end

    def test_lookup_matches_linear_scan_everywhere(self):
        table = core_table(
            [(0, 600, "a"), (600, 1_800, "b"), (2_500, 3_100, "c"), (4_000, 9_999, "d")]
        )
        table.build_slices()
        for t in range(0, 10_000, 37):
            expected = next(
                (a for a in table.allocations if a.start <= t < a.end), None
            )
            assert table.lookup(t) == expected

    def test_idle_core_single_slice(self):
        table = core_table([])
        table.build_slices()
        assert table.slices == [(-1, -1)]
        assert table.lookup(1_234) is None

    def test_min_slice_floor_falls_back_to_search(self):
        table = core_table([(0, 10, "a"), (5_000, 9_000, "b")])
        table.build_slices(min_slice_len_ns=1_000)
        assert table.lookup(5).vcpu == "a"
        assert table.lookup(6_000).vcpu == "b"
        assert table.lookup(20) is None


class TestNextBoundary:
    def test_inside_allocation_returns_its_end(self):
        table = core_table([(0, 1_000, "a"), (2_000, 3_000, "b")])
        table.build_slices()
        assert table.next_boundary(500) == 1_000

    def test_in_gap_returns_next_start(self):
        table = core_table([(0, 1_000, "a"), (2_000, 3_000, "b")])
        table.build_slices()
        assert table.next_boundary(1_500) == 2_000

    def test_after_last_allocation_wraps(self):
        table = core_table([(0, 1_000, "a")])
        table.build_slices()
        assert table.next_boundary(5_000) == 10_000

    def test_strictly_increasing(self):
        table = core_table([(0, 1_000, "a"), (2_000, 3_000, "b")])
        table.build_slices()
        t = 0
        for _ in range(10):
            nxt = table.next_boundary(t)
            assert nxt > t
            t = nxt


class TestSystemTable:
    def _system(self):
        return SystemTable(
            length_ns=10_000,
            cores={
                0: core_table([(0, 2_500, "a"), (2_500, 5_000, "b")]),
                1: core_table([(0, 5_000, "c"), (6_000, 7_000, "a")], cpu=1),
            },
        )

    def test_vcpu_index_built(self):
        system = self._system()
        assert set(system.vcpu_names) == {"a", "b", "c"}

    def test_home_cores_ordered_by_first_allocation(self):
        system = self._system()
        assert system.home_cores["a"] == [0, 1]
        assert system.core_of("a") == 0

    def test_split_detection(self):
        system = self._system()
        assert system.is_split("a")
        assert not system.is_split("b")

    def test_allocated_ns_sums_across_cores(self):
        system = self._system()
        assert system.allocated_ns("a") == 2_500 + 1_000

    def test_utilization_of(self):
        system = self._system()
        assert system.utilization_of("b") == pytest.approx(0.25)

    def test_max_blackout_includes_wraparound(self):
        system = SystemTable(
            length_ns=10_000, cores={0: core_table([(4_000, 5_000, "x")])}
        )
        # Gap from 5_000 to 14_000 across the wrap.
        assert system.max_blackout_ns("x") == 9_000

    def test_blackout_of_unserved_vcpu_is_two_cycles(self):
        system = self._system()
        assert system.max_blackout_ns("ghost") == 2 * system.length_ns

    def test_overlapping_service_detected(self):
        system = SystemTable(
            length_ns=10_000,
            cores={
                0: core_table([(0, 2_000, "x")]),
                1: core_table([(1_000, 3_000, "x")], cpu=1),
            },
        )
        assert system.overlapping_service()
        with pytest.raises(PlanningError):
            system.validate()

    def test_validate_checks_core_lengths(self):
        bad = SystemTable(
            length_ns=10_000,
            cores={0: CoreTable(cpu=0, length_ns=5_000, allocations=[])},
        )
        with pytest.raises(PlanningError):
            bad.validate()

    def test_service_timeline_ordered(self):
        system = self._system()
        timeline = system.service_timeline("a")
        assert timeline == [(0, 2_500, 0), (6_000, 7_000, 1)]


class TestLookupMemo:
    """The per-core lookup memo must never change a lookup's answer."""

    def test_memoized_lookups_match_linear_scan(self):
        table = core_table([(0, 1_000, "a"), (2_000, 3_000, "b"), (3_000, 4_500, "a")])
        table.build_slices()
        for t in list(range(0, 30_000, 7)) + list(range(29_999, 0, -13)):
            expected = next(
                (a for a in table.allocations if a.start <= t % 10_000 < a.end),
                None,
            )
            assert table.lookup(t) == expected

    def test_memo_valid_across_floored_slow_path(self):
        # The min-slice floor forces the binary-search fallback; the memo
        # installed by a fallback lookup must stay correct.
        table = core_table([(0, 10, "a"), (5_000, 9_000, "b")])
        table.build_slices(min_slice_len_ns=1_000)
        assert table.lookup(5).vcpu == "a"
        assert table.lookup(6).vcpu == "a"  # memo hit inside [0, 10)
        assert table.lookup(20) is None  # past the memo window
        assert table.lookup(6_000).vcpu == "b"
        assert table.lookup(8_999).vcpu == "b"
        assert table.lookup(9_000) is None

    def test_next_boundary_consistent_with_memo(self):
        table = core_table([(0, 1_000, "a"), (2_000, 3_000, "b")])
        table.build_slices()
        assert table.next_boundary(500) == 1_000
        table.lookup(2_500)  # install a memo for b's slot
        assert table.next_boundary(2_500) == 3_000
        assert table.next_boundary(12_500) == 13_000  # next cycle
        assert table.next_boundary(3_000) == 10_000  # trailing idle gap

    def test_build_slices_invalidates_memo(self):
        table = core_table([(0, 1_000, "a")])
        table.build_slices()
        assert table.lookup(500).vcpu == "a"
        table.allocations = [Allocation(0, 1_000, "z")]
        table.build_slices()
        assert table.lookup(500).vcpu == "z"


class TestVcpuIdIndex:
    def _system(self):
        return SystemTable(
            length_ns=10_000,
            cores={
                0: core_table([(0, 2_500, "a"), (2_500, 5_000, "b")]),
                1: core_table([(6_000, 7_000, "a")], cpu=1),
            },
        )

    def test_ids_follow_name_order(self):
        system = self._system()
        assert [system.vcpu_id(n) for n in system.vcpu_names] == list(
            range(len(system.vcpu_names))
        )

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError):
            self._system().vcpu_id("ghost")

    def test_index_rebuilt_after_names_replaced(self):
        # The deserializer assigns vcpu_names directly; the reverse map
        # must lazily follow.
        system = self._system()
        system.vcpu_names = ["x", "y", "z"]
        system._vcpu_ids = {}
        assert system.vcpu_id("z") == 2


class TestServiceIndex:
    def test_matches_per_vcpu_timelines(self):
        system = SystemTable(
            length_ns=10_000,
            cores={
                0: core_table([(0, 2_500, "a"), (2_500, 5_000, "b")]),
                1: core_table([(6_000, 7_000, "a")], cpu=1),
            },
        )
        index = system.service_index()
        assert set(index) == {"a", "b"}
        for name, timeline in index.items():
            assert timeline == system.service_timeline(name)

    def test_blackout_accepts_prebuilt_timeline(self):
        system = SystemTable(
            length_ns=10_000, cores={0: core_table([(4_000, 5_000, "x")])}
        )
        timeline = system.service_index()["x"]
        assert system.max_blackout_ns("x", timeline=timeline) == 9_000
