"""Tests for table post-processing (coalescing)."""

import pytest

from repro.core.postprocess import coalesce, idle_intervals, merge_adjacent
from repro.core.table import Allocation, CoreTable


def table(allocs, length=100_000):
    return CoreTable(
        cpu=0,
        length_ns=length,
        allocations=[Allocation(s, e, v) for s, e, v in allocs],
    )


class TestMergeAdjacent:
    def test_merges_touching_same_vcpu(self):
        merged, count = merge_adjacent(
            [Allocation(0, 100, "a"), Allocation(100, 200, "a")]
        )
        assert count == 1
        assert merged == [Allocation(0, 200, "a")]

    def test_keeps_gap_separated_allocations(self):
        allocs = [Allocation(0, 100, "a"), Allocation(200, 300, "a")]
        merged, count = merge_adjacent(allocs)
        assert count == 0
        assert merged == allocs

    def test_different_vcpus_not_merged(self):
        allocs = [Allocation(0, 100, "a"), Allocation(100, 200, "b")]
        merged, _ = merge_adjacent(allocs)
        assert len(merged) == 2


class TestCoalesce:
    def test_no_op_when_all_above_threshold(self):
        original = table([(0, 50_000, "a"), (50_000, 99_000, "b")])
        result, report = coalesce(original, threshold_ns=10_000)
        assert result.allocations == original.allocations
        assert report.max_lost_ns == 0

    def test_short_allocation_absorbed_by_same_vcpu_neighbour(self):
        original = table([(0, 50_000, "a"), (50_000, 51_000, "a"), (51_000, 99_000, "b")])
        result, report = coalesce(original, threshold_ns=10_000)
        assert result.allocations[0] == Allocation(0, 51_000, "a")
        # Same-vCPU absorption moves no budget between vCPUs.
        assert report.lost_ns == {}

    def test_short_allocation_donated_to_other_vcpu(self):
        original = table([(0, 50_000, "a"), (50_000, 51_000, "b"), (51_000, 99_000, "c")])
        result, report = coalesce(original, threshold_ns=10_000)
        assert len(result.allocations) == 2
        assert report.lost_ns == {"b": 1_000}
        assert sum(report.gained_ns.values()) == 1_000

    def test_isolated_short_allocation_becomes_idle(self):
        original = table([(0, 50_000, "a"), (60_000, 61_000, "b")])
        result, report = coalesce(original, threshold_ns=10_000)
        assert len(result.allocations) == 1
        assert report.dropped_count == 1
        assert report.lost_ns == {"b": 1_000}

    def test_donation_prefers_longer_neighbour(self):
        original = table(
            [(0, 60_000, "long"), (60_000, 61_000, "tiny"), (61_000, 80_000, "short")]
        )
        result, report = coalesce(original, threshold_ns=10_000)
        assert report.gained_ns == {"long": 1_000}
        assert result.allocations[0].end == 61_000

    def test_total_time_conserved(self):
        original = table(
            [(0, 40_000, "a"), (40_000, 41_000, "b"), (41_000, 90_000, "c")]
        )
        result, _ = coalesce(original, threshold_ns=10_000)
        assert sum(a.length for a in result.allocations) == sum(
            a.length for a in original.allocations
        )

    def test_iterates_to_fixed_point(self):
        # Removing the middle sliver makes two "a" allocations adjacent;
        # they must then merge into one.
        original = table([(0, 40_000, "a"), (40_000, 41_000, "b"), (41_000, 90_000, "a")])
        result, report = coalesce(original, threshold_ns=10_000)
        assert result.allocations == [Allocation(0, 90_000, "a")]

    def test_result_layout_valid(self):
        original = table(
            [(0, 5_000, "a"), (5_000, 6_000, "b"), (6_000, 7_000, "c"), (7_000, 99_000, "d")]
        )
        result, _ = coalesce(original, threshold_ns=2_000)
        result.validate_layout()

    def test_zero_threshold_only_merges(self):
        original = table([(0, 100, "a"), (100, 200, "a"), (300, 400, "b")])
        result, report = coalesce(original, threshold_ns=0)
        assert result.allocations == [Allocation(0, 200, "a"), Allocation(300, 400, "b")]
        assert report.dropped_count == 0


class TestIdleIntervals:
    def test_gaps_detected(self):
        t = table([(1_000, 2_000, "a"), (5_000, 6_000, "b")], length=10_000)
        assert idle_intervals(t) == [(0, 1_000), (2_000, 5_000), (6_000, 10_000)]

    def test_fully_busy_core_has_no_idle(self):
        t = table([(0, 10_000, "a")], length=10_000)
        assert idle_intervals(t) == []

    def test_empty_core_fully_idle(self):
        t = table([], length=10_000)
        assert idle_intervals(t) == [(0, 10_000)]
