"""Tests for the per-core EDF table simulation."""

import pytest

from repro.core.edf import preemption_count, simulate_edf
from repro.core.table import validate_against_tasks
from repro.core.tasks import PeriodicTask
from repro.errors import ConfigurationError, PlanningError


def task(name, cost, period, deadline=None, offset=0):
    return PeriodicTask(name=name, cost=cost, period=period, deadline=deadline, offset=offset)


class TestSimulateEdf:
    def test_single_task_runs_at_period_start(self):
        table = simulate_edf([task("a", 250, 1_000)], 2_000)
        assert [(a.start, a.end, a.vcpu) for a in table.allocations] == [
            (0, 250, "a"),
            (1_000, 1_250, "a"),
        ]

    def test_full_utilization_has_no_idle(self):
        tasks = [task(f"t{i}", 250, 1_000) for i in range(4)]
        table = simulate_edf(tasks, 2_000)
        assert table.busy_ns == 2_000

    def test_every_job_served_by_deadline(self):
        tasks = [task("a", 300, 1_000), task("b", 500, 2_000), task("c", 100, 500)]
        table = simulate_edf(tasks, 10_000)
        validate_against_tasks(table, tasks)

    def test_harmonic_tasks_rate_monotonic_shape(self):
        # With harmonic periods EDF serves the short-period task first in
        # each of its periods.
        tasks = [task("fast", 200, 1_000), task("slow", 1_000, 4_000)]
        table = simulate_edf(tasks, 4_000)
        assert table.allocations[0].vcpu == "fast"
        validate_against_tasks(table, tasks)

    def test_offset_task_not_served_before_release(self):
        tasks = [task("a", 200, 1_000, deadline=500, offset=500)]
        table = simulate_edf(tasks, 2_000)
        for alloc in table.allocations:
            assert alloc.start % 1_000 >= 500

    def test_cd_chain_pieces_never_overlap_in_time(self):
        # A C=D piece on this core plus the remainder's window elsewhere.
        piece = task("x#0", 300, 1_000, deadline=300)
        table = simulate_edf([piece, task("y", 600, 1_000)], 2_000)
        for start, end in table.service_intervals("x#0"):
            assert start % 1_000 >= 0 and end % 1_000 <= 300 or end % 1_000 == 0

    def test_overload_raises_planning_error(self):
        tasks = [task("a", 600, 1_000), task("b", 600, 1_000)]
        with pytest.raises(PlanningError):
            simulate_edf(tasks, 2_000)

    def test_horizon_must_be_period_multiple(self):
        with pytest.raises(ConfigurationError):
            simulate_edf([task("a", 100, 1_000)], 1_500)

    def test_idle_gaps_not_materialized(self):
        table = simulate_edf([task("a", 100, 1_000)], 1_000)
        assert all(a.vcpu is not None for a in table.allocations)

    def test_deterministic_output(self):
        tasks = [task("a", 300, 1_000), task("b", 300, 1_000), task("c", 300, 1_000)]
        t1 = simulate_edf(tasks, 3_000)
        t2 = simulate_edf(tasks, 3_000)
        assert t1.allocations == t2.allocations

    def test_same_period_tasks_run_round_robin_per_period(self):
        tasks = [task(f"t{i}", 250, 1_000) for i in range(4)]
        table = simulate_edf(tasks, 1_000)
        assert [a.vcpu for a in table.allocations] == ["t0", "t1", "t2", "t3"]

    def test_table_layout_is_valid(self):
        tasks = [task("a", 333, 1_000), task("b", 500, 2_000)]
        table = simulate_edf(tasks, 2_000)
        table.validate_layout()  # must not raise


class TestPreemptionCount:
    def test_no_preemptions_for_single_task(self):
        tasks = [task("a", 250, 1_000)]
        table = simulate_edf(tasks, 2_000)
        assert preemption_count(table, tasks) == 0

    def test_long_job_preempted_by_short_period_task(self):
        tasks = [task("fast", 200, 1_000), task("slow", 2_400, 4_000)]
        table = simulate_edf(tasks, 4_000)
        assert preemption_count(table, tasks) > 0
