"""Tests for the periodic task model and the vCPU -> task mapping."""

import pytest

from repro.core.params import VCpuSpec
from repro.core.periods import candidate_periods
from repro.core.tasks import (
    PeriodicTask,
    max_blackout_of_task,
    total_utilization,
    vcpu_to_task,
    vcpus_to_tasks,
)
from repro.errors import ConfigurationError


def make_task(cost=1_000, period=10_000, **kwargs):
    return PeriodicTask(name="t", cost=cost, period=period, **kwargs)


class TestPeriodicTask:
    def test_implicit_deadline_defaults_to_period(self):
        assert make_task().deadline == 10_000

    def test_utilization(self):
        assert make_task(cost=2_500, period=10_000).utilization == 0.25

    def test_density_uses_deadline(self):
        task = make_task(cost=2_000, period=10_000, deadline=4_000)
        assert task.density == 0.5

    def test_zero_laxity_detection(self):
        assert make_task(cost=3_000, deadline=3_000).is_zero_laxity
        assert not make_task(cost=3_000, deadline=4_000).is_zero_laxity

    def test_rejects_cost_beyond_deadline(self):
        with pytest.raises(ConfigurationError):
            make_task(cost=5_000, deadline=4_000)

    def test_rejects_offset_plus_deadline_beyond_period(self):
        with pytest.raises(ConfigurationError):
            make_task(cost=1_000, deadline=6_000, offset=5_000)

    def test_rejects_nonpositive_cost(self):
        with pytest.raises(ConfigurationError):
            make_task(cost=0)

    def test_rejects_negative_offset(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask(name="t", cost=1, period=10, offset=-1)


class TestSplit:
    def test_budget_conserved(self):
        task = make_task(cost=4_000, period=10_000)
        piece, remainder = task.split(1_500)
        assert piece.cost + remainder.cost == 4_000

    def test_piece_is_zero_laxity(self):
        piece, _ = make_task(cost=4_000).split(1_500)
        assert piece.is_zero_laxity

    def test_remainder_released_at_piece_deadline(self):
        task = make_task(cost=4_000, period=10_000)
        piece, remainder = task.split(1_500)
        assert remainder.offset == piece.offset + piece.cost

    def test_remainder_meets_original_deadline(self):
        task = make_task(cost=4_000, period=10_000)
        _, remainder = task.split(1_500)
        assert remainder.offset + remainder.deadline == task.offset + task.deadline

    def test_chained_split_names(self):
        task = PeriodicTask(name="vm0.vcpu0", cost=4_000, period=10_000)
        piece, remainder = task.split(1_000)
        assert piece.name == "vm0.vcpu0#0"
        assert remainder.name == "vm0.vcpu0#1"
        piece2, remainder2 = remainder.split(1_000)
        assert piece2.name == "vm0.vcpu0#1"
        assert remainder2.name == "vm0.vcpu0#2"

    def test_split_bounds_enforced(self):
        task = make_task(cost=4_000)
        with pytest.raises(ConfigurationError):
            task.split(0)
        with pytest.raises(ConfigurationError):
            task.split(4_000)

    def test_vcpu_reference_preserved(self):
        vcpu = VCpuSpec("vm0.vcpu0", 0.4, 20_000_000)
        task = PeriodicTask(name=vcpu.name, cost=4_000, period=10_000, vcpu=vcpu)
        piece, remainder = task.split(1_000)
        assert piece.vcpu is vcpu and remainder.vcpu is vcpu


class TestVcpuToTask:
    def test_cost_floor_keeps_exact_fit_packable(self):
        # Four 25% vCPUs must sum to at most one core even after rounding.
        vcpu = VCpuSpec("v", 0.25, 20_000_000)
        task = vcpu_to_task(vcpu)
        assert 4 * task.cost <= task.period

    def test_utilization_within_one_ns_per_period(self):
        vcpu = VCpuSpec("v", 1 / 3, 50_000_000)
        task = vcpu_to_task(vcpu)
        assert 0 <= vcpu.utilization * task.period - task.cost < 1

    def test_blackout_bound_within_latency_goal(self):
        for latency_ms in (1, 30, 60, 100):
            vcpu = VCpuSpec("v", 0.25, latency_ms * 1_000_000)
            task = vcpu_to_task(vcpu)
            assert max_blackout_of_task(task) <= latency_ms * 1_000_000

    def test_period_is_candidate(self):
        task = vcpu_to_task(VCpuSpec("v", 0.7, 5_000_000))
        assert task.period in candidate_periods()

    def test_back_reference(self):
        vcpu = VCpuSpec("v", 0.25, 20_000_000)
        assert vcpu_to_task(vcpu).vcpu is vcpu

    def test_tiny_utilization_gets_at_least_one_ns(self):
        task = vcpu_to_task(VCpuSpec("v", 1e-9, 300_000_000))
        assert task.cost >= 1


class TestBatchMapping:
    def test_order_preserved(self):
        vcpus = [VCpuSpec(f"v{i}", 0.1 * (i + 1), 50_000_000) for i in range(5)]
        tasks = vcpus_to_tasks(vcpus)
        assert [t.name for t in tasks] == [v.name for v in vcpus]

    def test_total_utilization(self):
        vcpus = [VCpuSpec(f"v{i}", 0.25, 20_000_000) for i in range(8)]
        tasks = vcpus_to_tasks(vcpus)
        assert total_utilization(tasks) == pytest.approx(2.0, abs=1e-6)
