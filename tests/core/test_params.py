"""Tests for VM/vCPU reservation parameter types and provisioning helpers."""

import pytest

from repro.core.params import (
    DEFAULT_TIERS,
    MS,
    VCpuSpec,
    VMSpec,
    fair_share_specs,
    flatten_vcpus,
    make_vm,
    vms_from_tiers,
)
from repro.errors import ConfigurationError


class TestVCpuSpec:
    def test_vm_name_derived_from_prefix(self):
        assert VCpuSpec("web3.vcpu1", 0.5, MS).vm == "web3"

    def test_explicit_vm_name_wins(self):
        assert VCpuSpec("x", 0.5, MS, vm="custom").vm == "custom"

    def test_dedicated_core_detection(self):
        assert VCpuSpec("v", 1.0, MS).needs_dedicated_core
        assert not VCpuSpec("v", 0.99, MS).needs_dedicated_core

    @pytest.mark.parametrize("bad_util", [0.0, -0.5, 1.01])
    def test_rejects_bad_utilization(self, bad_util):
        with pytest.raises(ConfigurationError):
            VCpuSpec("v", bad_util, MS)

    def test_rejects_bad_latency(self):
        with pytest.raises(ConfigurationError):
            VCpuSpec("v", 0.5, 0)

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            VCpuSpec("", 0.5, MS)


class TestVMSpec:
    def test_total_utilization(self):
        vm = make_vm("vm0", 0.25, 20 * MS, vcpu_count=4)
        assert vm.total_utilization == pytest.approx(1.0)

    def test_requires_vcpus(self):
        with pytest.raises(ConfigurationError):
            VMSpec(name="vm0", vcpus=())

    def test_rejects_duplicate_vcpu_names(self):
        v = VCpuSpec("vm0.vcpu0", 0.1, MS)
        with pytest.raises(ConfigurationError):
            VMSpec(name="vm0", vcpus=(v, v))


class TestMakeVm:
    def test_vcpu_naming_convention(self):
        vm = make_vm("db", 0.5, 10 * MS, vcpu_count=2)
        assert [v.name for v in vm.vcpus] == ["db.vcpu0", "db.vcpu1"]

    def test_capped_flag_propagates(self):
        vm = make_vm("db", 0.5, 10 * MS, capped=True)
        assert all(v.capped for v in vm.vcpus)

    def test_rejects_zero_vcpus(self):
        with pytest.raises(ConfigurationError):
            make_vm("db", 0.5, 10 * MS, vcpu_count=0)


class TestFairShare:
    def test_four_vms_per_core_gives_quarter_share(self):
        # The paper's high-density setup: U = m/n.
        vms = fair_share_specs([f"vm{i}" for i in range(48)], num_cores=12)
        assert all(vm.vcpus[0].utilization == pytest.approx(0.25) for vm in vms)

    def test_few_vms_capped_at_full_core(self):
        vms = fair_share_specs(["a", "b"], num_cores=8)
        assert all(vm.vcpus[0].utilization == 1.0 for vm in vms)

    def test_empty_vm_list_rejected(self):
        with pytest.raises(ConfigurationError):
            fair_share_specs([], num_cores=4)


class TestTiers:
    def test_catalogue_instantiation(self):
        vms = vms_from_tiers([("a", "economy"), ("b", "performance")])
        assert vms[0].vcpus[0].utilization == DEFAULT_TIERS["economy"].utilization
        assert vms[1].vcpus[0].latency_ns == DEFAULT_TIERS["performance"].latency_ns

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            vms_from_tiers([("a", "quantum")])


class TestFlatten:
    def test_flattens_in_order(self):
        vms = [make_vm("a", 0.2, MS, vcpu_count=2), make_vm("b", 0.2, MS)]
        names = [v.name for v in flatten_vcpus(vms)]
        assert names == ["a.vcpu0", "a.vcpu1", "b.vcpu0"]

    def test_detects_cross_vm_duplicates(self):
        vm_a = VMSpec("a", (VCpuSpec("shared", 0.1, MS),))
        vm_b = VMSpec("b", (VCpuSpec("shared", 0.1, MS),))
        with pytest.raises(ConfigurationError):
            flatten_vcpus([vm_a, vm_b])
