"""Tests for the content-addressed on-disk plan store.

Covers the fault paths the campaign engine depends on: corrupt
entries, truncated writes, concurrent writers, and cache-version
mismatches must all fall back to regeneration without raising.
"""

import os
import pickle
import struct
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core import MS, CACHE_VERSION, Planner, PlanStore, make_vm, plan_key
from repro.core.plancache import MAGIC, topology_token
from repro.topology import uniform, xeon_16core


def census(n=8, latency_ms=30, capped=False):
    return [
        make_vm(f"vm{i:02d}", 0.25, latency_ms * MS, capped=capped)
        for i in range(n)
    ]


def table_layout(result):
    return [
        (cpu, alloc.start, alloc.end, alloc.vcpu)
        for cpu in sorted(result.table.cores)
        for alloc in result.table.cores[cpu].allocations
    ]


@pytest.fixture
def store(tmp_path):
    return PlanStore(tmp_path / "cache")


class TestPlanKey:
    def test_same_inputs_same_key(self):
        planner = Planner(uniform(4))
        assert plan_key(planner, census()) == plan_key(
            Planner(uniform(4)), census()
        )

    def test_key_covers_planning_inputs(self):
        planner = Planner(uniform(4))
        base = plan_key(planner, census())
        assert plan_key(planner, census(n=9)) != base
        assert plan_key(planner, census(latency_ms=60)) != base
        assert plan_key(planner, census(capped=True)) != base
        assert plan_key(Planner(uniform(8)), census()) != base

    def test_topology_token_distinguishes_machines(self):
        assert topology_token(uniform(4)) != topology_token(uniform(8))
        assert topology_token(xeon_16core()) == topology_token(xeon_16core())


class TestRoundTrip:
    def test_miss_then_hit(self, store):
        planner = Planner(uniform(4))
        first = store.plan(planner, census())
        assert not first.stats.plan_cache_hit
        assert store.stats.misses == 1 and store.stats.stores == 1

        second = store.plan(Planner(uniform(4)), census())
        assert second.stats.plan_cache_hit
        assert store.stats.hits == 1
        assert table_layout(second) == table_layout(first)

    def test_hit_rate(self, store):
        planner = Planner(uniform(4))
        store.plan(planner, census())
        store.plan(planner, census())
        store.plan(planner, census())
        assert store.stats.hit_rate == pytest.approx(2 / 3)

    def test_get_missing_key_is_none(self, store):
        assert store.get("0" * 64) is None
        assert store.stats.misses == 1


class TestFaultPaths:
    """Every corruption mode degrades to a regeneration, never a raise."""

    def setup_entry(self, store):
        planner = Planner(uniform(4))
        vms = census()
        result = store.plan(planner, vms)
        key = plan_key(planner, vms)
        return planner, vms, key, store.path_for(key), table_layout(result)

    def test_corrupt_payload_regenerates(self, store):
        planner, vms, key, path, layout = self.setup_entry(store)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))

        again = store.plan(planner, vms)
        assert store.stats.invalid == 1
        assert not again.stats.plan_cache_hit
        assert table_layout(again) == layout
        # The bad entry was replaced by the regeneration.
        assert store.get(key) is not None

    def test_corrupt_digest_regenerates(self, store):
        planner, vms, key, path, _ = self.setup_entry(store)
        blob = bytearray(path.read_bytes())
        blob[8] ^= 0xFF  # inside the stored sha256
        path.write_bytes(bytes(blob))
        assert store.get(key) is None
        assert store.stats.invalid == 1

    def test_truncated_write_regenerates(self, store):
        planner, vms, key, path, layout = self.setup_entry(store)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        again = store.plan(planner, vms)
        assert not again.stats.plan_cache_hit
        assert table_layout(again) == layout

    def test_header_shorter_than_fixed_part(self, store):
        planner, vms, key, path, _ = self.setup_entry(store)
        path.write_bytes(b"TP")
        assert store.get(key) is None
        assert store.stats.invalid == 1

    def test_bad_magic_regenerates(self, store):
        planner, vms, key, path, _ = self.setup_entry(store)
        blob = bytearray(path.read_bytes())
        blob[0:4] = b"XXXX"
        path.write_bytes(bytes(blob))
        assert store.get(key) is None
        assert store.stats.invalid == 1

    def test_version_mismatch_regenerates(self, store):
        planner, vms, key, path, _ = self.setup_entry(store)
        blob = bytearray(path.read_bytes())
        # Rewrite the header's version field in place.
        blob[0:40] = struct.pack(
            "<4sHH32s", MAGIC, CACHE_VERSION + 1, 0, bytes(blob[8:40])
        )
        path.write_bytes(bytes(blob))
        assert store.get(key) is None
        assert store.stats.invalid == 1

    def test_new_store_version_uses_fresh_namespace(self, tmp_path):
        old = PlanStore(tmp_path / "cache")
        planner = Planner(uniform(4))
        vms = census()
        old.plan(planner, vms)

        newer = PlanStore(tmp_path / "cache", version=CACHE_VERSION + 1)
        result = newer.plan(planner, vms)
        assert not result.stats.plan_cache_hit
        assert newer.stats.misses == 1

    def test_valid_header_pickle_garbage(self, store):
        planner, vms, key, path, _ = self.setup_entry(store)
        payload = b"not a pickle"
        import hashlib

        header = struct.pack(
            "<4sHH32s", MAGIC, CACHE_VERSION, 0,
            hashlib.sha256(payload).digest(),
        )
        path.write_bytes(header + payload)
        assert store.get(key) is None
        assert store.stats.invalid == 1

    def test_payload_wrong_type(self, store):
        planner, vms, key, path, _ = self.setup_entry(store)
        payload = pickle.dumps({"not": "a PlanResult"})
        import hashlib

        header = struct.pack(
            "<4sHH32s", MAGIC, CACHE_VERSION, 0,
            hashlib.sha256(payload).digest(),
        )
        path.write_bytes(header + payload)
        assert store.get(key) is None

    def test_unwritable_root_degrades_to_planning(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        store = PlanStore(root)
        planner = Planner(uniform(4))
        vms = census()
        os.chmod(root, 0o500)
        try:
            result = store.plan(planner, vms)  # must not raise
        finally:
            os.chmod(root, 0o700)
        assert not result.stats.plan_cache_hit


def _concurrent_put(args):
    root, n = args
    store = PlanStore(root)
    planner = Planner(uniform(4))
    vms = [make_vm(f"vm{i:02d}", 0.25, 30 * MS) for i in range(8)]
    for _ in range(n):
        result = planner.plan(vms)
        store.put(plan_key(planner, vms), result)
    return store.path_for(plan_key(planner, vms)).exists()


class TestConcurrentWriters:
    def test_racing_writers_leave_a_valid_entry(self, tmp_path):
        """Writers use per-pid temp files + atomic rename: no torn reads."""
        root = str(tmp_path / "cache")
        with ProcessPoolExecutor(max_workers=4) as pool:
            assert all(pool.map(_concurrent_put, [(root, 5)] * 4))

        store = PlanStore(root)
        planner = Planner(uniform(4))
        vms = census()
        cached = store.get(plan_key(planner, vms))
        assert cached is not None
        assert table_layout(cached) == table_layout(planner.plan(vms))
        # No stray temp files survive the rename dance.
        leftovers = [
            p for p in store.path_for(plan_key(planner, vms)).parent.iterdir()
            if ".tmp." in p.name
        ]
        assert leftovers == []


def _dead_pid() -> int:
    """A pid guaranteed not to name a live process."""
    import subprocess

    proc = subprocess.Popen(["true"])
    proc.wait()
    return proc.pid


class TestOrphanSweep:
    """Startup reclamation of ``*.plan.tmp.<pid>`` crash debris."""

    def _plant(self, root, pid, name="deadbeef"):
        shard = root / f"v{CACHE_VERSION}" / name[:2]
        shard.mkdir(parents=True, exist_ok=True)
        tmp = shard / f"{name}.plan.tmp.{pid}"
        tmp.write_bytes(b"partial write")
        return tmp

    def test_startup_sweep_reclaims_orphans(self, tmp_path):
        root = tmp_path / "cache"
        own = self._plant(root, os.getpid(), "aa" * 4)
        dead = self._plant(root, _dead_pid(), "bb" * 4)
        junk = self._plant(root, "notapid", "cc" * 4)
        store = PlanStore(root)
        assert store.stats.tmp_reclaimed == 3
        assert not own.exists() and not dead.exists() and not junk.exists()

    def test_live_foreign_writer_left_alone(self, tmp_path):
        root = tmp_path / "cache"
        # pid 1 is always alive; a live foreign pid may be mid-write.
        live = self._plant(root, 1, "dd" * 4)
        store = PlanStore(root)
        assert store.stats.tmp_reclaimed == 0
        assert live.exists()

    def test_sweep_can_be_disabled(self, tmp_path):
        root = tmp_path / "cache"
        orphan = self._plant(root, _dead_pid(), "ee" * 4)
        store = PlanStore(root, sweep=False)
        assert store.stats.tmp_reclaimed == 0
        assert orphan.exists()

    def test_startup_sweep_is_bounded(self, tmp_path):
        root = tmp_path / "cache"
        pid = _dead_pid()
        count = PlanStore.SWEEP_LIMIT + 10
        for i in range(count):
            self._plant(root, pid, f"{i:08x}")
        store = PlanStore(root)
        assert store.stats.tmp_reclaimed == PlanStore.SWEEP_LIMIT
        # The remainder is an fsck job (unbounded scan).
        report = store.fsck()
        assert report.tmp_seen == count - PlanStore.SWEEP_LIMIT
        assert report.tmp_reclaimed == count - PlanStore.SWEEP_LIMIT


class TestFsck:
    def _entry(self, store):
        planner = Planner(uniform(4))
        vms = census()
        store.plan(planner, vms)
        return store.path_for(plan_key(planner, vms))

    def test_clean_store(self, tmp_path):
        store = PlanStore(tmp_path / "cache")
        self._entry(store)
        report = store.fsck()
        assert report.scanned == 1
        assert report.valid == 1
        assert report.corrupt == 0
        assert report.tmp_seen == 0
        assert report.clean
        assert report.as_dict()["clean"] is True

    def test_corrupt_entry_quarantined(self, tmp_path):
        store = PlanStore(tmp_path / "cache")
        path = self._entry(store)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        report = store.fsck()
        assert report.corrupt == 1
        assert report.quarantined == 1
        assert not report.clean
        assert not path.exists()
        quarantined = tmp_path / "cache" / "quarantine" / path.name
        assert quarantined.exists()
        # A second pass over the repaired store is clean.
        assert store.fsck().clean

    def test_no_repair_reports_only(self, tmp_path):
        store = PlanStore(tmp_path / "cache")
        path = self._entry(store)
        path.write_bytes(b"garbage")
        orphan = path.with_name(path.name + f".tmp.{_dead_pid()}")
        orphan.write_bytes(b"partial")
        report = store.fsck(repair=False)
        assert report.corrupt == 1
        assert report.quarantined == 0
        assert report.tmp_seen == 1
        assert report.tmp_reclaimed == 0
        assert path.exists() and orphan.exists()
