"""Fuzz tests for the binary table decoder.

The hypercall boundary is hostile territory: dom0's planner daemon is
trusted, but the decoder must still fail cleanly (``TableFormatError``,
never a crash or a silently corrupt table) on any malformed payload.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialize import deserialize, serialize
from repro.core.table import Allocation, CoreTable, SystemTable
from repro.errors import ReproError, TableFormatError


def sample_payload():
    system = SystemTable(
        length_ns=10_000,
        cores={
            0: CoreTable(
                cpu=0,
                length_ns=10_000,
                allocations=[
                    Allocation(0, 2_500, "vm0.vcpu0"),
                    Allocation(2_500, 5_000, "vm1.vcpu0"),
                ],
            )
        },
    )
    system.build_slices()
    return serialize(system)


class TestFuzzDecoder:
    @given(data=st.binary(min_size=0, max_size=256))
    @settings(max_examples=300, deadline=None)
    def test_random_bytes_never_crash(self, data):
        try:
            deserialize(data)
        except ReproError:
            pass  # clean rejection is the contract

    @given(
        position=st.integers(min_value=0, max_value=200),
        value=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=300, deadline=None)
    def test_single_byte_corruption_never_crashes(self, position, value):
        payload = bytearray(sample_payload())
        position %= len(payload)
        payload[position] = value
        try:
            restored = deserialize(bytes(payload))
        except ReproError:
            return
        # If it decoded, the structural invariants must still hold (the
        # hypervisor validates before installing).
        for table in restored.cores.values():
            table.validate_layout()

    @given(cut=st.integers(min_value=0, max_value=200))
    @settings(max_examples=100, deadline=None)
    def test_truncation_always_rejected_cleanly(self, cut):
        payload = sample_payload()
        cut %= len(payload)
        if cut == len(payload):
            return
        with pytest.raises(ReproError):
            deserialize(payload[:cut])

    def test_good_payload_still_accepted(self):
        restored = deserialize(sample_payload())
        assert restored.length_ns == 10_000
