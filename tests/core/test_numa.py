"""Tests for NUMA-aware partitioning."""

import pytest

from repro.core.numa import numa_worst_fit
from repro.core.params import VCpuSpec, make_vm
from repro.core.tasks import PeriodicTask, vcpus_to_tasks
from repro.core.params import flatten_vcpus
from repro.topology import uniform

MS = 1_000_000


def tasks_for(vms):
    return vcpus_to_tasks(flatten_vcpus(vms))


class TestNumaWorstFit:
    def test_multi_vcpu_vm_stays_on_one_socket(self):
        topo = uniform(8, sockets=2)
        vms = [make_vm("smp", 0.4, 50 * MS, vcpu_count=4)]
        result, report = numa_worst_fit(tasks_for(vms), topo.guest_cores, topo)
        assert result.success
        assert report.vm_sockets["smp"] == [0] or report.vm_sockets["smp"] == [1]
        cores_used = {
            core for core, ts in result.assignment.items() if ts
        }
        sockets_used = {topo.socket_of(c) for c in cores_used}
        assert len(sockets_used) == 1

    def test_vms_balance_across_sockets(self):
        topo = uniform(8, sockets=2)
        vms = [make_vm(f"vm{i}", 0.5, 50 * MS, vcpu_count=2) for i in range(4)]
        result, report = numa_worst_fit(tasks_for(vms), topo.guest_cores, topo)
        assert result.success
        sockets = [report.vm_sockets[f"vm{i}"][0] for i in range(4)]
        assert sockets.count(0) == 2 and sockets.count(1) == 2

    def test_locality_rate_full_when_everything_fits(self):
        topo = uniform(8, sockets=2)
        vms = [make_vm(f"vm{i}", 0.25, 50 * MS, vcpu_count=2) for i in range(6)]
        result, report = numa_worst_fit(tasks_for(vms), topo.guest_cores, topo)
        assert result.success
        assert report.locality_rate == 1.0
        assert report.remote_vms == []

    def test_oversized_vm_spills_across_sockets(self):
        # A VM too big for one socket still gets placed (locality is
        # best-effort, capacity is a guarantee).
        topo = uniform(4, sockets=2)
        vms = [make_vm("big", 0.75, 50 * MS, vcpu_count=4)]
        result, report = numa_worst_fit(tasks_for(vms), topo.guest_cores, topo)
        assert result.success
        assert "big" in report.remote_vms
        assert report.locality_rate == 0.0

    def test_no_core_overloaded(self):
        topo = uniform(4, sockets=2)
        vms = [make_vm(f"vm{i}", 0.3, 50 * MS, vcpu_count=2) for i in range(3)]
        result, _ = numa_worst_fit(tasks_for(vms), topo.guest_cores, topo)
        for core in topo.guest_cores:
            assert result.utilization_of(core) <= 1.0 + 1e-9

    def test_infeasible_reports_unassigned(self):
        topo = uniform(2, sockets=2)
        vms = [make_vm(f"vm{i}", 0.9, 50 * MS) for i in range(3)]
        result, _ = numa_worst_fit(tasks_for(vms), topo.guest_cores, topo)
        assert not result.success
        assert len(result.unassigned) == 1

    def test_single_socket_machine_degenerates_to_wfd(self):
        topo = uniform(4, sockets=1)
        vms = [make_vm(f"vm{i}", 0.25, 50 * MS) for i in range(8)]
        result, report = numa_worst_fit(tasks_for(vms), topo.guest_cores, topo)
        assert result.success
        assert report.locality_rate == 1.0


class TestPlannerNumaIntegration:
    def test_planner_numa_option_places_vms_locally(self):
        from repro.core import MS as CMS
        from repro.core import Planner

        topo = uniform(8, sockets=2)
        vms = [make_vm(f"vm{i}", 0.4, 50 * CMS, vcpu_count=2) for i in range(4)]
        planner = Planner(topo, numa=True)
        plan = planner.plan(vms)
        assert planner.last_numa_report.locality_rate == 1.0
        for i in range(4):
            sockets = {
                topo.socket_of(plan.table.core_of(f"vm{i}.vcpu{j}"))
                for j in range(2)
            }
            assert len(sockets) == 1

    def test_planner_numa_guarantees_unchanged(self):
        from repro.core import MS as CMS
        from repro.core import Planner

        topo = uniform(4, sockets=2)
        vms = [make_vm(f"vm{i}", 0.25, 20 * CMS, vcpu_count=2) for i in range(4)]
        plan = Planner(topo, numa=True).plan(vms)
        for name in plan.vcpus:
            assert plan.table.utilization_of(name) == pytest.approx(0.25, abs=1e-3)
            assert plan.table.max_blackout_ns(name) <= 20 * CMS
