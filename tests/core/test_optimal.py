"""Tests for DP-WRAP localized optimal scheduling and cluster growth."""

import pytest

from repro.core.optimal import dp_wrap_schedule, grow_cluster
from repro.core.tasks import PeriodicTask
from repro.errors import ConfigurationError, PlanningError

HORIZON = 1_200_000


def task(name, utilization, period=1_200_000):
    return PeriodicTask(name=name, cost=int(utilization * period), period=period)


class TestDpWrap:
    def test_three_heavy_tasks_on_two_cores(self):
        # The case partitioning cannot solve: three 0.9 tasks, two cores.
        # Wait -- total 2.7 > 2; use 0.65 each (total 1.95 < 2).
        tasks = [task(f"t{i}", 0.65) for i in range(3)]
        tables = dp_wrap_schedule(tasks, [0, 1], HORIZON)
        assert set(tables) == {0, 1}

    def test_every_job_gets_full_budget(self):
        tasks = [
            task("a", 0.65, 600_000),
            task("b", 0.65, 400_000),
            task("c", 0.65, 1_200_000),
        ]
        # Validation is built into dp_wrap_schedule; reaching here means
        # every job of every task met its deadline.
        tables = dp_wrap_schedule(tasks, [0, 1], HORIZON)
        total = sum(
            a.length
            for t in tables.values()
            for a in t.allocations
            if a.vcpu == "a"
        )
        assert total == tasks[0].cost * (HORIZON // tasks[0].period)

    def test_no_parallel_execution(self):
        tasks = [task(f"t{i}", 0.65) for i in range(3)]
        tables = dp_wrap_schedule(tasks, [0, 1], HORIZON)
        intervals = sorted(
            (a.start, a.end)
            for t in tables.values()
            for a in t.allocations
            if a.vcpu == "t1"
        )
        for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1

    def test_full_cluster_utilization(self):
        tasks = [task(f"t{i}", 0.5, 600_000) for i in range(4)]
        tables = dp_wrap_schedule(tasks, [0, 1], HORIZON)
        busy = sum(t.busy_ns for t in tables.values())
        assert busy == 2 * HORIZON

    def test_over_utilized_cluster_rejected(self):
        tasks = [task(f"t{i}", 0.8) for i in range(3)]
        with pytest.raises(PlanningError):
            dp_wrap_schedule(tasks, [0, 1], HORIZON)

    def test_constrained_deadline_tasks_rejected(self):
        bad = PeriodicTask(name="x", cost=100, period=1_200_000, deadline=500)
        with pytest.raises(ConfigurationError):
            dp_wrap_schedule([bad], [0, 1], HORIZON)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            dp_wrap_schedule([task("a", 0.5)], [], HORIZON)

    def test_single_core_cluster_behaves_like_uniprocessor(self):
        tasks = [task("a", 0.4), task("b", 0.5)]
        tables = dp_wrap_schedule(tasks, [7], HORIZON)
        assert set(tables) == {7}
        assert tables[7].utilization == pytest.approx(0.9, abs=1e-6)

    def test_mixed_periods_with_many_boundaries(self):
        tasks = [
            task("a", 0.3, 200_000),
            task("b", 0.4, 300_000),
            task("c", 0.5, 400_000),
            task("d", 0.45, 600_000),
        ]
        tables = dp_wrap_schedule(tasks, [0, 1], HORIZON)
        assert sum(t.busy_ns for t in tables.values()) > 0


class TestGrowCluster:
    def test_starts_with_least_loaded_core(self):
        cluster = grow_cluster({0: 0.9, 1: 0.1, 2: 0.5}, None, demand=0.5)
        assert cluster == [1]

    def test_grows_until_demand_met(self):
        cluster = grow_cluster({0: 0.5, 1: 0.5, 2: 0.5}, None, demand=1.2)
        assert len(cluster) == 3

    def test_prefers_same_socket(self):
        sockets = {0: 0, 1: 0, 2: 1, 3: 1}
        loads = {0: 0.5, 1: 0.5, 2: 0.0, 3: 0.5}
        # Seed is core 2 (least loaded, socket 1); next preferred core
        # should be 3 (same socket) even though 0/1 tie on load.
        cluster = grow_cluster(loads, sockets, demand=1.2)
        assert cluster[:2] == [2, 3] or set(cluster[:2]) == {2, 3}

    def test_insufficient_total_capacity_raises(self):
        with pytest.raises(PlanningError):
            grow_cluster({0: 0.9, 1: 0.9}, None, demand=0.5)

    def test_no_cores_raises(self):
        with pytest.raises(PlanningError):
            grow_cluster({}, None, demand=0.1)
