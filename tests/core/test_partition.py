"""Tests for worst-fit-decreasing (and first-fit) partitioning."""

import pytest

from repro.core.partition import (
    first_fit_decreasing,
    worst_fit_decreasing,
)
from repro.core.tasks import PeriodicTask


def task(name, utilization, period=1_000_000):
    return PeriodicTask(name=name, cost=int(utilization * period), period=period)


class TestWorstFitDecreasing:
    def test_exact_fit_four_quarters_per_core(self):
        tasks = [task(f"t{i}", 0.25) for i in range(8)]
        result = worst_fit_decreasing(tasks, [0, 1])
        assert result.success
        assert all(len(ts) == 4 for ts in result.assignment.values())

    def test_load_spread_evenly(self):
        tasks = [task(f"t{i}", 0.2) for i in range(10)]
        result = worst_fit_decreasing(tasks, [0, 1, 2, 3, 4])
        utils = [result.utilization_of(c) for c in range(5)]
        assert max(utils) - min(utils) < 1e-9

    def test_wfd_spreads_while_ffd_concentrates(self):
        tasks = [task(f"t{i}", 0.3) for i in range(4)]
        wfd = worst_fit_decreasing(tasks, [0, 1, 2, 3])
        ffd = first_fit_decreasing(tasks, [0, 1, 2, 3])
        assert wfd.spread() < ffd.spread()
        # FFD packs three 0.3 tasks on core 0; WFD puts one per core.
        assert len(ffd.assignment[0]) == 3
        assert all(len(ts) == 1 for ts in wfd.assignment.values())

    def test_unassignable_task_reported(self):
        tasks = [task("big1", 0.6), task("big2", 0.6), task("big3", 0.6)]
        result = worst_fit_decreasing(tasks, [0, 1])
        assert not result.success
        assert [t.name for t in result.unassigned] == ["big3"]

    def test_decreasing_order_places_large_tasks_first(self):
        tasks = [task("small", 0.1), task("large", 0.9)]
        result = worst_fit_decreasing(tasks, [0, 1])
        assert result.success
        large_core = next(
            c for c, ts in result.assignment.items() if any(t.name == "large" for t in ts)
        )
        assert result.utilization_of(large_core) <= 1.0

    def test_capacity_limits_respected(self):
        tasks = [task("a", 0.5), task("b", 0.5)]
        result = worst_fit_decreasing(tasks, [0, 1], capacities={0: 0.4, 1: 0.6})
        assert not result.success or all(
            result.utilization_of(c) <= cap + 1e-9
            for c, cap in {0: 0.4, 1: 0.6}.items()
        )

    def test_empty_task_set(self):
        result = worst_fit_decreasing([], [0, 1])
        assert result.success
        assert result.assignment == {0: [], 1: []}

    def test_deterministic_tie_breaking(self):
        tasks = [task(f"t{i}", 0.25) for i in range(8)]
        r1 = worst_fit_decreasing(tasks, [0, 1])
        r2 = worst_fit_decreasing(tasks, [0, 1])
        assert {c: [t.name for t in ts] for c, ts in r1.assignment.items()} == {
            c: [t.name for t in ts] for c, ts in r2.assignment.items()
        }

    def test_rounded_costs_still_pack_exactly(self):
        # Regression: ceil-rounded costs used to make 4x0.25 unpackable.
        period = 12_837_825  # not divisible by 4
        tasks = [
            PeriodicTask(name=f"t{i}", cost=period // 4, period=period)
            for i in range(8)
        ]
        result = worst_fit_decreasing(tasks, [0, 1])
        assert result.success


class TestFirstFitDecreasing:
    def test_exact_fit(self):
        tasks = [task(f"t{i}", 0.5) for i in range(4)]
        result = first_fit_decreasing(tasks, [0, 1])
        assert result.success

    def test_reports_unassigned(self):
        tasks = [task(f"t{i}", 0.7) for i in range(3)]
        result = first_fit_decreasing(tasks, [0, 1])
        assert len(result.unassigned) == 1
