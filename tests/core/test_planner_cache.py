"""Tests for the planner's incremental core-table memo and parallel path.

The memo and the process pool are pure wall-clock optimizations: every
plan they produce must be indistinguishable from a cold, serial plan.
These tests pin that equivalence down, plus the cache-management
behavior (hit accounting, LRU bound).
"""

import pytest

import repro.core.planner as planner_mod
from repro.core import MS, Planner, make_vm
from repro.topology import xeon_16core


def census(n, util=0.25, latency_ms=20):
    return [make_vm(f"vm{i:02d}", util, latency_ms * MS) for i in range(n)]


def table_layout(result):
    return {
        cpu: [(a.start, a.end, a.vcpu) for a in table.allocations]
        for cpu, table in result.table.cores.items()
    }


class TestCoreTableMemo:
    def test_replan_same_census_is_all_hits(self):
        planner = Planner(xeon_16core())
        first = planner.plan(census(40))
        misses = planner.core_cache_misses
        second = planner.plan(census(40))
        assert planner.core_cache_misses == misses  # no new simulations
        assert planner.core_cache_hits > 0
        assert table_layout(first) == table_layout(second)

    def test_cached_plan_matches_cold_planner(self):
        warm = Planner(xeon_16core())
        warm.plan(census(40))
        cached = warm.plan(census(41))
        cold = Planner(xeon_16core()).plan(census(41))
        assert table_layout(cached) == table_layout(cold)

    def test_incremental_census_only_resimulates_changed_cores(self):
        planner = Planner(xeon_16core())
        planner.plan(census(40))
        before = planner.core_cache_misses
        planner.plan(census(41))
        new_misses = planner.core_cache_misses - before
        # Adding one VM at the census tail only changes the cores that
        # received it; all others must hit.
        assert 0 < new_misses < before

    def test_cached_tables_pass_guarantee_audit(self):
        planner = Planner(xeon_16core())
        planner.plan(census(48))
        result = planner.plan(census(48))  # fully cached replan
        for spec in result.vcpus.values():
            assert result.table.max_blackout_ns(spec.name) <= spec.latency_ns
        result.table.validate()

    def test_cache_respects_lru_bound(self, monkeypatch):
        monkeypatch.setattr(planner_mod, "CORE_CACHE_SIZE", 4)
        planner = Planner(xeon_16core())
        for n in (33, 36, 39, 42):
            planner.plan(census(n))
        assert len(planner._core_cache) <= 4

    def test_distinct_knobs_do_not_share_entries(self):
        # The coalesce threshold participates in the memo key: changing
        # it must not resurrect tables built under the old threshold.
        sparse = Planner(xeon_16core(), coalesce_threshold_ns=10_000)
        sparse.plan(census(40))
        tight = Planner(xeon_16core(), coalesce_threshold_ns=200_000)
        layout_a = table_layout(tight.plan(census(40)))
        layout_b = table_layout(Planner(xeon_16core(), coalesce_threshold_ns=200_000).plan(census(40)))
        assert layout_a == layout_b


class TestParallelMaterialization:
    def test_pool_result_identical_to_serial(self, monkeypatch):
        serial = Planner(xeon_16core(), parallel=False).plan(census(48))
        monkeypatch.setattr(planner_mod, "PARALLEL_MIN_JOBS", 0)
        pooled = Planner(xeon_16core(), parallel=True).plan(census(48))
        assert table_layout(pooled) == table_layout(serial)

    def test_parallel_disabled_never_pools(self, monkeypatch):
        def boom(self, pending):  # pragma: no cover - must not run
            raise AssertionError("process pool engaged with parallel=False")

        monkeypatch.setattr(planner_mod, "PARALLEL_MIN_JOBS", 0)
        monkeypatch.setattr(Planner, "_materialize_parallel", boom)
        Planner(xeon_16core(), parallel=False).plan(census(40))

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(planner_mod, "PARALLEL_MIN_JOBS", 0)
        monkeypatch.setattr(
            Planner, "_materialize_parallel", lambda self, pending: None
        )
        result = Planner(xeon_16core(), parallel=True).plan(census(40))
        cold = Planner(xeon_16core(), parallel=False).plan(census(40))
        assert table_layout(result) == table_layout(cold)
