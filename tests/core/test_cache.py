"""Tests for the table cache (Sec. 7.1's caching optimization)."""

import pytest

from repro.core import MS, Planner, TableCache, census_signature, make_vm
from repro.core.params import flatten_vcpus
from repro.topology import uniform


def census(prefix, count=8, utilization=0.25, latency_ms=20):
    vms = [
        make_vm(f"{prefix}{i}", utilization, latency_ms * MS) for i in range(count)
    ]
    return flatten_vcpus(vms)


class TestSignature:
    def test_order_independent(self):
        a = census("a")
        assert census_signature(a) == census_signature(list(reversed(a)))

    def test_names_do_not_matter(self):
        assert census_signature(census("web")) == census_signature(census("db"))

    def test_parameters_do_matter(self):
        assert census_signature(census("a", utilization=0.25)) != census_signature(
            census("a", utilization=0.5)
        )
        assert census_signature(census("a", latency_ms=20)) != census_signature(
            census("a", latency_ms=30)
        )


class TestTableCache:
    def test_first_plan_misses(self):
        cache = TableCache(Planner(uniform(2)))
        cache.plan(census("a"))
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_same_shape_hits(self):
        cache = TableCache(Planner(uniform(2)))
        cache.plan(census("web"))
        cache.plan(census("db"))  # different names, same shape
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_rebinding_renames_all_allocations(self):
        cache = TableCache(Planner(uniform(2)))
        cache.plan(census("web"))
        result = cache.plan(census("db"))
        names = {
            a.vcpu
            for t in result.table.cores.values()
            for a in t.allocations
            if a.vcpu is not None
        }
        assert names == {f"db{i}.vcpu0" for i in range(8)}

    def test_rebound_plan_keeps_guarantees(self):
        cache = TableCache(Planner(uniform(2)))
        cache.plan(census("web"))
        result = cache.plan(census("db"))
        for name in result.vcpus:
            assert result.table.utilization_of(name) == pytest.approx(
                0.25, abs=1e-3
            )
            assert result.table.max_blackout_ns(name) <= 20 * MS

    def test_rebound_tasks_reference_new_specs(self):
        cache = TableCache(Planner(uniform(2)))
        cache.plan(census("web"))
        result = cache.plan(census("db"))
        task = result.task_of("db0.vcpu0")
        assert task.vcpu is result.vcpus["db0.vcpu0"]

    def test_mixed_shapes_cached_separately(self):
        cache = TableCache(Planner(uniform(2)))
        cache.plan(census("a", utilization=0.25))
        cache.plan(census("b", utilization=0.5, count=4))
        cache.plan(census("c", utilization=0.25))
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = TableCache(Planner(uniform(2)), capacity=2)
        cache.plan(census("a", utilization=0.1))
        cache.plan(census("b", utilization=0.2))
        cache.plan(census("c", utilization=0.3, count=4))  # evicts the 0.1 shape
        assert cache.stats.evictions == 1
        cache.plan(census("d", utilization=0.1))  # miss again
        assert cache.stats.misses == 4

    def test_cache_is_much_faster_than_planning(self):
        import time

        cache = TableCache(Planner(uniform(4)))
        big = census("x", count=16, latency_ms=5)
        started = time.perf_counter()
        cache.plan(big)
        cold = time.perf_counter() - started
        # Best of three hits: a single measurement can eat a scheduler
        # preemption on a loaded container and flake the comparison.
        warm = min(
            self._timed_hit(cache, census("y", count=16, latency_ms=5))
            for _ in range(3)
        )
        assert warm < cold  # rename is cheaper than replanning

    @staticmethod
    def _timed_hit(cache, vms):
        import time

        started = time.perf_counter()
        cache.plan(vms)
        return time.perf_counter() - started
