"""Property-based tests (hypothesis) for the planner's core invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    MS,
    Planner,
    VCpuSpec,
    candidate_periods,
    deserialize,
    edf_schedulable,
    max_blackout_ns,
    select_period,
    serialize,
    simulate_edf,
    vcpu_to_task,
    worst_fit_decreasing,
)
from repro.core.postprocess import coalesce
from repro.core.table import validate_against_tasks
from repro.core.tasks import PeriodicTask
from repro.errors import LatencyInfeasibleError
from repro.topology import uniform

utilizations = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)
latencies = st.integers(min_value=1 * MS, max_value=500 * MS)


class TestPeriodSelectionProperties:
    @given(utilization=utilizations, latency=latencies)
    def test_blackout_bound_never_violated(self, utilization, latency):
        try:
            period = select_period(utilization, latency)
        except LatencyInfeasibleError:
            return
        assert max_blackout_ns(utilization, period) <= latency

    @given(utilization=utilizations, latency=latencies)
    def test_selected_period_is_always_a_candidate(self, utilization, latency):
        try:
            period = select_period(utilization, latency)
        except LatencyInfeasibleError:
            return
        assert period in candidate_periods()

    @given(utilization=utilizations, latency=latencies)
    def test_task_mapping_preserves_utilization_to_one_ns(self, utilization, latency):
        vcpu = VCpuSpec("v", utilization, latency)
        try:
            task = vcpu_to_task(vcpu)
        except LatencyInfeasibleError:
            return
        fluid = utilization * task.period
        assert fluid - 1 < task.cost <= fluid or task.cost == 1


class TestEdfSimulationProperties:
    @st.composite
    def harmonic_task_set(draw):
        """Task sets with periods dividing 1.2 ms and bounded utilization."""
        periods = [100_000, 150_000, 200_000, 300_000, 400_000, 600_000, 1_200_000]
        count = draw(st.integers(min_value=1, max_value=5))
        tasks = []
        budget = 1.0
        for i in range(count):
            period = draw(st.sampled_from(periods))
            max_util = min(0.8, budget)
            assume(max_util > 0.02)
            util = draw(st.floats(min_value=0.02, max_value=max_util))
            cost = max(1, int(util * period))
            budget -= cost / period
            tasks.append(PeriodicTask(name=f"t{i}", cost=cost, period=period))
        return tasks

    @given(tasks=harmonic_task_set())
    @settings(max_examples=50, deadline=None)
    def test_simulated_schedule_serves_every_job(self, tasks):
        table = simulate_edf(tasks, 1_200_000)
        validate_against_tasks(table, tasks)

    @given(tasks=harmonic_task_set())
    @settings(max_examples=50, deadline=None)
    def test_dbf_test_agrees_with_simulation(self, tasks):
        # The analytical test admits the set; the simulation must succeed.
        assert edf_schedulable(tasks, 1_200_000)
        simulate_edf(tasks, 1_200_000)  # must not raise

    @given(tasks=harmonic_task_set())
    @settings(max_examples=50, deadline=None)
    def test_busy_time_equals_total_demand(self, tasks):
        table = simulate_edf(tasks, 1_200_000)
        expected = sum(t.cost * (1_200_000 // t.period) for t in tasks)
        assert table.busy_ns == expected

    @given(tasks=harmonic_task_set())
    @settings(max_examples=50, deadline=None)
    def test_coalescing_conserves_busy_time(self, tasks):
        table = simulate_edf(tasks, 1_200_000)
        coalesced, report = coalesce(table, threshold_ns=5_000)
        dropped = sum(report.lost_ns.values()) - sum(report.gained_ns.values())
        assert coalesced.busy_ns == table.busy_ns - dropped


class TestPartitioningProperties:
    @given(
        utils=st.lists(
            st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=24
        ),
        cores=st.integers(min_value=1, max_value=8),
    )
    def test_no_core_ever_overloaded(self, utils, cores):
        tasks = [
            PeriodicTask(name=f"t{i}", cost=max(1, int(u * 1_000_000)), period=1_000_000)
            for i, u in enumerate(utils)
        ]
        result = worst_fit_decreasing(tasks, list(range(cores)))
        for core in range(cores):
            assert result.utilization_of(core) <= 1.0 + 1e-9

    @given(
        utils=st.lists(
            st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=24
        ),
        cores=st.integers(min_value=1, max_value=8),
    )
    def test_every_task_placed_or_reported(self, utils, cores):
        tasks = [
            PeriodicTask(name=f"t{i}", cost=max(1, int(u * 1_000_000)), period=1_000_000)
            for i, u in enumerate(utils)
        ]
        result = worst_fit_decreasing(tasks, list(range(cores)))
        placed = sum(len(ts) for ts in result.assignment.values())
        assert placed + len(result.unassigned) == len(tasks)


class TestPlannerProperties:
    @given(
        n_vms=st.integers(min_value=1, max_value=12),
        utilization=st.floats(min_value=0.05, max_value=0.45),
        latency_ms=st.sampled_from([5, 20, 50, 100]),
    )
    @settings(max_examples=25, deadline=None)
    def test_guarantees_hold_for_feasible_inputs(self, n_vms, utilization, latency_ms):
        assume(n_vms * utilization <= 2.0)
        from repro.core import make_vm

        vms = [make_vm(f"vm{i}", utilization, latency_ms * MS) for i in range(n_vms)]
        result = Planner(uniform(2)).plan(vms)
        for name in result.vcpus:
            assert result.table.utilization_of(name) >= utilization - 1e-3
            assert result.table.max_blackout_ns(name) <= latency_ms * MS + 20_000

    @given(
        n_vms=st.integers(min_value=1, max_value=8),
        utilization=st.floats(min_value=0.05, max_value=0.45),
    )
    @settings(max_examples=15, deadline=None)
    def test_serialization_round_trip_is_lossless(self, n_vms, utilization):
        assume(n_vms * utilization <= 2.0)
        from repro.core import make_vm

        vms = [make_vm(f"vm{i}", utilization, 50 * MS) for i in range(n_vms)]
        result = Planner(uniform(2)).plan(vms)
        restored = deserialize(serialize(result.table))
        for cpu, table in result.table.cores.items():
            assert restored.cores[cpu].allocations == table.allocations


class TestSliceProperties:
    @given(tasks=TestEdfSimulationProperties.harmonic_task_set())
    @settings(max_examples=50, deadline=None)
    def test_slice_lookup_agrees_with_linear_scan(self, tasks):
        table = simulate_edf(tasks, 1_200_000)
        table.build_slices()
        for t in range(0, 1_200_000, 17_041):
            expected = next(
                (a for a in table.allocations if a.start <= t < a.end), None
            )
            assert table.lookup(t) == expected

    @given(tasks=TestEdfSimulationProperties.harmonic_task_set())
    @settings(max_examples=50, deadline=None)
    def test_at_most_two_allocations_overlap_any_slice(self, tasks):
        table = simulate_edf(tasks, 1_200_000)
        table.build_slices()
        for index in range(len(table.slices)):
            lo = index * table.slice_len_ns
            hi = min(lo + table.slice_len_ns, table.length_ns)
            overlapping = [a for a in table.allocations if a.start < hi and a.end > lo]
            assert len(overlapping) <= 2
