"""Tests for candidate-period selection (Sec. 5, "Bounding table lengths")."""

import pytest

from repro.core.periods import (
    HYPERPERIOD_NS,
    MIN_PERIOD_NS,
    achievable_latency_ns,
    all_divisors,
    candidate_periods,
    factorize,
    hyperperiod_of,
    max_blackout_ns,
    select_period,
)
from repro.errors import ConfigurationError, LatencyInfeasibleError


class TestFactorize:
    def test_small_composite(self):
        assert factorize(12) == [(2, 2), (3, 1)]

    def test_prime(self):
        assert factorize(97) == [(97, 1)]

    def test_one_has_no_factors(self):
        assert factorize(1) == []

    def test_paper_hyperperiod_factorization(self):
        # 102,702,600 = 2^3 * 3^3 * 5^2 * 7 * 11 * 13 * 19
        assert factorize(HYPERPERIOD_NS) == [
            (2, 3),
            (3, 3),
            (5, 2),
            (7, 1),
            (11, 1),
            (13, 1),
            (19, 1),
        ]

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            factorize(0)


class TestAllDivisors:
    def test_divisors_of_12(self):
        assert all_divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_divisor_count_of_hyperperiod(self):
        # 768 = 4*4*3*2*2*2*2 divisors in total.
        assert len(all_divisors(HYPERPERIOD_NS)) == 768

    def test_all_results_divide(self):
        for d in all_divisors(360):
            assert 360 % d == 0

    def test_sorted_ascending(self):
        divisors = all_divisors(5040)
        assert divisors == sorted(divisors)


class TestCandidatePeriods:
    def test_paper_reports_186_candidates(self):
        # The paper: "186 integer divisors above the 100 us threshold".
        assert len(candidate_periods()) == 186

    def test_all_candidates_divide_hyperperiod(self):
        for period in candidate_periods():
            assert HYPERPERIOD_NS % period == 0

    def test_all_candidates_exceed_min_period(self):
        assert all(p > MIN_PERIOD_NS for p in candidate_periods())

    def test_largest_candidate_is_hyperperiod(self):
        assert candidate_periods()[-1] == HYPERPERIOD_NS

    def test_custom_hyperperiod(self):
        periods = candidate_periods(1_000_000, 100_000)
        assert periods == (125_000, 200_000, 250_000, 500_000, 1_000_000)

    def test_degenerate_hyperperiod_rejected(self):
        with pytest.raises(ConfigurationError):
            candidate_periods(50_000, 100_000)


class TestMaxBlackout:
    def test_paper_example(self):
        # (C, T) = (10 ms, 100 ms): blackout bounded by 180 ms.
        assert max_blackout_ns(0.1, 100_000_000) == pytest.approx(180_000_000)

    def test_full_utilization_has_no_blackout(self):
        assert max_blackout_ns(1.0, 50_000_000) == 0.0

    def test_scales_linearly_with_period(self):
        assert max_blackout_ns(0.5, 2_000_000) == 2 * max_blackout_ns(0.5, 1_000_000)


class TestSelectPeriod:
    def test_result_is_candidate(self):
        period = select_period(0.25, 20_000_000)
        assert period in candidate_periods()

    def test_blackout_bound_respected(self):
        for latency_ms in (1, 10, 30, 60, 100):
            period = select_period(0.25, latency_ms * 1_000_000)
            assert max_blackout_ns(0.25, period) <= latency_ms * 1_000_000

    def test_largest_satisfying_period_chosen(self):
        period = select_period(0.25, 20_000_000)
        larger = [p for p in candidate_periods() if p > period]
        for p in larger[:5]:
            assert max_blackout_ns(0.25, p) > 20_000_000

    def test_paper_config_yields_about_13ms(self):
        # Sec 7.2: L=20 ms at U=0.25 "results in the planner picking a
        # period of roughly 13 ms".
        period = select_period(0.25, 20_000_000)
        assert 12_000_000 <= period <= 14_000_000

    def test_infeasible_latency_raises(self):
        # U=0.25 with L=10us: even the 100us minimum period blacks out 150us.
        with pytest.raises(LatencyInfeasibleError):
            select_period(0.25, 10_000)

    def test_infeasible_latency_clamped_when_not_strict(self):
        period = select_period(0.25, 10_000, strict=False)
        assert period == candidate_periods()[0]

    def test_full_utilization_gets_hyperperiod(self):
        assert select_period(1.0, 1_000) == HYPERPERIOD_NS

    def test_tighter_latency_gives_smaller_or_equal_period(self):
        previous = None
        for latency_ms in (100, 60, 30, 10, 1):
            period = select_period(0.5, latency_ms * 1_000_000)
            if previous is not None:
                assert period <= previous
            previous = period

    def test_bad_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            select_period(0.0, 1_000_000)
        with pytest.raises(ConfigurationError):
            select_period(1.5, 1_000_000)

    def test_bad_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            select_period(0.5, 0)


class TestAchievableLatency:
    def test_matches_min_period_blackout(self):
        assert achievable_latency_ns(0.25) == max_blackout_ns(
            0.25, candidate_periods()[0]
        )

    def test_goal_at_achievable_bound_is_feasible(self):
        bound = achievable_latency_ns(0.5)
        assert select_period(0.5, int(bound)) == candidate_periods()[0]


class TestHyperperiodOf:
    def test_divisors_of_hyperperiod_never_exceed_it(self):
        subset = candidate_periods()[:20]
        assert HYPERPERIOD_NS % hyperperiod_of(subset) == 0

    def test_coprime_periods_multiply(self):
        assert hyperperiod_of([3, 5, 7]) == 105

    def test_single_period(self):
        assert hyperperiod_of([42]) == 42
