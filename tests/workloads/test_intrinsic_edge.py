"""Edge-case tests for probes under Tableau-specific conditions."""

import pytest

from repro.core import MS, Planner, make_vm
from repro.schedulers import TableauScheduler
from repro.sim import Machine, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog, IntrinsicLatencyProbe, IoLoop, PingResponder


class TestProbeUnderTableau:
    def test_gap_distribution_matches_table_structure(self):
        # A capped probe alone with three hogs: its gaps are exactly the
        # inter-slot distances of the table (one dominant mode).
        vms = [make_vm(f"vm{i}", 0.25, 20 * MS, capped=True) for i in range(4)]
        plan = Planner(uniform(1)).plan(vms)
        probe = IntrinsicLatencyProbe()
        machine = Machine(uniform(1), TableauScheduler(plan.table), seed=2)
        machine.add_vcpu(VCpu("vm0.vcpu0", probe, capped=True))
        for i in range(1, 4):
            machine.add_vcpu(VCpu(f"vm{i}.vcpu0", CpuHog(), capped=True))
        machine.run(500 * MS)
        assert probe.gaps_ns
        expected_gap = plan.table.max_blackout_ns("vm0.vcpu0")
        # Nearly every gap equals the blackout (slot-to-slot distance).
        near = [g for g in probe.gaps_ns if abs(g - expected_gap) < MS]
        assert len(near) / len(probe.gaps_ns) > 0.9

    def test_uncapped_probe_sees_only_small_gaps_on_idle_core(self):
        vms = [make_vm(f"vm{i}", 0.25, 20 * MS) for i in range(2)]
        plan = Planner(uniform(1)).plan(vms)
        probe = IntrinsicLatencyProbe()
        machine = Machine(uniform(1), TableauScheduler(plan.table), seed=2)
        machine.add_vcpu(VCpu("vm0.vcpu0", probe))
        machine.add_vcpu(VCpu("vm1.vcpu0", IoLoop()))
        machine.run(300 * MS)
        # With L2 harvesting, the probe runs almost continuously.
        assert machine.utilization_of("vm0.vcpu0") > 0.6

    def test_ping_latency_histogram_under_capped_tableau(self):
        # Capped responder: latencies are uniformly spread across the
        # blackout window (requests land anywhere between slots).
        vms = [make_vm(f"vm{i}", 0.25, 20 * MS, capped=True) for i in range(4)]
        plan = Planner(uniform(1)).plan(vms)
        responder = PingResponder()
        machine = Machine(uniform(1), TableauScheduler(plan.table), seed=2)
        machine.add_vcpu(VCpu("vm0.vcpu0", responder, capped=True))
        for i in range(1, 4):
            machine.add_vcpu(VCpu(f"vm{i}.vcpu0", CpuHog(), capped=True))
        from repro.workloads import run_ping_load

        run_ping_load(machine, responder, threads=4, pings_per_thread=100,
                      max_spacing_ns=10 * MS)
        machine.run(1_200 * MS)
        assert responder.latencies_ns
        blackout = plan.table.max_blackout_ns("vm0.vcpu0")
        assert responder.max_latency_ns <= blackout + MS
        # Mean should sit near half the blackout (uniform arrivals).
        assert responder.mean_latency_ns == pytest.approx(
            blackout / 2, rel=0.4
        )
