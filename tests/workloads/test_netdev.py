"""Tests for the virtual NIC ring-buffer model."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.netdev import VirtualNic


def nic(rate_bps=8e9, ring=100_000):
    # 8 Gbit/s = 1 byte/ns for easy arithmetic.
    return VirtualNic(line_rate_bps=rate_bps, ring_bytes=ring)


class TestEnqueue:
    def test_empty_ring_accepts_fully(self):
        device = nic()
        accepted, finish = device.enqueue(50_000, now=0)
        assert accepted == 50_000
        assert finish == 50_000  # 1 byte/ns

    def test_backlog_serializes_transmissions(self):
        device = nic()
        device.enqueue(50_000, now=0)
        _, finish = device.enqueue(30_000, now=10_000)
        assert finish == 80_000  # queued behind the first frame

    def test_idle_gap_restarts_clock(self):
        device = nic()
        device.enqueue(10_000, now=0)  # drains by t=10_000
        _, finish = device.enqueue(10_000, now=50_000)
        assert finish == 60_000

    def test_full_ring_partially_accepts(self):
        device = nic(ring=100_000)
        device.enqueue(100_000, now=0)
        accepted, _ = device.enqueue(50_000, now=0)
        assert accepted == 0
        accepted, _ = device.enqueue(50_000, now=30_000)
        assert accepted == 30_000  # exactly what drained so far

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            nic().enqueue(0, now=0)


class TestOccupancy:
    def test_occupancy_decays_at_line_rate(self):
        device = nic()
        device.enqueue(100_000, now=0)
        assert device.occupancy(0) == 100_000
        assert device.occupancy(40_000) == 60_000
        assert device.occupancy(100_000) == 0

    def test_free_space_complements_occupancy(self):
        device = nic(ring=100_000)
        device.enqueue(70_000, now=0)
        assert device.free_space(0) == 30_000
        assert device.free_space(70_000) == 100_000


class TestTimeUntilSpace:
    def test_zero_when_space_available(self):
        device = nic()
        assert device.time_until_space(10_000, now=0) == 0

    def test_wait_for_drain(self):
        device = nic(ring=100_000)
        device.enqueue(100_000, now=0)
        wait = device.time_until_space(40_000, now=0)
        assert wait == pytest.approx(40_000, abs=2)

    def test_impossible_request_rejected(self):
        device = nic(ring=100_000)
        with pytest.raises(ConfigurationError):
            device.time_until_space(200_000, now=0)


class TestUtilization:
    def test_busy_time_accumulates(self):
        device = nic()
        device.enqueue(100_000, now=0)
        assert device.utilization(window_ns=200_000) == pytest.approx(0.5)

    def test_the_paper_drain_then_idle_effect(self):
        # Sec. 7.5: a descheduled VM's NIC drains its ring, then idles.
        # One ring-full of data per 1 ms "slot" bounds utilization at
        # ring/(rate*period).
        device = nic(ring=100_000)
        for slot in range(10):
            device.enqueue(100_000, now=slot * 1_000_000)
        # 10 slots x 100 us of wire time each = 1 ms busy out of 10 ms.
        assert device.utilization(10_000_000) == pytest.approx(0.1)

    def test_zero_window(self):
        assert nic().utilization(0) == 0.0

    def test_bytes_sent_counter(self):
        device = nic()
        device.enqueue(30_000, now=0)
        device.enqueue(20_000, now=0)
        assert device.bytes_sent == 50_000

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualNic(line_rate_bps=0)
        with pytest.raises(ConfigurationError):
            VirtualNic(ring_bytes=0)
