"""Tests for the measurement probes (intrinsic latency, ping)."""

import pytest

from repro.errors import ConfigurationError
from repro.schedulers.simple import RoundRobinScheduler
from repro.sim import Machine, VCpu
from repro.topology import uniform
from repro.workloads import (
    ECHO_PROCESSING_NS,
    WIRE_RTT_NS,
    CpuHog,
    IntrinsicLatencyProbe,
    PingClient,
    PingResponder,
    run_ping_load,
)

MS = 1_000_000


class TestIntrinsicLatencyProbe:
    def test_uncontended_probe_sees_no_gaps(self):
        m = Machine(uniform(1), RoundRobinScheduler())
        probe = IntrinsicLatencyProbe()
        m.add_vcpu(VCpu("probe", probe))
        m.run(200 * MS)
        assert probe.max_gap_ns == 0

    def test_contended_probe_measures_scheduling_gaps(self):
        m = Machine(uniform(1), RoundRobinScheduler(timeslice_ns=2 * MS))
        probe = IntrinsicLatencyProbe()
        m.add_vcpu(VCpu("probe", probe))
        m.add_vcpu(VCpu("rival", CpuHog()))
        m.run(200 * MS)
        # Round-robin at 2 ms: the probe is off-core ~2 ms at a time.
        assert probe.max_gap_ns == pytest.approx(2 * MS, rel=0.1)

    def test_mean_gap_tracks_contention(self):
        m = Machine(uniform(1), RoundRobinScheduler(timeslice_ns=MS))
        probe = IntrinsicLatencyProbe()
        m.add_vcpu(VCpu("probe", probe))
        for i in range(3):
            m.add_vcpu(VCpu(f"rival{i}", CpuHog()))
        m.run(200 * MS)
        # Three rivals at 1 ms slices: gaps of ~3 ms.
        assert probe.mean_gap_ns == pytest.approx(3 * MS, rel=0.15)

    def test_gap_samples_collected(self):
        m = Machine(uniform(1), RoundRobinScheduler(timeslice_ns=MS))
        probe = IntrinsicLatencyProbe()
        m.add_vcpu(VCpu("probe", probe))
        m.add_vcpu(VCpu("rival", CpuHog()))
        m.run(100 * MS)
        assert len(probe.gaps_ns) > 10


class TestPingResponder:
    def test_idle_system_latency_is_wire_plus_processing(self):
        m = Machine(uniform(1), RoundRobinScheduler())
        responder = PingResponder()
        m.add_vcpu(VCpu("vantage", responder))
        m.run(1 * MS)
        responder.inject(m.engine.now)
        m.run(5 * MS)
        assert len(responder.latencies_ns) == 1
        latency = responder.latencies_ns[0]
        assert latency >= ECHO_PROCESSING_NS + WIRE_RTT_NS // 2
        assert latency < MS  # dispatched almost immediately

    def test_burst_of_pings_all_answered(self):
        m = Machine(uniform(1), RoundRobinScheduler())
        responder = PingResponder()
        m.add_vcpu(VCpu("vantage", responder))
        m.run(1 * MS)
        for _ in range(10):
            responder.inject(m.engine.now)
        m.run(10 * MS)
        assert len(responder.latencies_ns) == 10

    def test_latency_reflects_scheduler_delay(self):
        # With a hog monopolizing the core under long timeslices, the
        # responder's wake-to-dispatch delay dominates ping latency.
        m = Machine(uniform(1), RoundRobinScheduler(timeslice_ns=10 * MS))
        responder = PingResponder()
        m.add_vcpu(VCpu("vantage", responder))
        m.add_vcpu(VCpu("hog", CpuHog()))
        m.run(5 * MS)
        responder.inject(m.engine.now)
        m.run(30 * MS)
        assert responder.max_latency_ns > MS

    def test_statistics_empty_before_traffic(self):
        responder = PingResponder()
        assert responder.max_latency_ns == 0
        assert responder.mean_latency_ns == 0.0


class TestPingClient:
    def test_sends_requested_count(self):
        m = Machine(uniform(1), RoundRobinScheduler(), seed=5)
        responder = PingResponder()
        m.add_vcpu(VCpu("vantage", responder))
        client = PingClient(m, responder, count=25, max_spacing_ns=2 * MS)
        client.start()
        m.run(200 * MS)
        assert len(responder.latencies_ns) == 25

    def test_run_ping_load_aggregates_threads(self):
        m = Machine(uniform(1), RoundRobinScheduler(), seed=5)
        responder = PingResponder()
        m.add_vcpu(VCpu("vantage", responder))
        run_ping_load(m, responder, threads=4, pings_per_thread=10,
                      max_spacing_ns=MS)
        m.run(100 * MS)
        assert len(responder.latencies_ns) == 40

    def test_rejects_bad_count(self):
        m = Machine(uniform(1), RoundRobinScheduler())
        responder = PingResponder()
        m.add_vcpu(VCpu("vantage", responder))
        with pytest.raises(ConfigurationError):
            PingClient(m, responder, count=0).start()
