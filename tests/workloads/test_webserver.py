"""Tests for the nginx/wrk2 web-serving model."""

import pytest

from repro.errors import ConfigurationError
from repro.schedulers.simple import RoundRobinScheduler
from repro.sim import Machine, VCpu
from repro.topology import uniform
from repro.workloads import KIB, MIB, VirtualNic, WebServerWorkload, Wrk2Client

MS = 1_000_000
SEC = 1_000_000_000


def serve(rate, size, duration_ns=SEC, connections=8, nic=None, cores=1):
    m = Machine(uniform(cores), RoundRobinScheduler(), seed=3)
    server = WebServerWorkload(nic=nic)
    m.add_vcpu(VCpu("web", server))
    client = Wrk2Client(m, server, rate, size, duration_ns, connections=connections)
    client.start()
    m.run(duration_ns + 200 * MS)
    return m, server, client


class TestRequestLifecycle:
    def test_all_requests_complete_under_light_load(self):
        _, server, client = serve(rate=100, size=KIB)
        assert len(server.completed) == client.issued
        assert client.issued == 100

    def test_latency_includes_wire_and_service(self):
        _, _, client = serve(rate=50, size=KIB)
        summary = client.summary()
        # base CPU 140 us + tiny streaming + wire: sub-millisecond.
        assert 150_000 < summary.p50_ns < 1_000_000

    def test_larger_files_take_longer(self):
        _, _, small = serve(rate=50, size=KIB)
        _, _, large = serve(rate=20, size=100 * KIB)
        assert large.summary().p50_ns > small.summary().p50_ns

    def test_fifo_order_preserved(self):
        _, server, _ = serve(rate=200, size=KIB)
        finished = [r.intended_at for r in server.completed]
        assert finished == sorted(finished)

    def test_throughput_reported(self):
        _, _, client = serve(rate=100, size=KIB)
        assert client.achieved_throughput(SEC) == pytest.approx(100, abs=2)


class TestOverload:
    def test_cpu_saturation_shows_in_latency(self):
        # One full core serves ~6,600 1-KiB requests/s; offering 8,000
        # must blow up the coordinated-omission-corrected latency.
        _, _, ok = serve(rate=3_000, size=KIB)
        _, _, overloaded = serve(rate=8_000, size=KIB)
        assert overloaded.summary().p99_ns > 5 * ok.summary().p99_ns

    def test_connection_pool_limits_inflight(self):
        m = Machine(uniform(1), RoundRobinScheduler(), seed=3)
        server = WebServerWorkload()
        m.add_vcpu(VCpu("web", server))
        client = Wrk2Client(m, server, 5_000, KIB, SEC, connections=4)
        client.start()
        m.run(300 * MS)
        assert server.queue_depth <= 4


class TestNicInteraction:
    def test_large_file_bounded_by_ring_when_descheduled(self):
        # A slow NIC + large responses: the server must block on the
        # ring and completion follows the wire, not the CPU.
        slow_nic = VirtualNic(line_rate_bps=1e9, ring_bytes=64 * KIB)
        _, server, client = serve(rate=10, size=MIB, nic=slow_nic)
        # 1 MiB at 1 Gbit/s = ~8.4 ms of pure wire time per response.
        assert client.summary().p50_ns > 8_000_000

    def test_nic_utilization_tracked(self):
        nic = VirtualNic()
        _, _, client = serve(rate=100, size=100 * KIB, nic=nic)
        assert nic.utilization(SEC) > 0.02

    def test_ring_blocking_wakes_and_finishes(self):
        tiny_ring = VirtualNic(line_rate_bps=2.5e9, ring_bytes=32 * KIB)
        _, server, client = serve(rate=20, size=MIB, nic=tiny_ring, duration_ns=SEC)
        assert len(server.completed) >= client.issued - 2


class TestValidation:
    def test_bad_rate_rejected(self):
        m = Machine(uniform(1), RoundRobinScheduler())
        server = WebServerWorkload()
        m.add_vcpu(VCpu("web", server))
        with pytest.raises(ConfigurationError):
            Wrk2Client(m, server, 0, KIB, SEC)

    def test_bad_connections_rejected(self):
        m = Machine(uniform(1), RoundRobinScheduler())
        server = WebServerWorkload()
        m.add_vcpu(VCpu("web", server))
        with pytest.raises(ConfigurationError):
            Wrk2Client(m, server, 10, KIB, SEC, connections=0)

    def test_bad_chunk_rejected(self):
        with pytest.raises(ConfigurationError):
            WebServerWorkload(chunk_bytes=0)
