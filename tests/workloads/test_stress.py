"""Tests for the stress-like background workloads."""

import pytest

from repro.errors import ConfigurationError
from repro.schedulers.simple import RoundRobinScheduler
from repro.sim import Machine, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog, IoLoop

MS = 1_000_000


def run_alone(workload, duration=300 * MS, seed=0):
    m = Machine(uniform(1), RoundRobinScheduler(), seed=seed)
    m.add_vcpu(VCpu("w", workload))
    m.run(duration)
    return m


class TestCpuHog:
    def test_consumes_everything(self):
        m = run_alone(CpuHog())
        assert m.utilization_of("w") > 0.999

    def test_never_blocks(self):
        m = run_alone(CpuHog(chunk_ns=100_000))
        assert m.tracer.ops["wakeup"].count == 0

    def test_chunk_size_invisible_to_utilization(self):
        small = run_alone(CpuHog(chunk_ns=100_000))
        large = run_alone(CpuHog(chunk_ns=10 * MS))
        assert small.utilization_of("w") == pytest.approx(
            large.utilization_of("w"), abs=0.001
        )

    def test_rejects_bad_chunk(self):
        with pytest.raises(ConfigurationError):
            CpuHog(chunk_ns=0)


class TestIoLoop:
    def test_duty_cycle_without_jitter(self):
        workload = IoLoop(compute_ns=300_000, io_ns=700_000, jitter=0.0)
        m = run_alone(workload)
        assert m.utilization_of("w") == pytest.approx(0.3, abs=0.02)

    def test_jitter_preserves_mean_duty(self):
        workload = IoLoop(compute_ns=300_000, io_ns=700_000, jitter=0.3)
        m = run_alone(workload, duration=900 * MS)
        assert m.utilization_of("w") == pytest.approx(0.3, abs=0.04)

    def test_io_completions_counted(self):
        workload = IoLoop(compute_ns=100_000, io_ns=100_000, jitter=0.0)
        run_alone(workload)
        # ~1500 cycles in 300 ms at 200 us per cycle (minus switches).
        assert workload.io_completions > 1_000

    def test_triggers_frequent_scheduler_invocations(self):
        workload = IoLoop(jitter=0.0)
        m = run_alone(workload)
        # Each cycle blocks and wakes: the high-density regime's defining
        # property (Sec. 2.2).
        assert m.tracer.ops["wakeup"].count > 200

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            IoLoop(compute_ns=0)
        with pytest.raises(ConfigurationError):
            IoLoop(io_ns=0)
        with pytest.raises(ConfigurationError):
            IoLoop(jitter=1.5)

    def test_deterministic_for_fixed_seed(self):
        a = run_alone(IoLoop(), seed=11).utilization_of("w")
        b = run_alone(IoLoop(), seed=11).utilization_of("w")
        assert a == b
