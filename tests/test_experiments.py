"""Integration tests for the experiment harness (scaled-down runs).

Each test runs a miniature version of a paper experiment and asserts the
*shape* of the result — who wins, what is bounded — rather than absolute
values, mirroring the reproduction's goals.  Durations are kept short so
the whole module stays in CI territory.
"""

import pytest

from repro.core import MS
from repro.errors import ConfigurationError
from repro.experiments import (
    PAPER_TABLE1,
    build_scenario,
    intrinsic_latency,
    measure_overheads,
    measure_point,
    ping_latency,
    plan_for,
    run_web_load,
    schedulers_for,
)
from repro.topology import uniform, xeon_16core
from repro.workloads import KIB, CpuHog, IoLoop


class TestScenarioBuilder:
    def test_paper_census_is_48_vms(self):
        scenario = build_scenario("tableau", CpuHog(), capped=True)
        assert len(scenario.machine.vcpus) == 48
        assert scenario.vantage.name == "vm00.vcpu0"

    def test_scheduler_matrix_matches_paper(self):
        assert schedulers_for(capped=True) == ["credit", "rtds", "tableau"]
        assert schedulers_for(capped=False) == ["credit", "credit2", "tableau"]

    def test_credit2_cannot_be_capped(self):
        with pytest.raises(ConfigurationError):
            build_scenario("credit2", CpuHog(), capped=True)

    def test_rtds_cannot_be_uncapped(self):
        with pytest.raises(ConfigurationError):
            build_scenario("rtds", CpuHog(), capped=False)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigurationError):
            build_scenario("cfs", CpuHog())

    def test_plan_reuse(self):
        plan = plan_for(xeon_16core(), 48, capped=True)
        scenario = build_scenario("tableau", CpuHog(), plan=plan)
        assert scenario.plan is plan


class TestOverheadExperiment:
    def test_tableau_cheapest_scheduler(self):
        rows = {
            name: measure_overheads(name, duration_s=0.3)
            for name in ("tableau", "credit")
        }
        assert rows["tableau"].schedule_us < rows["credit"].schedule_us

    def test_tableau_matches_table1_closely(self):
        row = measure_overheads("tableau", duration_s=0.5)
        expected = PAPER_TABLE1["tableau"]
        assert row.schedule_us == pytest.approx(expected["schedule"], rel=0.25)
        assert row.wakeup_us == pytest.approx(expected["wakeup"], rel=0.25)


class TestDelayExperiments:
    def test_tableau_bounded_regardless_of_background(self):
        for background in ("none", "io", "cpu"):
            result = intrinsic_latency("tableau", True, background, duration_s=0.6)
            assert result.max_delay_ms <= 10.5

    def test_credit_worse_than_tableau_when_capped(self):
        credit = intrinsic_latency("credit", True, "cpu", duration_s=0.6)
        tableau = intrinsic_latency("tableau", True, "cpu", duration_s=0.6)
        assert credit.max_delay_ms > tableau.max_delay_ms

    def test_ping_uncapped_idle_fast_for_all(self):
        for scheduler in schedulers_for(capped=False):
            result = ping_latency(
                scheduler, False, "none", duration_s=1.0, pings_per_thread=40
            )
            assert result.avg_ms < 1.0, scheduler

    def test_tableau_ping_bounded_by_table(self):
        result = ping_latency(
            "tableau", True, "io", duration_s=1.0, pings_per_thread=40
        )
        assert result.max_ms <= 10.5


class TestWebExperiment:
    def test_light_load_served_fully(self):
        result = run_web_load("tableau", 200, KIB, duration_s=0.8)
        assert result.point.achieved_rate == pytest.approx(200, rel=0.05)

    def test_overload_shows_in_p99(self):
        light = run_web_load("tableau", 400, KIB, duration_s=0.8)
        heavy = run_web_load("tableau", 2_400, KIB, duration_s=0.8)
        assert heavy.point.latency.p99_ns > 3 * light.point.latency.p99_ns

    def test_nic_utilization_reported(self):
        result = run_web_load("tableau", 200, 100 * KIB, duration_s=0.8)
        assert 0.0 < result.nic_utilization < 1.0


class TestPlannerScaling:
    def test_generation_time_and_size_positive(self):
        point = measure_point(16, latency_ms=30, topology=uniform(4))
        assert point.generation_s > 0
        assert point.table_bytes > 0

    def test_tighter_latency_bigger_tables(self):
        loose = measure_point(16, latency_ms=100, topology=uniform(4))
        tight = measure_point(16, latency_ms=1, topology=uniform(4))
        assert tight.table_bytes > loose.table_bytes
