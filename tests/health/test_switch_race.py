"""Satellite regression: wakeup racing a table switch at the activation
boundary must settle L2 budgets *before* the switch.

Pre-fix, ``pick_next`` switched tables (rebuilding second-level
membership) and only then settled the previous pick's consumed budget.
A reschedule landing exactly on the activation wrap therefore charged
the consumption against the *new* table's per-core state: if the vCPU's
home core moved, the charge went to a stale (empty) state on the old
core and the budget carried to the new home was never decremented —
the vCPU was silently over-serviced by a full L2 slice per switch.
"""

from repro.schedulers import TableauScheduler
from repro.sim import VCpu
from repro.workloads import CpuHog

from tests.health.conftest import MS, make_table

CYCLE = 10 * MS
EPOCH = 10 * MS  # default L2 epoch: one runnable member gets it all


def build_scheduler():
    table_a = make_table(
        CYCLE,
        {
            0: [(0, 1 * MS, "vmA.vcpu0"), (1 * MS, 2 * MS, "vmB.vcpu0")],
            1: [(0, 1 * MS, "vmC.vcpu0")],
        },
    )
    sched = TableauScheduler(table_a)
    sched.add_vcpu(VCpu("vmA.vcpu0", CpuHog(), capped=True))
    vcpu_b = VCpu("vmB.vcpu0", CpuHog(), capped=False)
    sched.add_vcpu(vcpu_b)
    sched.add_vcpu(VCpu("vmC.vcpu0", CpuHog(), capped=True))
    return sched, vcpu_b


def run_l2_then_switch(sched, vcpu_b, table_b, consumed_ns):
    """Give vmB an L2 slice, consume, then pick exactly at the wrap."""
    vcpu_b.begin_burst(20 * MS)  # runnable
    decision = sched.pick_next(0, 3 * MS)  # idle slot on core 0
    assert decision.vcpu is vcpu_b and decision.level == 2
    assert sched._l2[0].budgets["vmB.vcpu0"] == EPOCH  # replenished
    vcpu_b.consume(consumed_ns)
    sched.install_table(table_b, first_cycle=1)
    # The racing wakeup: a reschedule delivered at exactly the
    # activation boundary re-enters pick_next at the wrap instant.
    sched.pick_next(0, CYCLE)
    assert sched.table is table_b
    assert sched.table_switches == 1


class TestSwitchRace:
    def test_budget_settles_before_a_home_core_move(self):
        sched, vcpu_b = build_scheduler()
        table_b = make_table(
            CYCLE,
            {
                0: [(0, 1 * MS, "vmA.vcpu0")],
                1: [(0, 1 * MS, "vmC.vcpu0"), (1 * MS, 2 * MS, "vmB.vcpu0")],
            },
        )
        run_l2_then_switch(sched, vcpu_b, table_b, consumed_ns=400_000)
        # vmB's home moved 0 -> 1; the budget carried to the new home
        # must already reflect the 400 us consumed under the old table.
        assert sched._l2[1].budgets["vmB.vcpu0"] == EPOCH - 400_000
        # And no stale membership survives on the old home core.
        old = sched._l2.get(0)
        assert old is None or all(
            m.name != "vmB.vcpu0" for m in old.members
        )

    def test_budget_settles_when_home_core_is_unchanged(self):
        sched, vcpu_b = build_scheduler()
        table_b = make_table(
            CYCLE,
            {
                0: [(0, 1 * MS, "vmA.vcpu0"), (2 * MS, 3 * MS, "vmB.vcpu0")],
                1: [(0, 1 * MS, "vmC.vcpu0")],
            },
        )
        run_l2_then_switch(sched, vcpu_b, table_b, consumed_ns=250_000)
        assert sched._l2[0].budgets["vmB.vcpu0"] == EPOCH - 250_000

    def test_exhausted_budget_clamps_at_zero_across_the_switch(self):
        sched, vcpu_b = build_scheduler()
        table_b = make_table(
            CYCLE,
            {
                0: [(0, 1 * MS, "vmA.vcpu0")],
                1: [(0, 1 * MS, "vmC.vcpu0"), (1 * MS, 2 * MS, "vmB.vcpu0")],
            },
        )
        run_l2_then_switch(sched, vcpu_b, table_b, consumed_ns=11 * MS)
        assert sched._l2[1].budgets["vmB.vcpu0"] == 0
