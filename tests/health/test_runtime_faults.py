"""Runtime fault injection at the machine's decision points.

Covers the tentpole's machine-level sites — lost/delayed wakeup IPIs,
per-core clock skew, timer jitter, stuck vCPUs — plus the two framing
guarantees: an empty fault plan perturbs nothing, and chaos runs are
bit-reproducible per seed.
"""

import pytest

from repro.core import MS, Planner, make_vm
from repro.faults import FaultPlan
from repro.faults.plan import runtime_preset
from repro.health import run_chaos
from repro.schedulers import TableauScheduler
from repro.sim import Machine, Tracer, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog, IoLoop


def build_machine(cores=1, capped=True, faults=None, tracer=None, workloads=None):
    vms = [make_vm(f"vm{i}", 0.25, 20 * MS, capped=capped) for i in range(2 * cores)]
    plan = Planner(uniform(cores)).plan(vms)
    sched = TableauScheduler(plan.table, faults=faults)
    machine = Machine(uniform(cores), sched, seed=1, tracer=tracer, faults=faults)
    for i in range(2 * cores):
        workload = workloads[i] if workloads is not None else CpuHog()
        machine.add_vcpu(VCpu(f"vm{i}.vcpu0", workload, capped=capped))
    return machine, sched


class TestIpiWire:
    def test_lost_ipi_is_dropped_and_counted(self):
        faults = FaultPlan.lost_ipi(cpu=0, persistent_from=1)
        machine, _ = build_machine(faults=faults)
        machine.send_resched_ipi(0)
        assert machine.lost_ipis == 1
        assert machine.cpus[0].resched is None

    def test_delayed_ipi_arrives_late(self):
        faults = FaultPlan.delayed_ipi(delay_ns=500_000, cpu=0)
        machine, _ = build_machine(faults=faults)
        machine.send_resched_ipi(0)
        assert machine.delayed_ipis == 1
        resched = machine.cpus[0].resched
        assert resched is not None
        assert resched.time == machine.engine.now + 500_000

    def test_faults_are_scoped_to_the_targeted_core(self):
        faults = FaultPlan.lost_ipi(cpu=1, persistent_from=1)
        machine, _ = build_machine(cores=2, faults=faults)
        machine.send_resched_ipi(0)
        assert machine.lost_ipis == 0
        assert machine.cpus[0].resched is not None
        machine.send_resched_ipi(1)
        assert machine.lost_ipis == 1
        assert machine.cpus[1].resched is None

    def test_transient_loss_recovers(self):
        faults = FaultPlan.lost_ipi(cpu=0, calls=(1,))
        machine, _ = build_machine(faults=faults)
        machine.send_resched_ipi(0)
        assert machine.cpus[0].resched is None
        machine.send_resched_ipi(0)
        assert machine.cpus[0].resched is not None
        assert machine.lost_ipis == 1


class TestClockAndTimer:
    def test_timer_jitter_fires_and_simulation_survives(self):
        faults = FaultPlan.timer_jitter(delay_ns=200_000, cpu=0, probability=1.0)
        machine, _ = build_machine(faults=faults)
        machine.run(50 * MS)
        assert machine.jittered_timers > 0
        assert machine.vcpus["vm0.vcpu0"].runtime_ns > 0

    def test_clock_skew_shifts_but_preserves_reservations(self):
        faults = FaultPlan.clock_skew(skew_ns=500_000, cpu=1)
        machine, _ = build_machine(cores=2, faults=faults)
        machine.run(200 * MS)
        # The skewed core reads its table half a millisecond off, so
        # slots shift in absolute time but keep their width: every guest
        # still lands close to its 25% reservation.
        for i in range(4):
            assert machine.utilization_of(f"vm{i}.vcpu0") == pytest.approx(
                0.25, abs=0.05
            )

    def test_negative_skew_clamps_at_time_zero(self):
        faults = FaultPlan.clock_skew(skew_ns=-5 * MS, cpu=0)
        machine, _ = build_machine(faults=faults)
        machine.run(50 * MS)  # must not crash on local_now < 0 at boot
        assert machine.vcpus["vm0.vcpu0"].runtime_ns > 0


class TestStuckVcpu:
    def test_overruns_counted_per_vcpu(self):
        faults = FaultPlan.stuck_vcpu(
            vcpu="vm0.vcpu0", extra_burst_ns=500_000, persistent_from=1
        )
        machine, _ = build_machine(
            capped=False, faults=faults, workloads=[IoLoop(), CpuHog()]
        )
        machine.run(50 * MS)
        assert machine.stuck_overruns > 0
        assert (
            machine.stuck_overruns_by_vcpu["vm0.vcpu0"] == machine.stuck_overruns
        )

    def test_stuck_vcpu_consumes_more_than_its_duty_cycle(self):
        def run(faults):
            machine, _ = build_machine(
                capped=False, faults=faults, workloads=[IoLoop(), IoLoop()]
            )
            machine.run(100 * MS)
            return machine.vcpus["vm0.vcpu0"].runtime_ns

        stuck = run(
            FaultPlan.stuck_vcpu(
                vcpu="vm0.vcpu0", extra_burst_ns=1_000_000, persistent_from=1
            )
        )
        healthy = run(None)
        assert stuck > healthy


class TestFingerprintSafety:
    def test_empty_fault_plan_changes_nothing(self):
        def dispatches(faults):
            tracer = Tracer(keep_dispatches=True)
            machine, _ = build_machine(
                capped=False,
                faults=faults,
                tracer=tracer,
                workloads=[IoLoop(), IoLoop()],
            )
            machine.run(100 * MS)
            return [(d.time, d.cpu, d.vcpu, d.level) for d in tracer.dispatches]

        assert dispatches(None) == dispatches(FaultPlan(seed=99))


class TestDeterminism:
    def test_chaos_runs_are_bit_reproducible_per_seed(self):
        def signature(seed):
            result = run_chaos(
                runtime_preset("chaos", seed=seed), seconds=0.1, seed=seed
            )
            machine = result.machine
            return (
                result.injected_by_site,
                machine.lost_ipis,
                machine.delayed_ipis,
                machine.jittered_timers,
                machine.stuck_overruns,
                result.scheduler.degraded_picks,
                result.scheduler.failed_switches,
                sorted((n, v.runtime_ns) for n, v in machine.vcpus.items()),
            )

        assert signature(7) == signature(7)

    def test_different_seeds_diverge(self):
        def faults_seen(seed):
            result = run_chaos(
                runtime_preset("chaos", seed=seed), seconds=0.1, seed=seed
            )
            return result.injected_by_site

        assert faults_seen(7) != faults_seen(8)
