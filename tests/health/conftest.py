"""Shared fixtures for the health/chaos suites.

Provides hand-built tables (full control over allocation placement, so
tests can aim wakeups at exact slot and epoch positions) and a minimal
wake-on-demand workload for driving the IPI paths deterministically.
"""

from typing import Dict, List, Tuple

from repro.core.table import Allocation, CoreTable, SystemTable
from repro.sim.vm import Workload

MS = 1_000_000


def make_table(
    length_ns: int, allocs: Dict[int, List[Tuple[int, int, str]]]
) -> SystemTable:
    """Build a SystemTable from ``{cpu: [(start, end, vcpu), ...]}``."""
    cores = {
        cpu: CoreTable(
            cpu=cpu,
            length_ns=length_ns,
            allocations=[Allocation(s, e, v) for (s, e, v) in entries],
        )
        for cpu, entries in allocs.items()
    }
    table = SystemTable(length_ns=length_ns, cores=cores)
    table.validate()
    table.build_slices()
    return table


class OnDemand(Workload):
    """Blocks until woken, runs one fixed burst, blocks again.

    Records every dispatch instant so tests can assert exactly when the
    scheduler got around to running the vCPU after a wake.
    """

    def __init__(self, burst_ns: int = 100_000) -> None:
        super().__init__()
        self.burst_ns = burst_ns
        self.dispatches: List[int] = []
        self.wakes: List[int] = []

    def start(self, now: int) -> None:
        self.vcpu.set_blocked()

    def on_wake(self, now: int) -> None:
        self.wakes.append(now)
        self.vcpu.begin_burst(self.burst_ns)

    def on_burst_complete(self, now: int) -> None:
        self.vcpu.set_blocked()

    def on_dispatch(self, now: int) -> None:
        self.dispatches.append(now)
