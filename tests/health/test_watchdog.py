"""Per-core watchdog: stall detection without fault-free false positives."""

from repro.core import MS, Planner, make_vm
from repro.health import CoreWatchdog
from repro.schedulers import TableauScheduler
from repro.sim import Machine, VCpu
from repro.sim.vm import VCpuState
from repro.topology import uniform
from repro.workloads import CpuHog, IoLoop


def build_machine(capped=False):
    vms = [make_vm(f"vm{i}", 0.25, 20 * MS, capped=capped) for i in range(2)]
    plan = Planner(uniform(1)).plan(vms)
    sched = TableauScheduler(plan.table)
    machine = Machine(uniform(1), sched, seed=1)
    machine.add_vcpu(VCpu("vm0.vcpu0", CpuHog(), capped=capped))
    machine.add_vcpu(VCpu("vm1.vcpu0", IoLoop(), capped=capped))
    return machine, sched


def strand_core(machine, cpu_index):
    """Simulate the failure the watchdog exists for: the core's dispatch
    events evaporate while runnable work remains."""
    cpu = machine.cpus[cpu_index]
    current = cpu.current
    if current is not None:
        current.state = VCpuState.RUNNABLE
        current.pcpu = None
        cpu.current = None
    if cpu.event is not None:
        cpu.event.cancel()
        cpu.event = None
    if cpu.resched is not None:
        cpu.resched.cancel()
        cpu.resched = None


class TestFaultFree:
    def test_healthy_run_is_never_kicked(self):
        machine, sched = build_machine()
        watchdog = CoreWatchdog(machine, sched, 0)
        watchdog.start()
        machine.run(100 * MS)
        watchdog.stop()
        assert watchdog.checks >= 90
        assert watchdog.kicks == 0

    def test_start_stop_lifecycle(self):
        machine, sched = build_machine()
        watchdog = CoreWatchdog(machine, sched, 0)
        assert not watchdog.active
        watchdog.start()
        assert watchdog.active
        watchdog.stop()
        assert not watchdog.active


class TestStallDetection:
    def test_stranded_runnable_work_is_kicked_and_recovers(self):
        machine, sched = build_machine()
        machine.run(30 * MS)
        strand_core(machine, 0)
        assert sched.runnable_on(0) > 0
        watchdog = CoreWatchdog(machine, sched, 0)
        assert watchdog.check() is True
        assert watchdog.kicks == 1
        before = machine.vcpus["vm0.vcpu0"].runtime_ns
        machine.run(10 * MS)
        assert machine.vcpus["vm0.vcpu0"].runtime_ns > before

    def test_event_beyond_stall_bound_counts_as_stalled(self):
        machine, sched = build_machine()
        machine.run(30 * MS)
        strand_core(machine, 0)
        cpu = machine.cpus[0]
        now = machine.engine.now
        cpu.event = machine.engine.at(now + 5 * MS, cpu.event_cb)
        watchdog = CoreWatchdog(machine, sched, 0, stall_bound_ns=2 * MS)
        assert watchdog.check() is True

    def test_event_within_stall_bound_is_left_alone(self):
        machine, sched = build_machine()
        machine.run(30 * MS)
        strand_core(machine, 0)
        cpu = machine.cpus[0]
        now = machine.engine.now
        cpu.event = machine.engine.at(now + 2 * MS, cpu.event_cb)
        watchdog = CoreWatchdog(machine, sched, 0, stall_bound_ns=2 * MS)
        assert watchdog.check() is False
        assert watchdog.kicks == 0

    def test_busy_core_is_never_stalled(self):
        machine, sched = build_machine()
        machine.run(30 * MS)
        watchdog = CoreWatchdog(machine, sched, 0)
        # The hog keeps the core busy (or a resched is in flight at the
        # stop instant); either way the watchdog must not kick.
        assert watchdog.check() is False

    def test_idle_core_without_runnable_work_is_not_stalled(self):
        machine, sched = build_machine()
        machine.run(30 * MS)
        strand_core(machine, 0)
        for vcpu in machine.vcpus.values():
            vcpu.state = VCpuState.BLOCKED
        watchdog = CoreWatchdog(machine, sched, 0)
        assert watchdog.check() is False

    def test_incident_callback_reports_the_stall(self):
        machine, sched = build_machine()
        machine.run(30 * MS)
        strand_core(machine, 0)
        incidents = []
        watchdog = CoreWatchdog(machine, sched, 0, on_incident=incidents.append)
        watchdog.check()
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident.cpu == 0
        assert incident.kind == "stall"
        assert "runnable" in incident.detail
