"""Satellite: on_wakeup onto an idle table slot (L2 path) under IPI faults.

The canonical high-density census packs every core exactly, so wakeups
never cross cores and the IPI wire is never exercised.  These tests use
a hand-built table instead: vmB is uncapped with a single 1 ms
allocation at the tail of core 1's 10 ms cycle, so a wake at any earlier
offset lands on an *idle* slot and takes the second-level path
(``on_wakeup`` -> idle home core -> cross-core rescheduling IPI, since
the wake interrupt is processed on core 0).  The wake offset is swept
across every 1 ms second-level slice position of the epoch; the final
position falls inside vmB's own allocation and must take the level-1
path instead.
"""

import pytest

from repro.faults import FaultPlan
from repro.health import CoreWatchdog
from repro.schedulers import TableauScheduler
from repro.sim import Machine, Tracer, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog

from tests.health.conftest import MS, OnDemand, make_table

#: Table cycle == the default L2 epoch (10 ms), so table offsets and
#: epoch positions coincide; vmB's own slot occupies position 9.
CYCLE = 10 * MS
BASE = 2 * CYCLE  # first wake instant: past all boot transients
DELAY_NS = 300_000


def build_machine(faults=None):
    table = make_table(
        CYCLE,
        {
            0: [(0, 1 * MS, "vmA.vcpu0")],
            1: [(9 * MS, 10 * MS, "vmB.vcpu0")],
        },
    )
    sched = TableauScheduler(table)
    tracer = Tracer(keep_dispatches=True)
    machine = Machine(uniform(2), sched, seed=1, tracer=tracer, faults=faults)
    machine.add_vcpu(VCpu("vmA.vcpu0", CpuHog(), capped=True))
    workload = OnDemand(burst_ns=100_000)
    machine.add_vcpu(VCpu("vmB.vcpu0", workload, capped=False))
    return machine, sched, tracer, workload


def wake_remotely(machine, at_ns):
    """Advance to ``at_ns`` and wake vmB with the interrupt processed on
    core 0 (so the notification to its home core crosses the wire)."""
    machine.run(at_ns - machine.engine.now)
    assert machine.engine.now == at_ns
    vcpu = machine.vcpus["vmB.vcpu0"]
    vcpu.last_cpu = 0
    machine.wake(vcpu)


def dispatches_of(tracer, name, since):
    return [
        d for d in tracer.dispatches if d.vcpu == name and d.time >= since
    ]


class TestDelayedIpi:
    @pytest.mark.parametrize("position", range(9))
    def test_idle_slot_wake_is_served_at_l2_after_the_delay(self, position):
        faults = FaultPlan.delayed_ipi(delay_ns=DELAY_NS, cpu=1)
        machine, sched, tracer, workload = build_machine(faults)
        wake_at = BASE + position * MS
        wake_remotely(machine, wake_at)
        machine.run(1 * MS)
        assert machine.delayed_ipis == 1
        served = dispatches_of(tracer, "vmB.vcpu0", wake_at)
        assert served, "woken vCPU was never dispatched"
        first = served[0]
        assert first.cpu == 1
        assert first.level == 2  # idle table slot: second-level pick
        assert first.time >= wake_at + DELAY_NS
        assert machine.vcpus["vmB.vcpu0"].runtime_ns == 100_000

    def test_in_slot_wake_takes_the_level1_path(self):
        faults = FaultPlan.delayed_ipi(delay_ns=DELAY_NS, cpu=1)
        machine, sched, tracer, workload = build_machine(faults)
        wake_at = BASE + 9 * MS  # inside vmB's own allocation
        wake_remotely(machine, wake_at)
        machine.run(1 * MS)
        served = dispatches_of(tracer, "vmB.vcpu0", wake_at)
        assert served and served[0].level == 1
        assert served[0].time >= wake_at + DELAY_NS

    def test_every_epoch_position_in_one_run(self):
        faults = FaultPlan.delayed_ipi(delay_ns=DELAY_NS, cpu=1)
        machine, sched, tracer, workload = build_machine(faults)
        for position in range(9):
            wake_remotely(machine, BASE + position * CYCLE + position * MS)
        machine.run(1 * MS)
        assert machine.delayed_ipis == 9
        assert len(workload.dispatches) == 9
        assert machine.vcpus["vmB.vcpu0"].runtime_ns == 9 * 100_000


class TestLostIpi:
    def test_lost_wakeup_strands_until_the_next_table_boundary(self):
        faults = FaultPlan.lost_ipi(cpu=1, persistent_from=1)
        machine, sched, tracer, workload = build_machine(faults)
        wake_at = BASE + 2 * MS
        wake_remotely(machine, wake_at)
        machine.run(8 * MS)
        assert machine.lost_ipis == 1
        served = dispatches_of(tracer, "vmB.vcpu0", wake_at)
        assert served, "bounded staleness: the table slot still serves"
        # Nothing re-ran core 1's scheduler until its own next boundary
        # (the start of vmB's slot at offset 9 ms).
        assert served[0].time >= BASE + 9 * MS

    def test_watchdog_closes_the_lost_ipi_gap(self):
        faults = FaultPlan.lost_ipi(cpu=1, persistent_from=1)
        machine, sched, tracer, workload = build_machine(faults)
        machine.run(BASE - machine.engine.now)
        watchdog = CoreWatchdog(
            machine, sched, 1, period_ns=1 * MS, stall_bound_ns=2 * MS
        )
        watchdog.start()
        wake_at = BASE + 2 * MS
        wake_remotely(machine, wake_at)
        machine.run(3 * MS)
        watchdog.stop()
        assert machine.lost_ipis == 1
        assert watchdog.kicks >= 1
        served = dispatches_of(tracer, "vmB.vcpu0", wake_at)
        assert served
        # Served from the watchdog kick, far before the 9 ms boundary.
        assert served[0].time < BASE + 9 * MS
        assert served[0].level == 2
