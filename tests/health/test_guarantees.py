"""Online (U, L) guarantee monitoring: silent erosion becomes incidents."""

from repro.core import MS, Planner, make_vm
from repro.health import GuaranteeMonitor
from repro.schedulers import TableauScheduler
from repro.sim import Machine, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog


def build_machine():
    vms = [make_vm(f"vm{i}", 0.25, 20 * MS, capped=True) for i in range(2)]
    plan = Planner(uniform(1)).plan(vms)
    sched = TableauScheduler(plan.table)
    machine = Machine(uniform(1), sched, seed=1)
    machine.add_vcpu(VCpu("vm0.vcpu0", CpuHog(), capped=True))
    machine.add_vcpu(VCpu("vm1.vcpu0", CpuHog(), capped=True))
    return machine, sched


class TestFaultFree:
    def test_healthy_run_has_no_violations(self):
        machine, sched = build_machine()
        monitor = GuaranteeMonitor(machine, sched, window_ns=40 * MS)
        monitor.start()
        machine.run(400 * MS)
        monitor.stop()
        assert monitor.samples >= 9
        assert monitor.violations == []

    def test_stop_detaches_the_dispatch_listener(self):
        machine, sched = build_machine()
        monitor = GuaranteeMonitor(machine, sched, window_ns=40 * MS)
        monitor.start()
        assert machine.tracer.dispatch_listeners
        monitor.stop()
        assert monitor._on_dispatch not in machine.tracer.dispatch_listeners


class TestViolationDetection:
    def test_zero_progress_over_a_window_is_an_utilization_violation(self):
        machine, sched = build_machine()
        monitor = GuaranteeMonitor(machine, sched, window_ns=40 * MS)
        machine.run(30 * MS)
        monitor._sample()  # baseline
        # Same instant, zero runtime delta: both hogs stayed runnable
        # the whole "window" yet received nothing.
        monitor._sample()
        kinds = monitor.violations_by_kind()
        assert kinds.get("utilization", 0) >= 2

    def test_service_gap_beyond_blackout_bound_is_a_blackout_violation(self):
        machine, sched = build_machine()
        monitor = GuaranteeMonitor(machine, sched, window_ns=40 * MS)
        machine.run(30 * MS)
        monitor._sample()  # baseline
        now = machine.engine.now
        allowed = (
            sched.table.max_blackout_ns("vm0.vcpu0") * monitor.l_slack
        )
        monitor._last_dispatch["vm0.vcpu0"] = int(now - allowed - 1)
        # Give both hogs fake progress so the U check stays quiet and the
        # L check is isolated.
        for vcpu in machine.vcpus.values():
            vcpu.runtime_ns += 5 * MS
        monitor._sample()
        violations = [v for v in monitor.violations if v.kind == "blackout"]
        assert len(violations) == 1
        violation = violations[0]
        assert violation.vcpu == "vm0.vcpu0"
        assert violation.observed > violation.bound

    def test_quarantined_vcpus_are_exempt(self):
        machine, sched = build_machine()
        monitor = GuaranteeMonitor(machine, sched, window_ns=40 * MS)
        machine.run(30 * MS)
        monitor._sample()
        sched.quarantine("vm0.vcpu0", "test")
        monitor._sample()  # zero progress, but vm0 is quarantined
        assert all(v.vcpu != "vm0.vcpu0" for v in monitor.violations)

    def test_on_violation_callback_fires(self):
        machine, sched = build_machine()
        seen = []
        monitor = GuaranteeMonitor(
            machine, sched, window_ns=40 * MS, on_violation=seen.append
        )
        machine.run(30 * MS)
        monitor._sample()
        monitor._sample()
        assert seen and seen == monitor.violations

    def test_bounds_cache_follows_table_switches(self):
        machine, sched = build_machine()
        monitor = GuaranteeMonitor(machine, sched, window_ns=40 * MS)
        machine.run(10 * MS)
        first = monitor._table_bounds()
        assert monitor._table_bounds() is first  # cached per table
        vms = [make_vm(f"vm{i}", 0.25, 20 * MS, capped=True) for i in range(2)]
        new_plan = Planner(uniform(1)).plan(vms)
        sched.install_table(
            new_plan.table, machine.engine.now // sched.table.length_ns + 1
        )
        machine.run(2 * sched.table.length_ns)
        assert sched.table is new_plan.table
        assert monitor._table_bounds() is not first
