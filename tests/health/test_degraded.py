"""Chaos-survival acceptance: corrupt switches, degraded dispatch, recovery.

The ISSUE 3 acceptance scenario: under injected persistent table
corruption plus lost IPIs on one core, the full stack completes without
crashing, the affected core serves vCPUs in degraded round-robin mode,
quarantined vCPUs are reported with reasons, and the core returns to
table-driven dispatch after the next successful replan — with the
invariant audit clean throughout.
"""

from repro.faults.plan import (
    SITE_IPI_LOST,
    SITE_TABLE_SWITCH,
    FaultPlan,
    FaultSpec,
    runtime_preset,
)
from repro.health import run_chaos


def corruption_plan(seed=3):
    """Persistent corruption of core 4's table state plus a dead IPI wire.

    The switch fault corrupts core 4 at the first activation wrap; the
    corruption persists until a clean replan lands.  Lost-IPI pressure
    rides along on the same core (the exactly-packed canonical census
    produces no cross-core wakeup IPIs, so the wire fault is inert here;
    it is exercised against a custom table in test_wakeup_idle_slot).
    """
    return FaultPlan(
        seed=seed,
        specs=[
            FaultSpec(site=SITE_TABLE_SWITCH, calls=(1,), cpu=4, corrupt=True),
            FaultSpec(
                site=SITE_IPI_LOST, key="cpu4", probability=1.0, persistent_from=1
            ),
        ],
    )


class TestChaosSurvival:
    def test_corrupt_core_degrades_serves_and_recovers(self):
        result = run_chaos(corruption_plan(), seconds=0.5, seed=3)
        scheduler = result.scheduler

        # The staged table failed to activate exactly once, corrupting
        # core 4; the hypercall layer accounted for the dropped table.
        assert scheduler.failed_switches == 1
        assert result.hypercall.failed_activations == 1

        # While degraded, core 4 kept serving guests round-robin.
        assert scheduler.degraded_picks > 0
        incidents = [i for i in result.supervisor.incidents if i.kind == "degraded"]
        assert incidents and incidents[0].cpu == 4
        assert "mid-activation" in incidents[0].detail

        # The supervisor drove a recovery replan through the daemon...
        recoveries = result.health_report["recoveries"]
        assert recoveries and recoveries[0]["committed"]
        assert recoveries[0]["degraded_cores"] == [4]

        # ...and the next successful switch restored table-driven
        # dispatch on every core.
        assert scheduler.table_switches >= 1
        assert scheduler.degraded_cores == {}

        # Control-plane invariants held through the whole episode.
        assert result.audit_clean
        assert result.audits > 0

    def test_machine_wide_corruption_degrades_every_core_and_recovers(self):
        faults = FaultPlan.table_switch_failure(calls=(1,), cpu=None, seed=4)
        result = run_chaos(faults, seconds=0.5, seed=4)
        scheduler = result.scheduler
        assert scheduler.failed_switches == 1
        # Every guest core went through degraded mode (dom0 cores host
        # no guests, so only guest cores record picks), then recovered.
        assert scheduler.degraded_picks > 1000
        degraded_cpus = {
            i.cpu for i in result.supervisor.incidents if i.kind == "degraded"
        }
        assert degraded_cpus.issuperset(result.machine.topology.guest_cores)
        assert scheduler.degraded_cores == {}
        assert result.audit_clean

    def test_degraded_core_guests_keep_making_progress(self):
        result = run_chaos(corruption_plan(), seconds=0.5, seed=3)
        # Every vCPU homed on the degraded core still accumulated
        # runtime: degraded round-robin is service, not a wedge.
        homes = result.scheduler.table.home_cores
        on_core4 = [name for name, cores in homes.items() if 4 in cores]
        assert on_core4
        for name in on_core4:
            assert result.machine.vcpus[name].runtime_ns > 0


class TestFaultFreeBaseline:
    def test_health_layer_is_quiet_on_a_healthy_stack(self):
        result = run_chaos(None, seconds=0.1, seed=42)
        report = result.health_report
        assert report["watchdog"]["kicks"] == 0
        assert report["guarantees"]["violations"] == {}
        assert report["dispatch"]["failed_switches"] == 0
        assert report["dispatch"]["degraded_picks"] == 0
        assert report["quarantines"] == {}
        assert result.audit_clean

    def test_chaos_preset_survives_every_seed(self):
        # A miniature of the CI chaos matrix: the full preset mix must
        # complete with a clean audit regardless of seed.
        for seed in (101, 202):
            result = run_chaos(
                runtime_preset("chaos", seed=seed), seconds=0.2, seed=seed
            )
            assert result.audit_clean
            assert result.scheduler.degraded_cores == {}
