"""Health supervisor: stuck-guest quarantine, reconfiguration, release."""

from repro.core import MS
from repro.faults import FaultPlan
from repro.health import (
    QUARANTINE_UTILIZATION,
    HealthSupervisor,
    run_chaos,
)
from repro.schedulers import TableauScheduler
from repro.sim import Machine, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog, IoLoop
from repro.xen.toolstack import Toolstack


class TestStuckGuestQuarantine:
    def test_repeated_overruns_quarantine_the_guest(self):
        faults = FaultPlan.stuck_vcpu(
            vcpu="vm05.vcpu0", extra_burst_ns=2_000_000, persistent_from=1
        )
        result = run_chaos(faults, seconds=0.1, seed=5, stuck_threshold=3)
        assert result.machine.stuck_overruns_by_vcpu["vm05.vcpu0"] >= 3
        quarantines = result.health_report["quarantines"]
        assert "vm05.vcpu0" in quarantines
        record = quarantines["vm05.vcpu0"]
        assert "stuck guest" in record["reason"]
        assert record["released_at_ns"] is None
        assert "vm05.vcpu0" in result.scheduler.quarantined

    def test_healthy_guests_are_left_alone(self):
        result = run_chaos(None, seconds=0.1, seed=5)
        assert result.health_report["quarantines"] == {}
        assert result.scheduler.quarantined == {}

    def test_release_returns_the_guest_to_service(self):
        faults = FaultPlan.stuck_vcpu(
            vcpu="vm05.vcpu0", extra_burst_ns=2_000_000, persistent_from=1
        )
        result = run_chaos(faults, seconds=0.1, seed=5)
        supervisor = result.supervisor
        supervisor.release_vcpu("vm05.vcpu0")
        assert "vm05.vcpu0" not in result.scheduler.quarantined
        assert supervisor.quarantines["vm05.vcpu0"].released_at_ns is not None


class TestToolstackReconfiguration:
    def build_stack(self):
        toolstack = Toolstack(uniform(2))
        toolstack.create_vm("web", 0.25, 20 * MS)
        toolstack.create_vm("db", 0.25, 20 * MS)
        plan = toolstack.current_plan
        scheduler = TableauScheduler(plan.table)
        machine = Machine(uniform(2), scheduler, seed=1)
        machine.add_vcpu(VCpu("web.vcpu0", IoLoop()))
        machine.add_vcpu(VCpu("db.vcpu0", CpuHog()))
        supervisor = HealthSupervisor(machine, scheduler, toolstack=toolstack)
        return toolstack, machine, scheduler, supervisor

    def test_quarantine_reconfigures_the_domain_down(self):
        toolstack, machine, scheduler, supervisor = self.build_stack()
        record = supervisor.quarantine_vcpu("web.vcpu0", "operator action")
        assert record.reconfigured is True
        spec = next(s for s in toolstack.registry.specs if s.name == "web")
        assert spec.vcpus[0].utilization == QUARANTINE_UTILIZATION
        assert "web.vcpu0" in scheduler.quarantined

    def test_unknown_domain_still_quarantines(self):
        toolstack, machine, scheduler, supervisor = self.build_stack()
        record = supervisor.quarantine_vcpu("ghost.vcpu0", "test")
        assert record.reconfigured is False
        assert "ghost.vcpu0" in scheduler.quarantined


class TestReporting:
    def test_report_has_all_sections(self):
        result = run_chaos(None, seconds=0.05, seed=1)
        report = result.health_report
        for key in (
            "watchdog",
            "guarantees",
            "faults_observed",
            "dispatch",
            "quarantines",
            "incidents",
            "recoveries",
            "commits_seen",
        ):
            assert key in report
        assert report["watchdog"]["checks"] > 0
        # The initial census commit happened before the supervisor hooked
        # the daemon, but periodic regenerations are seen.
        assert report["dispatch"]["table_switches"] >= 0
