"""Regression tests for the control-path failure-mode bugfixes.

Each test here fails against the pre-fix code: the toolstack used to
roll back only on ``AdmissionError``, ``destroy_vm`` never restored the
registry, ``rotate_table`` leaked its rotation bump on failure, and the
hypercall lost staged-but-overwritten tables from its accounting.
"""

import pytest

from repro.core import MS, Planner, make_vm
from repro.errors import LatencyInfeasibleError, PlanningError, TablePushError
from repro.faults import FaultPlan, FaultSpec, InvariantAuditor, SITE_PLAN
from repro.schedulers import TableauScheduler
from repro.sim import Machine, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog
from repro.xen import DomainState, TableHypercall, Toolstack
from repro.xen.daemon import PlannerDaemon


def _raise_once(exc):
    """A planner stand-in that fails on its next invocation only."""
    state = {"armed": True}

    def plan(specs, **kwargs):
        if state["armed"]:
            state["armed"] = False
            raise exc
        raise AssertionError("planner called again after the failure")

    return plan


class TestReconfigureRollback:
    def _stack(self):
        ts = Toolstack(uniform(2))
        ts.create_vm("a", 0.3, 20 * MS)
        ts.create_vm("b", 0.3, 20 * MS)
        return ts

    def test_rolls_back_on_latency_infeasible(self, monkeypatch):
        ts = self._stack()
        monkeypatch.setattr(
            ts.daemon.planner,
            "plan",
            _raise_once(LatencyInfeasibleError("goal too tight")),
        )
        with pytest.raises(LatencyInfeasibleError):
            ts.reconfigure_vm("b", 0.3, 1)  # 1 ns goal: infeasible
        assert ts.registry.get("b").spec.vcpus[0].latency_ns == 20 * MS
        assert ts.current_plan.vcpus["b.vcpu0"].latency_ns == 20 * MS

    def test_rolls_back_on_planning_error(self, monkeypatch):
        ts = self._stack()
        monkeypatch.setattr(
            ts.daemon.planner, "plan", _raise_once(PlanningError("boom"))
        )
        with pytest.raises(PlanningError):
            ts.reconfigure_vm("b", 0.5, 20 * MS)
        assert ts.registry.get("b").spec.vcpus[0].utilization == 0.3

    def test_rolls_back_on_injected_planner_crash(self):
        # Same failure mode through the real fault-injection path: the
        # third replan (the reconfigure) dies inside the daemon.
        ts = Toolstack(uniform(2), faults=FaultPlan.planner_crash(calls=(3,)))
        ts.create_vm("a", 0.3, 20 * MS)
        ts.create_vm("b", 0.3, 20 * MS)
        with pytest.raises(PlanningError):
            ts.reconfigure_vm("b", 0.5, 20 * MS)
        assert ts.registry.get("b").spec.vcpus[0].utilization == 0.3
        # The failed episode is on the audit log; the committed plan is not.
        assert ts.daemon.history[-1].status == "plan-failed"
        assert ts.current_plan.vcpus["b.vcpu0"].utilization == 0.3


class TestDestroyRollback:
    def test_registry_restored_on_replan_failure(self, monkeypatch):
        ts = Toolstack(uniform(2))
        ts.create_vm("a", 0.3, 20 * MS)
        ts.create_vm("b", 0.3, 20 * MS)
        monkeypatch.setattr(
            ts.daemon.planner, "plan", _raise_once(PlanningError("boom"))
        )
        with pytest.raises(PlanningError):
            ts.destroy_vm("b")
        # Registry and installed plan still agree on both domains.
        assert ts.domain_count() == 2
        assert ts.registry.get("b").state is DomainState.RUNNING
        assert set(ts.current_plan.vcpus) == {"a.vcpu0", "b.vcpu0"}

    def test_registry_order_preserved_across_rollback(self, monkeypatch):
        ts = Toolstack(uniform(4))
        for name in ("a", "b", "c"):
            ts.create_vm(name, 0.2, 20 * MS)
        monkeypatch.setattr(
            ts.daemon.planner, "plan", _raise_once(PlanningError("boom"))
        )
        with pytest.raises(PlanningError):
            ts.destroy_vm("b")
        # Census order feeds the planner; rollback must not reshuffle it.
        assert [d.name for d in ts.registry.domains] == ["a", "b", "c"]

    def test_destroy_rollback_on_push_failure(self):
        # Full stack: the destroy replan succeeds but the push dies for
        # good; the domain must survive in the registry.
        topo = uniform(2)
        specs = [make_vm(n, 0.3, 20 * MS) for n in ("a", "b")]
        plan = Planner(topo).plan(specs)
        sched = TableauScheduler(plan.table)
        hypercall = TableHypercall(
            sched, faults=FaultPlan.persistent_push_failure(start=3)
        )
        ts = Toolstack(topo, hypercall)
        ts.create_vm("a", 0.3, 20 * MS)  # push 1
        ts.create_vm("b", 0.3, 20 * MS)  # push 2
        with pytest.raises(TablePushError):
            ts.destroy_vm("b")
        assert ts.domain_count() == 2
        assert set(ts.current_plan.vcpus) == {"a.vcpu0", "b.vcpu0"}


class TestRotationRollback:
    def _split_specs(self):
        # Three 0.6 VMs on two cores: one must be split.
        return [make_vm(f"vm{i}", 0.6, 100 * MS) for i in range(3)]

    def test_failed_rotation_leaves_counter_unchanged(self, monkeypatch):
        daemon = PlannerDaemon(uniform(2))
        daemon.replan(self._split_specs(), reason="boot")
        monkeypatch.setattr(
            daemon.planner, "plan", _raise_once(PlanningError("boom"))
        )
        with pytest.raises(PlanningError):
            daemon.rotate_table(self._split_specs())
        assert daemon.planner.rotation == 0

    def test_victim_after_failed_rotation_matches_clean_run(self):
        # A failed rotation must not silently shift which vCPU pays the
        # migration penalty on the next successful rotation.
        specs = self._split_specs()

        clean = PlannerDaemon(uniform(2))
        clean.replan(specs, reason="boot")
        clean_plan = clean.rotate_table(specs)
        clean_victim = next(
            n for n in clean_plan.vcpus if clean_plan.table.is_split(n)
        )

        faulty = PlannerDaemon(
            uniform(2), faults=FaultPlan.planner_crash(calls=(2,))
        )
        faulty.replan(specs, reason="boot")
        with pytest.raises(PlanningError):
            faulty.rotate_table(specs)  # plan call 2: dies
        assert faulty.planner.rotation == 0
        plan = faulty.rotate_table(specs)  # recovers
        victim = next(n for n in plan.vcpus if plan.table.is_split(n))
        assert victim == clean_victim


class TestStagedTableAccounting:
    def _stack(self, cores=1, vms=2):
        specs = [make_vm(f"vm{i}", 0.25, 20 * MS, capped=True) for i in range(vms)]
        plan = Planner(uniform(cores)).plan(specs)
        sched = TableauScheduler(plan.table)
        machine = Machine(uniform(cores), sched, seed=1)
        for i in range(vms):
            machine.add_vcpu(VCpu(f"vm{i}.vcpu0", CpuHog(), capped=True))
        return plan, sched, machine, specs

    def test_overwritten_staged_table_is_accounted(self):
        plan, sched, machine, specs = self._stack()
        hypercall = TableHypercall(sched)
        planner = Planner(uniform(1))
        hypercall.push_system_table(planner.plan(specs).table)
        hypercall.push_system_table(planner.plan(specs).table)
        # The first staged table never activated; it must be retired as
        # unactivated, not silently dropped.
        assert len(hypercall.pushes) == 2
        assert hypercall.retired_unactivated == 1
        assert hypercall.activations == 0
        assert hypercall.staged_table is not None
        InvariantAuditor(hypercall).check()  # accounting balances

    def test_current_table_retired_only_at_activation(self):
        plan, sched, machine, specs = self._stack()
        hypercall = TableHypercall(sched)
        original = sched.table
        hypercall.push_system_table(Planner(uniform(1)).plan(specs).table)
        # Pre-activation: the serving table is still live, not retired.
        assert hypercall.retired_table_count == 0
        assert sched.table is original
        machine.run(3 * plan.table.length_ns)
        assert sched.table_switches == 1
        assert hypercall.activations == 1
        assert hypercall.staged_table is None
        assert hypercall.retired_table_count == 1
        InvariantAuditor(hypercall).check()

    def test_double_push_then_activation_serves_second_table(self):
        plan, sched, machine, specs = self._stack()
        hypercall = TableHypercall(sched)
        planner = Planner(uniform(1))
        hypercall.push_system_table(planner.plan(specs).table)
        second = hypercall.push_system_table(planner.plan(specs).table)
        machine.run(4 * plan.table.length_ns)
        assert sched.table_switches == 1  # only the second push activates
        assert hypercall.activations == 1
        assert hypercall.retired_unactivated == 1
        assert sched.table is not plan.table
        assert second.activation_cycle >= 1
        InvariantAuditor(hypercall).check()

    def test_gc_keeps_two_rounds_of_retired_tables(self):
        plan, sched, machine, specs = self._stack()
        hypercall = TableHypercall(sched)
        planner = Planner(uniform(1))
        for _ in range(5):
            hypercall.push_system_table(planner.plan(specs).table)
        assert hypercall.retired_table_count <= 2
        # The serving and pending tables were never garbage-collected.
        assert not hypercall.was_garbage_collected(sched.table)
        assert not hypercall.was_garbage_collected(sched.pending_table)

    def test_activation_cycle_uses_current_table_length(self):
        # The staged table is twice as long as the serving one; the
        # activation math must still be expressed in the *serving*
        # table's cycle units on both the push and the dispatch side.
        from repro.core.table import Allocation, CoreTable, SystemTable

        length = 10 * MS

        def table_of(cycle_len, vcpu="vm0.vcpu0"):
            return SystemTable(
                length_ns=cycle_len,
                cores={
                    0: CoreTable(
                        cpu=0,
                        length_ns=cycle_len,
                        allocations=[Allocation(0, cycle_len // 2, vcpu)],
                    )
                },
            )

        sched = TableauScheduler(table_of(length))
        machine = Machine(uniform(1), sched, seed=1)
        machine.add_vcpu(VCpu("vm0.vcpu0", CpuHog(), capped=True))
        hypercall = TableHypercall(sched)
        machine.run(length // 4)  # early in cycle 0 of the short table
        record = hypercall.push_system_table(table_of(2 * length))
        assert record.activation_cycle == 1  # in serving-table cycles
        machine.run(2 * length)
        assert sched.table_switches == 1
        assert sched.table.length_ns == 2 * length
        InvariantAuditor(hypercall).check()
