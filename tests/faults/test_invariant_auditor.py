"""Tests for the runtime invariant auditor (repro.faults.audit)."""

import pytest

from repro.core import MS, Planner, make_vm
from repro.errors import InvariantViolation, TablePushError
from repro.faults import FaultPlan, InvariantAuditor
from repro.schedulers import TableauScheduler
from repro.sim import Machine, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog, IoLoop
from repro.xen import TableHypercall, Toolstack


def full_stack(faults=None, cores=2, names=("vm0", "vm1")):
    """Toolstack + daemon + hypercall + dispatcher + machine, consistent.

    The dispatcher boots from a table covering ``names``; the toolstack
    then re-creates the same census through the real control path, so
    registry, committed plan, and (staged) table all agree.
    """
    topo = uniform(cores)
    specs = [make_vm(n, 0.2, 20 * MS) for n in names]
    boot = Planner(topo).plan(specs)
    sched = TableauScheduler(boot.table)
    machine = Machine(topo, sched, seed=5)
    hypercall = TableHypercall(sched, faults=faults)
    ts = Toolstack(topo, hypercall)
    for n in names:
        ts.create_vm(n, 0.2, 20 * MS)
    for n in names:
        machine.add_vcpu(VCpu(f"{n}.vcpu0", IoLoop()))
    return ts, hypercall, sched, machine


class TestHealthyRuns:
    def test_clean_after_lifecycle_operations(self):
        ts, hypercall, sched, machine = full_stack()
        auditor = InvariantAuditor.for_toolstack(ts, hypercall)
        machine.run(100 * MS)
        assert auditor.check() == []
        assert auditor.clean
        assert auditor.audits == 1

    def test_periodic_attach_audits_from_simulated_time(self):
        ts, hypercall, sched, machine = full_stack()
        auditor = InvariantAuditor.for_toolstack(ts, hypercall)
        auditor.attach(machine, period_ns=10 * MS)
        machine.run(100 * MS)
        assert auditor.audits >= 9
        assert auditor.clean
        auditor.detach()
        audits = auditor.audits
        machine.run(50 * MS)
        assert auditor.audits == audits  # detached: no more firings

    def test_hypercall_only_auditing(self):
        # The auditor degrades gracefully without daemon/registry views.
        specs = [make_vm("vm0", 0.25, 20 * MS, capped=True)]
        plan = Planner(uniform(1)).plan(specs)
        sched = TableauScheduler(plan.table)
        hypercall = TableHypercall(sched)
        assert InvariantAuditor(hypercall).check() == []


class TestFaultedRuns:
    def test_clean_under_transient_push_faults(self):
        ts, hypercall, sched, machine = full_stack(
            faults=FaultPlan.transient_push_failure(calls=(2,))
        )
        auditor = InvariantAuditor.for_toolstack(ts, hypercall)
        auditor.attach(machine, period_ns=10 * MS)
        machine.run(200 * MS)
        assert auditor.clean
        assert sched.table_switches >= 1

    def test_persistent_failure_serves_last_good_table_and_stays_clean(self):
        ts, hypercall, sched, machine = full_stack()
        auditor = InvariantAuditor.for_toolstack(ts, hypercall)
        machine.run(150 * MS)  # past the first wrap: committed table active
        before = ts.current_plan
        hypercall.faults = FaultPlan.persistent_push_failure()
        with pytest.raises(TablePushError):
            ts.destroy_vm("vm1")
        machine.run(100 * MS)
        # Rolled back: both guests still scheduled, all views agree.
        assert ts.domain_count() == 2
        assert ts.current_plan is before
        assert set(sched.table.home_cores) == {"vm0.vcpu0", "vm1.vcpu0"}
        assert auditor.check() == []


class TestViolationDetection:
    def test_census_divergence_detected(self):
        ts, hypercall, sched, machine = full_stack()
        auditor = InvariantAuditor.for_toolstack(ts, hypercall, strict=False)
        # Plant the pre-fix destroy bug: drop the domain from the
        # registry without replanning.
        ts.registry.remove("vm1")
        problems = auditor.check()
        assert any("registry" in p for p in problems)
        assert not auditor.clean

    def test_staged_accounting_leak_detected(self):
        ts, hypercall, sched, machine = full_stack()
        auditor = InvariantAuditor(hypercall, strict=False)
        hypercall.activations += 1  # plant a lost table
        assert any("accounting" in p for p in auditor.check())

    def test_use_after_gc_detected(self):
        ts, hypercall, sched, machine = full_stack()
        auditor = InvariantAuditor(hypercall, strict=False)
        sched.table._gc_dropped = True  # plant a collected serving table
        assert any("garbage-collected" in p for p in auditor.check())

    def test_strict_mode_raises(self):
        ts, hypercall, sched, machine = full_stack()
        auditor = InvariantAuditor.for_toolstack(ts, hypercall, strict=True)
        ts.registry.remove("vm1")
        with pytest.raises(InvariantViolation):
            auditor.check()

    def test_strict_periodic_audit_stops_the_run(self):
        ts, hypercall, sched, machine = full_stack()
        auditor = InvariantAuditor.for_toolstack(ts, hypercall, strict=True)
        auditor.attach(machine, period_ns=10 * MS)
        ts.registry.remove("vm1")
        with pytest.raises(InvariantViolation):
            machine.run(50 * MS)
