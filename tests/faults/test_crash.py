"""Crash plans and the crashpoint registry (repro.faults.crash,
repro.crashpoints)."""

import pytest

from repro.crashpoints import (
    CRASHPOINTS,
    CRASH_SERVICE_ADMIT,
    CRASH_SERVICE_COMMIT,
    CRASH_SERVICE_FLUSH_POST_PUSH,
    armed_plan,
    crashpoint,
    crashpoint_fires,
    is_registered,
    known_crashpoints,
    register_crashpoint,
)
from repro.errors import ConfigurationError
from repro.faults import (
    SERVICE_CRASHPOINTS,
    CrashPlan,
    SimulatedCrash,
    crashes_armed,
    parse_crash_plan,
)


class TestRegistry:
    def test_builtin_points_registered(self):
        for point in CRASHPOINTS:
            assert is_registered(point)

    def test_service_sweep_axis_is_a_subset_of_the_registry(self):
        assert set(SERVICE_CRASHPOINTS) <= set(CRASHPOINTS)

    def test_register_private_point(self):
        name = register_crashpoint("test.private.point")
        assert name == "test.private.point"
        assert is_registered(name)
        assert name in known_crashpoints()

    def test_unknown_point_rejected_by_strict_plan(self):
        with pytest.raises(ConfigurationError):
            CrashPlan.at("service.admitt")  # typo guard

    def test_non_strict_plan_accepts_ad_hoc_points(self):
        plan = CrashPlan.at("my.experiment.step", strict=False)
        assert plan.has_point("my.experiment.step")


class TestCrashPlanSemantics:
    def test_fires_at_the_nth_consultation_only(self):
        plan = CrashPlan.at(CRASH_SERVICE_ADMIT, call=3)
        outcomes = [plan.fires(CRASH_SERVICE_ADMIT) for _ in range(5)]
        assert outcomes == [None, None, 3, None, None]

    def test_counters_persist_across_the_crash(self):
        # The same plan stays armed through recovery: a transient spec
        # that already fired never fires again, so the replay completes.
        plan = CrashPlan.at(CRASH_SERVICE_ADMIT, call=1)
        assert plan.fires(CRASH_SERVICE_ADMIT) == 1
        assert all(
            plan.fires(CRASH_SERVICE_ADMIT) is None for _ in range(10)
        )
        assert plan.crashes_fired == 1

    def test_at_calls_builds_double_crash_schedules(self):
        plan = CrashPlan.at_calls(CRASH_SERVICE_COMMIT, (2, 5))
        fired = [
            i + 1
            for i in range(6)
            if plan.fires(CRASH_SERVICE_COMMIT) is not None
        ]
        assert fired == [2, 5]

    def test_points_count_independently(self):
        plan = CrashPlan.at(CRASH_SERVICE_COMMIT, call=1)
        assert plan.fires(CRASH_SERVICE_ADMIT) is None
        assert plan.fires(CRASH_SERVICE_COMMIT) == 1

    def test_stochastic_plan_is_seed_deterministic(self):
        draws = []
        for _ in range(2):
            plan = CrashPlan.stochastic(
                CRASH_SERVICE_ADMIT, probability=0.3, seed=7
            )
            draws.append(
                [
                    plan.fires(CRASH_SERVICE_ADMIT) is not None
                    for _ in range(50)
                ]
            )
        assert draws[0] == draws[1]
        assert any(draws[0])


class TestArming:
    def test_crashpoint_is_inert_without_a_plan(self):
        assert armed_plan() is None
        crashpoint(CRASH_SERVICE_ADMIT)  # must not raise
        assert crashpoint_fires(CRASH_SERVICE_ADMIT) is None

    def test_armed_plan_kills_at_the_point(self):
        plan = CrashPlan.at(CRASH_SERVICE_FLUSH_POST_PUSH, call=2)
        with crashes_armed(plan):
            crashpoint(CRASH_SERVICE_FLUSH_POST_PUSH)
            with pytest.raises(SimulatedCrash) as exc:
                crashpoint(CRASH_SERVICE_FLUSH_POST_PUSH)
        assert exc.value.point == CRASH_SERVICE_FLUSH_POST_PUSH
        assert exc.value.call_index == 2

    def test_crashes_armed_restores_previous_plan(self):
        outer = CrashPlan.at(CRASH_SERVICE_ADMIT, call=99)
        inner = CrashPlan.at(CRASH_SERVICE_COMMIT, call=99)
        with crashes_armed(outer):
            with crashes_armed(inner):
                assert armed_plan() is inner
            assert armed_plan() is outer
        assert armed_plan() is None

    def test_restores_even_when_the_crash_unwinds(self):
        plan = CrashPlan.at(CRASH_SERVICE_ADMIT, call=1)
        with pytest.raises(SimulatedCrash):
            with crashes_armed(plan):
                crashpoint(CRASH_SERVICE_ADMIT)
        assert armed_plan() is None

    def test_none_is_a_no_op_arming(self):
        with crashes_armed(None):
            crashpoint(CRASH_SERVICE_ADMIT)

    def test_simulated_crash_is_not_an_exception(self):
        # A simulated kill -9 must unwind through `except Exception`.
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)


class TestParseCrashPlan:
    def test_bare_point_defaults_to_first_call(self):
        plan = parse_crash_plan("service.admit")
        assert plan.fires(CRASH_SERVICE_ADMIT) == 1

    def test_at_call_syntax(self):
        plan = parse_crash_plan("service.commit@3")
        outcomes = [plan.fires(CRASH_SERVICE_COMMIT) for _ in range(4)]
        assert outcomes == [None, None, 3, None]

    def test_persistent_suffix(self):
        plan = parse_crash_plan("service.admit@2+")
        outcomes = [
            plan.fires(CRASH_SERVICE_ADMIT) is not None for _ in range(5)
        ]
        assert outcomes == [False, True, True, True, True]

    def test_comma_separated_entries(self):
        plan = parse_crash_plan("service.admit,service.commit@2")
        assert plan.has_point(CRASH_SERVICE_ADMIT)
        assert plan.has_point(CRASH_SERVICE_COMMIT)

    def test_bad_call_index_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_crash_plan("service.admit@x")

    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_crash_plan("service.bogus@1")

    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_crash_plan("  ,  ")
