"""Unit tests for the deterministic fault plan (repro.faults.plan)."""

import pytest

from repro.core import MS, Planner, make_vm, serialize, deserialize
from repro.errors import ConfigurationError, TableFormatError
from repro.faults import (
    SITE_PLAN,
    SITE_PUSH,
    FaultPlan,
    FaultSpec,
    corrupt_payload,
)
from repro.topology import uniform


class TestFaultSpecValidation:
    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(SITE_PUSH, probability=1.5)

    def test_zero_based_call_index_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(SITE_PUSH, calls=(0,))

    def test_persistent_from_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(SITE_PUSH, persistent_from=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(SITE_PUSH, delay_cycles=-1)


class TestTransientFaults:
    def test_fires_only_at_listed_calls(self):
        plan = FaultPlan.transient_push_failure(calls=(2,))
        assert plan.fires(SITE_PUSH) is None
        assert plan.fires(SITE_PUSH) is not None
        assert plan.fires(SITE_PUSH) is None

    def test_injection_log_records_site_and_index(self):
        plan = FaultPlan.transient_push_failure(calls=(1, 3))
        for _ in range(3):
            plan.fires(SITE_PUSH)
        assert [f.call_index for f in plan.injected_at(SITE_PUSH)] == [1, 3]
        assert plan.total_injected == 2


class TestPersistentFaults:
    def test_fires_forever_from_start_index(self):
        plan = FaultPlan.persistent_push_failure(start=3)
        outcomes = [plan.fires(SITE_PUSH) is not None for _ in range(6)]
        assert outcomes == [False, False, True, True, True, True]


class TestSiteIndependence:
    def test_sites_have_independent_counters(self):
        plan = FaultPlan(
            specs=[
                FaultSpec(SITE_PUSH, calls=(1,)),
                FaultSpec(SITE_PLAN, calls=(2,)),
            ]
        )
        assert plan.fires(SITE_PLAN) is None  # plan call 1
        assert plan.fires(SITE_PUSH) is not None  # push call 1
        assert plan.fires(SITE_PLAN) is not None  # plan call 2
        assert plan.calls_seen(SITE_PUSH) == 1
        assert plan.calls_seen(SITE_PLAN) == 2

    def test_unknown_site_never_fires(self):
        plan = FaultPlan.transient_push_failure()
        assert plan.fires("some.other.site") is None


class TestSeededDeterminism:
    def _pattern(self, seed):
        plan = FaultPlan(
            specs=[FaultSpec(SITE_PUSH, probability=0.5)], seed=seed
        )
        return [plan.fires(SITE_PUSH) is not None for _ in range(64)]

    def test_same_seed_same_firing_pattern(self):
        assert self._pattern(7) == self._pattern(7)

    def test_different_seed_different_pattern(self):
        assert self._pattern(7) != self._pattern(8)

    def test_stochastic_faults_actually_fire(self):
        assert any(self._pattern(7))


class TestPayloadCorruption:
    def test_corrupted_payload_fails_validation(self):
        plan_result = Planner(uniform(1)).plan(
            [make_vm("vm0", 0.25, 20 * MS, capped=True)]
        )
        payload = serialize(plan_result.table)
        assert deserialize(payload) is not None
        with pytest.raises(TableFormatError):
            deserialize(corrupt_payload(payload))

    def test_corruption_is_deterministic(self):
        assert corrupt_payload(b"abc") == corrupt_payload(b"abc")

    def test_empty_payload_passthrough(self):
        assert corrupt_payload(b"") == b""
