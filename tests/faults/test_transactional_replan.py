"""Fault-injected daemon runs: transactional replans, retries, degradation."""

import hashlib

import pytest

from repro.core import MS, Planner, make_vm
from repro.errors import (
    AdmissionError,
    PlanningError,
    TableFormatError,
    TablePushError,
)
from repro.faults import FaultPlan, FaultSpec, SITE_PAYLOAD, SITE_PUSH
from repro.schedulers import TableauScheduler
from repro.topology import uniform
from repro.xen import (
    STATUS_COMMITTED,
    STATUS_PLAN_FAILED,
    STATUS_PUSH_FAILED,
    TableHypercall,
    Toolstack,
)
from repro.xen.daemon import PlannerDaemon


def plan_digest(result):
    """Stable digest of a plan's table layout (mirrors the perf harness)."""
    hasher = hashlib.sha256()
    for cpu in sorted(result.table.cores):
        for alloc in result.table.cores[cpu].allocations:
            hasher.update(f"{cpu}:{alloc.start}:{alloc.end}:{alloc.vcpu};".encode())
    return hasher.hexdigest()


def census(n=4, utilization=0.2):
    return [make_vm(f"vm{i}", utilization, 20 * MS) for i in range(n)]


def stack(faults=None, cores=2, **daemon_kwargs):
    """A daemon wired to a real dispatcher through a (faulty) hypercall."""
    boot = Planner(uniform(cores)).plan(census())
    sched = TableauScheduler(boot.table)
    hypercall = TableHypercall(sched, faults=faults)
    daemon = PlannerDaemon(uniform(cores), hypercall, **daemon_kwargs)
    return daemon, hypercall, sched


class TestCommittedPath:
    def test_no_fault_replan_is_committed_with_zero_retries(self):
        daemon, _, _ = stack()
        daemon.replan(census(), reason="boot")
        record = daemon.history[-1]
        assert record.status == STATUS_COMMITTED
        assert record.committed
        assert record.push_retries == 0
        assert daemon.committed_replans == 1
        assert daemon.failed_replans == 0


class TestTransientPushFailure:
    def test_retry_succeeds_and_commits(self):
        daemon, hypercall, _ = stack(
            faults=FaultPlan.transient_push_failure(calls=(1,))
        )
        result = daemon.replan(census(), reason="create vm3")
        record = daemon.history[-1]
        assert record.status == STATUS_COMMITTED
        assert record.push_retries == 1
        assert daemon.current_plan is result
        assert len(hypercall.pushes) == 1  # the failed attempt staged nothing
        assert list(daemon.push_backoffs_ns) == [daemon.push_backoff_ns]
        assert daemon.total_push_backoff_ns == daemon.push_backoff_ns

    def test_same_plan_fingerprint_as_fault_free_run(self):
        clean, _, _ = stack()
        clean_result = clean.replan(census(), reason="create vm3")

        faulty, _, _ = stack(faults=FaultPlan.transient_push_failure(calls=(1,)))
        faulty_result = faulty.replan(census(), reason="create vm3")

        assert plan_digest(faulty_result) == plan_digest(clean_result)

    def test_backoff_doubles_per_retry(self):
        daemon, _, _ = stack(
            faults=FaultPlan.transient_push_failure(calls=(1, 2)),
            push_backoff_ns=1000,
        )
        daemon.replan(census(), reason="create")
        assert list(daemon.push_backoffs_ns) == [1000, 2000]
        assert daemon.history[-1].push_retries == 2


class TestFormatRejection:
    """Fail-fast path for deterministic format rejections.

    Regression tests: before the fail-fast fix the daemon lumped
    ``TableFormatError`` with ``TablePushError`` and burned the full
    retry budget re-pushing an identical (identically rejected) payload
    — these tests fail on that code with nonzero push_retries and a
    committed record.
    """

    def test_format_error_fails_fast(self):
        daemon, hypercall, _ = stack(
            faults=FaultPlan.corrupted_payload(calls=(2,))
        )
        good = daemon.replan(census(), reason="boot")
        with pytest.raises(TableFormatError):
            daemon.replan(census(6), reason="create")
        record = daemon.history[-1]
        assert record.status == STATUS_PUSH_FAILED
        assert record.push_retries == 0  # no retry budget burned
        assert "TableFormatError" in record.error
        assert daemon.current_plan is good
        assert list(daemon.push_backoffs_ns) == []  # no backoff charged
        assert daemon.total_push_backoff_ns == 0

    def test_next_clean_replan_commits_after_format_failure(self):
        daemon, _, _ = stack(faults=FaultPlan.corrupted_payload(calls=(2,)))
        daemon.replan(census(), reason="boot")
        with pytest.raises(TableFormatError):
            daemon.replan(census(6), reason="create")
        daemon.replan(census(6), reason="create retry")
        assert daemon.history[-1].status == STATUS_COMMITTED
        assert daemon.committed_replans == 2
        assert daemon.failed_replans == 1


class TestPersistentPushFailure:
    def test_last_good_table_keeps_serving(self):
        daemon, hypercall, sched = stack()
        good = daemon.replan(census(), reason="boot")
        hypercall.faults = FaultPlan.persistent_push_failure()
        with pytest.raises(TablePushError):
            daemon.replan(census(6), reason="create vm4+vm5")
        record = daemon.history[-1]
        assert record.status == STATUS_PUSH_FAILED
        assert record.push_retries == daemon.push_retries
        assert "TablePushError" in record.error
        # Graceful degradation: the committed plan and the staged table
        # are still the last good ones.
        assert daemon.current_plan is good
        assert hypercall.staged_table is not None
        assert set(hypercall.staged_table.home_cores) == {
            f"vm{i}.vcpu0" for i in range(4)
        }

    def test_retry_budget_is_bounded(self):
        daemon, _, _ = stack(
            faults=FaultPlan.persistent_push_failure(), push_retries=2
        )
        with pytest.raises(TablePushError):
            daemon.replan(census(), reason="boot")
        # 1 initial + 2 retries, then give up.
        assert daemon.history[-1].push_retries == 2
        # A failed episode's backoffs are dropped: the operation is
        # reported failed, not slow.  (Regression: the pre-fix daemon
        # appended each backoff as it went, leaving 2 entries here that
        # callers would have charged to provisioning latency.)
        assert len(daemon.push_backoffs_ns) == 0
        assert daemon.total_push_backoff_ns == 0


class TestPlanningFailure:
    def test_injected_planner_crash_recorded_and_state_untouched(self):
        daemon, hypercall, _ = stack()
        good = daemon.replan(census(), reason="boot")
        daemon.faults = FaultPlan.planner_crash(calls=(1,))
        with pytest.raises(PlanningError):
            daemon.replan(census(6), reason="create")
        record = daemon.history[-1]
        assert record.status == STATUS_PLAN_FAILED
        assert record.push is None
        assert daemon.current_plan is good
        assert len(hypercall.pushes) == 1  # only the boot push

    def test_organic_admission_failure_recorded(self):
        daemon = PlannerDaemon(uniform(1))
        daemon.replan([make_vm("a", 0.6, 50 * MS)], reason="boot")
        with pytest.raises(AdmissionError):
            daemon.replan(
                [make_vm("a", 0.6, 50 * MS), make_vm("b", 0.6, 50 * MS)],
                reason="create b",
            )
        record = daemon.history[-1]
        assert record.status == STATUS_PLAN_FAILED
        assert "AdmissionError" in record.error
        assert daemon.failed_replans == 1
        assert daemon.committed_replans == 1


class TestToolstackUnderFaults:
    def test_failed_create_leaves_no_domain_behind(self):
        topo = uniform(2)
        boot = Planner(topo).plan(census())
        sched = TableauScheduler(boot.table)
        hypercall = TableHypercall(
            sched, faults=FaultPlan.persistent_push_failure()
        )
        ts = Toolstack(topo, hypercall)
        with pytest.raises(TablePushError):
            ts.create_vm("vm0", 0.2, 20 * MS)
        assert ts.domain_count() == 0
        assert ts.current_plan is None

    def test_mixed_fault_run_keeps_registry_and_plan_consistent(self):
        # A chaos schedule with pushes failing transiently and one
        # corrupted payload; after the dust settles, registry == plan.
        # Fault counters are per-site, and the payload site is only
        # consulted by pushes that pass the push gate.  Ledger:
        # vm0 → push 1 / payload 1 ok; vm1 → push 2 fails transiently,
        # retry push 3 / payload 2 ok; vm2 → push 4 / payload 3 ok;
        # vm3 → push 5 fails, retry push 6 / payload 4 ok; vm4 →
        # push 7 / payload 5 corrupts, which now fails FAST (no retries
        # — the same payload would be rejected identically), so vm4's
        # create aborts and rolls back; vm5 → push 8 / payload 6 ok;
        # destroy vm3 → push 9 / payload 7 ok.
        faults = FaultPlan(
            specs=[
                FaultSpec(SITE_PUSH, calls=(2, 5)),
                FaultSpec(SITE_PAYLOAD, calls=(5,)),
            ]
        )
        topo = uniform(4)
        boot = Planner(topo).plan(census(8))
        sched = TableauScheduler(boot.table)
        hypercall = TableHypercall(sched, faults=faults)
        ts = Toolstack(topo, hypercall)
        for i in range(6):
            if i == 4:
                with pytest.raises(TableFormatError):
                    ts.create_vm(f"vm{i}", 0.2, 20 * MS)
            else:
                ts.create_vm(f"vm{i}", 0.2, 20 * MS)
        ts.destroy_vm("vm3")
        survivors = {f"vm{i}.vcpu0" for i in range(6) if i not in (3, 4)}
        assert set(ts.current_plan.vcpus) == survivors
        assert {
            v.name for spec in ts.registry.specs for v in spec.vcpus
        } == survivors
        assert faults.total_injected == 3
