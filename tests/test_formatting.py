"""Tests for the experiment harness's text renderers."""

import pytest

from repro.experiments.overheads import (
    PAPER_TABLE1,
    OverheadRow,
    format_table,
)
from repro.experiments.planner_scaling import ScalingPoint, format_sweep


class TestFormatTable:
    def test_contains_measured_and_paper_columns(self):
        rows = [OverheadRow("tableau", 1.43, 1.06, 0.43)]
        text = format_table(rows, PAPER_TABLE1)
        assert "meas" in text and "paper" in text
        assert "1.43" in text
        assert "tableau" in text

    def test_unknown_scheduler_renders_zero_paper_values(self):
        rows = [OverheadRow("mystery", 1.0, 2.0, 3.0)]
        text = format_table(rows, PAPER_TABLE1)
        assert "mystery" in text
        assert "0.00" in text

    def test_one_line_per_scheduler_plus_header(self):
        rows = [
            OverheadRow("tableau", 1.4, 1.0, 0.4),
            OverheadRow("credit", 8.0, 2.1, 0.3),
        ]
        text = format_table(rows, PAPER_TABLE1)
        assert len(text.splitlines()) == 2 + 2  # two header lines + rows


class TestFormatSweep:
    def test_sorted_by_goal_then_count(self):
        points = [
            ScalingPoint(88, 30, 0.1, 1024),
            ScalingPoint(44, 1, 0.5, 2048),
            ScalingPoint(44, 30, 0.05, 512),
        ]
        text = format_sweep(points)
        lines = text.splitlines()[1:]
        goals = [int(line.split()[1]) for line in lines]
        assert goals == sorted(goals)

    def test_sizes_rendered_in_mib(self):
        points = [ScalingPoint(44, 1, 0.5, 2 * 1024 * 1024)]
        assert "2.000" in format_sweep(points)


class TestOverheadRowDict:
    def test_as_dict_keys(self):
        row = OverheadRow("rtds", 2.9, 3.9, 9.4)
        assert row.as_dict() == {
            "schedule": 2.9,
            "wakeup": 3.9,
            "migrate": 9.4,
        }
