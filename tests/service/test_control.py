"""Control-plane behaviour: batching, backpressure, SWR reads,
rollback, and adaptive windowing."""

import pytest

from repro.core import PlanStore
from repro.errors import ConfigurationError, ReproError
from repro.metrics import service_report, service_report_json
from repro.service import (
    KIND_CREATE,
    KIND_QUERY,
    KIND_TEARDOWN,
    REJECT_ADMISSION,
    REJECT_BACKPRESSURE,
    REJECT_PLAN_FAILED,
    REJECT_UNKNOWN_TENANT,
    ChurnConfig,
    SchedulerService,
    ServiceConfig,
    TenantRequest,
    run_service,
)
from repro.topology import uniform, xeon_16core

SEC = 1_000_000_000


def create(name: str, tier: str = "economy", at: int = 0) -> TenantRequest:
    return TenantRequest(KIND_CREATE, name, tier=tier, arrival_ns=at)


class TestBatching:
    def test_one_push_covers_the_whole_batch(self):
        service = SchedulerService(uniform(8))
        for i in range(6):
            assert service.submit(create(f"t{i}")) is None
        service.engine.run_until(5 * SEC)
        assert service.table_pushes == 1
        assert service.mutations_committed == 6
        assert service.batches_committed == 1
        assert service.committed == {f"t{i}": "economy" for i in range(6)}

    def test_default_burst_profile_batches_at_least_3x(self):
        """The PR's headline batching bar: at the default churn profile
        (4 req/s, 1s window) the service folds >= 3 mutations into each
        table push on average."""
        service = run_service(
            xeon_16core(), duration_s=300.0, churn=ChurnConfig()
        )
        report = service_report(service)
        assert report["batching"]["ratio"] >= 3.0
        assert service.table_pushes < service.mutations_committed

    def test_replan_latency_and_sojourn_are_recorded(self):
        service = SchedulerService(uniform(8))
        service.submit(create("t0", at=0))
        service.engine.run_until(5 * SEC)
        assert len(service.replan_latencies_ns) == 1
        assert len(service.sojourns_ns) == 1
        # Sojourn = wait for the flush tick + simulated replan cost.
        assert service.sojourns_ns[0] >= service.replan_latencies_ns[0]


class TestAdmission:
    def test_backpressure_bounds_the_queue(self):
        config = ServiceConfig(queue_limit=4)
        service = SchedulerService(uniform(8), config=config)
        reasons = [service.submit(create(f"t{i}")) for i in range(10)]
        assert reasons[:4] == [None] * 4
        assert reasons[4:] == [REJECT_BACKPRESSURE] * 6
        assert service.rejected[REJECT_BACKPRESSURE] == 6
        assert len(service.queue) == 4

    def test_capacity_admission_rejects_before_queueing(self):
        service = SchedulerService(uniform(4))
        # Dedicated tenants reserve a whole core each, so admission
        # fits floor(headroom * guest_cores) of them and no more.
        fits = int(service.capacity)  # dedicated utilization == 1.0
        reasons = [
            service.submit(create(f"t{i}", tier="dedicated"))
            for i in range(fits + 2)
        ]
        assert reasons[:fits] == [None] * fits
        assert reasons[fits:] == [REJECT_ADMISSION] * 2
        assert service.rejected[REJECT_ADMISSION] == 2
        # Rejected creates never occupied a queue slot.
        assert len(service.queue) == fits

    def test_duplicate_create_and_unknown_tenant(self):
        service = SchedulerService(uniform(8))
        assert service.submit(create("t0")) is None
        assert service.submit(create("t0")) == REJECT_ADMISSION
        assert (
            service.submit(TenantRequest(KIND_TEARDOWN, "ghost"))
            == REJECT_UNKNOWN_TENANT
        )

    def test_unknown_tier_is_a_configuration_error(self):
        service = SchedulerService(uniform(8))
        with pytest.raises(ConfigurationError):
            service.submit(create("t0", tier="platinum"))


class TestStaleWhileRevalidate:
    def test_query_before_commit_is_stale(self):
        service = SchedulerService(uniform(8))
        service.submit(create("t0"))
        # Accepted but no flush yet: answered, counted stale.
        assert service.submit(TenantRequest(KIND_QUERY, "t0")) is None
        assert service.queries_stale == 1
        assert service.queries_fresh == 0

    def test_query_after_commit_is_fresh(self):
        service = SchedulerService(uniform(8))
        service.submit(create("t0"))
        service.engine.run_until(5 * SEC)
        assert service.submit(TenantRequest(KIND_QUERY, "t0")) is None
        assert service.queries_fresh == 1
        assert service.guarantees_of("t0") == {
            "tenant": "t0",
            "tier": "economy",
            "utilization": 0.125,
            "latency_ns": 100_000_000,
        }

    def test_query_during_inflight_replan_is_stale(self):
        service = SchedulerService(uniform(8))
        service.submit(create("t0"))
        service.engine.run_until(5 * SEC)
        service.submit(create("t1"))
        window_ns = service.config.batch_window_ns
        # Run to just past the next flush: the replan is in flight
        # (tableau model cost >> 1ms) but not committed.
        next_flush = ((service.engine.now // window_ns) + 1) * window_ns
        service.engine.run_until(next_flush + 1_000_000)
        assert service._inflight is not None
        assert service.submit(TenantRequest(KIND_QUERY, "t0")) is None
        assert service.queries_stale == 1

    def test_query_of_unknown_tenant_rejects(self):
        service = SchedulerService(uniform(8))
        assert (
            service.submit(TenantRequest(KIND_QUERY, "ghost"))
            == REJECT_UNKNOWN_TENANT
        )
        assert service.rejected[REJECT_UNKNOWN_TENANT] == 1


class TestPlanFailureRollback:
    def test_failed_batch_rolls_back_accepted_census(self):
        service = SchedulerService(uniform(8))
        service.submit(create("t0"))
        service.engine.run_until(5 * SEC)

        def broken(specs, reason=""):
            raise ReproError("planner exploded")

        service.daemon.replan = broken  # type: ignore[method-assign]
        service.submit(create("t1"))
        service.engine.run_until(10 * SEC)
        assert service.batches_failed == 1
        assert service.rejected[REJECT_PLAN_FAILED] == 1
        # The committed table keeps serving; the failed create is gone
        # from the accepted census too.
        assert service.committed == {"t0": "economy"}
        assert service.accepted == {"t0": "economy"}
        assert service.table_pushes == 1


class TestAdaptiveWindow:
    def test_window_widens_under_backlog_and_narrows_when_drained(self):
        config = ServiceConfig(
            batch_window_ms=50.0, max_batch_window_ms=400.0, queue_limit=4
        )
        service = SchedulerService(uniform(8), config=config)
        base_ns = config.batch_window_ns
        service.submit(create("t0"))
        # Two more arrive while the first batch's replan (~166ms for
        # tableau) is still in flight — queue >= limit // 2 at the next
        # tick forces a widening.
        service.engine.at(60_000_000, lambda: service.submit(create("t1")))
        service.engine.at(70_000_000, lambda: service.submit(create("t2")))
        service.engine.run_until(2 * SEC)
        assert service.window_widenings >= 1
        # Everything committed and the queue drained: back to base.
        assert service._flush_handle.period == base_ns
        assert service.mutations_committed == 3


class TestSLO:
    def test_sojourns_over_the_slo_are_counted(self):
        config = ServiceConfig(sojourn_slo_ns=1)
        service = SchedulerService(uniform(8), config=config)
        for i in range(3):
            service.submit(create(f"t{i}"))
        service.engine.run_until(5 * SEC)
        assert service.slo_violations == 3


class TestReportDeterminism:
    def test_plan_store_warmth_never_shows_in_the_report(self, tmp_path):
        """Cache temperature is observability, not simulation: a
        store-warmed run must produce byte-identical metrics."""
        churn = ChurnConfig(seed=9, target_population=10)

        def run(store):
            service = run_service(
                uniform(8), duration_s=90.0, churn=churn, store=store
            )
            return service_report_json(service_report(service))

        cold = run(None)
        store = PlanStore(str(tmp_path / "plans"))
        warm_first = run(store)
        warm_second = run(store)  # now actually warm
        assert cold == warm_first == warm_second
