"""Seeded churn-stream properties: determinism and diurnal shaping."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics import service_report, service_report_json
from repro.service import ChurnConfig, ChurnGenerator, run_service
from repro.service.control import SchedulerService
from repro.topology import uniform


def _report(seed: int = 42, duration_s: float = 60.0) -> str:
    churn = ChurnConfig(seed=seed, target_population=12)
    service = run_service(uniform(8), duration_s=duration_s, churn=churn)
    return service_report_json(service_report(service))


class TestDeterminism:
    def test_same_seed_same_report_bytes(self):
        assert _report(seed=42) == _report(seed=42)

    def test_different_seed_different_stream(self):
        assert _report(seed=42) != _report(seed=43)

    def test_stream_is_pure_function_of_config_not_service_state(self):
        # Two generators over identical fresh services replay the
        # exact same request sequence.
        churn = ChurnConfig(seed=7, target_population=8)
        streams = []
        for _ in range(2):
            service = SchedulerService(uniform(4))
            generator = ChurnGenerator(service, churn)
            requests = []
            original = service.submit

            def spy(request, _original=original, _log=requests):
                _log.append(request)
                return _original(request)

            service.submit = spy  # type: ignore[method-assign]
            generator.start(30_000_000_000)
            service.engine.run_until(30_000_000_000)
            streams.append(requests)
        assert streams[0] == streams[1]
        assert len(streams[0]) > 0


class TestDiurnalShaping:
    def test_rate_traces_the_sinusoid(self):
        cfg = ChurnConfig(arrival_rate_per_s=4.0, diurnal_amplitude=0.5,
                          diurnal_period_s=1000.0)
        assert cfg.rate_per_s(0.0) == pytest.approx(4.0)
        assert cfg.rate_per_s(250.0) == pytest.approx(6.0)  # peak
        assert cfg.rate_per_s(750.0) == pytest.approx(2.0)  # trough

    def test_peak_phase_generates_more_arrivals_than_trough(self):
        # One full cycle; arrivals in the first half (rising sine)
        # outnumber the second half (falling below mean).
        churn = ChurnConfig(
            seed=11, arrival_rate_per_s=8.0, diurnal_amplitude=0.8,
            diurnal_period_s=120.0, target_population=10,
        )
        service = SchedulerService(uniform(8))
        generator = ChurnGenerator(service, churn)
        half_ns = 60_000_000_000
        generator.start(2 * half_ns)
        service.engine.run_until(half_ns)
        first_half = generator.generated
        service.engine.run_until(2 * half_ns)
        second_half = generator.generated - first_half
        assert first_half > second_half

    def test_no_arrivals_scheduled_past_until(self):
        churn = ChurnConfig(seed=5, target_population=4)
        service = SchedulerService(uniform(4))
        generator = ChurnGenerator(service, churn)
        generator.start(10_000_000_000)
        service.engine.run_until(60_000_000_000)
        total = sum(service.requests_by_kind.values())
        assert total == generator.generated
        # The stream stops at the horizon: a longer run adds nothing.
        service.engine.run_until(120_000_000_000)
        assert sum(service.requests_by_kind.values()) == total


class TestConfigValidation:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(arrival_rate_per_s=0.0)

    def test_rejects_amplitude_of_one(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(diurnal_amplitude=1.0)

    def test_rejects_empty_tier_weights(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(tier_weights=())
