"""The tenant WAL: framing, healing, idempotent appends
(repro.service.journal)."""

import random
import struct

import pytest

from repro.errors import JournalError
from repro.service import (
    JOURNAL_VERSION,
    KIND_CREATE,
    KIND_TEARDOWN,
    ServiceJournal,
    TenantRequest,
    decode_rng_state,
    encode_rng_state,
)

MS = 1_000_000


def request(seq: int, tenant: str = "t0", at: int = 0) -> TenantRequest:
    return TenantRequest(
        KIND_CREATE, tenant, tier="economy", arrival_ns=at, seq=seq
    )


class TestFraming:
    def test_fresh_journal_writes_header(self, tmp_path):
        path = tmp_path / "wal.bin"
        with ServiceJournal(path) as journal:
            assert len(journal) == 0
        data = path.read_bytes()
        magic, version, _ = struct.unpack_from("<4sHH", data)
        assert magic == b"TJNL"
        assert version == JOURNAL_VERSION

    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.bin"
        with ServiceJournal(path) as journal:
            assert journal.append_request(request(0, "a", at=5 * MS))
            assert journal.append_request(
                TenantRequest(
                    KIND_TEARDOWN, "a", tier=None, arrival_ns=9 * MS, seq=1
                )
            )
        with ServiceJournal(path) as reopened:
            records = reopened.request_records()
            assert [r["seq"] for r in records] == [0, 1]
            first = ServiceJournal.request_from(records[0])
            assert first == request(0, "a", at=5 * MS)
            assert reopened.last_request_seq == 1
            assert reopened.horizon_ns() == 9 * MS

    def test_bad_magic_refused(self, tmp_path):
        path = tmp_path / "wal.bin"
        path.write_bytes(b"NOPE" + bytes(4))
        with pytest.raises(JournalError):
            ServiceJournal(path)

    def test_future_version_refused(self, tmp_path):
        path = tmp_path / "wal.bin"
        path.write_bytes(struct.pack("<4sHH", b"TJNL", JOURNAL_VERSION + 1, 0))
        with pytest.raises(JournalError):
            ServiceJournal(path)

    def test_truncated_header_refused(self, tmp_path):
        path = tmp_path / "wal.bin"
        path.write_bytes(b"TJ")
        with pytest.raises(JournalError):
            ServiceJournal(path)


class TestTornTailHealing:
    def _journal_with_two_records(self, path):
        with ServiceJournal(path) as journal:
            journal.append_request(request(0))
            journal.append_request(request(1, at=2 * MS))
        return path.read_bytes()

    def test_half_record_truncated(self, tmp_path):
        path = tmp_path / "wal.bin"
        intact = self._journal_with_two_records(path)
        # Tear the last record in half, as a crash mid-append would.
        torn = intact[: len(intact) - 10]
        path.write_bytes(torn)
        journal = ServiceJournal(path)
        assert journal.healed_bytes > 0
        assert [r["seq"] for r in journal.request_records()] == [0]
        # The file was truncated back to the last record boundary, and
        # the healed count is exactly what was cut.
        healed_size = len(path.read_bytes())
        assert healed_size < len(torn)
        assert journal.healed_bytes == len(torn) - healed_size
        journal.close()

    def test_corrupt_crc_drops_the_tail(self, tmp_path):
        path = tmp_path / "wal.bin"
        intact = bytearray(self._journal_with_two_records(path))
        intact[-3] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(intact))
        journal = ServiceJournal(path)
        assert journal.healed_bytes > 0
        assert [r["seq"] for r in journal.request_records()] == [0]
        journal.close()

    def test_healed_journal_accepts_new_appends(self, tmp_path):
        path = tmp_path / "wal.bin"
        intact = self._journal_with_two_records(path)
        path.write_bytes(intact[:-10])
        with ServiceJournal(path) as journal:
            assert journal.append_request(request(1, at=2 * MS))
        with ServiceJournal(path) as reopened:
            assert reopened.healed_bytes == 0
            assert [r["seq"] for r in reopened.request_records()] == [0, 1]


class TestIdempotence:
    def test_duplicate_request_seq_is_a_no_op(self, tmp_path):
        with ServiceJournal(tmp_path / "wal.bin") as journal:
            assert journal.append_request(request(0)) is True
            assert journal.append_request(request(0)) is False
            assert journal.appended == 1

    def test_commit_marker_dedup_returns_existing(self, tmp_path):
        marker = {"type": "commit", "now": 5, "end_seq": 3, "batch": 4}
        with ServiceJournal(tmp_path / "wal.bin") as journal:
            assert journal.append_commit(dict(marker)) is None
            existing = journal.append_commit(
                {"type": "commit", "now": 5, "end_seq": 3, "batch": 999}
            )
            # Returned for verification, never rewritten.
            assert existing is not None
            assert existing["batch"] == 4
            assert len(journal.commit_records()) == 1


class TestChurnCheckpoints:
    def test_rng_state_round_trips_exactly(self):
        rng = random.Random(42)
        rng.random()
        rng.gauss(0, 1)
        state = rng.getstate()
        assert decode_rng_state(encode_rng_state(state)) == state
        clone = random.Random()
        clone.setstate(decode_rng_state(encode_rng_state(state)))
        assert [clone.random() for _ in range(5)] == [
            rng.random() for _ in range(5)
        ]

    def test_last_churn_state_survives_reopen(self, tmp_path):
        path = tmp_path / "wal.bin"
        state = {"generated": 3, "rng": "abc"}
        with ServiceJournal(path) as journal:
            journal.append_request(request(0), churn_state={"generated": 1})
            journal.append_request(request(1), churn_state=state)
        with ServiceJournal(path) as reopened:
            assert reopened.last_churn_state == state
