"""Crash → recover → resume: the exactly-once acceptance sweep.

The property under test: for every registered service crashpoint and
any crash schedule that eventually lets a run finish, the recovered
run's canonical service report is **byte-identical** to the same
configuration run uninterrupted.
"""

import json

import pytest

from repro.core import PlanStore
from repro.crashpoints import (
    CRASH_JOURNAL_TORN_APPEND,
    CRASH_PLANCACHE_PRE_RENAME,
    CRASH_SERVICE_ADMIT,
    CRASH_SERVICE_FLUSH_POST_PUSH,
)
from repro.errors import ConfigurationError, ReproError
from repro.faults import (
    SERVICE_CRASHPOINTS,
    CrashPlan,
    crashes_armed,
    parse_crash_plan,
)
from repro.metrics import service_report, service_report_json
from repro.service import (
    ChurnConfig,
    SchedulerService,
    ServiceConfig,
    ServiceJournal,
    crash_recover_resume,
    resume_service,
    run_service,
    run_to_crash,
)
from repro.topology import uniform

DURATION_S = 20.0
SEEDS = (42, 43, 44)
CONFIG = ServiceConfig(batch_window_ms=1000.0)


def churn(seed: int) -> ChurnConfig:
    return ChurnConfig(
        seed=seed, arrival_rate_per_s=6.0, target_population=10
    )


def report_json(service) -> str:
    return service_report_json(service_report(service))


@pytest.fixture(scope="module")
def reference():
    """Uninterrupted per-seed reference reports, computed once."""
    cache = {}

    def get(seed: int) -> str:
        if seed not in cache:
            service = run_service(
                uniform(8),
                duration_s=DURATION_S,
                churn=churn(seed),
                config=CONFIG,
            )
            cache[seed] = report_json(service)
        return cache[seed]

    return get


class TestCrashpointSweep:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("point", SERVICE_CRASHPOINTS)
    def test_every_crashpoint_recovers_byte_identical(
        self, tmp_path, point, seed, reference
    ):
        plan = CrashPlan.at(point, call=2, seed=seed)
        outcome = crash_recover_resume(
            uniform(8),
            DURATION_S,
            tmp_path / "wal.bin",
            plan,
            churn=churn(seed),
            config=CONFIG,
            store_factory=lambda: PlanStore(tmp_path / "store"),
        )
        assert outcome.crash_count == 1
        assert outcome.crashes[0].point == point
        assert report_json(outcome.service) == reference(seed)

    def test_journal_attachment_does_not_perturb_the_report(
        self, tmp_path, reference
    ):
        service = run_service(
            uniform(8),
            duration_s=DURATION_S,
            churn=churn(42),
            config=CONFIG,
            journal=ServiceJournal(tmp_path / "wal.bin"),
        )
        assert report_json(service) == reference(42)


class TestTornTail:
    def test_torn_append_heals_and_regenerates(self, tmp_path, reference):
        # Die mid-append: the half-written record is NOT durable, so
        # recovery must truncate it and the resumed churn stream must
        # regenerate the lost request identically.
        plan = CrashPlan.at(CRASH_JOURNAL_TORN_APPEND, call=5)
        outcome = crash_recover_resume(
            uniform(8),
            DURATION_S,
            tmp_path / "wal.bin",
            plan,
            churn=churn(42),
            config=CONFIG,
        )
        assert outcome.crash_count == 1
        assert outcome.healed_bytes > 0
        assert report_json(outcome.service) == reference(42)


class TestDoubleCrash:
    def test_crash_during_recovery_recovers_again(self, tmp_path, reference):
        # The second call index fires during the recovery replay (the
        # plan's counters persist across deaths), killing the recovery
        # itself; the third attempt completes.
        plan = CrashPlan.at_calls(CRASH_SERVICE_FLUSH_POST_PUSH, (2, 5))
        outcome = crash_recover_resume(
            uniform(8),
            DURATION_S,
            tmp_path / "wal.bin",
            plan,
            churn=churn(42),
            config=CONFIG,
        )
        assert outcome.crash_count == 2
        assert report_json(outcome.service) == reference(42)

    def test_unrecoverable_plan_gives_up_after_max_crashes(self, tmp_path):
        # Persistent from the first admit: every recovery replay dies
        # at the same site it was born at.
        plan = parse_crash_plan("service.admit@1+")
        with pytest.raises(ReproError, match="still firing"):
            crash_recover_resume(
                uniform(8),
                DURATION_S,
                tmp_path / "wal.bin",
                plan,
                churn=churn(42),
                config=CONFIG,
                max_crashes=2,
            )


class TestRecoverySemantics:
    def _crash(self, tmp_path, point=CRASH_SERVICE_FLUSH_POST_PUSH, call=2):
        plan = CrashPlan.at(point, call=call)
        with crashes_armed(plan):
            service, crash = run_to_crash(
                uniform(8),
                DURATION_S,
                tmp_path / "wal.bin",
                churn=churn(42),
                config=CONFIG,
            )
        assert crash is not None and crash.point == point
        return service

    def test_run_to_crash_leaves_a_durable_closed_journal(self, tmp_path):
        dead = self._crash(tmp_path)
        assert dead.journal is not None
        journal = ServiceJournal(tmp_path / "wal.bin")
        assert len(journal.request_records()) > 0
        journal.close()

    def test_recover_replays_every_journaled_request(self, tmp_path):
        self._crash(tmp_path)
        journal = ServiceJournal(tmp_path / "wal.bin")
        durable = len(journal.request_records())
        recovered = SchedulerService.recover(
            uniform(8), journal, config=CONFIG
        )
        assert recovered.replayed_requests == durable
        assert recovered.recovered_churn is not None

    def test_fresh_service_refuses_a_populated_journal(self, tmp_path):
        self._crash(tmp_path)
        journal = ServiceJournal(tmp_path / "wal.bin")
        with pytest.raises(ConfigurationError, match="recover"):
            SchedulerService(uniform(8), config=CONFIG, journal=journal)
        journal.close()

    def test_recover_then_resume_matches_reference(
        self, tmp_path, reference
    ):
        self._crash(tmp_path)
        journal = ServiceJournal(tmp_path / "wal.bin")
        service = SchedulerService.recover(
            uniform(8), journal, config=CONFIG
        )
        resume_service(service, DURATION_S, churn=churn(42))
        assert report_json(service) == reference(42)
        journal.close()


class TestDaemonCountersSurviveRecovery:
    def test_daemon_block_matches_uninterrupted(self, tmp_path, reference):
        # The daemon's episode counters (replans, push backoffs,
        # history depth) live in the service's commit markers; if
        # recovery dropped them the report's "daemon" block would
        # diverge even when the tenant ledger matches.
        plan = CrashPlan.at(CRASH_SERVICE_ADMIT, call=30)
        outcome = crash_recover_resume(
            uniform(8),
            DURATION_S,
            tmp_path / "wal.bin",
            plan,
            churn=churn(43),
            config=CONFIG,
        )
        assert outcome.crash_count == 1
        recovered = json.loads(report_json(outcome.service))
        expected = json.loads(reference(43))
        assert expected["daemon"]["total_replans"] > 0
        assert recovered["daemon"] == expected["daemon"]


class TestStoreCrashConsistency:
    def test_plancache_crash_orphans_then_startup_sweep_reclaims(
        self, tmp_path, reference
    ):
        # Dying between the temp-file write and its rename leaves an
        # orphan *.plan.tmp.<pid>; the restarted process's store open
        # (store_factory, once per process lifetime) sweeps it.
        store_root = tmp_path / "store"
        stores = []

        def factory():
            store = PlanStore(store_root)
            stores.append(store)
            return store

        plan = CrashPlan.at(CRASH_PLANCACHE_PRE_RENAME, call=1)
        outcome = crash_recover_resume(
            uniform(8),
            DURATION_S,
            tmp_path / "wal.bin",
            plan,
            churn=churn(42),
            config=CONFIG,
            store_factory=factory,
        )
        assert outcome.crash_count == 1
        assert len(stores) == 2  # initial process + one recovery
        assert stores[1].stats.tmp_reclaimed >= 1
        assert report_json(outcome.service) == reference(42)
        # Post-mortem: the surviving store passes fsck.
        post = PlanStore(store_root, sweep=False).fsck()
        assert post.clean
