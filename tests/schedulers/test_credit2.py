"""Tests for the Credit2 scheduler model."""

import pytest

from repro.schedulers import Credit2Scheduler
from repro.sim import Machine, VCpu
from repro.topology import uniform, xeon_16core
from repro.workloads import CpuHog, IntrinsicLatencyProbe, IoLoop

MS = 1_000_000


def machine(cores=1, sockets=1, seed=0):
    return Machine(uniform(cores, sockets=sockets), Credit2Scheduler(), seed=seed)


class TestFairness:
    def test_two_hogs_share_evenly(self):
        m = machine()
        m.add_vcpu(VCpu("a", CpuHog()))
        m.add_vcpu(VCpu("b", CpuHog()))
        m.run(300 * MS)
        assert m.utilization_of("a") == pytest.approx(0.5, abs=0.05)
        assert m.utilization_of("b") == pytest.approx(0.5, abs=0.05)

    def test_weight_bias(self):
        m = machine()
        m.add_vcpu(VCpu("heavy", CpuHog(), weight=512))
        m.add_vcpu(VCpu("light", CpuHog(), weight=256))
        m.run(600 * MS)
        assert m.utilization_of("heavy") > m.utilization_of("light")

    def test_work_conserving(self):
        m = machine()
        m.add_vcpu(VCpu("hog", CpuHog()))
        m.add_vcpu(VCpu("io", IoLoop()))
        m.run(300 * MS)
        assert m.idle_fraction() < 0.02

    def test_credit_reset_keeps_everyone_running(self):
        m = machine()
        for i in range(4):
            m.add_vcpu(VCpu(f"hog{i}", CpuHog()))
        m.run(600 * MS)
        for i in range(4):
            assert m.utilization_of(f"hog{i}") > 0.15


class TestRunqueues:
    def test_socket_scoped_runqueues(self):
        m = Machine(uniform(4, sockets=2), Credit2Scheduler(), seed=1)
        for i in range(4):
            m.add_vcpu(VCpu(f"hog{i}", CpuHog()))
        m.run(200 * MS)
        # All cores busy: each socket's queue served its own cores.
        assert m.idle_fraction() < 0.05

    def test_no_boost_priority_exists(self):
        # Credit2's defining difference from Credit: a waking I/O vCPU
        # competes on credits alone.  A CPU-bound vCPU that burned down
        # its credits still gets preempted only via credit order.
        m = machine(seed=2)
        m.add_vcpu(VCpu("hog", CpuHog()))
        m.add_vcpu(VCpu("io", IoLoop(compute_ns=100_000, io_ns=900_000, jitter=0.0)))
        m.run(300 * MS)
        # The I/O VM still gets served (its credits stay high) but its
        # wakeups are ratelimited rather than boosted, so it falls short
        # of its 10% demand while the hog keeps the rest.
        assert 0.02 < m.utilization_of("io") < 0.09
        assert m.utilization_of("hog") > 0.85

    def test_fine_interleave_under_cpu_load(self):
        # Fig. 5(b): Credit2 "fares well" with CPU-bound background.
        m = machine(seed=3)
        probe = IntrinsicLatencyProbe()
        m.add_vcpu(VCpu("probe", probe))
        for i in range(3):
            m.add_vcpu(VCpu(f"hog{i}", CpuHog()))
        m.run(400 * MS)
        # 2 ms timeslices, 4 contenders: gaps of roughly 3 slices.
        assert probe.max_gap_ns < 40 * MS
        assert m.utilization_of("probe") == pytest.approx(0.25, abs=0.05)


class TestOverheads:
    def test_costs_traced(self):
        m = Machine(xeon_16core(), Credit2Scheduler(), seed=1)
        for i in range(8):
            m.add_vcpu(VCpu(f"io{i}", IoLoop()))
        m.run(100 * MS)
        assert m.tracer.mean_us("schedule") > 1.0
        assert m.tracer.mean_us("wakeup") > 1.0
