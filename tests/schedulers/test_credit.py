"""Tests for the Credit scheduler model."""

import pytest

from repro.schedulers import CreditScheduler
from repro.schedulers.credit import (
    ACCOUNTING_PERIOD_NS,
    PRIO_BOOST,
    PRIO_OVER,
    PRIO_PARKED,
    PRIO_UNDER,
)
from repro.sim import Machine, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog, IntrinsicLatencyProbe, IoLoop

MS = 1_000_000


def machine(caps=None, cores=1, boost=True, seed=0):
    return Machine(
        uniform(cores), CreditScheduler(caps=caps, boost=boost), seed=seed
    )


class TestProportionalShare:
    def test_equal_weights_split_evenly(self):
        m = machine()
        m.add_vcpu(VCpu("a", CpuHog()))
        m.add_vcpu(VCpu("b", CpuHog()))
        m.run(300 * MS)
        assert m.utilization_of("a") == pytest.approx(0.5, abs=0.05)
        assert m.utilization_of("b") == pytest.approx(0.5, abs=0.05)

    def test_weights_bias_allocation(self):
        m = Machine(uniform(1), CreditScheduler())
        m.add_vcpu(VCpu("heavy", CpuHog(), weight=512))
        m.add_vcpu(VCpu("light", CpuHog(), weight=256))
        m.run(600 * MS)
        assert m.utilization_of("heavy") > m.utilization_of("light")

    def test_work_conserving_without_caps(self):
        m = machine()
        m.add_vcpu(VCpu("hog", CpuHog()))
        m.add_vcpu(VCpu("io", IoLoop()))
        m.run(300 * MS)
        assert m.idle_fraction() < 0.02


class TestCaps:
    def test_capped_hog_limited_to_cap(self):
        m = machine(caps={"hog": 0.25})
        m.add_vcpu(VCpu("hog", CpuHog(), capped=True))
        m.run(900 * MS)
        # Tick-granular enforcement overruns slightly (as in Xen).
        assert 0.2 < m.utilization_of("hog") < 0.32

    def test_cap_enforcement_is_bursty(self):
        # Credit parks an exhausted capped vCPU until the next accounting
        # tick, producing multi-ms gaps (the Fig. 5(a) behaviour).
        m = machine(caps={"hog": 0.25})
        probe = IntrinsicLatencyProbe()
        m.add_vcpu(VCpu("hog", probe, capped=True))
        m.run(900 * MS)
        assert probe.max_gap_ns > 10 * MS

    def test_uncapped_vcpu_unlimited(self):
        m = machine(caps={"other": 0.25})
        m.add_vcpu(VCpu("hog", CpuHog()))
        m.add_vcpu(VCpu("other", CpuHog(), capped=True))
        m.run(600 * MS)
        assert m.utilization_of("hog") > 0.6


class TestBoost:
    def test_boost_favors_io_waker_over_hogs(self):
        m = machine()
        m.add_vcpu(VCpu("hog", CpuHog()))
        io = IoLoop(compute_ns=100_000, io_ns=900_000, jitter=0.0)
        m.add_vcpu(VCpu("io", io))
        m.run(300 * MS)
        # The I/O VM gets its full 10% despite the competing hog.
        assert m.utilization_of("io") == pytest.approx(0.1, abs=0.02)

    def test_boost_disabled_degrades_io_share(self):
        def run(boost):
            m = machine(boost=boost, seed=3)
            m.add_vcpu(VCpu("hog", CpuHog()))
            io = IoLoop(compute_ns=100_000, io_ns=900_000, jitter=0.0)
            m.add_vcpu(VCpu("io", io))
            m.run(300 * MS)
            return m.utilization_of("io")

        assert run(boost=True) >= run(boost=False)

    def test_boost_ineffective_when_everyone_does_io(self):
        # Sec 2.1: "if every vCPU is performing I/O and boosted as a
        # result, then effectively no vCPU is boosted."  With four
        # identical I/O VMs on one core they end up sharing equally.
        m = machine(seed=5)
        for i in range(4):
            m.add_vcpu(VCpu(f"io{i}", IoLoop(jitter=0.0)))
        m.run(300 * MS)
        utils = [m.utilization_of(f"io{i}") for i in range(4)]
        assert max(utils) - min(utils) < 0.05


class TestRunqueues:
    def test_home_assignment_round_robin(self):
        m = machine(cores=4)
        for i in range(8):
            m.add_vcpu(VCpu(f"v{i}", CpuHog()))
        sched = m.scheduler
        homes = [sched._state[f"v{i}"].home for i in range(8)]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_steal_keeps_machine_work_conserving(self):
        m = machine(cores=2, seed=2)
        # Both hogs land on core 0 (round-robin homes 0, 1 though), so
        # force the interesting case with three hogs.
        for i in range(3):
            m.add_vcpu(VCpu(f"hog{i}", CpuHog()))
        m.run(300 * MS)
        assert m.idle_fraction() < 0.05

    def test_steal_does_not_permanently_rehome(self):
        m = machine(cores=2, seed=2)
        for i in range(4):
            m.add_vcpu(VCpu(f"v{i}", IoLoop()))
        sched = m.scheduler
        homes_before = {n: sched._state[n].home for n in m.vcpus}
        m.run(300 * MS)
        homes_after = {n: sched._state[n].home for n in m.vcpus}
        assert homes_before == homes_after

    def test_accounting_tick_runs(self):
        m = machine()
        m.add_vcpu(VCpu("hog", CpuHog()))
        m.run(int(2.5 * ACCOUNTING_PERIOD_NS))
        state = m.scheduler._state["hog"]
        assert state.priority in (PRIO_UNDER, PRIO_OVER)
