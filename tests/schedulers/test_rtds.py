"""Tests for the RTDS scheduler model."""

import pytest

from repro.errors import ConfigurationError
from repro.schedulers import RtdsScheduler
from repro.schedulers.rtds import BLOCK_FORFEIT_NS, DEPLETION_THRESHOLD_NS
from repro.sim import Machine, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog, IntrinsicLatencyProbe, IoLoop

MS = 1_000_000
RESERVATION = (3_200_000, 12_800_000)  # the paper's 25% configuration


def machine(reservations, cores=1, seed=0):
    return Machine(uniform(cores), RtdsScheduler(reservations), seed=seed)


class TestBudgetEnforcement:
    def test_hog_limited_to_budget_share(self):
        m = machine({"hog": RESERVATION})
        m.add_vcpu(VCpu("hog", CpuHog(), capped=True))
        m.run(640 * MS)
        assert m.utilization_of("hog") == pytest.approx(0.25, abs=0.01)

    def test_blackout_close_to_period_remainder(self):
        m = machine({"hog": RESERVATION})
        probe = IntrinsicLatencyProbe()
        m.add_vcpu(VCpu("hog", probe, capped=True))
        m.run(640 * MS)
        # Budget at period start, gap = period - budget ~ 9.6 ms.
        assert 8 * MS < probe.max_gap_ns < 11 * MS

    def test_four_reservations_fill_core(self):
        reservations = {f"v{i}": RESERVATION for i in range(4)}
        m = machine(reservations)
        for i in range(4):
            m.add_vcpu(VCpu(f"v{i}", CpuHog(), capped=True))
        m.run(640 * MS)
        for i in range(4):
            assert m.utilization_of(f"v{i}") == pytest.approx(0.25, abs=0.015)

    def test_missing_reservation_rejected(self):
        m = machine({"known": RESERVATION})
        with pytest.raises(ConfigurationError):
            m.add_vcpu(VCpu("unknown", CpuHog()))

    def test_not_work_conserving(self):
        # RTDS strictly enforces budgets: one hog on an otherwise empty
        # core still gets only its reservation.
        m = machine({"hog": RESERVATION})
        m.add_vcpu(VCpu("hog", CpuHog(), capped=True))
        m.run(640 * MS)
        assert m.utilization_of("hog") < 0.27


class TestEdfOrdering:
    def test_earliest_deadline_preferred(self):
        # A short-period vCPU's jobs must not be starved by a long-period
        # hog sharing the core.
        m = machine(
            {
                "fast": (1_000_000, 4_000_000),  # 25%, 4 ms period
                "slow": (25_675_650, 102_702_600),  # 25%, ~102 ms period
            }
        )
        fast_probe = IntrinsicLatencyProbe()
        m.add_vcpu(VCpu("fast", fast_probe, capped=True))
        m.add_vcpu(VCpu("slow", CpuHog(), capped=True))
        m.run(410 * MS)
        assert m.utilization_of("fast") == pytest.approx(0.25, abs=0.03)
        # Fast task served every period: gaps bounded by ~2x its period.
        assert fast_probe.max_gap_ns < 9 * MS

    def test_replenishment_restores_budget(self):
        m = machine({"hog": RESERVATION})
        m.add_vcpu(VCpu("hog", CpuHog(), capped=True))
        m.run(26 * MS)  # two full periods
        state = m.scheduler._state["hog"]
        assert state.deadline >= 25_600_000

    def test_io_vcpu_pays_dispatch_tax(self):
        # The quantum-forfeiture model: an I/O-heavy vCPU gets less than
        # its nominal share because each short dispatch burns extra
        # budget (RT-Xen's documented weakness, Sec. 7.4).
        m = machine({"io": RESERVATION}, seed=4)
        m.add_vcpu(VCpu("io", IoLoop(compute_ns=100_000, io_ns=200_000), capped=True))
        m.run(640 * MS)
        # Demands ~33%, reserved 25%, but the tax caps it well below that.
        assert m.utilization_of("io") < 0.20


class TestGlobalBehavior:
    def test_global_queue_spreads_over_cores(self):
        reservations = {f"v{i}": RESERVATION for i in range(8)}
        m = machine(reservations, cores=2, seed=1)
        for i in range(8):
            m.add_vcpu(VCpu(f"v{i}", CpuHog(), capped=True))
        m.run(640 * MS)
        for i in range(8):
            assert m.utilization_of(f"v{i}") == pytest.approx(0.25, abs=0.02)

    def test_lock_contention_recorded(self):
        reservations = {f"v{i}": RESERVATION for i in range(8)}
        m = machine(reservations, cores=2, seed=1)
        for i in range(8):
            m.add_vcpu(VCpu(f"v{i}", IoLoop(), capped=True))
        m.run(200 * MS)
        assert m.scheduler.lock.acquisitions > 0

    def test_depletion_threshold_prevents_thrash(self):
        # Regression: sub-overhead budget residues must count as depleted
        # or the dispatcher busy-loops re-picking an unschedulable vCPU.
        m = machine({"hog": RESERVATION})
        m.add_vcpu(VCpu("hog", CpuHog(), capped=True))
        m.run(100 * MS)
        picks_per_period = m.tracer.ops["schedule"].count / (100 / 12.8)
        assert picks_per_period < 60
        assert DEPLETION_THRESHOLD_NS > 0
