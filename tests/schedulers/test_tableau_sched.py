"""Tests for the Tableau dispatcher (two-level table-driven scheduler)."""

import pytest

from repro.core import MS, Planner, make_vm
from repro.errors import ConfigurationError
from repro.schedulers import TableauScheduler
from repro.sim import Machine, Tracer, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog, IntrinsicLatencyProbe, IoLoop


def plan_two_vms(capped=True, cores=1):
    vms = [make_vm(f"vm{i}", 0.25, 20 * MS, capped=capped) for i in range(2 * cores)]
    return Planner(uniform(cores)).plan(vms)


def machine_for(plan, workloads, capped=True, tracer=None, **sched_kwargs):
    sched = TableauScheduler(plan.table, **sched_kwargs)
    m = Machine(uniform(len(plan.table.cores) or 1), sched, seed=1, tracer=tracer)
    for (name, workload) in workloads:
        m.add_vcpu(VCpu(name, workload, capped=capped))
    return m, sched


class TestFirstLevel:
    def test_capped_hog_gets_exactly_its_reservation(self):
        plan = plan_two_vms()
        m, _ = machine_for(plan, [("vm0.vcpu0", CpuHog()), ("vm1.vcpu0", CpuHog())])
        m.run(500 * MS)
        assert m.utilization_of("vm0.vcpu0") == pytest.approx(0.25, abs=0.01)
        assert m.utilization_of("vm1.vcpu0") == pytest.approx(0.25, abs=0.01)

    def test_blackout_bounded_by_latency_goal(self):
        plan = plan_two_vms()
        probe = IntrinsicLatencyProbe()
        m, _ = machine_for(plan, [("vm0.vcpu0", probe), ("vm1.vcpu0", CpuHog())])
        m.run(500 * MS)
        assert probe.max_gap_ns <= 20 * MS

    def test_unknown_vcpu_rejected(self):
        plan = plan_two_vms()
        sched = TableauScheduler(plan.table)
        m = Machine(uniform(1), sched)
        with pytest.raises(ConfigurationError):
            m.add_vcpu(VCpu("ghost.vcpu0", CpuHog()))

    def test_level1_dispatches_traced(self):
        plan = plan_two_vms()
        tracer = Tracer(keep_dispatches=True)
        m, _ = machine_for(
            plan, [("vm0.vcpu0", CpuHog()), ("vm1.vcpu0", CpuHog())], tracer=tracer
        )
        m.run(200 * MS)
        levels = {d.level for d in tracer.dispatches if d.vcpu == "vm0.vcpu0"}
        assert levels == {1}  # capped: table slots only


class TestSecondLevel:
    def test_uncapped_vcpu_harvests_idle_cycles(self):
        plan = plan_two_vms(capped=False)
        m, _ = machine_for(
            plan,
            [("vm0.vcpu0", CpuHog()), ("vm1.vcpu0", IoLoop())],
            capped=False,
        )
        m.run(500 * MS)
        # The hog gets its 25% slots plus most of the I/O VM's unused time.
        assert m.utilization_of("vm0.vcpu0") > 0.45

    def test_capped_vcpu_never_exceeds_reservation_even_when_idle(self):
        plan = plan_two_vms(capped=True)
        m, _ = machine_for(
            plan,
            [("vm0.vcpu0", CpuHog()), ("vm1.vcpu0", IoLoop())],
            capped=True,
        )
        m.run(500 * MS)
        assert m.utilization_of("vm0.vcpu0") == pytest.approx(0.25, abs=0.01)

    def test_l2_dispatches_recorded_as_level2(self):
        plan = plan_two_vms(capped=False)
        tracer = Tracer(keep_dispatches=True)
        m, _ = machine_for(
            plan,
            [("vm0.vcpu0", CpuHog()), ("vm1.vcpu0", IoLoop())],
            capped=False,
            tracer=tracer,
        )
        m.run(300 * MS)
        hog_levels = [d.level for d in tracer.dispatches if d.vcpu == "vm0.vcpu0"]
        assert 2 in hog_levels
        assert tracer.level2_share("vm0.vcpu0") > 0.3

    def test_work_conserving_disabled_leaves_idle_time(self):
        plan = plan_two_vms(capped=False)
        m, _ = machine_for(
            plan,
            [("vm0.vcpu0", CpuHog()), ("vm1.vcpu0", IoLoop())],
            capped=False,
            work_conserving=False,
        )
        m.run(500 * MS)
        # Without the second level the hog is stuck with its table slots.
        assert m.utilization_of("vm0.vcpu0") == pytest.approx(0.25, abs=0.01)

    def test_l2_shares_idle_time_between_uncapped_vcpus(self):
        plan = plan_two_vms(capped=False)
        m, _ = machine_for(
            plan,
            [("vm0.vcpu0", CpuHog()), ("vm1.vcpu0", CpuHog())],
            capped=False,
        )
        m.run(500 * MS)
        a = m.utilization_of("vm0.vcpu0")
        b = m.utilization_of("vm1.vcpu0")
        assert a + b > 0.95  # work conserving
        assert abs(a - b) < 0.1  # and roughly fair

    def test_invalid_split_policy_rejected(self):
        plan = plan_two_vms()
        with pytest.raises(ConfigurationError):
            TableauScheduler(plan.table, split_l2_policy="bogus")


class TestWakeups:
    def test_wakeup_during_own_slot_is_fast(self):
        plan = plan_two_vms(capped=True)
        from repro.workloads import PingResponder, run_ping_load

        responder = PingResponder()
        m, _ = machine_for(
            plan, [("vm0.vcpu0", responder), ("vm1.vcpu0", IoLoop())], capped=True
        )
        run_ping_load(m, responder, threads=2, pings_per_thread=100,
                      max_spacing_ns=10 * MS)
        m.run(1_000 * MS)
        # Max latency bounded by the table structure (blackout + processing).
        assert responder.max_latency_ns <= 20 * MS
        assert responder.latencies_ns

    def test_capped_wakeup_outside_slot_waits_for_slot(self):
        plan = plan_two_vms(capped=True)
        from repro.workloads import PingResponder

        responder = PingResponder()
        m, _ = machine_for(
            plan, [("vm0.vcpu0", responder), ("vm1.vcpu0", CpuHog())], capped=True
        )
        m.run(1 * MS)
        # Inject one ping: served within one table period, not instantly.
        responder.inject(m.engine.now)
        m.run(30 * MS)
        assert len(responder.latencies_ns) == 1


class TestTableSwitch:
    def test_pending_table_activates_at_cycle(self):
        plan = plan_two_vms()
        m, sched = machine_for(
            plan, [("vm0.vcpu0", CpuHog()), ("vm1.vcpu0", CpuHog())]
        )
        m.run(10 * MS)
        new_plan = plan_two_vms()
        cycle = m.engine.now // plan.table.length_ns + 1
        sched.install_table(new_plan.table, cycle)
        assert sched.table is plan.table  # not yet
        m.run(2 * plan.table.length_ns)
        assert sched.table is new_plan.table
        assert sched.table_switches == 1

    def test_schedule_keeps_guarantees_across_switch(self):
        plan = plan_two_vms()
        probe = IntrinsicLatencyProbe()
        m, sched = machine_for(
            plan, [("vm0.vcpu0", probe), ("vm1.vcpu0", CpuHog())]
        )
        m.run(150 * MS)
        sched.install_table(
            plan_two_vms().table, m.engine.now // plan.table.length_ns + 1
        )
        m.run(400 * MS)
        assert probe.max_gap_ns <= 20 * MS
        assert m.utilization_of("vm0.vcpu0") == pytest.approx(0.25, abs=0.01)

    def test_mid_run_switch_with_io_load_is_lock_free_and_safe(self):
        """A table installed while I/O-bound vCPUs churn the second level
        activates at the wrap without a stale-lookup window: level-1
        dispatches after the switch follow only the new table."""
        plan = plan_two_vms(capped=False)
        tracer = Tracer(keep_dispatches=True)
        m, sched = machine_for(
            plan,
            [("vm0.vcpu0", IoLoop()), ("vm1.vcpu0", IoLoop())],
            capped=False,
            tracer=tracer,
        )
        m.run(30 * MS)
        new_plan = plan_two_vms(capped=False)
        cycle = m.engine.now // plan.table.length_ns + 1
        sched.install_table(new_plan.table, cycle)
        m.run(300 * MS)
        assert sched.table is new_plan.table
        assert sched.table_switches == 1
        switch_ns = cycle * plan.table.length_ns
        new_table = new_plan.table.cores[0]
        for record in tracer.dispatches:
            if record.level == 1 and record.time >= switch_ns:
                alloc = new_table.lookup(record.time)
                assert alloc is not None and alloc.vcpu == record.vcpu
        # Work conservation survives the switch: both uncapped vCPUs keep
        # making progress at their I/O duty cycle.
        for name in ("vm0.vcpu0", "vm1.vcpu0"):
            assert m.utilization_of(name) > 0.2

    def test_switch_trace_is_deterministic(self):
        def run_once():
            plan = plan_two_vms(capped=False)
            tracer = Tracer(keep_dispatches=True)
            m, sched = machine_for(
                plan,
                [("vm0.vcpu0", IoLoop()), ("vm1.vcpu0", IoLoop())],
                capped=False,
                tracer=tracer,
            )
            m.run(20 * MS)
            sched.install_table(
                plan_two_vms(capped=False).table,
                m.engine.now // plan.table.length_ns + 1,
            )
            m.run(150 * MS)
            return [
                (d.time, d.cpu, d.vcpu, d.level) for d in tracer.dispatches
            ]

        assert run_once() == run_once()
