#!/usr/bin/env python3
"""Scheduler shootout: tail latency under high VM density (Figs. 5-6).

Simulates the paper's 16-core machine with 48 VMs (four per guest core)
under each scheduler and measures what the vantage VM experiences:
worst-case scheduling delay (redis-cli --intrinsic-latency style) and
ping round-trip latency, with an I/O-intensive background.

Run:  python examples/scheduler_shootout.py  [--seconds 2.0]
"""

import argparse

from repro.experiments import intrinsic_latency, ping_latency, schedulers_for


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seconds", type=float, default=2.0,
        help="simulated seconds per measurement (default: 2.0)",
    )
    parser.add_argument(
        "--background", choices=("none", "io", "cpu"), default="io",
        help="background workload in the other 47 VMs (default: io)",
    )
    args = parser.parse_args()

    for capped in (True, False):
        mode = "capped" if capped else "uncapped"
        print(f"\n=== {mode} VMs, background: {args.background} ===")
        print(f"{'scheduler':>10s} {'max delay':>12s} {'avg ping':>12s} "
              f"{'max ping':>12s}")
        for scheduler in schedulers_for(capped):
            delay = intrinsic_latency(
                scheduler, capped, args.background, duration_s=args.seconds
            )
            ping = ping_latency(
                scheduler, capped, args.background,
                duration_s=args.seconds, pings_per_thread=100,
            )
            print(f"{scheduler:>10s} {delay.max_delay_ms:9.2f} ms "
                  f"{ping.avg_ms:9.2f} ms {ping.max_ms:9.2f} ms")

    print(
        "\nReading the table: Tableau's max delay never exceeds the bound\n"
        "derived from its scheduling table (~10 ms here, from the 20 ms\n"
        "latency goal), no matter what the background does — that is the\n"
        "paper's predictability claim.  Credit's heuristics produce far\n"
        "larger and background-dependent tails."
    )


if __name__ == "__main__":
    main()
