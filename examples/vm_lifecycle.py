#!/usr/bin/env python3
"""VM lifecycle with on-demand replanning (the Fig. 1 control plane).

Drives the xl-style toolstack through creations, a reconfiguration, a
rejected over-commitment, and teardown — showing how each operation
triggers the planner daemon, how long planning takes relative to Xen's
own provisioning costs, and how tables are staged for race-free,
time-synchronized switches.

Run:  python examples/vm_lifecycle.py
"""

from repro.core import MS
from repro.errors import AdmissionError
from repro.topology import xeon_16core
from repro.xen import Toolstack


def show(toolstack: Toolstack, note: str) -> None:
    plan = toolstack.current_plan
    record = toolstack.daemon.history[-1]
    print(f"{note}: {toolstack.domain_count()} domains, replanned in "
          f"{record.generation_seconds * 1e3:.1f} ms "
          f"({record.method}, table {record.table_bytes / 1024:.1f} KiB)")


def main() -> None:
    toolstack = Toolstack(xeon_16core())

    print("Bringing up a mixed fleet ...")
    for i in range(8):
        toolstack.create_vm(f"web{i}", utilization=0.25, latency_ns=20 * MS)
    show(toolstack, "8x web @ 25%/20ms")

    toolstack.create_vm("db0", utilization=0.5, latency_ns=10 * MS,
                        vcpu_count=2)
    show(toolstack, "+ db0 (2 vCPUs @ 50%/10ms)")

    toolstack.create_vm("batch0", utilization=1.0, latency_ns=100 * MS)
    show(toolstack, "+ batch0 (dedicated core)")

    print("\nTier upgrade: web0 moves to 50% / 5 ms ...")
    toolstack.reconfigure_vm("web0", utilization=0.5, latency_ns=5 * MS)
    show(toolstack, "reconfigured web0")
    vcpu = toolstack.current_plan.vcpus["web0.vcpu0"]
    blackout = toolstack.current_plan.table.max_blackout_ns("web0.vcpu0")
    print(f"  new guarantee: {vcpu.utilization:.0%} of a core, worst-case "
          f"delay {blackout / MS:.2f} ms (goal {vcpu.latency_ns / MS:.0f} ms)")

    print("\nTrying to overcommit the machine ...")
    try:
        toolstack.create_vm("greedy", utilization=1.0, latency_ns=MS,
                            vcpu_count=12)
    except AdmissionError as error:
        print(f"  rejected by admission control: {error}")
    print(f"  running domains untouched: {toolstack.domain_count()}")

    print("\nTearing down the batch VM ...")
    toolstack.destroy_vm("batch0")
    show(toolstack, "destroyed batch0")

    print("\nProvisioning-cost ledger (planning vs Xen base cost):")
    for report in toolstack.reports[-4:]:
        print(f"  {report.operation:12s} {report.domain:8s} "
              f"planning {report.planning_ns / 1e6:7.1f} ms "
              f"({report.planning_share:6.1%} of the operation)")


if __name__ == "__main__":
    main()
