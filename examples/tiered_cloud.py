#!/usr/bin/env python3
"""Tier-based cloud provisioning with table caching.

The paper's introduction motivates Tableau economically: providers sell
price-differentiated tiers and pack lower tiers densely.  This example
provisions a fleet from a tier catalogue, shows the per-tier guarantees
the planner derives, then simulates a day of churn (VMs created and
destroyed with tier shapes recurring) to demonstrate the table cache
(Sec. 7.1): recurring census shapes replan in microseconds.

Run:  python examples/tiered_cloud.py
"""

import time

from repro.core import MS, Planner, TableCache, vms_from_tiers
from repro.core.params import DEFAULT_TIERS, flatten_vcpus
from repro.topology import xeon_16core


def main() -> None:
    print("Tier catalogue:")
    for tier in DEFAULT_TIERS.values():
        print(f"  {tier.name:12s} {tier.utilization:5.0%} of a core, "
              f"{tier.latency_ns / MS:6.1f} ms latency bound, "
              f"{'capped' if tier.capped else 'burstable'}")

    # A representative fleet: dense economy tier plus some premium VMs.
    requests = (
        [(f"econ{i}", "economy") for i in range(16)]
        + [(f"std{i}", "standard") for i in range(12)]
        + [(f"perf{i}", "performance") for i in range(8)]
        + [("dedicated0", "dedicated")]
    )
    vms = vms_from_tiers(requests)
    topology = xeon_16core()
    planner = Planner(topology)
    plan = planner.plan(vms)
    print(f"\nPlanned {len(requests)} VMs "
          f"({sum(vm.total_utilization for vm in vms):.1f} cores reserved of "
          f"{len(topology.guest_cores)}) in "
          f"{plan.stats.generation_seconds * 1e3:.1f} ms.")

    print("\nPer-tier guarantees as realized in the table:")
    for name, tier in DEFAULT_TIERS.items():
        example = next((vm.vcpus[0].name for vm in vms
                        if vm.vcpus[0].utilization == tier.utilization), None)
        if example is None:
            continue
        blackout = plan.table.max_blackout_ns(example)
        print(f"  {name:12s} worst-case delay {blackout / MS:7.3f} ms "
              f"(goal {tier.latency_ns / MS:.1f} ms), reserved "
              f"{plan.table.utilization_of(example):.3f}")

    # Churn: tenants come and go, but tier shapes recur constantly.
    print("\nSimulating churn with the table cache (Sec. 7.1) ...")
    cache = TableCache(planner)
    started = time.perf_counter()
    for generation in range(20):
        renamed = [
            (f"g{generation}-{name}", tier) for name, tier in requests
        ]
        cache.plan(flatten_vcpus(vms_from_tiers(renamed)))
    elapsed = time.perf_counter() - started
    print(f"  20 replans in {elapsed * 1e3:.1f} ms total "
          f"(hit rate {cache.stats.hit_rate:.0%}: one cold plan, "
          f"{cache.stats.hits} cached renames)")


if __name__ == "__main__":
    main()
