#!/usr/bin/env python3
"""Semi-partitioning showcase: C=D splitting, compensation, rotation.

Builds a deliberately awkward VM census (three 60% VMs on two cores —
unpartitionable, total utilization 1.8) and walks through everything the
paper says about it: the C=D split chain the planner constructs, proof
that the pieces never run in parallel, the compensation and rotation
remedies of Sec. 7.5, and the dispatcher actually executing the split
schedule.

Run:  python examples/semi_partitioning.py
"""

from repro.core import MS, Planner, make_vm
from repro.schedulers import TableauScheduler
from repro.sim import Machine, VCpu
from repro.topology import uniform
from repro.workloads import CpuHog
from repro.xen import PlannerDaemon


def main() -> None:
    topo = uniform(2)
    vms = [make_vm(f"vm{i}", utilization=0.6, latency_ns=100 * MS, capped=True)
           for i in range(3)]

    print("Three 60% VMs on two cores: no partition exists (0.6 + 0.6 = 1.2).")
    plan = Planner(topo).plan(vms)
    print(f"Planner escalated to: {plan.stats.method} "
          f"({plan.stats.split_tasks} task split)\n")

    split = next(n for n in plan.vcpus if plan.table.is_split(n))
    print(f"Split vCPU: {split}, with allocations on cores "
          f"{plan.table.home_cores[split]}:")
    for start, end, cpu in plan.table.service_timeline(split)[:6]:
        print(f"  core {cpu}: [{start / MS:7.3f} ms, {end / MS:7.3f} ms)")
    overlaps = plan.table.overlapping_service()
    print(f"Parallel self-execution instants: {len(overlaps)} "
          f"(C=D chains make this impossible by construction)\n")

    print("Dispatching the split schedule for 0.5 simulated seconds ...")
    machine = Machine(topo, TableauScheduler(plan.table), seed=1)
    for vm in vms:
        machine.add_vcpu(VCpu(vm.vcpus[0].name, CpuHog(), capped=True))
    machine.run(500 * MS)
    for vm in vms:
        name = vm.vcpus[0].name
        marker = "  <- split, migrates between cores" if name == split else ""
        print(f"  {name}: {machine.utilization_of(name):.3f} of a core "
              f"(reserved 0.600){marker}")

    print("\nSec. 7.5 remedy #1 — compensate the split vCPU (+5% budget):")
    compensated = Planner(topo, split_compensation=0.05).plan(vms)
    victim = compensated.stats.compensated_vcpus[0]
    print(f"  {victim} now reserved "
          f"{compensated.vcpus[victim].utilization:.3f} of a core")

    print("\nSec. 7.5 remedy #2 — rotate who gets split across replans:")
    daemon = PlannerDaemon(topo)
    victims = []
    daemon.replan(vms, reason="boot")
    victims.append(next(n for n in daemon.current_plan.vcpus
                        if daemon.current_plan.table.is_split(n)))
    for _ in range(3):
        plan = daemon.rotate_table(vms)
        victims.append(next(n for n in plan.vcpus if plan.table.is_split(n)))
    print(f"  split victims across four tables: {victims}")


if __name__ == "__main__":
    main()
