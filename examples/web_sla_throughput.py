#!/usr/bin/env python3
"""SLA-aware web-serving throughput (the Fig. 7 experiment, one slice).

Hosts an nginx-style HTTPS server in the vantage VM, sweeps the offered
request rate with a wrk2-style constant-throughput client, and reports
each scheduler's throughput-latency curve plus its SLA-aware peak
(highest throughput with p99 latency under 100 ms).

Run:  python examples/web_sla_throughput.py  [--size-kib 1] [--capped]
"""

import argparse

from repro.experiments import SLA_P99_NS, sweep_rates, plan_for, schedulers_for
from repro.metrics import compare_peaks
from repro.topology import xeon_16core
from repro.workloads import KIB


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size-kib", type=int, default=1,
                        help="response size in KiB (default: 1)")
    parser.add_argument("--capped", action="store_true",
                        help="hold VMs to their reservations")
    parser.add_argument("--seconds", type=float, default=1.5,
                        help="simulated seconds per operating point")
    args = parser.parse_args()

    size = args.size_kib * KIB
    if args.size_kib <= 4:
        rates = (400, 800, 1_200, 1_600, 2_000)
    elif args.size_kib <= 256:
        rates = (200, 400, 600, 800)
    else:
        rates = (20, 60, 100, 160)

    plan = plan_for(xeon_16core(), 48, args.capped)
    curves = []
    for scheduler in schedulers_for(args.capped):
        print(f"sweeping {scheduler} ...")
        curves.append(
            sweep_rates(
                scheduler, rates, size,
                capped=args.capped, background="io",
                duration_s=args.seconds, plan=plan,
            )
        )

    mode = "capped" if args.capped else "uncapped"
    print(f"\n=== {args.size_kib} KiB files over HTTPS, {mode} VMs, "
          f"I/O background ===")
    print(f"{'sched':>9s} {'offered':>8s} {'achieved':>9s} "
          f"{'mean':>9s} {'p99':>9s} {'max':>9s}   (latency in ms)")
    for curve in curves:
        for offered, achieved, mean_ms, p99_ms, max_ms in curve.rows():
            print(f"{curve.label:>9s} {offered:8.0f} {achieved:9.1f} "
                  f"{mean_ms:9.2f} {p99_ms:9.2f} {max_ms:9.2f}")

    print("\nSLA-aware peak throughput (p99 <= 100 ms):")
    for label, peak in compare_peaks(curves, SLA_P99_NS).items():
        shown = f"{peak:,.0f} req/s" if peak is not None else "SLA never met"
        print(f"  {label:>9s}: {shown}")


if __name__ == "__main__":
    main()
