#!/usr/bin/env python3
"""Quickstart: plan a Tableau scheduling table and inspect its guarantees.

Recreates the paper's core workflow in a few lines: describe VMs by
their (utilization, latency) reservations, run the planner, and look at
the cyclic table it generates — budgets, blackout bounds, table size.

Run:  python examples/quickstart.py
"""

from repro.core import MS, Planner, make_vm, serialize
from repro.topology import xeon_16core


def main() -> None:
    # The paper's high-density setup: four single-vCPU VMs per guest
    # core, each reserved 25% of a core with a 20 ms latency bound.
    topology = xeon_16core()
    vms = [
        make_vm(f"vm{i:02d}", utilization=0.25, latency_ns=20 * MS)
        for i in range(4 * len(topology.guest_cores))
    ]

    planner = Planner(topology)
    result = planner.plan(vms)

    print(f"Planned {result.stats.num_vcpus} vCPUs on "
          f"{len(topology.guest_cores)} guest cores "
          f"({topology.name}) in {result.stats.generation_seconds * 1e3:.1f} ms "
          f"using the '{result.stats.method}' method.")

    task = result.task_of("vm00.vcpu0")
    print(f"\nEach vCPU became a periodic task: budget "
          f"{task.cost / MS:.2f} ms every {task.period / MS:.2f} ms "
          f"(the paper reports ~3.2 ms / ~13 ms for this configuration).")

    blackout = result.table.max_blackout_ns("vm00.vcpu0")
    print(f"Worst-case scheduling blackout in the table: "
          f"{blackout / MS:.2f} ms (guaranteed <= the 20 ms goal).")

    print(f"\nTable: {result.table.length_ns / MS:.1f} ms cycle, "
          f"{sum(len(t.allocations) for t in result.table.cores.values())} "
          f"allocations, {len(serialize(result.table)) / 1024:.1f} KiB "
          f"serialized (pushed to the hypervisor via one hypercall).")

    core0 = min(result.table.cores)
    print(f"\nFirst few allocations on pCPU {core0}:")
    for alloc in result.table.cores[core0].allocations[:6]:
        print(f"  [{alloc.start / MS:7.3f} ms, {alloc.end / MS:7.3f} ms) "
              f"-> {alloc.vcpu}")

    print("\nO(1) dispatch check: which vCPU owns t = 5 ms on that core?")
    hit = result.table.cores[core0].lookup(5 * MS)
    print(f"  lookup(5 ms) -> {hit.vcpu if hit else 'idle'}")


if __name__ == "__main__":
    main()
