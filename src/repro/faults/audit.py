"""Runtime invariant auditor for the planner -> hypervisor pipeline.

The control path maintains three cross-layer invariants that no failure
mode may break (they are exactly what the transactional-replan and
rollback logic exists to protect):

1. **Census consistency** — the table the hypervisor is serving (or has
   staged to serve next) schedules precisely the vCPUs of the last
   *committed* plan, which in turn covers precisely the domains in the
   toolstack registry.  A failed create/destroy/reconfigure must leave
   all three views agreeing on the previous census.
2. **Staged-table accounting** — every table ever pushed is either the
   one currently staged, has activated, or was retired (including tables
   overwritten by a later push before they ever ran).  Nothing is lost.
3. **No use-after-GC** — no core's current or pending table has been
   garbage-collected by the hypercall's two-round retirement rule.

The auditor checks these on demand (:meth:`InvariantAuditor.check`) or
periodically from simulated time (:meth:`InvariantAuditor.attach`, using
the engine's recurring-event support).  In strict mode a violation
raises :class:`repro.errors.InvariantViolation`; otherwise violations
accumulate in :attr:`InvariantAuditor.violations` for post-run asserts.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.sim.engine import RecurringHandle
    from repro.sim.machine import Machine
    from repro.xen.daemon import PlannerDaemon
    from repro.xen.domain import DomainRegistry
    from repro.xen.hypercall import TableHypercall


class InvariantAuditor:
    """Cross-layer consistency checks over hypercall, daemon, registry.

    Args:
        hypercall: The hypervisor table interface (always required; it
            owns the staged/retired accounting).
        daemon: The planner daemon, for census-vs-plan checks (optional).
        registry: The toolstack's domain registry, for plan-vs-registry
            checks (optional).
        strict: Raise :class:`InvariantViolation` on the first violation
            instead of only recording it.
    """

    def __init__(
        self,
        hypercall: "TableHypercall",
        daemon: Optional["PlannerDaemon"] = None,
        registry: Optional["DomainRegistry"] = None,
        strict: bool = True,
    ) -> None:
        self.hypercall = hypercall
        self.daemon = daemon
        self.registry = registry
        self.strict = strict
        self.audits = 0
        self.violations: List[str] = []
        self._handle: Optional["RecurringHandle"] = None

    @classmethod
    def for_toolstack(
        cls, toolstack, hypercall: "TableHypercall", strict: bool = True
    ) -> "InvariantAuditor":
        """Audit a full control stack (registry + daemon + hypercall)."""
        return cls(
            hypercall,
            daemon=toolstack.daemon,
            registry=toolstack.registry,
            strict=strict,
        )

    # ------------------------------------------------------------------
    # Periodic auditing from simulated time
    # ------------------------------------------------------------------

    def attach(self, machine: "Machine", period_ns: int) -> None:
        """Audit every ``period_ns`` of simulated time on ``machine``."""
        if self._handle is not None:
            self._handle.cancel()
        self._handle = machine.engine.every(period_ns, self.check)

    def detach(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    # The checks
    # ------------------------------------------------------------------

    def check(self) -> List[str]:
        """Run all invariant checks once; return this round's violations."""
        problems: List[str] = []
        hc = self.hypercall
        scheduler = hc.scheduler
        serving = scheduler.table
        pending = scheduler.pending_table

        # 3. No core runs (or is about to run) a garbage-collected table.
        if hc.was_garbage_collected(serving):
            problems.append("serving table has been garbage-collected")
        if pending is not None and hc.was_garbage_collected(pending):
            problems.append("pending table has been garbage-collected")

        # 2. Every pushed table is staged, activated, retired, or failed
        # its activation (runtime switch-fault injection).
        staged = hc.staged_table
        accounted = (
            hc.activations
            + hc.retired_unactivated
            + hc.failed_activations
            + (1 if staged is not None else 0)
        )
        if len(hc.pushes) != accounted:
            problems.append(
                f"staged-table accounting leak: {len(hc.pushes)} pushes != "
                f"{hc.activations} activated + {hc.retired_unactivated} "
                f"retired-unactivated + {hc.failed_activations} "
                f"failed-activation + {1 if staged is not None else 0} staged"
            )
        if staged is not None and pending is not staged and serving is not staged:
            problems.append(
                "hypercall's staged table is neither pending nor active in "
                "the dispatcher"
            )

        # 1. Installed/staged table matches the committed census.
        if self.daemon is not None and self.daemon.current_plan is not None:
            plan_table = self.daemon.current_plan.table
            target = staged if staged is not None else serving
            if not self._same_census(target, plan_table):
                problems.append(
                    "table being served/staged does not match the committed "
                    "plan's census"
                )
            if self.registry is not None:
                registry_vcpus = {
                    vcpu.name
                    for spec in self.registry.specs
                    for vcpu in spec.vcpus
                }
                if set(plan_table.home_cores) != registry_vcpus:
                    problems.append(
                        "committed plan census does not match the domain "
                        "registry"
                    )

        self.audits += 1
        if problems:
            self.violations.extend(problems)
            if self.strict:
                raise InvariantViolation("; ".join(problems))
        return problems

    @property
    def clean(self) -> bool:
        return not self.violations

    @staticmethod
    def _same_census(a, b) -> bool:
        """Structural census equality (push round-trips copy the table)."""
        return a.length_ns == b.length_ns and set(a.home_cores) == set(
            b.home_cores
        )
