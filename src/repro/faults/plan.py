"""Deterministic fault plans for the planner -> hypervisor control path.

The paper's central control-plane guarantee is that a failed operation
never degrades running guests (Sec. 6: a rejected census leaves the
installed table untouched).  This module provides the adversary that
keeps that guarantee honest: a seeded, reproducible :class:`FaultPlan`
describing *where* and *when* the pipeline misbehaves.  Components
consult the plan at their decision points:

* ``hypercall.push`` -- the table-push hypercall fails outright
  (:class:`repro.errors.TablePushError`) before anything is staged;
* ``hypercall.payload`` -- the serialized table is corrupted in flight,
  so hypervisor-side validation rejects it
  (:class:`repro.errors.TableFormatError`);
* ``hypercall.activation`` -- the push succeeds but activation is
  delayed by extra table cycles (a slow staging path);
* ``planner.plan`` -- the planner daemon itself dies mid-generation
  (:class:`repro.errors.PlanningError`).

Determinism contract: a :class:`FaultPlan` is a pure function of its
specs, its seed, and the sequence of ``fires()`` calls it has answered.
Two runs that consult it identically observe identical faults, so every
chaos test is bit-reproducible.  With no plan installed (the default
everywhere) the control path takes zero extra branches that affect
behaviour — the fault-free fingerprints are unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Fault sites consulted by the control path.  Site names are plain
#: strings so experiment code can define additional private sites
#: without touching this module.
SITE_PUSH = "hypercall.push"
SITE_PAYLOAD = "hypercall.payload"
SITE_ACTIVATION = "hypercall.activation"
SITE_PLAN = "planner.plan"

KNOWN_SITES = (SITE_PUSH, SITE_PAYLOAD, SITE_ACTIVATION, SITE_PLAN)


@dataclass(frozen=True)
class FaultSpec:
    """One rule describing when a site misbehaves.

    Attributes:
        site: Which decision point this rule applies to.
        calls: 1-based invocation indices of the site at which the fault
            fires (transient faults: fire, then recover).
        persistent_from: When set, the fault fires at every invocation
            with index >= this value (persistent faults never recover).
        probability: Seeded per-invocation firing probability, for
            stochastic chaos runs; evaluated only if neither ``calls``
            nor ``persistent_from`` matched.
        delay_cycles: For ``hypercall.activation`` faults, how many
            extra table cycles the activation slips.
        note: Free-form label echoed into the injection log.
    """

    site: str
    calls: Tuple[int, ...] = ()
    persistent_from: Optional[int] = None
    probability: float = 0.0
    delay_cycles: int = 1
    note: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.persistent_from is not None and self.persistent_from < 1:
            raise ConfigurationError("persistent_from is a 1-based call index")
        if any(c < 1 for c in self.calls):
            raise ConfigurationError("fault call indices are 1-based")
        if self.delay_cycles < 0:
            raise ConfigurationError("delay_cycles must be non-negative")

    def matches(self, call_index: int) -> bool:
        """Deterministic (non-stochastic) match for ``call_index``."""
        if call_index in self.calls:
            return True
        return (
            self.persistent_from is not None
            and call_index >= self.persistent_from
        )


@dataclass
class InjectedFault:
    """Audit record of one fault the plan actually fired."""

    site: str
    call_index: int
    spec: FaultSpec


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of control-path faults.

    Args:
        specs: The fault rules; multiple rules per site are allowed and
            evaluated in order (first match fires).
        seed: Seed for the plan-owned RNG driving probabilistic rules.

    Attributes:
        injected: Every fault fired so far, in firing order — the chaos
            suite asserts against this log.
    """

    specs: Sequence[FaultSpec] = ()
    seed: int = 0
    injected: List[InjectedFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_site: Dict[str, List[FaultSpec]] = {}
        for spec in self.specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._rng = random.Random(self.seed)
        self._calls: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # The consultation protocol
    # ------------------------------------------------------------------

    def fires(self, site: str) -> Optional[FaultSpec]:
        """Consult the plan at a decision point.

        Every call increments the site's invocation counter (so call
        indices in specs line up with the component's own operation
        count).  Returns the matching spec when a fault fires, else
        ``None``.
        """
        index = self._calls.get(site, 0) + 1
        self._calls[site] = index
        for spec in self._by_site.get(site, ()):
            hit = spec.matches(index)
            if not hit and spec.probability > 0.0:
                hit = self._rng.random() < spec.probability
            if hit:
                self.injected.append(InjectedFault(site, index, spec))
                return spec
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def calls_seen(self, site: str) -> int:
        """How many times ``site`` consulted the plan."""
        return self._calls.get(site, 0)

    def injected_at(self, site: str) -> List[InjectedFault]:
        return [f for f in self.injected if f.site == site]

    @property
    def total_injected(self) -> int:
        return len(self.injected)

    # ------------------------------------------------------------------
    # Convenience constructors for the common chaos shapes
    # ------------------------------------------------------------------

    @classmethod
    def transient_push_failure(
        cls, calls: Sequence[int] = (1,), seed: int = 0
    ) -> "FaultPlan":
        """Push fails at the given attempt indices, then recovers."""
        return cls(
            specs=[FaultSpec(SITE_PUSH, calls=tuple(calls), note="transient push")],
            seed=seed,
        )

    @classmethod
    def persistent_push_failure(cls, start: int = 1, seed: int = 0) -> "FaultPlan":
        """Every push from attempt ``start`` onwards fails."""
        return cls(
            specs=[
                FaultSpec(SITE_PUSH, persistent_from=start, note="persistent push")
            ],
            seed=seed,
        )

    @classmethod
    def corrupted_payload(
        cls, calls: Sequence[int] = (1,), seed: int = 0
    ) -> "FaultPlan":
        """The serialized table is corrupted in flight at those pushes."""
        return cls(
            specs=[
                FaultSpec(SITE_PAYLOAD, calls=tuple(calls), note="corrupt payload")
            ],
            seed=seed,
        )

    @classmethod
    def planner_crash(cls, calls: Sequence[int] = (1,), seed: int = 0) -> "FaultPlan":
        """The planner raises mid-generation at those replans."""
        return cls(
            specs=[FaultSpec(SITE_PLAN, calls=tuple(calls), note="planner crash")],
            seed=seed,
        )

    @classmethod
    def delayed_activation(
        cls, calls: Sequence[int] = (1,), delay_cycles: int = 2, seed: int = 0
    ) -> "FaultPlan":
        """Pushes at those indices activate ``delay_cycles`` cycles late."""
        return cls(
            specs=[
                FaultSpec(
                    SITE_ACTIVATION,
                    calls=tuple(calls),
                    delay_cycles=delay_cycles,
                    note="delayed activation",
                )
            ],
            seed=seed,
        )


def corrupt_payload(payload: bytes) -> bytes:
    """Deterministically damage a serialized table.

    Flips the first byte (part of the format magic), so hypervisor-side
    validation is guaranteed to reject the payload with
    :class:`repro.errors.TableFormatError` — the corruption is detected,
    never silently installed.
    """
    if not payload:
        return payload
    return bytes([payload[0] ^ 0xFF]) + payload[1:]
