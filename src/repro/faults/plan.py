"""Deterministic fault plans for the control path and the runtime.

The paper's central control-plane guarantee is that a failed operation
never degrades running guests (Sec. 6: a rejected census leaves the
installed table untouched).  This module provides the adversary that
keeps that guarantee honest: a seeded, reproducible :class:`FaultPlan`
describing *where* and *when* the pipeline misbehaves.  Components
consult the plan at their decision points.

Control-path sites (consulted by :mod:`repro.xen`):

* ``hypercall.push`` -- the table-push hypercall fails outright
  (:class:`repro.errors.TablePushError`) before anything is staged;
* ``hypercall.payload`` -- the serialized table is corrupted in flight,
  so hypervisor-side validation rejects it
  (:class:`repro.errors.TableFormatError`);
* ``hypercall.activation`` -- the push succeeds but activation is
  delayed by extra table cycles (a slow staging path);
* ``planner.plan`` -- the planner daemon itself dies mid-generation
  (:class:`repro.errors.PlanningError`).

Runtime sites (consulted by :mod:`repro.sim.machine` and
:class:`repro.schedulers.tableau.TableauScheduler` at the fragile
machinery the dispatcher depends on — wakeup IPIs, synchronized core
clocks, per-core timers, guest cooperation, and table switches):

* ``runtime.ipi.lost`` -- a cross-core rescheduling IPI is dropped on
  the wire (the target core never re-runs its scheduler);
* ``runtime.ipi.delay`` -- the IPI is delivered ``delay_ns`` late;
* ``runtime.clock.skew`` -- a core's clock is offset by ``skew_ns``,
  so its table lookups and timer programming use the wrong instant;
* ``runtime.timer.jitter`` -- a core's dispatch timer fires
  ``delay_ns`` late (a missed or coalesced timer interrupt);
* ``runtime.vcpu.stuck`` -- a vCPU that should block keeps computing
  for ``extra_burst_ns`` more, overrunning its (U, L) contract;
* ``runtime.table.switch`` -- a staged table fails to activate at its
  wrap; with ``corrupt=True`` the affected cores are left with an
  unusable table and must fall back to degraded dispatch.

Runtime sites are consulted with a *scope key* (``cpu<i>`` or the vCPU
name): invocation counters are kept per ``(site, key)``, and a spec may
pin itself to one key (``key="cpu3"``) or apply to all (``key=None``).

Determinism contract: a :class:`FaultPlan` is a pure function of its
specs, its seed, and the sequence of ``fires()`` calls it has answered.
Two runs that consult it identically observe identical faults, so every
chaos test is bit-reproducible.  With no plan installed (the default
everywhere) neither the control path nor the dispatch loop takes any
extra branch that affects behaviour — the fault-free fingerprints are
unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Fault sites consulted by the control path.  Site names are plain
#: strings so experiment code can define additional private sites
#: without touching this module.
SITE_PUSH = "hypercall.push"
SITE_PAYLOAD = "hypercall.payload"
SITE_ACTIVATION = "hypercall.activation"
SITE_PLAN = "planner.plan"

#: Runtime fault sites consulted by the machine and the dispatcher.
SITE_IPI_LOST = "runtime.ipi.lost"
SITE_IPI_DELAY = "runtime.ipi.delay"
SITE_CLOCK_SKEW = "runtime.clock.skew"
SITE_TIMER_JITTER = "runtime.timer.jitter"
SITE_VCPU_STUCK = "runtime.vcpu.stuck"
SITE_TABLE_SWITCH = "runtime.table.switch"

CONTROL_SITES = (SITE_PUSH, SITE_PAYLOAD, SITE_ACTIVATION, SITE_PLAN)
RUNTIME_SITES = (
    SITE_IPI_LOST,
    SITE_IPI_DELAY,
    SITE_CLOCK_SKEW,
    SITE_TIMER_JITTER,
    SITE_VCPU_STUCK,
    SITE_TABLE_SWITCH,
)
KNOWN_SITES = CONTROL_SITES + RUNTIME_SITES


@dataclass(frozen=True)
class FaultSpec:
    """One rule describing when a site misbehaves.

    Attributes:
        site: Which decision point this rule applies to.
        calls: 1-based invocation indices of the site at which the fault
            fires (transient faults: fire, then recover).
        persistent_from: When set, the fault fires at every invocation
            with index >= this value (persistent faults never recover).
        probability: Seeded per-invocation firing probability, for
            stochastic chaos runs; evaluated only if neither ``calls``
            nor ``persistent_from`` matched.
        delay_cycles: For ``hypercall.activation`` faults, how many
            extra table cycles the activation slips.
        key: Scope of the rule for key-consulted runtime sites: a core
            (``"cpu3"``) or a vCPU name.  ``None`` applies to every key
            (each key still keeps its own invocation counter).
        delay_ns: Extra delivery delay for ``runtime.ipi.delay`` and
            lateness for ``runtime.timer.jitter`` faults.
        skew_ns: Per-core clock offset for ``runtime.clock.skew``
            faults (may be negative: a core whose clock runs behind).
        extra_burst_ns: Overrun length for ``runtime.vcpu.stuck``
            faults: how much extra compute the stuck vCPU queues each
            time the fault fires instead of blocking.
        cpu: For ``runtime.table.switch`` faults, the core whose
            ``next_table`` pointer is corrupted (``None``: all cores).
        corrupt: For ``runtime.table.switch`` faults, whether the
            failed switch leaves the affected cores' table unusable
            (forcing degraded-mode dispatch) or merely loses the
            pending table while the old one keeps serving.
        note: Free-form label echoed into the injection log.
    """

    site: str
    calls: Tuple[int, ...] = ()
    persistent_from: Optional[int] = None
    probability: float = 0.0
    delay_cycles: int = 1
    key: Optional[str] = None
    delay_ns: int = 0
    skew_ns: int = 0
    extra_burst_ns: int = 0
    cpu: Optional[int] = None
    corrupt: bool = False
    note: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.persistent_from is not None and self.persistent_from < 1:
            raise ConfigurationError("persistent_from is a 1-based call index")
        if any(c < 1 for c in self.calls):
            raise ConfigurationError("fault call indices are 1-based")
        if self.delay_cycles < 0:
            raise ConfigurationError("delay_cycles must be non-negative")
        if self.delay_ns < 0:
            raise ConfigurationError("delay_ns must be non-negative")
        if self.extra_burst_ns < 0:
            raise ConfigurationError("extra_burst_ns must be non-negative")

    def matches(self, call_index: int) -> bool:
        """Deterministic (non-stochastic) match for ``call_index``."""
        if call_index in self.calls:
            return True
        return (
            self.persistent_from is not None
            and call_index >= self.persistent_from
        )


@dataclass
class InjectedFault:
    """Audit record of one fault the plan actually fired."""

    site: str
    call_index: int
    spec: FaultSpec
    key: Optional[str] = None


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of control-path faults.

    Args:
        specs: The fault rules; multiple rules per site are allowed and
            evaluated in order (first match fires).
        seed: Seed for the plan-owned RNG driving probabilistic rules.

    Attributes:
        injected: Every fault fired so far, in firing order — the chaos
            suite asserts against this log.
    """

    specs: Sequence[FaultSpec] = ()
    seed: int = 0
    injected: List[InjectedFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_site: Dict[str, List[FaultSpec]] = {}
        for spec in self.specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._rng = random.Random(self.seed)
        self._calls: Dict[Tuple[str, Optional[str]], int] = {}
        self._skew_cache: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # The consultation protocol
    # ------------------------------------------------------------------

    def fires(self, site: str, key: Optional[str] = None) -> Optional[FaultSpec]:
        """Consult the plan at a decision point.

        Every call increments the ``(site, key)`` invocation counter (so
        call indices in specs line up with the component's own operation
        count; runtime sites count per core or per vCPU).  Returns the
        matching spec when a fault fires, else ``None``.  Specs pinned
        to a ``key`` only match consultations with that key.
        """
        counter = (site, key)
        index = self._calls.get(counter, 0) + 1
        self._calls[counter] = index
        for spec in self._by_site.get(site, ()):
            if spec.key is not None and spec.key != key:
                continue
            hit = spec.matches(index)
            if not hit and spec.probability > 0.0:
                hit = self._rng.random() < spec.probability
            if hit:
                self.injected.append(InjectedFault(site, index, spec, key))
                return spec
        return None

    def has_site(self, site: str) -> bool:
        """Whether any rule targets ``site`` (cheap hot-path pre-check)."""
        return site in self._by_site

    def clock_skew_ns(self, cpu: int) -> int:
        """Static clock offset of ``cpu`` (sum of matching skew rules).

        Unlike :meth:`fires`, skew is a property of the core, not of an
        event: it is resolved once (per core) and does not consume call
        indices or RNG draws.  The first resolution of a non-zero skew
        is recorded in the injection log.
        """
        cached = self._skew_cache.get(cpu)
        if cached is not None:
            return cached
        key = f"cpu{cpu}"
        skew = 0
        for spec in self._by_site.get(SITE_CLOCK_SKEW, ()):
            if spec.key is None or spec.key == key:
                skew += spec.skew_ns
                if spec.skew_ns:
                    self.injected.append(InjectedFault(SITE_CLOCK_SKEW, 0, spec, key))
        self._skew_cache[cpu] = skew
        return skew

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def calls_seen(self, site: str, key: Optional[str] = None) -> int:
        """How many times ``site`` consulted the plan (under ``key``)."""
        return self._calls.get((site, key), 0)

    def injected_at(self, site: str) -> List[InjectedFault]:
        return [f for f in self.injected if f.site == site]

    def injected_by_site(self) -> Dict[str, int]:
        """Injection counts per site (for chaos reports)."""
        counts: Dict[str, int] = {}
        for fault in self.injected:
            counts[fault.site] = counts.get(fault.site, 0) + 1
        return counts

    @property
    def total_injected(self) -> int:
        return len(self.injected)

    # ------------------------------------------------------------------
    # Convenience constructors for the common chaos shapes
    # ------------------------------------------------------------------

    @classmethod
    def transient_push_failure(
        cls, calls: Sequence[int] = (1,), seed: int = 0
    ) -> "FaultPlan":
        """Push fails at the given attempt indices, then recovers."""
        return cls(
            specs=[FaultSpec(SITE_PUSH, calls=tuple(calls), note="transient push")],
            seed=seed,
        )

    @classmethod
    def persistent_push_failure(cls, start: int = 1, seed: int = 0) -> "FaultPlan":
        """Every push from attempt ``start`` onwards fails."""
        return cls(
            specs=[
                FaultSpec(SITE_PUSH, persistent_from=start, note="persistent push")
            ],
            seed=seed,
        )

    @classmethod
    def corrupted_payload(
        cls, calls: Sequence[int] = (1,), seed: int = 0
    ) -> "FaultPlan":
        """The serialized table is corrupted in flight at those pushes."""
        return cls(
            specs=[
                FaultSpec(SITE_PAYLOAD, calls=tuple(calls), note="corrupt payload")
            ],
            seed=seed,
        )

    @classmethod
    def planner_crash(cls, calls: Sequence[int] = (1,), seed: int = 0) -> "FaultPlan":
        """The planner raises mid-generation at those replans."""
        return cls(
            specs=[FaultSpec(SITE_PLAN, calls=tuple(calls), note="planner crash")],
            seed=seed,
        )

    @classmethod
    def delayed_activation(
        cls, calls: Sequence[int] = (1,), delay_cycles: int = 2, seed: int = 0
    ) -> "FaultPlan":
        """Pushes at those indices activate ``delay_cycles`` cycles late."""
        return cls(
            specs=[
                FaultSpec(
                    SITE_ACTIVATION,
                    calls=tuple(calls),
                    delay_cycles=delay_cycles,
                    note="delayed activation",
                )
            ],
            seed=seed,
        )

    # -- runtime fault shapes ------------------------------------------

    @classmethod
    def lost_ipi(
        cls,
        cpu: Optional[int] = None,
        calls: Sequence[int] = (),
        persistent_from: Optional[int] = None,
        probability: float = 0.0,
        seed: int = 0,
    ) -> "FaultPlan":
        """Rescheduling IPIs to ``cpu`` (or any core) are dropped."""
        return cls(
            specs=[
                FaultSpec(
                    SITE_IPI_LOST,
                    calls=tuple(calls),
                    persistent_from=persistent_from,
                    probability=probability,
                    key=None if cpu is None else f"cpu{cpu}",
                    note="lost wakeup IPI",
                )
            ],
            seed=seed,
        )

    @classmethod
    def delayed_ipi(
        cls,
        delay_ns: int,
        cpu: Optional[int] = None,
        calls: Sequence[int] = (),
        persistent_from: Optional[int] = 1,
        probability: float = 0.0,
        seed: int = 0,
    ) -> "FaultPlan":
        """Rescheduling IPIs to ``cpu`` (or any core) arrive late."""
        return cls(
            specs=[
                FaultSpec(
                    SITE_IPI_DELAY,
                    calls=tuple(calls),
                    persistent_from=persistent_from,
                    probability=probability,
                    key=None if cpu is None else f"cpu{cpu}",
                    delay_ns=delay_ns,
                    note="delayed wakeup IPI",
                )
            ],
            seed=seed,
        )

    @classmethod
    def clock_skew(cls, skew_ns: int, cpu: int, seed: int = 0) -> "FaultPlan":
        """One core's clock runs ``skew_ns`` ahead (negative: behind)."""
        return cls(
            specs=[
                FaultSpec(
                    SITE_CLOCK_SKEW,
                    key=f"cpu{cpu}",
                    skew_ns=skew_ns,
                    note="core clock skew",
                )
            ],
            seed=seed,
        )

    @classmethod
    def timer_jitter(
        cls,
        delay_ns: int,
        cpu: Optional[int] = None,
        probability: float = 1.0,
        seed: int = 0,
    ) -> "FaultPlan":
        """Dispatch timers on ``cpu`` (or any core) fire ``delay_ns`` late."""
        return cls(
            specs=[
                FaultSpec(
                    SITE_TIMER_JITTER,
                    probability=probability,
                    key=None if cpu is None else f"cpu{cpu}",
                    delay_ns=delay_ns,
                    note="timer jitter",
                )
            ],
            seed=seed,
        )

    @classmethod
    def stuck_vcpu(
        cls,
        vcpu: Optional[str] = None,
        extra_burst_ns: int = 1_000_000,
        calls: Sequence[int] = (),
        persistent_from: Optional[int] = 1,
        probability: float = 0.0,
        seed: int = 0,
    ) -> "FaultPlan":
        """``vcpu`` (or any vCPU) keeps computing instead of blocking."""
        return cls(
            specs=[
                FaultSpec(
                    SITE_VCPU_STUCK,
                    calls=tuple(calls),
                    persistent_from=persistent_from,
                    probability=probability,
                    key=vcpu,
                    extra_burst_ns=extra_burst_ns,
                    note="stuck vCPU overrun",
                )
            ],
            seed=seed,
        )

    @classmethod
    def table_switch_failure(
        cls,
        calls: Sequence[int] = (1,),
        cpu: Optional[int] = None,
        corrupt: bool = True,
        seed: int = 0,
    ) -> "FaultPlan":
        """Table activations at those wraps fail (optionally corrupting)."""
        return cls(
            specs=[
                FaultSpec(
                    SITE_TABLE_SWITCH,
                    calls=tuple(calls),
                    cpu=cpu,
                    corrupt=corrupt,
                    note="table-switch failure",
                )
            ],
            seed=seed,
        )


#: CLI preset names accepted by ``tableau-repro chaos --fault-plan``.
RUNTIME_PRESETS = (
    "none",
    "lost-ipi",
    "delayed-ipi",
    "clock-skew",
    "timer-jitter",
    "stuck-vcpu",
    "table-corrupt",
    "chaos",
)


def runtime_preset(name: str, seed: int = 0) -> FaultPlan:
    """Build one of the named runtime chaos plans used by the CLI and CI.

    ``chaos`` combines every runtime failure mode at low, seeded
    probabilities plus a one-shot corrupting table-switch failure — the
    "as many scenarios as you can imagine" mix every experiment should
    survive.

    Core-targeted presets aim at the canonical 16-core machine
    (:func:`repro.topology.xeon_16core`), whose first guest cores are
    4 and 5 — cores 0-3 are reserved for dom0 and host no guest vCPUs,
    so faults pinned there would never bite.
    """
    if name == "none":
        return FaultPlan(seed=seed)
    if name == "lost-ipi":
        return FaultPlan.lost_ipi(cpu=4, persistent_from=1, seed=seed)
    if name == "delayed-ipi":
        return FaultPlan.delayed_ipi(delay_ns=2_000_000, seed=seed)
    if name == "clock-skew":
        return FaultPlan.clock_skew(skew_ns=500_000, cpu=5, seed=seed)
    if name == "timer-jitter":
        return FaultPlan.timer_jitter(delay_ns=200_000, probability=0.05, seed=seed)
    if name == "stuck-vcpu":
        return FaultPlan.stuck_vcpu(probability=0.02, seed=seed)
    if name == "table-corrupt":
        return FaultPlan.table_switch_failure(calls=(1,), cpu=4, seed=seed)
    if name == "chaos":
        return FaultPlan(
            specs=[
                FaultSpec(SITE_IPI_LOST, probability=0.02, note="chaos: lost IPI"),
                FaultSpec(
                    SITE_IPI_DELAY,
                    probability=0.05,
                    delay_ns=1_000_000,
                    note="chaos: delayed IPI",
                ),
                FaultSpec(
                    SITE_CLOCK_SKEW, key="cpu5", skew_ns=250_000, note="chaos: skew"
                ),
                FaultSpec(
                    SITE_TIMER_JITTER,
                    probability=0.02,
                    delay_ns=100_000,
                    note="chaos: timer jitter",
                ),
                FaultSpec(
                    SITE_VCPU_STUCK,
                    probability=0.01,
                    extra_burst_ns=2_000_000,
                    note="chaos: stuck vCPU",
                ),
                FaultSpec(
                    SITE_TABLE_SWITCH,
                    calls=(1,),
                    cpu=4,
                    corrupt=True,
                    note="chaos: corrupt switch",
                ),
            ],
            seed=seed,
        )
    raise ConfigurationError(
        f"unknown fault plan {name!r} (choose from {', '.join(RUNTIME_PRESETS)})"
    )


def corrupt_payload(payload: bytes) -> bytes:
    """Deterministically damage a serialized table.

    Flips the first byte (part of the format magic), so hypervisor-side
    validation is guaranteed to reject the payload with
    :class:`repro.errors.TableFormatError` — the corruption is detected,
    never silently installed.
    """
    if not payload:
        return payload
    return bytes([payload[0] ^ 0xFF]) + payload[1:]
