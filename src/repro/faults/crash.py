"""Seeded crash plans: *when* a crashpoint kills the process.

:mod:`repro.crashpoints` declares the *where* — named points in the
control path that consult :func:`repro.crashpoints.crashpoint`.  This
module supplies the *when*: a :class:`CrashPlan` rides the existing
:class:`~repro.faults.plan.FaultPlan` machinery (per-site invocation
counters, 1-based ``calls`` indices, ``persistent_from``, seeded
probabilistic firing), so crash schedules compose exactly like every
other fault in the suite and are bit-reproducible for a given seed.

A plan is armed process-wide with
:func:`repro.crashpoints.crashes_armed`::

    plan = CrashPlan.at(CRASH_SERVICE_FLUSH_POST_PUSH, call=3)
    with crashes_armed(plan):
        run_service(..., journal=journal)   # raises SimulatedCrash

Because the plan's invocation counters persist across the crash, the
*same* plan object can stay armed through recovery: a transient
``calls=(3,)`` spec has already fired, so the recovery replay — which
re-consults the same sites from the beginning — runs to completion.
Multi-index (``calls=(3, 5)``) or ``persistent_from`` specs crash the
recovery too, which is how the double-crash tests are built.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.crashpoints import (
    CRASH_JOURNAL_TORN_APPEND,
    CRASH_PLANCACHE_PRE_RENAME,
    CRASH_SERVICE_ADMIT,
    CRASH_SERVICE_COMMIT,
    CRASH_SERVICE_FLUSH_POST_PUSH,
    CRASH_SERVICE_FLUSH_PRE_PUSH,
    SimulatedCrash,
    is_registered,
    known_crashpoints,
)
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, FaultSpec, InjectedFault

#: Crashpoints a journaled service run consults (the crashpoint-sweep
#: axis: every one of these must yield byte-identical recovery).
#: ``daemon.replan.mid-retry`` is absent because the service daemon has
#: no hypercall attached — it is exercised by the daemon's own tests.
SERVICE_CRASHPOINTS = (
    CRASH_SERVICE_ADMIT,
    CRASH_SERVICE_FLUSH_PRE_PUSH,
    CRASH_SERVICE_FLUSH_POST_PUSH,
    CRASH_SERVICE_COMMIT,
    CRASH_JOURNAL_TORN_APPEND,
    CRASH_PLANCACHE_PRE_RENAME,
)


class CrashPlan:
    """A seeded, deterministic schedule of simulated process deaths.

    Args:
        specs: :class:`~repro.faults.plan.FaultSpec` rules whose
            ``site`` is a registered crashpoint name.
        seed: Seed for the underlying plan's RNG (probabilistic rules).
        strict: Reject specs naming unregistered crashpoints (typo
            guard); pass ``False`` for ad-hoc private points.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        seed: int = 0,
        strict: bool = True,
    ) -> None:
        if strict:
            for spec in specs:
                if not is_registered(spec.site):
                    known = ", ".join(known_crashpoints())
                    raise ConfigurationError(
                        f"unknown crashpoint {spec.site!r} (known: {known})"
                    )
        self._plan = FaultPlan(specs=tuple(specs), seed=seed)

    # -- the consultation protocol (duck-typed by repro.crashpoints) ---

    def fires(self, point: str) -> Optional[int]:
        """Consult at ``point``; the 1-based call index when the process
        should die here, else ``None``.  Every call advances the
        per-point invocation counter."""
        spec = self._plan.fires(point)
        if spec is None:
            return None
        return self._plan.calls_seen(point)

    # -- introspection -------------------------------------------------

    def calls_seen(self, point: str) -> int:
        return self._plan.calls_seen(point)

    def has_point(self, point: str) -> bool:
        return self._plan.has_site(point)

    @property
    def injected(self) -> List[InjectedFault]:
        """Every crash the plan actually fired, in firing order."""
        return self._plan.injected

    @property
    def crashes_fired(self) -> int:
        return len(self._plan.injected)

    # -- convenience constructors --------------------------------------

    @classmethod
    def at(
        cls, point: str, call: int = 1, seed: int = 0, strict: bool = True
    ) -> "CrashPlan":
        """Die at the ``call``-th consultation of ``point``."""
        return cls(
            specs=[FaultSpec(site=point, calls=(call,), note="crash once")],
            seed=seed,
            strict=strict,
        )

    @classmethod
    def at_calls(
        cls,
        point: str,
        calls: Sequence[int],
        seed: int = 0,
        strict: bool = True,
    ) -> "CrashPlan":
        """Die at each listed consultation of ``point`` (double-crash
        schedules: the second index kills the recovery replay too)."""
        return cls(
            specs=[
                FaultSpec(site=point, calls=tuple(calls), note="crash series")
            ],
            seed=seed,
            strict=strict,
        )

    @classmethod
    def stochastic(
        cls, point: str, probability: float, seed: int = 0, strict: bool = True
    ) -> "CrashPlan":
        """Die at each consultation of ``point`` with seeded probability."""
        return cls(
            specs=[
                FaultSpec(
                    site=point, probability=probability, note="crash chaos"
                )
            ],
            seed=seed,
            strict=strict,
        )


def parse_crash_plan(text: str, seed: int = 0) -> CrashPlan:
    """Parse the CLI's ``--crash-plan`` syntax into a :class:`CrashPlan`.

    Comma-separated ``point[@call]`` entries; ``call`` is the 1-based
    consultation index (default 1) and a trailing ``+`` makes the rule
    persistent from that index::

        service.flush.post-push@3
        service.admit,plancache.write.pre-rename@2
        daemon.replan.mid-retry@1+
    """
    specs: List[FaultSpec] = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        point, _, suffix = entry.partition("@")
        if not suffix:
            specs.append(FaultSpec(site=point, calls=(1,)))
            continue
        persistent = suffix.endswith("+")
        if persistent:
            suffix = suffix[:-1]
        try:
            call = int(suffix)
        except ValueError:
            raise ConfigurationError(
                f"bad crash-plan entry {entry!r}: expected point[@call[+]]"
            )
        if persistent:
            specs.append(FaultSpec(site=point, persistent_from=call))
        else:
            specs.append(FaultSpec(site=point, calls=(call,)))
    if not specs:
        raise ConfigurationError("empty crash plan")
    return CrashPlan(specs=specs, seed=seed)


__all__ = [
    "CrashPlan",
    "SERVICE_CRASHPOINTS",
    "SimulatedCrash",
    "parse_crash_plan",
]
