"""Fault injection and failure-recovery auditing for the control path.

This package is the crash-safety counterpart of :mod:`repro.xen`: a
seeded, deterministic :class:`FaultPlan` that the hypercall, planner
daemon, and toolstack consult at their decision points, plus an
:class:`InvariantAuditor` that proves no failure mode — injected or
organic — leaves the registry, the committed plan, and the installed
table disagreeing.  See EXPERIMENTS.md ("Fault injection") for usage.

:mod:`repro.faults.crash` extends the same machinery to *process
death*: a seeded :class:`CrashPlan` armed over the crashpoints declared
in :mod:`repro.crashpoints` raises :class:`SimulatedCrash` at real
decision points (post-journal-append, pre-rename, mid-retry), and the
journaled control plane must recover byte-identically.  See
EXPERIMENTS.md ("Crash recovery").
"""

from repro.crashpoints import SimulatedCrash, crashes_armed
from repro.faults.audit import InvariantAuditor
from repro.faults.crash import (
    SERVICE_CRASHPOINTS,
    CrashPlan,
    parse_crash_plan,
)
from repro.faults.plan import (
    CONTROL_SITES,
    KNOWN_SITES,
    RUNTIME_PRESETS,
    RUNTIME_SITES,
    SITE_ACTIVATION,
    SITE_CLOCK_SKEW,
    SITE_IPI_DELAY,
    SITE_IPI_LOST,
    SITE_PAYLOAD,
    SITE_PLAN,
    SITE_PUSH,
    SITE_TABLE_SWITCH,
    SITE_TIMER_JITTER,
    SITE_VCPU_STUCK,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_payload,
    runtime_preset,
)

__all__ = [
    "CONTROL_SITES",
    "CrashPlan",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InvariantAuditor",
    "KNOWN_SITES",
    "SERVICE_CRASHPOINTS",
    "SimulatedCrash",
    "RUNTIME_PRESETS",
    "RUNTIME_SITES",
    "SITE_ACTIVATION",
    "SITE_CLOCK_SKEW",
    "SITE_IPI_DELAY",
    "SITE_IPI_LOST",
    "SITE_PAYLOAD",
    "SITE_PLAN",
    "SITE_PUSH",
    "SITE_TABLE_SWITCH",
    "SITE_TIMER_JITTER",
    "SITE_VCPU_STUCK",
    "corrupt_payload",
    "crashes_armed",
    "parse_crash_plan",
    "runtime_preset",
]
