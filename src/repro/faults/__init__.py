"""Fault injection and failure-recovery auditing for the control path.

This package is the crash-safety counterpart of :mod:`repro.xen`: a
seeded, deterministic :class:`FaultPlan` that the hypercall, planner
daemon, and toolstack consult at their decision points, plus an
:class:`InvariantAuditor` that proves no failure mode — injected or
organic — leaves the registry, the committed plan, and the installed
table disagreeing.  See EXPERIMENTS.md ("Fault injection") for usage.
"""

from repro.faults.audit import InvariantAuditor
from repro.faults.plan import (
    CONTROL_SITES,
    KNOWN_SITES,
    RUNTIME_PRESETS,
    RUNTIME_SITES,
    SITE_ACTIVATION,
    SITE_CLOCK_SKEW,
    SITE_IPI_DELAY,
    SITE_IPI_LOST,
    SITE_PAYLOAD,
    SITE_PLAN,
    SITE_PUSH,
    SITE_TABLE_SWITCH,
    SITE_TIMER_JITTER,
    SITE_VCPU_STUCK,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_payload,
    runtime_preset,
)

__all__ = [
    "CONTROL_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InvariantAuditor",
    "KNOWN_SITES",
    "RUNTIME_PRESETS",
    "RUNTIME_SITES",
    "SITE_ACTIVATION",
    "SITE_CLOCK_SKEW",
    "SITE_IPI_DELAY",
    "SITE_IPI_LOST",
    "SITE_PAYLOAD",
    "SITE_PLAN",
    "SITE_PUSH",
    "SITE_TABLE_SWITCH",
    "SITE_TIMER_JITTER",
    "SITE_VCPU_STUCK",
    "corrupt_payload",
    "runtime_preset",
]
