"""Fault injection and failure-recovery auditing for the control path.

This package is the crash-safety counterpart of :mod:`repro.xen`: a
seeded, deterministic :class:`FaultPlan` that the hypercall, planner
daemon, and toolstack consult at their decision points, plus an
:class:`InvariantAuditor` that proves no failure mode — injected or
organic — leaves the registry, the committed plan, and the installed
table disagreeing.  See EXPERIMENTS.md ("Fault injection") for usage.
"""

from repro.faults.audit import InvariantAuditor
from repro.faults.plan import (
    KNOWN_SITES,
    SITE_ACTIVATION,
    SITE_PAYLOAD,
    SITE_PLAN,
    SITE_PUSH,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_payload,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InvariantAuditor",
    "KNOWN_SITES",
    "SITE_ACTIVATION",
    "SITE_PAYLOAD",
    "SITE_PLAN",
    "SITE_PUSH",
    "corrupt_payload",
]
