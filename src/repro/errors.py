"""Exception hierarchy shared across the Tableau reproduction.

All library errors derive from :class:`ReproError` so that callers can
catch a single base class at API boundaries while tests can assert on the
specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A user-supplied parameter is out of range or inconsistent."""


class AdmissionError(ReproError):
    """The requested VM set over-utilizes the machine (rejected up front).

    The paper treats over-utilization as a misconfiguration that the
    planner rejects before attempting table generation (Sec. 5).
    """


class LatencyInfeasibleError(ReproError):
    """No candidate period can satisfy a vCPU's latency goal.

    Raised when ``2 * (1 - U) * T > L`` for even the smallest candidate
    period (100 us), i.e., the latency goal is tighter than the dispatcher
    can enforce given scheduling-overhead-driven granularity limits.
    """


class PlanningError(ReproError):
    """Table generation failed.

    The paper's three-stage progression (partitioning, semi-partitioning,
    localized optimal scheduling) guarantees this never happens for
    feasible inputs; this error therefore indicates either an internal
    invariant violation or an infeasible input that slipped past
    admission control.
    """


class TableFormatError(ReproError):
    """A serialized scheduling table is malformed or has a bad magic/version."""


class TableDeltaMismatchError(TableFormatError):
    """A delta push does not apply to the hypervisor's staged table.

    Raised when the delta's base token names a different table
    generation than the one currently staged/serving (another push got
    in between, or no table has been pushed at all), or when the delta's
    geometry (table length, core set) disagrees with the base.  The
    daemon treats this as a signal to fall back to a full-table push —
    unlike its parent :class:`TableFormatError`, it is *not* a
    deterministic payload rejection.
    """


class TablePushError(ReproError):
    """The table-push hypercall failed before the table was staged.

    Covers transport-level failures (dom0 <-> hypervisor) and hypervisor-
    side rejections other than format validation.  A push failure never
    disturbs the currently installed table: the hypervisor keeps serving
    the last good table and the daemon may retry (Sec. 6's contract that
    a rejected census leaves running guests untouched).
    """


class JournalError(ReproError):
    """A service journal file is unusable (bad magic/version).

    Note the asymmetry with torn *tails*: a journal whose header is
    valid but whose last record is incomplete is healed silently on
    open (crash-consistent appends make that an expected state), while
    a bad header means the file was never a journal — refusing loudly
    beats replaying garbage.
    """


class RecoveryError(ReproError):
    """Journal replay diverged from the journaled history.

    Raised when a replayed flush window commits with counters different
    from the journal's commit marker — the deterministic rebuild no
    longer matches what the crashed process durably recorded, so the
    recovered state cannot be trusted.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class InvariantViolation(SimulationError):
    """The runtime invariant auditor found control-plane state divergence.

    Raised (in strict mode) when the installed table, the committed
    census, and the hypercall's staged/retired accounting disagree —
    i.e., exactly the inconsistencies a failed lifecycle operation must
    never leave behind.
    """
