"""Reproduction report generator: the paper's claims, checked live.

Runs a scaled-down version of every headline claim and renders a
pass/fail checklist — the one-command answer to "does this reproduction
actually reproduce?".  Used by ``tableau-repro report`` and by the
final integration test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from repro.core import MS, Planner, candidate_periods, make_vm
from repro.experiments import (
    PAPER_TABLE1,
    intrinsic_latency,
    measure_overheads,
    measure_point,
    run_web_load,
)
from repro.topology import xeon_16core
from repro.workloads import KIB, MIB


@dataclass
class Claim:
    """One checked claim: description, paper value, measured value."""

    description: str
    paper: str
    measured: str
    passed: bool


def _claim(description: str, paper: str, measured: str, passed: bool) -> Claim:
    return Claim(description, paper, measured, passed)


def check_planner_claims() -> List[Claim]:
    claims: List[Claim] = []
    periods = candidate_periods()
    claims.append(
        _claim(
            "186 candidate periods above 100 us",
            "186",
            str(len(periods)),
            len(periods) == 186,
        )
    )
    plan = Planner(xeon_16core()).plan(
        [make_vm(f"vm{i:02d}", 0.25, 20 * MS) for i in range(48)]
    )
    task = plan.task_of("vm00.vcpu0")
    claims.append(
        _claim(
            "25%/20ms vCPU maps to ~3.2ms budget / ~13ms period",
            "3.2 ms / 13 ms",
            f"{task.cost / MS:.2f} ms / {task.period / MS:.2f} ms",
            3.0 * MS < task.cost < 3.4 * MS and 12 * MS < task.period < 14 * MS,
        )
    )
    blackout = plan.table.max_blackout_ns("vm00.vcpu0")
    claims.append(
        _claim(
            "worst-case blackout within the 20 ms latency goal",
            "<= 20 ms",
            f"{blackout / MS:.2f} ms",
            blackout <= 20 * MS,
        )
    )
    point = measure_point(176, latency_ms=1)
    claims.append(
        _claim(
            "176-VM / 1 ms table generated under 2 s",
            "< 2 s",
            f"{point.generation_s:.2f} s",
            point.generation_s < 2.0,
        )
    )
    claims.append(
        _claim(
            "worst table size about 1 MiB",
            "<= 1.2 MiB",
            f"{point.table_mib:.2f} MiB",
            point.table_mib < 1.3,
        )
    )
    return claims


def check_runtime_claims(duration_s: float = 0.5) -> List[Claim]:
    claims: List[Claim] = []
    tableau = measure_overheads("tableau", duration_s=duration_s)
    credit = measure_overheads("credit", duration_s=duration_s)
    ratio = credit.schedule_us / tableau.schedule_us
    claims.append(
        _claim(
            "Tableau schedule op ~5.6x cheaper than Credit (Table 1)",
            "5.6x",
            f"{ratio:.1f}x",
            ratio > 4.0,
        )
    )
    expected = PAPER_TABLE1["tableau"]
    claims.append(
        _claim(
            "Tableau overheads match Table 1",
            f"{expected['schedule']:.2f}/{expected['wakeup']:.2f}/"
            f"{expected['migrate']:.2f} us",
            f"{tableau.schedule_us:.2f}/{tableau.wakeup_us:.2f}/"
            f"{tableau.migrate_us:.2f} us",
            abs(tableau.schedule_us - expected["schedule"]) < 0.5,
        )
    )
    delay = intrinsic_latency("tableau", True, "io", duration_s=duration_s)
    claims.append(
        _claim(
            "Tableau max scheduling delay bounded by the table (Fig. 5)",
            "~10 ms",
            f"{delay.max_delay_ms:.2f} ms",
            delay.max_delay_ms <= 10.5,
        )
    )
    return claims


def check_throughput_claims(duration_s: float = 1.0) -> List[Claim]:
    claims: List[Claim] = []
    result = run_web_load(
        "tableau", 1_600, KIB, capped=True, background="io", duration_s=duration_s
    )
    claims.append(
        _claim(
            "Tableau sustains ~1,600 req/s at 1 KiB with flat p99 (Fig. 7)",
            "1,600 req/s, p99 <= table bound",
            f"{result.point.achieved_rate:.0f} req/s, "
            f"p99 {result.point.latency.p99_ms:.1f} ms",
            result.point.achieved_rate > 1_500
            and result.point.latency.p99_ms < 15,
        )
    )
    credit_1m = run_web_load(
        "credit", 100, MIB, capped=True, background="io", duration_s=duration_s
    )
    tableau_1m = run_web_load(
        "tableau", 100, MIB, capped=True, background="io", duration_s=duration_s
    )
    claims.append(
        _claim(
            "capped 1 MiB: Credit's p99 beats rigid Tableau (Fig. 7 g-i)",
            "Credit < Tableau",
            f"{credit_1m.point.latency.p99_ms:.1f} vs "
            f"{tableau_1m.point.latency.p99_ms:.1f} ms",
            credit_1m.point.latency.p99_ms < tableau_1m.point.latency.p99_ms,
        )
    )
    return claims


def generate_report(duration_s: float = 0.5) -> str:
    """Run every claim check and render the pass/fail checklist."""
    started = time.perf_counter()
    claims: List[Claim] = []
    claims.extend(check_planner_claims())
    claims.extend(check_runtime_claims(duration_s))
    claims.extend(check_throughput_claims(max(duration_s, 1.0)))

    lines = ["Tableau reproduction — claim checklist", "=" * 72]
    for claim in claims:
        marker = "PASS" if claim.passed else "FAIL"
        lines.append(f"[{marker}] {claim.description}")
        lines.append(f"       paper: {claim.paper}   measured: {claim.measured}")
    passed = sum(1 for c in claims if c.passed)
    lines.append("=" * 72)
    lines.append(
        f"{passed}/{len(claims)} claims reproduced "
        f"({time.perf_counter() - started:.1f} s wall time)"
    )
    return "\n".join(lines)
