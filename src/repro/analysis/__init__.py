"""Analysis helpers: tidy-data exporters and the claim-checklist report."""

from repro.analysis.report import Claim, generate_report
from repro.analysis.series import (
    delay_rows,
    overhead_rows,
    ping_rows,
    scaling_rows,
    throughput_rows,
    to_csv,
    write_csv,
)

__all__ = [
    "Claim",
    "delay_rows",
    "generate_report",
    "overhead_rows",
    "ping_rows",
    "scaling_rows",
    "throughput_rows",
    "to_csv",
    "write_csv",
]
