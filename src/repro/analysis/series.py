"""Tidy-data exporters for the reproduced figures.

Turns experiment results into flat row dictionaries and CSV files so the
paper's figures can be re-plotted with any external tool.  Keeping the
library plotting-free avoids a heavyweight dependency while making every
series trivially consumable (pandas, gnuplot, spreadsheets).
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Sequence

from repro.experiments.delay import DelayResult, PingResult
from repro.experiments.overheads import OverheadRow
from repro.experiments.planner_scaling import ScalingPoint
from repro.metrics import ThroughputCurve

Row = Dict[str, object]


def overhead_rows(
    rows: Sequence[OverheadRow], machine: str = "16core"
) -> List[Row]:
    """Table 1/2 as tidy rows: one row per (scheduler, operation)."""
    out: List[Row] = []
    for row in rows:
        for operation, value in row.as_dict().items():
            out.append(
                {
                    "machine": machine,
                    "scheduler": row.scheduler,
                    "operation": operation,
                    "mean_us": value,
                }
            )
    return out


def scaling_rows(points: Sequence[ScalingPoint]) -> List[Row]:
    """Figs. 3/4 as tidy rows."""
    return [
        {
            "num_vms": p.num_vms,
            "latency_ms": p.latency_ms,
            "generation_s": p.generation_s,
            "table_mib": p.table_mib,
        }
        for p in points
    ]


def delay_rows(results: Sequence[DelayResult]) -> List[Row]:
    """Fig. 5 as tidy rows."""
    return [
        {
            "scheduler": r.scheduler,
            "capped": r.capped,
            "background": r.background,
            "max_delay_ms": r.max_delay_ms,
            "mean_delay_ms": r.mean_delay_ms,
        }
        for r in results
    ]


def ping_rows(results: Sequence[PingResult]) -> List[Row]:
    """Fig. 6 as tidy rows."""
    return [
        {
            "scheduler": r.scheduler,
            "capped": r.capped,
            "background": r.background,
            "avg_ms": r.avg_ms,
            "max_ms": r.max_ms,
            "samples": r.summary.count,
        }
        for r in results
    ]


def throughput_rows(
    curves: Sequence[ThroughputCurve],
    capped: bool,
    size_bytes: int,
    background: str,
) -> List[Row]:
    """Figs. 7/8 as tidy rows: one row per operating point."""
    out: List[Row] = []
    for curve in curves:
        for offered, achieved, mean_ms, p99_ms, max_ms in curve.rows():
            out.append(
                {
                    "scheduler": curve.label,
                    "capped": capped,
                    "background": background,
                    "size_bytes": size_bytes,
                    "offered_rps": offered,
                    "achieved_rps": achieved,
                    "mean_ms": mean_ms,
                    "p99_ms": p99_ms,
                    "max_ms": max_ms,
                }
            )
    return out


def to_csv(rows: Iterable[Row]) -> str:
    """Render tidy rows as a CSV string (header from the first row)."""
    rows = list(rows)
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def write_csv(rows: Iterable[Row], path: str) -> int:
    """Write tidy rows to ``path``; returns the number of data rows."""
    rows = list(rows)
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(rows))
    return len(rows)
