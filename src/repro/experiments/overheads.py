"""Scheduler-overhead microbenchmark (Tables 1 and 2 of the paper).

Runs the I/O-intensive stress scenario under each scheduler and reports
the mean cost of the three traced operations (schedule, wakeup,
migrate), exactly as the paper's Sec. 7.2 tables do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.scenarios import build_scenario
from repro.sim.tracing import OP_MIGRATE, OP_SCHEDULE, OP_WAKEUP
from repro.topology import Topology
from repro.workloads import IoLoop

#: Paper values (us) for the 16-core machine (Table 1).
PAPER_TABLE1 = {
    "credit": {"schedule": 8.08, "wakeup": 2.12, "migrate": 0.32},
    "credit2": {"schedule": 3.51, "wakeup": 5.19, "migrate": 5.55},
    "rtds": {"schedule": 2.86, "wakeup": 3.90, "migrate": 9.42},
    "tableau": {"schedule": 1.43, "wakeup": 1.06, "migrate": 0.43},
}

#: Paper values (us) for the 48-core machine (Table 2).
PAPER_TABLE2 = {
    "credit": {"schedule": 16.40, "wakeup": 7.07, "migrate": 0.42},
    "credit2": {"schedule": 4.70, "wakeup": 5.61, "migrate": 18.19},
    "rtds": {"schedule": 4.39, "wakeup": 19.16, "migrate": 168.62},
    "tableau": {"schedule": 2.49, "wakeup": 1.82, "migrate": 0.66},
}


@dataclass
class OverheadRow:
    scheduler: str
    schedule_us: float
    wakeup_us: float
    migrate_us: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "schedule": self.schedule_us,
            "wakeup": self.wakeup_us,
            "migrate": self.migrate_us,
        }


def measure_overheads(
    scheduler: str,
    topology: Optional[Topology] = None,
    duration_s: float = 1.0,
    seed: int = 42,
) -> OverheadRow:
    """Mean operation costs for one scheduler under the I/O stress load.

    Credit2 cannot cap, so it runs uncapped; the others run capped —
    matching how the paper's scenario matrix covers all four.
    """
    capped = scheduler != "credit2"
    scenario = build_scenario(
        scheduler,
        vantage_workload=IoLoop(),
        capped=capped,
        background="io",
        topology=topology,
        seed=seed,
    )
    scenario.run_seconds(duration_s)
    tracer = scenario.machine.tracer
    return OverheadRow(
        scheduler=scheduler,
        schedule_us=tracer.mean_us(OP_SCHEDULE),
        wakeup_us=tracer.mean_us(OP_WAKEUP),
        migrate_us=tracer.mean_us(OP_MIGRATE),
    )


def overhead_table(
    topology: Optional[Topology] = None,
    duration_s: float = 1.0,
    schedulers: Optional[List[str]] = None,
) -> List[OverheadRow]:
    """Reproduce a full overhead table (Table 1 or Table 2)."""
    names = schedulers if schedulers is not None else list(PAPER_TABLE1)
    return [measure_overheads(name, topology, duration_s) for name in names]


def format_table(rows: List[OverheadRow], paper: Dict[str, Dict[str, float]]) -> str:
    """Render measured-vs-paper rows the way the paper's tables read."""
    lines = [
        f"{'':10s} {'Schedule':>18s} {'Wakeup':>18s} {'Migrate':>18s}",
        f"{'':10s} {'meas':>8s} {'paper':>9s} {'meas':>8s} {'paper':>9s} "
        f"{'meas':>8s} {'paper':>9s}",
    ]
    for row in rows:
        expected = paper.get(row.scheduler, {})
        lines.append(
            f"{row.scheduler:10s} "
            f"{row.schedule_us:8.2f} {expected.get('schedule', 0):9.2f} "
            f"{row.wakeup_us:8.2f} {expected.get('wakeup', 0):9.2f} "
            f"{row.migrate_us:8.2f} {expected.get('migrate', 0):9.2f}"
        )
    return "\n".join(lines)
