"""Scheduling-delay experiments (Figs. 5 and 6 of the paper).

Two probes measure the same phenomenon from different angles:

* ``intrinsic_latency`` — redis-cli's CPU-bound loop inside the vantage
  VM (Fig. 5): the largest observed gap in its own execution is the
  scheduling delay the VM scheduler inflicted.
* ``ping_latency`` — externally visible wake-up latency (Fig. 6): the
  round-trip time of randomly spaced echo requests, dominated by how
  quickly the scheduler dispatches the woken vCPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.params import seconds_to_ns
from repro.experiments.scenarios import build_scenario, schedulers_for
from repro.metrics import LatencySummary, summarize_ns
from repro.topology import Topology
from repro.workloads import IntrinsicLatencyProbe, PingResponder, run_ping_load

MS = 1_000_000


@dataclass
class DelayResult:
    scheduler: str
    capped: bool
    background: str
    max_delay_ms: float
    mean_delay_ms: float


@dataclass
class PingResult:
    scheduler: str
    capped: bool
    background: str
    summary: LatencySummary

    @property
    def avg_ms(self) -> float:
        return self.summary.mean_ms

    @property
    def max_ms(self) -> float:
        return self.summary.max_ms


def intrinsic_latency(
    scheduler: str,
    capped: bool,
    background: str,
    duration_s: float = 2.0,
    topology: Optional[Topology] = None,
    seed: int = 42,
    plan=None,
) -> DelayResult:
    """Fig. 5: max scheduling delay seen by a CPU-bound vantage VM."""
    probe = IntrinsicLatencyProbe()
    scenario = build_scenario(
        scheduler,
        vantage_workload=probe,
        capped=capped,
        background=background,
        topology=topology,
        seed=seed,
        plan=plan,
    )
    scenario.run_seconds(duration_s)
    return DelayResult(
        scheduler=scheduler,
        capped=capped,
        background=background,
        max_delay_ms=probe.max_gap_ns / MS,
        mean_delay_ms=probe.mean_gap_ns / MS,
    )


def ping_latency(
    scheduler: str,
    capped: bool,
    background: str,
    duration_s: float = 2.0,
    pings_per_thread: int = 200,
    threads: int = 8,
    max_spacing_ns: Optional[int] = None,
    topology: Optional[Topology] = None,
    seed: int = 42,
    plan=None,
) -> PingResult:
    """Fig. 6: average and maximum ping round-trip to the vantage VM.

    The paper sends 8 x 5,000 pings spaced uniformly in [0, 200 ms]
    over a long run; scaled-down runs shrink the spacing so the probe
    density per simulated second stays comparable.
    """
    responder = PingResponder()
    scenario = build_scenario(
        scheduler,
        vantage_workload=responder,
        capped=capped,
        background=background,
        topology=topology,
        seed=seed,
        plan=plan,
    )
    if max_spacing_ns is None:
        # Spread each thread's pings uniformly over the whole run;
        # convert once, divide in integer space (time-lossy-div-ns).
        max_spacing_ns = max(1, seconds_to_ns(duration_s) // pings_per_thread)
    run_ping_load(
        scenario.machine,
        responder,
        threads=threads,
        pings_per_thread=pings_per_thread,
        max_spacing_ns=max_spacing_ns,
    )
    scenario.run_seconds(duration_s)
    return PingResult(
        scheduler=scheduler,
        capped=capped,
        background=background,
        summary=summarize_ns(responder.latencies_ns),
    )


def delay_matrix(
    kind: str = "intrinsic",
    duration_s: float = 2.0,
    backgrounds: Optional[List[str]] = None,
    topology: Optional[Topology] = None,
) -> List:
    """Run the full Fig. 5/6 matrix: scheduler x capped x background."""
    results = []
    bgs = backgrounds if backgrounds is not None else ["none", "io", "cpu"]
    for capped in (True, False):
        plans: Dict[bool, object] = {}
        for scheduler in schedulers_for(capped):
            for background in bgs:
                if kind == "intrinsic":
                    results.append(
                        intrinsic_latency(
                            scheduler, capped, background, duration_s, topology
                        )
                    )
                else:
                    results.append(
                        ping_latency(
                            scheduler, capped, background, duration_s,
                            topology=topology,
                        )
                    )
    return results
