"""Planner scalability experiments (Figs. 3 and 4 of the paper).

Measures table-generation time and serialized table size as the number
of VMs grows, on the 48-core topology with four cores reserved for dom0
and up to four VMs per remaining core — the exact setup of Sec. 7.1.
All VMs share one of four latency goals (1, 30, 60, 100 ms).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import MS, Planner, PlanStore, make_vm
from repro.topology import Topology, xeon_48core

#: The four latency goals plotted in Figs. 3 and 4.
LATENCY_GOALS_MS = (1, 30, 60, 100)

#: Paper bounds: generation never exceeded 2 s; tables stayed under
#: 1.2 MiB (only the 1 ms curve is visibly above the rest).
PAPER_MAX_GENERATION_S = 2.0
PAPER_MAX_TABLE_MIB = 1.2


@dataclass
class ScalingPoint:
    num_vms: int
    latency_ms: int
    generation_s: float
    table_bytes: int
    #: True when a PlanStore served the table instead of the planner
    #: (generation_s then measures the cache lookup, not planning).
    cache_hit: bool = False

    @property
    def table_mib(self) -> float:
        return self.table_bytes / (1024 * 1024)


def measure_point(
    num_vms: int,
    latency_ms: int,
    topology: Optional[Topology] = None,
    repetitions: int = 1,
    store: Optional[PlanStore] = None,
) -> ScalingPoint:
    """Plan one census and report (best-of-N) generation time and size.

    With ``store``, planning goes through the content-addressed
    :class:`PlanStore`: the first repetition may miss (and populate the
    store), later repetitions and re-runs hit.  Before the store was
    wired in, every call re-planned the identical census from scratch.
    """
    topo = topology if topology is not None else xeon_48core()
    utilization = len(topo.guest_cores) / max(num_vms, len(topo.guest_cores))
    vms = [
        make_vm(f"vm{i:03d}", min(0.25, utilization), latency_ms * MS)
        for i in range(num_vms)
    ]
    planner = Planner(topo)
    best = float("inf")
    result = None
    hit = False
    for _ in range(repetitions):
        started = time.perf_counter()
        if store is not None:
            result = store.plan(planner, vms)
            hit = hit or result.stats.plan_cache_hit
        else:
            result = planner.plan(vms)
        best = min(best, time.perf_counter() - started)
    return ScalingPoint(
        num_vms=num_vms,
        latency_ms=latency_ms,
        generation_s=best,
        table_bytes=result.stats.table_bytes,
        cache_hit=hit,
    )


def scaling_curve(
    latency_ms: int,
    vm_counts: Optional[Sequence[int]] = None,
    topology: Optional[Topology] = None,
    repetitions: int = 1,
    store: Optional[PlanStore] = None,
) -> List[ScalingPoint]:
    """One Fig. 3/4 curve: sweep the VM count for a fixed latency goal."""
    topo = topology if topology is not None else xeon_48core()
    if vm_counts is None:
        per_core = len(topo.guest_cores)
        vm_counts = [per_core, per_core * 2, per_core * 3, per_core * 4]
    return [
        measure_point(count, latency_ms, topo, repetitions, store=store)
        for count in vm_counts
    ]


def full_sweep(
    topology: Optional[Topology] = None,
    vm_counts: Optional[Sequence[int]] = None,
    repetitions: int = 1,
    store: Optional[PlanStore] = None,
) -> List[ScalingPoint]:
    """All four curves of Figs. 3 and 4."""
    points: List[ScalingPoint] = []
    for latency_ms in LATENCY_GOALS_MS:
        points.extend(
            scaling_curve(latency_ms, vm_counts, topology, repetitions, store=store)
        )
    return points


def format_sweep(points: List[ScalingPoint]) -> str:
    lines = [f"{'VMs':>5s} {'L (ms)':>7s} {'gen (s)':>9s} {'size (MiB)':>11s}"]
    for p in sorted(points, key=lambda p: (p.latency_ms, p.num_vms)):
        lines.append(
            f"{p.num_vms:5d} {p.latency_ms:7d} {p.generation_s:9.3f} "
            f"{p.table_mib:11.3f}"
        )
    return "\n".join(lines)
