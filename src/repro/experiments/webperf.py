"""nginx HTTPS throughput-vs-latency experiments (Figs. 7 and 8).

For each (scheduler, capping, background, file size) cell, sweep the
offered request rate and record the achieved throughput plus the
mean / p99 / max latency triple — one curve per scheduler, exactly the
axes of the paper's Figs. 7 and 8.  The SLA-aware peak throughput
(Sec. 7.4's headline metric) falls out of each curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.scenarios import build_scenario
from repro.metrics import OperatingPoint, ThroughputCurve
from repro.topology import Topology
from repro.workloads import KIB, MIB, VirtualNic, WebServerWorkload, Wrk2Client

#: File sizes the paper serves (first/second/third row of Fig. 7).
FILE_SIZES = {"1KiB": KIB, "100KiB": 100 * KIB, "1MiB": MIB}

#: The paper's SLA example: 99th-percentile latency of at most 100 ms.
SLA_P99_NS = 100_000_000


@dataclass
class WebRunResult:
    """One operating point plus context."""

    scheduler: str
    capped: bool
    background: str
    size_bytes: int
    point: OperatingPoint
    nic_utilization: float
    l2_share: Optional[float] = None


def run_web_load(
    scheduler: str,
    rate_per_s: float,
    size_bytes: int,
    capped: bool = True,
    background: str = "io",
    duration_s: float = 2.0,
    topology: Optional[Topology] = None,
    seed: int = 42,
    plan=None,
    tracer=None,
) -> WebRunResult:
    """One cell at one offered rate: run, measure, summarize."""
    nic = VirtualNic()
    server = WebServerWorkload(nic=nic)
    scenario = build_scenario(
        scheduler,
        vantage_workload=server,
        capped=capped,
        background=background,
        topology=topology,
        seed=seed,
        plan=plan,
        tracer=tracer,
    )
    duration_ns = int(duration_s * 1e9)
    client = Wrk2Client(scenario.machine, server, rate_per_s, size_bytes, duration_ns)
    client.start()
    # Run past the load window so in-flight requests drain.
    scenario.machine.run(duration_ns + int(0.5e9))
    point = OperatingPoint(
        offered_rate=rate_per_s,
        achieved_rate=client.achieved_throughput(duration_ns),
        latency=client.summary(),
    )
    l2_share = None
    if tracer is not None and tracer.keep_dispatches:
        l2_share = tracer.level2_share("vm00.vcpu0")
    return WebRunResult(
        scheduler=scheduler,
        capped=capped,
        background=background,
        size_bytes=size_bytes,
        point=point,
        nic_utilization=nic.utilization(duration_ns),
        l2_share=l2_share,
    )


def sweep_rates(
    scheduler: str,
    rates: Sequence[float],
    size_bytes: int,
    capped: bool = True,
    background: str = "io",
    duration_s: float = 2.0,
    topology: Optional[Topology] = None,
    seed: int = 42,
    plan=None,
) -> ThroughputCurve:
    """A full throughput-latency curve for one scheduler/config."""
    curve = ThroughputCurve(label=scheduler, points=[])
    for rate in rates:
        result = run_web_load(
            scheduler,
            rate,
            size_bytes,
            capped=capped,
            background=background,
            duration_s=duration_s,
            topology=topology,
            seed=seed,
            plan=plan,
        )
        curve.add(result.point)
    return curve


def default_rates(size_bytes: int, capped: bool) -> List[float]:
    """Offered-rate grids sized to bracket each configuration's knee.

    Derived from the paper's curves: ~1,600 req/s peak at 1 KiB, several
    hundred at 100 KiB, tens at 1 MiB.
    """
    if size_bytes <= 4 * KIB:
        grid = [200, 400, 600, 800, 1_000, 1_200, 1_400, 1_600, 1_800, 2_000]
    elif size_bytes <= 256 * KIB:
        grid = [100, 200, 300, 400, 500, 600, 700, 800, 900, 1_000]
    else:
        grid = [10, 20, 30, 40, 50, 60, 80, 100, 120]
    return [float(rate) for rate in grid]
