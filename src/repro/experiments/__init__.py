"""Experiment harness: one module per paper table/figure family.

``scenarios`` builds the evaluation matrix's machines; ``overheads``
reproduces Tables 1-2; ``delay`` reproduces Figs. 5-6; ``webperf``
reproduces Figs. 7-8; ``planner_scaling`` reproduces Figs. 3-4.
"""

from repro.experiments.delay import (
    DelayResult,
    PingResult,
    delay_matrix,
    intrinsic_latency,
    ping_latency,
)
from repro.experiments.overheads import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    OverheadRow,
    format_table,
    measure_overheads,
    overhead_table,
)
from repro.experiments.planner_scaling import (
    LATENCY_GOALS_MS,
    ScalingPoint,
    format_sweep,
    full_sweep,
    measure_point,
    scaling_curve,
)
from repro.experiments.scenarios import (
    BACKGROUNDS,
    SCHEDULERS,
    VM_LATENCY_NS,
    VM_UTILIZATION,
    VMS_PER_CORE,
    Scenario,
    build_scenario,
    make_scheduler,
    plan_for,
    schedulers_for,
)
from repro.experiments.webperf import (
    FILE_SIZES,
    SLA_P99_NS,
    WebRunResult,
    default_rates,
    run_web_load,
    sweep_rates,
)

__all__ = [
    "BACKGROUNDS",
    "DelayResult",
    "FILE_SIZES",
    "LATENCY_GOALS_MS",
    "OverheadRow",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PingResult",
    "SCHEDULERS",
    "SLA_P99_NS",
    "ScalingPoint",
    "Scenario",
    "VMS_PER_CORE",
    "VM_LATENCY_NS",
    "VM_UTILIZATION",
    "WebRunResult",
    "build_scenario",
    "default_rates",
    "delay_matrix",
    "format_sweep",
    "format_table",
    "full_sweep",
    "intrinsic_latency",
    "make_scheduler",
    "measure_overheads",
    "measure_point",
    "overhead_table",
    "ping_latency",
    "plan_for",
    "run_web_load",
    "scaling_curve",
    "schedulers_for",
    "sweep_rates",
]
