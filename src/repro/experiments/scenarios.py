"""Scenario builders for the paper's evaluation matrix (Sec. 7.2).

Every experiment in the paper shares one setup: four single-vCPU VMs
per guest core at 25% utilization each, a 20 ms latency goal for
Tableau (matching Credit's effective replenishment cadence with a 5 ms
timeslice), RTDS configured with the same (budget, period) the Tableau
planner derives, and a distinguished *vantage VM* that receives no
special treatment.  Scenarios vary along three axes:

* scheduler: tableau | credit | credit2 | rtds,
* capping: capped (hard reservation) vs uncapped (spare cycles allowed),
* background: none | io | cpu (stress-like workloads in all other VMs).

This module turns that matrix into ready-to-run :class:`Machine`
instances so tests, benchmarks, and examples stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core import MS, Planner, PlanResult, PlanStore, make_vm, plan_key
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.faults import FaultPlan
from repro.schedulers import (
    Credit2Scheduler,
    CreditScheduler,
    RtdsScheduler,
    Scheduler,
    TableauScheduler,
)
from repro.sim import ENGINES, ArrayMachine, Machine, Tracer, VCpu, Workload
from repro.topology import Topology, xeon_16core
from repro.workloads import CpuHog, IoLoop

SCHEDULERS = ("tableau", "credit", "credit2", "rtds")
BACKGROUNDS = ("none", "io", "cpu")

#: The evaluation's per-VM parameters.
VM_UTILIZATION = 0.25
VM_LATENCY_NS = 20 * MS
VMS_PER_CORE = 4


@dataclass
class Scenario:
    """A fully assembled experiment: machine, vantage vCPU, plan.

    Attributes:
        machine: Ready to ``run()``.
        vantage: The measured vCPU (``vm00.vcpu0``).
        plan: The Tableau plan for this VM census (available for all
            schedulers, since RTDS borrows its parameters).
        scheduler_name: Which policy is installed.
    """

    machine: Machine
    vantage: VCpu
    plan: PlanResult
    scheduler_name: str
    capped: bool
    background: str
    engine: str = "object"

    def run_seconds(self, seconds: float) -> None:
        self.machine.run(int(seconds * 1e9))


#: Process-local memo for :func:`plan_for`.  Every scenario builder and
#: benchmark funnels through ``plan_for``; before this memo each call
#: re-planned an identical ``(topology, num_vms, capped)`` census from
#: scratch.  Keyed by the same exact-input fingerprint the on-disk
#: :class:`PlanStore` uses, so hits are guaranteed bit-identical.
_PLAN_MEMO: Dict[str, PlanResult] = {}

#: Cumulative memo hits (exposed for tests and campaign stats).
plan_for_cache_hits = 0


def reset_plan_memo() -> None:
    """Drop the process-local plan memo (bench/test hook).

    The perf harness uses this to emulate the pre-cache execution path,
    where every experiment re-planned its census from scratch.
    """
    _PLAN_MEMO.clear()


def plan_for(
    topology: Topology,
    num_vms: int,
    capped: bool,
    store: Optional[PlanStore] = None,
    latency_ns: int = VM_LATENCY_NS,
) -> PlanResult:
    """The Tableau plan for the paper's uniform high-density census.

    Identical requests are served from a process-local memo (and, when
    ``store`` is given, from the on-disk :class:`PlanStore`, which also
    receives fresh results for future runs).  The returned plan's
    ``stats.plan_cache_hit`` records whether planning work was skipped.
    ``latency_ns`` tightens or relaxes every VM's latency goal (the
    paper's default is 20 ms; Fig. 3's hardest curve uses 1 ms).
    """
    global plan_for_cache_hits
    vms = [
        make_vm(f"vm{i:02d}", VM_UTILIZATION, latency_ns, capped=capped)
        for i in range(num_vms)
    ]
    planner = Planner(topology)
    key = plan_key(planner, vms)
    memoized = _PLAN_MEMO.get(key)
    if memoized is not None:
        plan_for_cache_hits += 1
        memoized.stats.plan_cache_hit = True
        return memoized
    result = store.plan(planner, vms) if store is not None else planner.plan(vms)
    _PLAN_MEMO[key] = result
    return result


def make_scheduler(
    name: str,
    plan: PlanResult,
    capped: bool,
    topology: Topology,
) -> Scheduler:
    """Instantiate a scheduler configured exactly as in Sec. 7.2."""
    if name == "tableau":
        return TableauScheduler(plan.table)
    if name == "credit":
        caps = (
            {vcpu: VM_UTILIZATION for vcpu in plan.vcpus} if capped else None
        )
        return CreditScheduler(caps=caps)
    if name == "credit2":
        if capped:
            raise ConfigurationError(
                "Credit2 has no cap mechanism (the paper evaluates it "
                "only in uncapped scenarios)"
            )
        return Credit2Scheduler()
    if name == "rtds":
        if not capped:
            raise ConfigurationError(
                "RTDS enforces budgets strictly (capped-only in the paper)"
            )
        return RtdsScheduler(
            {name_: (t.cost, t.period) for name_, t in plan.tasks.items()}
        )
    raise ConfigurationError(f"unknown scheduler {name!r}")


def background_workload(kind: str, rng_hint: int) -> Workload:
    """One background VM's workload: stress-like I/O or cache thrash."""
    if kind == "io":
        return IoLoop()
    if kind == "cpu":
        return CpuHog()
    if kind == "none":
        # Even "idle" VMs occasionally need CPU for system processes
        # (Sec. 7.3 uses this to explain Credit's capped-idle latency);
        # a sparse I/O loop models housekeeping timers.
        return IoLoop(compute_ns=100_000, io_ns=50_000_000, jitter=0.5)
    raise ConfigurationError(f"unknown background {kind!r}")


def build_scenario(
    scheduler: str,
    vantage_workload: Workload,
    capped: bool = True,
    background: str = "io",
    topology: Optional[Topology] = None,
    num_vms: Optional[int] = None,
    seed: int = 42,
    tracer: Optional[Tracer] = None,
    plan: Optional[PlanResult] = None,
    store: Optional[PlanStore] = None,
    faults: Optional["FaultPlan"] = None,
    latency_ns: int = VM_LATENCY_NS,
    engine: str = "object",
) -> Scenario:
    """Assemble one cell of the evaluation matrix.

    Args:
        scheduler: One of :data:`SCHEDULERS`.
        vantage_workload: The measured workload, installed in
            ``vm00.vcpu0`` (the vantage VM).
        capped: Whether VMs are held to their reservations.
        background: Workload of the other VMs (:data:`BACKGROUNDS`).
        topology: Defaults to the paper's 16-core machine.
        num_vms: Defaults to four per guest core.
        seed: Simulation RNG seed.
        tracer: Optional tracer (e.g., with dispatch records enabled).
        plan: Reuse a previously computed plan for this census.
        store: On-disk :class:`PlanStore` consulted when ``plan`` is
            not given (campaign shards share one across processes).
        faults: Optional runtime fault plan armed on the machine
            (campaign fault/health-preset cells).
        latency_ns: Per-VM latency goal for the generated plan
            (ignored when ``plan`` is given).
        engine: Dispatch backend, one of :data:`repro.sim.ENGINES` —
            ``"object"`` (default) or ``"array"`` (batched table
            playback; bit-identical traces, higher events/s).
    """
    if scheduler not in SCHEDULERS:
        raise ConfigurationError(f"unknown scheduler {scheduler!r}")
    if background not in BACKGROUNDS:
        raise ConfigurationError(f"unknown background {background!r}")
    if engine not in ENGINES:
        raise ConfigurationError(f"unknown engine {engine!r}")
    topo = topology if topology is not None else xeon_16core()
    count = num_vms if num_vms is not None else VMS_PER_CORE * len(topo.guest_cores)
    if plan is None:
        plan = plan_for(topo, count, capped, store=store, latency_ns=latency_ns)

    sched = make_scheduler(scheduler, plan, capped, topo)
    machine_cls = ArrayMachine if engine == "array" else Machine
    machine = machine_cls(topo, sched, seed=seed, tracer=tracer, faults=faults)
    vantage = machine.add_vcpu(
        VCpu("vm00.vcpu0", vantage_workload, capped=capped)
    )
    for i in range(1, count):
        machine.add_vcpu(
            VCpu(
                f"vm{i:02d}.vcpu0",
                background_workload(background, i),
                capped=capped,
            )
        )
    return Scenario(
        machine=machine,
        vantage=vantage,
        plan=plan,
        scheduler_name=scheduler,
        capped=capped,
        background=background,
        engine=engine,
    )


def schedulers_for(capped: bool) -> List[str]:
    """The schedulers the paper compares in a given capping mode.

    Capped: Credit, RTDS, Tableau.  Uncapped: Credit, Credit2, Tableau.
    """
    return ["credit", "rtds", "tableau"] if capped else ["credit", "credit2", "tableau"]
