"""Scenario builders for the paper's evaluation matrix (Sec. 7.2).

Every experiment in the paper shares one setup: four single-vCPU VMs
per guest core at 25% utilization each, a 20 ms latency goal for
Tableau (matching Credit's effective replenishment cadence with a 5 ms
timeslice), RTDS configured with the same (budget, period) the Tableau
planner derives, and a distinguished *vantage VM* that receives no
special treatment.  Scenarios vary along three axes:

* scheduler: tableau | credit | credit2 | rtds,
* capping: capped (hard reservation) vs uncapped (spare cycles allowed),
* background: none | io | cpu (stress-like workloads in all other VMs).

This module turns that matrix into ready-to-run :class:`Machine`
instances so tests, benchmarks, and examples stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core import MS, Planner, PlanResult, make_vm
from repro.errors import ConfigurationError
from repro.schedulers import (
    Credit2Scheduler,
    CreditScheduler,
    RtdsScheduler,
    Scheduler,
    TableauScheduler,
)
from repro.sim import Machine, Tracer, VCpu, Workload
from repro.topology import Topology, xeon_16core
from repro.workloads import CpuHog, IoLoop

SCHEDULERS = ("tableau", "credit", "credit2", "rtds")
BACKGROUNDS = ("none", "io", "cpu")

#: The evaluation's per-VM parameters.
VM_UTILIZATION = 0.25
VM_LATENCY_NS = 20 * MS
VMS_PER_CORE = 4


@dataclass
class Scenario:
    """A fully assembled experiment: machine, vantage vCPU, plan.

    Attributes:
        machine: Ready to ``run()``.
        vantage: The measured vCPU (``vm00.vcpu0``).
        plan: The Tableau plan for this VM census (available for all
            schedulers, since RTDS borrows its parameters).
        scheduler_name: Which policy is installed.
    """

    machine: Machine
    vantage: VCpu
    plan: PlanResult
    scheduler_name: str
    capped: bool
    background: str

    def run_seconds(self, seconds: float) -> None:
        self.machine.run(int(seconds * 1e9))


def plan_for(topology: Topology, num_vms: int, capped: bool) -> PlanResult:
    """The Tableau plan for the paper's uniform high-density census."""
    vms = [
        make_vm(f"vm{i:02d}", VM_UTILIZATION, VM_LATENCY_NS, capped=capped)
        for i in range(num_vms)
    ]
    return Planner(topology).plan(vms)


def make_scheduler(
    name: str,
    plan: PlanResult,
    capped: bool,
    topology: Topology,
) -> Scheduler:
    """Instantiate a scheduler configured exactly as in Sec. 7.2."""
    if name == "tableau":
        return TableauScheduler(plan.table)
    if name == "credit":
        caps = (
            {vcpu: VM_UTILIZATION for vcpu in plan.vcpus} if capped else None
        )
        return CreditScheduler(caps=caps)
    if name == "credit2":
        if capped:
            raise ConfigurationError(
                "Credit2 has no cap mechanism (the paper evaluates it "
                "only in uncapped scenarios)"
            )
        return Credit2Scheduler()
    if name == "rtds":
        if not capped:
            raise ConfigurationError(
                "RTDS enforces budgets strictly (capped-only in the paper)"
            )
        return RtdsScheduler(
            {name_: (t.cost, t.period) for name_, t in plan.tasks.items()}
        )
    raise ConfigurationError(f"unknown scheduler {name!r}")


def background_workload(kind: str, rng_hint: int) -> Workload:
    """One background VM's workload: stress-like I/O or cache thrash."""
    if kind == "io":
        return IoLoop()
    if kind == "cpu":
        return CpuHog()
    if kind == "none":
        # Even "idle" VMs occasionally need CPU for system processes
        # (Sec. 7.3 uses this to explain Credit's capped-idle latency);
        # a sparse I/O loop models housekeeping timers.
        return IoLoop(compute_ns=100_000, io_ns=50_000_000, jitter=0.5)
    raise ConfigurationError(f"unknown background {kind!r}")


def build_scenario(
    scheduler: str,
    vantage_workload: Workload,
    capped: bool = True,
    background: str = "io",
    topology: Optional[Topology] = None,
    num_vms: Optional[int] = None,
    seed: int = 42,
    tracer: Optional[Tracer] = None,
    plan: Optional[PlanResult] = None,
) -> Scenario:
    """Assemble one cell of the evaluation matrix.

    Args:
        scheduler: One of :data:`SCHEDULERS`.
        vantage_workload: The measured workload, installed in
            ``vm00.vcpu0`` (the vantage VM).
        capped: Whether VMs are held to their reservations.
        background: Workload of the other VMs (:data:`BACKGROUNDS`).
        topology: Defaults to the paper's 16-core machine.
        num_vms: Defaults to four per guest core.
        seed: Simulation RNG seed.
        tracer: Optional tracer (e.g., with dispatch records enabled).
        plan: Reuse a previously computed plan for this census.
    """
    if scheduler not in SCHEDULERS:
        raise ConfigurationError(f"unknown scheduler {scheduler!r}")
    if background not in BACKGROUNDS:
        raise ConfigurationError(f"unknown background {background!r}")
    topo = topology if topology is not None else xeon_16core()
    count = num_vms if num_vms is not None else VMS_PER_CORE * len(topo.guest_cores)
    if plan is None:
        plan = plan_for(topo, count, capped)

    sched = make_scheduler(scheduler, plan, capped, topo)
    machine = Machine(topo, sched, seed=seed, tracer=tracer)
    vantage = machine.add_vcpu(
        VCpu("vm00.vcpu0", vantage_workload, capped=capped)
    )
    for i in range(1, count):
        machine.add_vcpu(
            VCpu(
                f"vm{i:02d}.vcpu0",
                background_workload(background, i),
                capped=capped,
            )
        )
    return Scenario(
        machine=machine,
        vantage=vantage,
        plan=plan,
        scheduler_name=scheduler,
        capped=capped,
        background=background,
    )


def schedulers_for(capped: bool) -> List[str]:
    """The schedulers the paper compares in a given capping mode.

    Capped: Credit, RTDS, Tableau.  Uncapped: Credit, Credit2, Tableau.
    """
    return ["credit", "rtds", "tableau"] if capped else ["credit", "credit2", "tableau"]
