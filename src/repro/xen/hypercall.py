"""The planner -> hypervisor table-push interface (Sec. 6).

The userspace planner compiles a table to the binary format and pushes
it via a hypercall; the hypervisor validates it and stages it behind the
per-core ``next_table`` pointers.  To keep the dispatcher hot path free
of locks, activation is *time-synchronized*: the staging always happens
"at a point in the middle of the next round of the current table", so no
core can race a table wrap while the pointer changes, and every core
flips at the same wrap (Sec. 6, "Lock-free table switches").

Two rounds after the switch the old table is garbage-collected; this
module tracks that bookkeeping so tests can assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.serialize import deserialize, serialize
from repro.core.table import SystemTable
from repro.errors import TableFormatError
from repro.schedulers.tableau import TableauScheduler


@dataclass
class PushRecord:
    """Audit record of one table push."""

    pushed_at_ns: int
    activation_cycle: int
    table_bytes: int


class TableHypercall:
    """The hypervisor end of the table-push hypercall.

    Args:
        scheduler: The in-hypervisor Tableau dispatcher.
        clock: Callable returning current time (defaults to the
            scheduler's machine clock once attached).
    """

    def __init__(self, scheduler: TableauScheduler) -> None:
        self.scheduler = scheduler
        self.pushes: List[PushRecord] = []
        self._retired_tables: List[SystemTable] = []

    def _now(self) -> int:
        machine = self.scheduler.machine
        return machine.engine.now if machine is not None else 0

    def push_table(self, payload: bytes) -> PushRecord:
        """Validate and stage a serialized table.

        The activation cycle is chosen so the pointer write lands mid-
        round: if the push happens in the first half of the current
        cycle, the table activates at the next wrap; pushes in the
        second half (too close to the wrap to be race-free) activate one
        cycle later.
        """
        table = deserialize(payload)  # raises TableFormatError when bad
        table.validate()
        now = self._now()
        length = self.scheduler.table.length_ns
        cycle = now // length
        phase = now % length
        # Mid-round rule: the pointer is written at the middle of the
        # *next* round, so the earliest safe activation is the wrap after
        # that write.
        activation_cycle = cycle + (2 if phase > length // 2 else 1)
        old = self.scheduler.table
        self.scheduler.install_table(table, activation_cycle)
        record = PushRecord(
            pushed_at_ns=now,
            activation_cycle=activation_cycle,
            table_bytes=len(payload),
        )
        self.pushes.append(record)
        self._retired_tables.append(old)
        # Garbage collection: anything older than two rounds before the
        # most recent activation can no longer be referenced by any core.
        if len(self._retired_tables) > 2:
            self._retired_tables = self._retired_tables[-2:]
        return record

    def push_system_table(self, table: SystemTable) -> PushRecord:
        """Serialize-then-push convenience used by the planner daemon."""
        return self.push_table(serialize(table))

    @property
    def retired_table_count(self) -> int:
        return len(self._retired_tables)
