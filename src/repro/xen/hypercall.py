"""The planner -> hypervisor table-push interface (Sec. 6).

The userspace planner compiles a table to the binary format and pushes
it via a hypercall; the hypervisor validates it and stages it behind the
per-core ``next_table`` pointers.  To keep the dispatcher hot path free
of locks, activation is *time-synchronized*: the staging always happens
"at a point in the middle of the next round of the current table", so no
core can race a table wrap while the pointer changes, and every core
flips at the same wrap (Sec. 6, "Lock-free table switches").

Table lifecycle bookkeeping is explicit so failure paths stay auditable:
a pushed table is **staged** until its activation wrap; the outgoing
table is retired only when the staged table actually activates (the
dispatcher reports the switch through ``on_table_switch``); a staged
table overwritten by a later push before it ever ran is retired as
*unactivated* and counted separately.  Two rounds after a switch the old
table is garbage-collected; collected tables are marked so the invariant
auditor can prove no core still references one.

A :class:`repro.faults.FaultPlan` may be installed to inject push
failures, in-flight payload corruption, and delayed activations at this
boundary — all failures fire *before* anything is staged, so a failed
push never disturbs the serving table.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from dataclasses import dataclass

from repro.core.edfcore import core_table_from_columns
from repro.core.serialize import (
    deserialize,
    deserialize_delta,
    serialize,
    serialize_delta,
)
from repro.core.table import SystemTable
from repro.errors import TableDeltaMismatchError, TableFormatError, TablePushError
from repro.faults.plan import SITE_ACTIVATION, SITE_PAYLOAD, SITE_PUSH, corrupt_payload
from repro.schedulers.tableau import TableauScheduler

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.faults.plan import FaultPlan


@dataclass
class PushRecord:
    """Audit record of one table push."""

    pushed_at_ns: int
    activation_cycle: int
    table_bytes: int
    delayed_cycles: int = 0  # extra cycles added by an activation fault
    delta: bool = False  # True when only changed per-core columns travelled


class TableHypercall:
    """The hypervisor end of the table-push hypercall.

    Args:
        scheduler: The in-hypervisor Tableau dispatcher.  The hypercall
            registers itself as the dispatcher's table-switch observer;
            a scheduler has at most one hypercall front end.
        faults: Optional fault plan consulted on every push.
    """

    def __init__(
        self, scheduler: TableauScheduler, faults: Optional["FaultPlan"] = None
    ) -> None:
        self.scheduler = scheduler
        self.faults = faults
        self.pushes: List[PushRecord] = []
        self._retired_tables: List[SystemTable] = []
        self._staged: Optional[SystemTable] = None
        self.activations = 0
        self.retired_unactivated = 0
        self.failed_activations = 0
        #: Monotonic push-generation token.  Bumped on every successful
        #: push; a delta payload names the generation it applies on top
        #: of, so a stale delta (another push got in between) is
        #: rejected instead of silently merging onto the wrong base.
        self.delta_generation = 0
        #: The most recently pushed table — the base a delta applies to.
        self._delta_base: Optional[SystemTable] = None
        scheduler.on_table_switch = self._on_table_switch
        scheduler.add_switch_failed_listener(self._on_switch_failed)

    def _now(self) -> int:
        machine = self.scheduler.machine
        return machine.engine.now if machine is not None else 0

    # ------------------------------------------------------------------
    # Table lifecycle accounting
    # ------------------------------------------------------------------

    def _on_table_switch(
        self, old: SystemTable, new: SystemTable, now: int
    ) -> None:
        """Dispatcher callback: the staged table just became active."""
        if new is self._staged:
            self._staged = None
            self.activations += 1
        self._retire(old)

    def _on_switch_failed(self, dropped: SystemTable, now: int) -> None:
        """Dispatcher callback: a staged table failed its activation wrap
        (runtime switch-fault injection) and was dropped.

        The table never served, but it must not vanish from the push
        accounting — it is retired under its own counter so the auditor
        can still prove every push is accounted for.
        """
        if dropped is self._staged:
            self._staged = None
        self.failed_activations += 1
        self._retire(dropped)

    def _retire(self, table: SystemTable) -> None:
        self._retired_tables.append(table)
        # Garbage collection: anything older than two rounds before the
        # most recent activation can no longer be referenced by any core.
        if len(self._retired_tables) > 2:
            for dropped in self._retired_tables[:-2]:
                dropped._gc_dropped = True
            self._retired_tables = self._retired_tables[-2:]

    @staticmethod
    def was_garbage_collected(table: SystemTable) -> bool:
        return getattr(table, "_gc_dropped", False)

    @property
    def staged_table(self) -> Optional[SystemTable]:
        """The pushed table (if any) not yet activated or overwritten."""
        return self._staged

    @property
    def retired_table_count(self) -> int:
        return len(self._retired_tables)

    # ------------------------------------------------------------------
    # The hypercall itself
    # ------------------------------------------------------------------

    def push_table(self, payload: bytes) -> PushRecord:
        """Validate and stage a serialized table.

        The activation cycle is chosen so the pointer write lands mid-
        round: if the push happens in the first half of the current
        cycle, the table activates at the next wrap; pushes in the
        second half (too close to the wrap to be race-free) activate one
        cycle later.  The cycle index and the wrap check both use the
        *currently serving* table's length, so the math stays consistent
        even when the staged table's ``length_ns`` differs.

        All failure exits happen before :meth:`TableauScheduler.
        install_table`: a rejected push leaves the serving table, the
        staged table, and all accounting untouched.
        """
        payload = self._consult_push_faults(payload)
        table = deserialize(payload)  # raises TableFormatError when bad
        table.validate()
        return self._stage(table, len(payload), delta=False)

    def push_table_delta(self, payload: bytes) -> PushRecord:
        """Validate and stage a delta payload (changed per-core columns).

        The delta is applied on top of the most recently pushed table:
        cores absent from the payload share that base table's
        ``CoreTable`` objects outright (zero-copy), cores present are
        rebuilt from their gap-free segment columns.  A delta whose base
        token does not name the current push generation — or whose
        geometry disagrees with the base — is rejected with
        :class:`TableDeltaMismatchError` *before* anything is staged;
        the daemon then falls back to a full push.  The assembled table
        passes the same full validation as a complete push.
        """
        payload = self._consult_push_faults(payload)
        length_ns, names, base_token, columns = deserialize_delta(payload)
        base = self._delta_base
        if base is None:
            raise TableDeltaMismatchError(
                "delta push with no previously pushed base table"
            )
        if base_token != self.delta_generation:
            raise TableDeltaMismatchError(
                f"delta base token {base_token} does not match push "
                f"generation {self.delta_generation}"
            )
        if length_ns != base.length_ns:
            raise TableDeltaMismatchError(
                f"delta length {length_ns} does not match base length "
                f"{base.length_ns}"
            )
        cores = dict(base.cores)
        for cpu, (ends, handles) in columns.items():
            if cpu not in cores:
                raise TableDeltaMismatchError(
                    f"delta for cpu {cpu} absent from the base table"
                )
            cores[cpu] = core_table_from_columns(
                cpu, length_ns, ends, handles, names
            )
        table = SystemTable(length_ns=length_ns, cores=cores)
        table.validate()
        return self._stage(table, len(payload), delta=True)

    def _consult_push_faults(self, payload: bytes) -> bytes:
        """Push-site fault injection, shared by full and delta pushes."""
        faults = self.faults
        if faults is not None:
            if faults.fires(SITE_PUSH) is not None:
                raise TablePushError("injected table-push failure")
            if faults.fires(SITE_PAYLOAD) is not None:
                payload = corrupt_payload(payload)
        return payload

    def _stage(self, table: SystemTable, payload_len: int, delta: bool) -> PushRecord:
        """Stage a validated table: activation math, retirement, record.

        The tail shared by :meth:`push_table` and
        :meth:`push_table_delta`; everything before this point is
        side-effect-free, so a rejected push never disturbs the serving
        table.
        """
        now = self._now()
        # The dispatcher checks the activation cycle against the length
        # of the table serving *at the wrap*; both sides use the current
        # table's length, never the staged table's.
        length = self.scheduler.table.length_ns
        cycle = now // length
        phase = now % length
        # Mid-round rule: the pointer is written at the middle of the
        # *next* round, so the earliest safe activation is the wrap after
        # that write.
        activation_cycle = cycle + (2 if phase > length // 2 else 1)
        delayed = 0
        if self.faults is not None:
            spec = self.faults.fires(SITE_ACTIVATION)
            if spec is not None:
                delayed = spec.delay_cycles
                activation_cycle += delayed
        if self._staged is not None:
            # Overwritten before its activation wrap: the staged table
            # never ran, but it must not vanish from the accounting.
            self._retire(self._staged)
            self.retired_unactivated += 1
            self._staged = None
        self.scheduler.install_table(table, activation_cycle)
        self._staged = table
        self.delta_generation += 1
        self._delta_base = table
        record = PushRecord(
            pushed_at_ns=now,
            activation_cycle=activation_cycle,
            table_bytes=payload_len,
            delayed_cycles=delayed,
            delta=delta,
        )
        self.pushes.append(record)
        return record

    def push_system_table(self, table: SystemTable) -> PushRecord:
        """Serialize-then-push convenience used by the planner daemon."""
        return self.push_table(serialize(table))

    def push_system_table_delta(
        self, table: SystemTable, changed_cores: List[int], base_token: int
    ) -> PushRecord:
        """Serialize-then-push convenience for the delta path."""
        return self.push_table_delta(
            serialize_delta(table, changed_cores, base_token)
        )
