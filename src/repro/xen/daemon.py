"""The Tableau planner daemon (userspace, dom0).

In the paper the planner is "a daemon in the userspace of dom0" written
in Python on SchedCAT (Sec. 6).  This module is that daemon: it owns the
current guest census, replans on any change, and pushes the compiled
table through the hypercall interface.  Its latency — the table
generation time of Fig. 3 — is what inflates VM provisioning
operations, so every replan is timed and recorded.

Replans are **transactional**: a replan either fully commits (plan
generated, table pushed and staged, ``current_plan`` and ``history``
updated together) or leaves every observable piece of daemon state as it
was — the hypervisor keeps serving the last good table, and the failed
episode is recorded in :class:`ReplanRecord` with a non-``committed``
status.  Transient push failures (:class:`~repro.errors.TablePushError`)
are retried with bounded exponential backoff before the episode is
declared failed; format rejections
(:class:`~repro.errors.TableFormatError`) are deterministic — the same
payload is rejected the same way every time — so they fail fast without
burning the retry budget, and a failed episode's backoffs are never
charged to provisioning latency.

The daemon is built to run forever: ``history`` and ``push_backoffs_ns``
are bounded rings (most recent episodes only) while the episode counters
(:attr:`total_replans`, :attr:`committed_replans`,
:attr:`failed_replans`, :attr:`total_push_backoff_ns`) are exact running
totals, so hours of service-mode churn cannot grow the control plane's
memory footprint.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, TYPE_CHECKING

from repro.core import METHOD_PARTITIONED, Planner, PlanResult, TableCache
from repro.core.params import VMSpec, flatten_vcpus
from repro.core.table import SystemTable
from repro.crashpoints import CRASH_DAEMON_MID_RETRY, crashpoint
from repro.errors import (
    PlanningError,
    ReproError,
    TableDeltaMismatchError,
    TableFormatError,
    TablePushError,
)
from repro.faults.plan import SITE_PLAN
from repro.topology import Topology
from repro.xen.hypercall import PushRecord, TableHypercall

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.plancache import PlanStore
    from repro.faults.plan import FaultPlan

#: Replan episode outcomes recorded in :attr:`ReplanRecord.status`.
STATUS_COMMITTED = "committed"
STATUS_PLAN_FAILED = "plan-failed"
STATUS_PUSH_FAILED = "push-failed"

#: Default size of the bounded episode/backoff rings.  Large enough for
#: any test or audit window, small enough that a persistent service
#: replanning every couple of simulated seconds stays memory-flat.
HISTORY_LIMIT = 512


@dataclass
class ReplanRecord:
    """One planning episode: why, how long, what came out.

    ``status`` distinguishes committed episodes from failed ones (which
    are kept in the history for auditing but never became the current
    plan); ``push_retries`` counts transient push failures absorbed
    before the final outcome.
    """

    reason: str
    num_vms: int
    generation_seconds: float
    method: str
    table_bytes: int
    push: Optional[PushRecord] = None
    status: str = STATUS_COMMITTED
    push_retries: int = 0
    error: str = ""

    @property
    def committed(self) -> bool:
        return self.status == STATUS_COMMITTED


class PlannerDaemon:
    """On-demand table generation for a changing VM census.

    Args:
        topology: The machine being managed.
        hypercall: Optional hypervisor interface; when present every
            replan is immediately compiled and pushed (the normal mode).
            Without it the daemon just plans (useful for dry-run
            admission checks and unit tests).
        cache: Reuse tables across same-shape censuses (Sec. 7.1's
            caching optimization) — a tier-based cloud hits this cache
            on almost every create/destroy.
        faults: Optional fault plan consulted before each planning pass
            (site ``planner.plan``); push-site faults are consulted by
            the hypercall itself.
        push_retries: How many times a transiently failed push is
            retried before the replan is declared failed.
        push_backoff_ns: Base backoff charged between push attempts;
            doubles per retry.  Committed episodes record their
            backoffs in :attr:`push_backoffs_ns` so callers can charge
            them to provisioning time; a failed episode's backoffs are
            dropped (the operation is failed, not slow).
        history_limit: Size of the bounded :attr:`history` /
            :attr:`push_backoffs_ns` rings.
        cache_capacity: In-memory shape-cache capacity when ``cache``
            is enabled.
        store: Optional on-disk :class:`~repro.core.plancache.PlanStore`
            backing the table cache (requires ``cache=True``), keyed by
            census shape so a restarted daemon starts warm.
        planner_kwargs: Forwarded to :class:`repro.core.Planner`.
    """

    def __init__(
        self,
        topology: Topology,
        hypercall: Optional[TableHypercall] = None,
        cache: bool = False,
        faults: Optional["FaultPlan"] = None,
        push_retries: int = 3,
        push_backoff_ns: int = 1_000_000,
        history_limit: int = HISTORY_LIMIT,
        cache_capacity: int = 64,
        store: Optional["PlanStore"] = None,
        **planner_kwargs,
    ) -> None:
        self.planner = Planner(topology, **planner_kwargs)
        self.hypercall = hypercall
        self.cache = (
            TableCache(self.planner, capacity=cache_capacity, store=store)
            if cache
            else None
        )
        self.faults = faults
        self.push_retries = push_retries
        self.push_backoff_ns = push_backoff_ns
        self.history_limit = history_limit
        #: Most recent backoff charges (committed episodes only).
        self.push_backoffs_ns: Deque[int] = deque(maxlen=history_limit)
        #: Most recent episodes; counters below stay exact across
        #: eviction from this ring.
        self.history: Deque[ReplanRecord] = deque(maxlen=history_limit)
        self._total_replans = 0
        self._committed_replans = 0
        self._failed_replans = 0
        #: Exact running sum of every backoff ever charged (committed
        #: episodes), immune to ring eviction.
        self.total_push_backoff_ns = 0
        self.current_plan: Optional[PlanResult] = None
        #: The last table successfully pushed, and the hypercall
        #: generation token it landed as — the base a delta push names.
        self._last_pushed_table: Optional[SystemTable] = None
        self._last_push_token = 0
        #: Push-path accounting: how often only changed per-core columns
        #: travelled, how often the whole table did, and how often a
        #: delta was bounced (stale base) and re-sent in full.
        self.delta_pushes = 0
        self.full_pushes = 0
        self.delta_fallbacks = 0
        #: Invoked as (result, record) right after a replan commits (new
        #: table safely staged).  The health supervisor uses it to learn
        #: that a clean table is on its way to the dispatcher.
        self.on_commit: Optional[
            Callable[[PlanResult, ReplanRecord], None]
        ] = None

    def replan(self, specs: List[VMSpec], reason: str) -> PlanResult:
        """Plan for ``specs``; push to the hypervisor when attached.

        Raises :class:`repro.errors.AdmissionError` (and every other
        planning- or push-phase error) *without* touching the currently
        installed table or ``current_plan`` — a failed VM creation must
        not degrade running guests.  The failed episode is appended to
        :attr:`history` with a descriptive status before the error
        propagates, so the control plane's audit log is complete even
        across crashes.
        """
        if self.faults is not None and self.faults.fires(SITE_PLAN) is not None:
            error = PlanningError("injected planner fault")
            self._record_failure(reason, specs, STATUS_PLAN_FAILED, error)
            raise error
        try:
            if self.cache is not None:
                result = self.cache.plan(flatten_vcpus(specs))
            else:
                result = self.planner.plan(specs)
        except ReproError as error:
            self._record_failure(reason, specs, STATUS_PLAN_FAILED, error)
            raise
        push = None
        retries = 0
        # Backoffs accumulate per episode and are only charged on
        # commit: a failed operation is reported failed, not slow.
        episode_backoffs: List[int] = []
        if self.hypercall is not None:
            while True:
                try:
                    push = self._push_result(result)
                    break
                except TableFormatError as error:
                    # Format rejections are deterministic — the same
                    # table serializes to the same (corrupt) payload —
                    # so retrying cannot succeed.  Fail fast with no
                    # backoff charge.
                    self._record_failure(
                        reason,
                        specs,
                        STATUS_PUSH_FAILED,
                        error,
                        result=result,
                        push_retries=retries,
                    )
                    raise
                except TablePushError as error:
                    if retries >= self.push_retries:
                        self._record_failure(
                            reason,
                            specs,
                            STATUS_PUSH_FAILED,
                            error,
                            result=result,
                            push_retries=retries,
                        )
                        raise
                    # Bounded exponential backoff; the simulated control
                    # plane records rather than sleeps the delay.
                    episode_backoffs.append(self.push_backoff_ns << retries)
                    retries += 1
                    # Dying mid-retry loses the whole episode: nothing
                    # was committed (backoffs are only charged on
                    # commit), so a rebuilt daemon that re-runs the
                    # episode from scratch matches exactly.
                    crashpoint(CRASH_DAEMON_MID_RETRY)
        # Commit point: all observable state flips together, only after
        # the new table is safely staged in the hypervisor.
        self.current_plan = result
        for backoff_ns in episode_backoffs:
            self.push_backoffs_ns.append(backoff_ns)
            self.total_push_backoff_ns += backoff_ns
        record = ReplanRecord(
            reason=reason,
            num_vms=len(specs),
            generation_seconds=result.stats.generation_seconds,
            method=result.stats.method,
            table_bytes=result.stats.table_bytes,
            push=push,
            status=STATUS_COMMITTED,
            push_retries=retries,
        )
        self._append(record)
        if self.on_commit is not None:
            self.on_commit(result, record)
        return result

    # ------------------------------------------------------------------
    # Push transport: delta when cheap, full otherwise
    # ------------------------------------------------------------------

    def _push_result(self, result: PlanResult) -> PushRecord:
        """Push ``result``'s table — as a per-core delta when that is
        both expressible and smaller than half the table.

        A bounced delta (:class:`TableDeltaMismatchError` — the
        hypervisor's base moved underneath us) is retried as a full
        push rather than failing the episode; any *other* format error
        propagates to the caller's fail-fast handling.  Exceptions
        leave ``_last_pushed_table`` untouched, so retry attempts
        re-evaluate delta eligibility against the real base.
        """
        hypercall = self.hypercall
        assert hypercall is not None
        table = result.table
        changed = self._changed_cores(table) if self._delta_eligible(result) else None
        # Worth a delta only when at most half the cores moved;
        # otherwise the full table is barely bigger and needs no base.
        if changed is not None and 2 * len(changed) <= len(table.cores):
            try:
                push = hypercall.push_system_table_delta(
                    table, changed, self._last_push_token
                )
            except TableDeltaMismatchError:
                self.delta_fallbacks += 1
            else:
                self.delta_pushes += 1
                self._note_pushed(table)
                return push
        push = hypercall.push_system_table(table)
        self.full_pushes += 1
        self._note_pushed(table)
        return push

    def _delta_eligible(self, result: PlanResult) -> bool:
        """Whether ``result`` may travel as a delta at all.

        Deltas are restricted to plain partitioned plans with peephole
        optimization off: split pieces (``#k`` names) and peephole
        rewrites couple cores through shared vCPUs, so a per-core diff
        no longer captures the full schedule change safely.
        """
        return (
            result.stats.method == METHOD_PARTITIONED
            and not self.planner.peephole
        )

    def _changed_cores(self, table: SystemTable) -> Optional[List[int]]:
        """Cores whose schedule differs from the last pushed table.

        Returns ``None`` when no delta base exists or the geometry
        (length, core set) changed — i.e. a delta is inexpressible.
        Structurally shared cores (delta replans reuse untouched
        ``CoreTable`` objects) are skipped by identity before falling
        back to an allocation-by-allocation comparison.
        """
        base = self._last_pushed_table
        if base is None:
            return None
        if base.length_ns != table.length_ns:
            return None
        if set(base.cores) != set(table.cores):
            return None
        changed: List[int] = []
        for cpu, core in table.cores.items():
            old = base.cores[cpu]
            if core is old:
                continue
            if core.allocations == old.allocations:
                continue
            changed.append(cpu)
        return changed

    def _note_pushed(self, table: SystemTable) -> None:
        assert self.hypercall is not None
        self._last_pushed_table = table
        self._last_push_token = self.hypercall.delta_generation

    def _append(self, record: ReplanRecord) -> None:
        """Ring append + exact counter update (the only history writer)."""
        self.history.append(record)
        self._total_replans += 1
        if record.committed:
            self._committed_replans += 1
        else:
            self._failed_replans += 1

    def _record_failure(
        self,
        reason: str,
        specs: List[VMSpec],
        status: str,
        error: Exception,
        result: Optional[PlanResult] = None,
        push_retries: int = 0,
    ) -> None:
        self._append(
            ReplanRecord(
                reason=reason,
                num_vms=len(specs),
                generation_seconds=(
                    result.stats.generation_seconds if result is not None else 0.0
                ),
                method=result.stats.method if result is not None else "none",
                table_bytes=result.stats.table_bytes if result is not None else 0,
                push=None,
                status=status,
                push_retries=push_retries,
                error=f"{type(error).__name__}: {error}",
            )
        )

    @property
    def last_generation_seconds(self) -> float:
        return self.history[-1].generation_seconds if self.history else 0.0

    @property
    def total_replans(self) -> int:
        """Exact episode count, independent of ring eviction."""
        return self._total_replans

    @property
    def committed_replans(self) -> int:
        return self._committed_replans

    @property
    def failed_replans(self) -> int:
        return self._failed_replans

    def rotate_table(self, specs: List[VMSpec]) -> PlanResult:
        """Periodic regeneration rotating the split victim (Sec. 7.5).

        For censuses requiring semi-partitioning, bumping the planner's
        rotation changes which equal-utilization vCPU pays the
        migration penalty, so the cost "evens out over time" as with
        the dynamic schedulers.  The bump only commits when the replan
        does: a failed rotation must not silently change which vCPU
        pays the penalty on the *next* successful replan.
        """
        self.planner.rotation += 1
        try:
            return self.replan(specs, reason="rotate split victim")
        except ReproError:
            self.planner.rotation -= 1
            raise
