"""The Tableau planner daemon (userspace, dom0).

In the paper the planner is "a daemon in the userspace of dom0" written
in Python on SchedCAT (Sec. 6).  This module is that daemon: it owns the
current guest census, replans on any change, and pushes the compiled
table through the hypercall interface.  Its latency — the table
generation time of Fig. 3 — is what inflates VM provisioning
operations, so every replan is timed and recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core import Planner, PlanResult, TableCache
from repro.core.params import VMSpec, flatten_vcpus
from repro.topology import Topology
from repro.xen.hypercall import PushRecord, TableHypercall


@dataclass
class ReplanRecord:
    """One planning episode: why, how long, what came out."""

    reason: str
    num_vms: int
    generation_seconds: float
    method: str
    table_bytes: int
    push: Optional[PushRecord] = None


class PlannerDaemon:
    """On-demand table generation for a changing VM census.

    Args:
        topology: The machine being managed.
        hypercall: Optional hypervisor interface; when present every
            replan is immediately compiled and pushed (the normal mode).
            Without it the daemon just plans (useful for dry-run
            admission checks and unit tests).
        cache: Reuse tables across same-shape censuses (Sec. 7.1's
            caching optimization) — a tier-based cloud hits this cache
            on almost every create/destroy.
        planner_kwargs: Forwarded to :class:`repro.core.Planner`.
    """

    def __init__(
        self,
        topology: Topology,
        hypercall: Optional[TableHypercall] = None,
        cache: bool = False,
        **planner_kwargs,
    ) -> None:
        self.planner = Planner(topology, **planner_kwargs)
        self.hypercall = hypercall
        self.cache = TableCache(self.planner) if cache else None
        self.history: List[ReplanRecord] = []
        self.current_plan: Optional[PlanResult] = None

    def replan(self, specs: List[VMSpec], reason: str) -> PlanResult:
        """Plan for ``specs``; push to the hypervisor when attached.

        Raises :class:`repro.errors.AdmissionError` for infeasible
        censuses *without* touching the currently installed table — a
        failed VM creation must not degrade running guests.
        """
        if self.cache is not None:
            result = self.cache.plan(flatten_vcpus(specs))
        else:
            result = self.planner.plan(specs)
        push = None
        if self.hypercall is not None:
            push = self.hypercall.push_system_table(result.table)
        self.current_plan = result
        self.history.append(
            ReplanRecord(
                reason=reason,
                num_vms=len(specs),
                generation_seconds=result.stats.generation_seconds,
                method=result.stats.method,
                table_bytes=result.stats.table_bytes,
                push=push,
            )
        )
        return result

    @property
    def last_generation_seconds(self) -> float:
        return self.history[-1].generation_seconds if self.history else 0.0

    @property
    def total_replans(self) -> int:
        return len(self.history)

    def rotate_table(self, specs: List[VMSpec]) -> PlanResult:
        """Periodic regeneration rotating the split victim (Sec. 7.5).

        For censuses requiring semi-partitioning, bumping the planner's
        rotation changes which equal-utilization vCPU pays the
        migration penalty, so the cost "evens out over time" as with
        the dynamic schedulers.
        """
        self.planner.rotation += 1
        return self.replan(specs, reason="rotate split victim")
