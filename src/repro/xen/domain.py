"""Domain (VM) lifecycle model for the Xen control-plane layer.

Mirrors the pieces of Xen's domain management that matter to Tableau:
domains are created by dom0's toolstack, have per-vCPU reservation
parameters, and their creation / teardown / reconfiguration are the
(infrequent) events that trigger replanning (Sec. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.params import DomainId, VCpuSpec, VMSpec, make_vm
from repro.errors import ConfigurationError


class DomainState(enum.Enum):
    CREATED = "created"  # admitted; table includes it; not yet booted
    RUNNING = "running"
    SHUTDOWN = "shutdown"


@dataclass
class Domain:
    """One guest domain and its scheduling parameters.

    ``domid`` follows Xen conventions (dom0 is the control domain and is
    never scheduled by the guest-facing planner — it owns reserved
    cores).
    """

    domid: DomainId
    spec: VMSpec
    state: DomainState = DomainState.CREATED
    created_at_ns: int = 0
    provision_delay_ns: int = 0  # extra latency added by planning

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def vcpus(self) -> List[VCpuSpec]:
        return list(self.spec.vcpus)

    @property
    def total_utilization(self) -> float:
        return self.spec.total_utilization

    def reconfigured(self, utilization: float, latency_ns: int) -> "Domain":
        """A copy of this domain with new uniform vCPU parameters."""
        new_spec = make_vm(
            self.spec.name,
            utilization,
            latency_ns,
            vcpu_count=len(self.spec.vcpus),
            capped=self.spec.vcpus[0].capped,
        )
        return Domain(
            domid=self.domid,
            spec=new_spec,
            state=self.state,
            created_at_ns=self.created_at_ns,
            provision_delay_ns=self.provision_delay_ns,
        )


class DomainRegistry:
    """dom0's view of all guest domains."""

    def __init__(self) -> None:
        self._domains: Dict[str, Domain] = {}
        self._next_domid = 1  # 0 is dom0

    def add(self, spec: VMSpec, now_ns: int = 0) -> Domain:
        if spec.name in self._domains:
            raise ConfigurationError(f"domain {spec.name!r} already exists")
        domain = Domain(
            domid=DomainId(self._next_domid), spec=spec, created_at_ns=now_ns
        )
        self._next_domid += 1
        self._domains[spec.name] = domain
        return domain

    def remove(self, name: str) -> Domain:
        try:
            domain = self._domains.pop(name)
        except KeyError:
            raise ConfigurationError(f"no such domain {name!r}") from None
        domain.state = DomainState.SHUTDOWN
        return domain

    def snapshot(self) -> Dict[str, Domain]:
        """A shallow copy of the registry for transactional rollback.

        Captures membership and iteration order (which feeds the
        planner's census order); the :class:`Domain` objects themselves
        are shared, so callers that mutate domain state must restore it
        separately.
        """
        return dict(self._domains)

    def restore(self, snapshot: Dict[str, Domain]) -> None:
        """Roll the registry back to a previously taken snapshot."""
        self._domains = dict(snapshot)

    def replace(self, domain: Domain) -> None:
        if domain.name not in self._domains:
            raise ConfigurationError(f"no such domain {domain.name!r}")
        self._domains[domain.name] = domain

    def get(self, name: str) -> Domain:
        try:
            return self._domains[name]
        except KeyError:
            raise ConfigurationError(f"no such domain {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._domains

    def __len__(self) -> int:
        return len(self._domains)

    @property
    def specs(self) -> List[VMSpec]:
        return [d.spec for d in self._domains.values()]

    @property
    def domains(self) -> List[Domain]:
        return list(self._domains.values())
