"""An ``xl``-like toolstack: VM lifecycle operations that trigger planning.

Ties the control-plane pieces together the way Fig. 1 of the paper draws
them: ``xl create`` / ``xl destroy`` / reconfiguration requests go to the
toolstack in dom0, which updates the domain registry, asks the planner
daemon for a new table, and (through the hypercall) stages it for a
race-free switch.  The planning latency is charged to the operation's
*provisioning time* — never to running guests (Sec. 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core import PlanResult
from repro.core.params import make_vm
from repro.errors import ReproError
from repro.topology import Topology
from repro.xen.daemon import PlannerDaemon
from repro.xen.domain import Domain, DomainRegistry, DomainState
from repro.xen.hypercall import TableHypercall

#: Baseline cost of domain construction in Xen (memory setup, device
#: model, etc.) — "VM creation under Xen already takes many seconds"
#: (Sec. 7.1); we charge a conservative fixed cost and add planning time.
XEN_CREATE_BASE_NS = 2_000_000_000
XEN_DESTROY_BASE_NS = 500_000_000


@dataclass
class ProvisioningReport:
    """What one lifecycle operation cost, split by cause."""

    operation: str
    domain: str
    base_ns: int
    planning_ns: int

    @property
    def total_ns(self) -> int:
        return self.base_ns + self.planning_ns

    @property
    def planning_share(self) -> float:
        return self.planning_ns / self.total_ns if self.total_ns else 0.0


class Toolstack:
    """dom0's VM management front end.

    Args:
        topology: Machine under management.
        hypercall: Hypervisor table interface (optional: planning-only
            mode when absent).
        planner_kwargs: Forwarded to the planner daemon.
    """

    def __init__(
        self,
        topology: Topology,
        hypercall: Optional[TableHypercall] = None,
        **planner_kwargs,
    ) -> None:
        self.topology = topology
        self.registry = DomainRegistry()
        self.daemon = PlannerDaemon(topology, hypercall, **planner_kwargs)
        self.reports: List[ProvisioningReport] = []

    # ------------------------------------------------------------------

    def create_vm(
        self,
        name: str,
        utilization: float,
        latency_ns: int,
        vcpu_count: int = 1,
        capped: bool = False,
    ) -> Domain:
        """``xl create``: admit, replan, stage the new table.

        On admission failure the domain is not created and the installed
        table is untouched.
        """
        spec = make_vm(name, utilization, latency_ns, vcpu_count, capped)
        candidate = self.registry.specs + [spec]
        plan = self.daemon.replan(candidate, reason=f"create {name}")
        domain = self.registry.add(spec)
        domain.state = DomainState.RUNNING
        domain.provision_delay_ns = int(
            self.daemon.last_generation_seconds * 1e9
        )
        self._report("create", name, XEN_CREATE_BASE_NS)
        return domain

    def destroy_vm(self, name: str) -> Domain:
        """``xl destroy``: remove and replan for the survivors.

        If the replan (or the table push) fails, the domain is restored
        — registry and installed table must never diverge, so a guest
        whose removal could not be planned keeps running under the last
        good table.
        """
        snapshot = self.registry.snapshot()
        prior_state = self.registry.get(name).state
        domain = self.registry.remove(name)
        try:
            self.daemon.replan(self.registry.specs, reason=f"destroy {name}")
        except ReproError:
            domain.state = prior_state
            self.registry.restore(snapshot)
            raise
        self._report("destroy", name, XEN_DESTROY_BASE_NS)
        return domain

    def reconfigure_vm(
        self, name: str, utilization: float, latency_ns: int
    ) -> Domain:
        """Change a running domain's reservation; replan; roll back the
        registry on *any* planning or push failure.

        Admission rejections, infeasible latency goals, planner crashes,
        and push failures all leave the old reservation committed — only
        a fully staged table may change what the registry claims is
        running.
        """
        old = self.registry.get(name)
        updated = old.reconfigured(utilization, latency_ns)
        self.registry.replace(updated)
        try:
            self.daemon.replan(self.registry.specs, reason=f"reconfigure {name}")
        except ReproError:
            self.registry.replace(old)
            raise
        self._report("reconfigure", name, 0)
        return updated

    # ------------------------------------------------------------------

    def _report(self, operation: str, domain: str, base_ns: int) -> None:
        planning_ns = int(self.daemon.last_generation_seconds * 1e9)
        self.reports.append(
            ProvisioningReport(
                operation=operation,
                domain=domain,
                base_ns=base_ns,
                planning_ns=planning_ns,
            )
        )

    @property
    def current_plan(self) -> Optional[PlanResult]:
        return self.daemon.current_plan

    def domain_count(self) -> int:
        return len(self.registry)
