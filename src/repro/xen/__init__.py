"""Model of the Xen control plane around Tableau (Fig. 1 of the paper).

dom0 hosts the toolstack and the planner daemon; new tables reach the
in-hypervisor dispatcher through a validated hypercall with
time-synchronized, lock-free activation.
"""

from repro.xen.daemon import (
    STATUS_COMMITTED,
    STATUS_PLAN_FAILED,
    STATUS_PUSH_FAILED,
    PlannerDaemon,
    ReplanRecord,
)
from repro.xen.domain import Domain, DomainRegistry, DomainState
from repro.xen.hypercall import PushRecord, TableHypercall
from repro.xen.toolstack import (
    XEN_CREATE_BASE_NS,
    XEN_DESTROY_BASE_NS,
    ProvisioningReport,
    Toolstack,
)

__all__ = [
    "Domain",
    "DomainRegistry",
    "DomainState",
    "PlannerDaemon",
    "ProvisioningReport",
    "PushRecord",
    "ReplanRecord",
    "STATUS_COMMITTED",
    "STATUS_PLAN_FAILED",
    "STATUS_PUSH_FAILED",
    "TableHypercall",
    "Toolstack",
    "XEN_CREATE_BASE_NS",
    "XEN_DESTROY_BASE_NS",
]
