"""The ``@hotpath``/``@coldpath`` markers for dispatch-path analysis.

Marking a function does nothing at runtime (the decorators return the
function unchanged after tagging it) — the markers exist for
:mod:`repro.lint`, whose ``hot-*`` rules ban per-call allocation
patterns (comprehensions, closures, f-strings, ``*args`` packing)
inside ``@hotpath`` bodies, and whose ``flow-hot-transitive`` pass
extends those rules to every function *reachable* from a ``@hotpath``
root through the project call graph.  The marked set is the paths whose
throughput the perf-regression harness (``benchmarks/hotpath.py``)
guards: ``TableauScheduler.pick_next`` (including the inlined L2
settle), ``SimEngine.run_until``, and the machine's resched/timer path.

``@coldpath`` is the escape hatch for the transitive pass: a function
that *is* called from hot code but only on deliberate slow paths — a
staged table switch, degraded-mode fallback, the array engine falling
back to the object engine — is marked cold, which cuts call-graph
traversal at its boundary (its body and everything only reachable
through it are exempt from the transitive allocation rules).  Marking
a function both ``@hotpath`` and ``@coldpath`` is a lint error.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


def hotpath(func: F) -> F:
    """Mark ``func`` as a hot path (lint-enforced, zero runtime cost)."""
    func.__repro_hotpath__ = True  # type: ignore[attr-defined]
    return func


def coldpath(func: F) -> F:
    """Mark ``func`` as a deliberate slow path reachable from hot code.

    The ``flow-hot-transitive`` lint pass stops traversing at functions
    carrying this marker, so allocation inside them is permitted even
    though a ``@hotpath`` root can reach them.  Use it for fallbacks
    that trade speed for generality (degraded dispatch, staged table
    switches, object-engine fallback) — never to silence a finding on
    code that actually runs per dispatch.
    """
    func.__repro_coldpath__ = True  # type: ignore[attr-defined]
    return func
