"""The ``@hotpath`` marker for dispatch-rate-critical functions.

Marking a function does nothing at runtime (the decorator returns the
function unchanged after tagging it) — the marker exists for
:mod:`repro.lint`, whose ``hot-*`` rules ban per-call allocation
patterns (comprehensions, closures, f-strings, ``*args`` packing)
inside marked bodies.  The marked set is the paths whose throughput the
perf-regression harness (``benchmarks/hotpath.py``) guards:
``TableauScheduler.pick_next`` (including the inlined L2 settle),
``SimEngine.run_until``, and the machine's resched/timer path.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


def hotpath(func: F) -> F:
    """Mark ``func`` as a hot path (lint-enforced, zero runtime cost)."""
    func.__repro_hotpath__ = True  # type: ignore[attr-defined]
    return func
