"""Named crashpoints: the process-death injection primitive.

A *crashpoint* is a named place in the control path where the process
may be killed mid-operation — after a journal append but before the
effects, between a temp-file write and its atomic rename, in the middle
of a push-retry loop.  Components declare their crashpoints here and
consult :func:`crashpoint` at the real decision point; a seeded
:class:`~repro.faults.crash.CrashPlan` armed via :func:`crashes_armed`
decides *which* consultation dies.

This module is a leaf (it imports nothing from :mod:`repro`), so even
the lowest layers — :mod:`repro.core.plancache`'s write path — can
consult crashpoints without depending on the fault-planning layer
above them.  The armed plan is duck-typed: anything with
``fires(point) -> Optional[int]`` works.

Two deliberate design points:

* :class:`SimulatedCrash` derives from :class:`BaseException`, **not**
  :class:`Exception` — a simulated ``kill -9`` must never be absorbed
  by the control plane's own error handling (``except ReproError`` in
  the replan path, ``except Exception`` in cache validation, the
  campaign runner's shard isolation).  It unwinds everything, exactly
  like process death.
* With no plan armed (the default everywhere), :func:`crashpoint` is a
  single global read and a return — the fault-free fingerprints are
  untouched.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

#: Crashpoints in the tenant-request path of
#: :class:`repro.service.control.SchedulerService`.
CRASH_SERVICE_ADMIT = "service.admit"
CRASH_SERVICE_FLUSH_PRE_PUSH = "service.flush.pre-push"
CRASH_SERVICE_FLUSH_POST_PUSH = "service.flush.post-push"
CRASH_SERVICE_COMMIT = "service.commit"

#: Crashpoint inside :meth:`repro.service.journal.ServiceJournal.append`
#: — dies after flushing *half* a record, manufacturing a real torn
#: tail for recovery to heal.
CRASH_JOURNAL_TORN_APPEND = "service.journal.torn-append"

#: Crashpoint inside the daemon's bounded push-retry loop
#: (:meth:`repro.xen.daemon.PlannerDaemon.replan`).
CRASH_DAEMON_MID_RETRY = "daemon.replan.mid-retry"

#: Crashpoint between the plan store's temp-file write and its atomic
#: ``os.replace`` (:meth:`repro.core.plancache.PlanStore.put`) — the
#: window that orphans a ``*.tmp.<pid>`` file.
CRASH_PLANCACHE_PRE_RENAME = "plancache.write.pre-rename"

#: Every crashpoint the shipped tree consults, in registration order.
CRASHPOINTS: Tuple[str, ...] = (
    CRASH_SERVICE_ADMIT,
    CRASH_SERVICE_FLUSH_PRE_PUSH,
    CRASH_SERVICE_FLUSH_POST_PUSH,
    CRASH_SERVICE_COMMIT,
    CRASH_JOURNAL_TORN_APPEND,
    CRASH_DAEMON_MID_RETRY,
    CRASH_PLANCACHE_PRE_RENAME,
)

_registered = set(CRASHPOINTS)


def register_crashpoint(point: str) -> str:
    """Register a private crashpoint name (experiments, tests).

    Returns the name so it can be used as a module constant:
    ``MY_POINT = register_crashpoint("experiment.step.pre-write")``.
    """
    _registered.add(point)
    return point


def known_crashpoints() -> Tuple[str, ...]:
    """All registered crashpoint names (built-in first, then sorted
    extensions)."""
    extras = sorted(_registered - set(CRASHPOINTS))
    return CRASHPOINTS + tuple(extras)


def is_registered(point: str) -> bool:
    return point in _registered


class SimulatedCrash(BaseException):
    """The process "died" at a crashpoint.

    Deliberately **not** a :class:`repro.errors.ReproError` (nor even an
    :class:`Exception`): simulated process death must unwind through
    every ``except ReproError`` / ``except Exception`` recovery path in
    the control plane, exactly as a real ``SIGKILL`` would bypass them.
    Only crash harnesses (tests, the ``serve`` CLI, the campaign
    ``crash-recovery`` probe) catch it, at their outermost boundary.
    """

    def __init__(self, point: str, call_index: int) -> None:
        super().__init__(f"simulated crash at {point} (call {call_index})")
        self.point = point
        self.call_index = call_index


#: The armed crash plan (duck-typed; ``None`` = crashes disabled).
_armed: Optional[object] = None


def arm(plan: Optional[object]) -> None:
    """Install ``plan`` as the process-wide crash plan (``None`` disarms)."""
    global _armed
    _armed = plan


def disarm() -> None:
    arm(None)


def armed_plan() -> Optional[object]:
    return _armed


@contextmanager
def crashes_armed(plan: Optional[object]) -> Iterator[Optional[object]]:
    """Arm ``plan`` for the duration of the block (``None`` is a no-op
    arming, so harnesses can wrap unconditionally); always restores the
    previously armed plan, even when a :class:`SimulatedCrash` unwinds."""
    global _armed
    previous = _armed
    _armed = plan
    try:
        yield plan
    finally:
        _armed = previous


def crashpoint(point: str) -> None:
    """Consult the armed plan at ``point``; die here if it says so.

    The fast path (no plan armed) is one global read — safe on any
    code path, including the planner's write path.
    """
    plan = _armed
    if plan is None:
        return
    index = plan.fires(point)  # type: ignore[attr-defined]
    if index is not None:
        raise SimulatedCrash(point, index)


def crashpoint_fires(point: str) -> Optional[int]:
    """Like :func:`crashpoint` but returns the firing call index instead
    of raising — for sites that must do partial damage (e.g. flush half
    a journal record) *before* dying."""
    plan = _armed
    if plan is None:
        return None
    return plan.fires(point)  # type: ignore[attr-defined]
