"""The service write-ahead log: crash-consistent tenant history.

:class:`ServiceJournal` is an append-only record of everything a
:class:`~repro.service.control.SchedulerService` needs to rebuild
itself after dying mid-run:

* **request records** — every submitted :class:`TenantRequest`
  (queries included: they consume RNG draws and move counters, so
  replay needs them), appended *before* the request takes effect (the
  WAL discipline), each carrying the churn generator's full RNG-state
  checkpoint so the post-recovery stream resumes exactly where the
  crashed one stopped;
* **commit markers** — one per committed flush window, snapshotting
  the service's running counters (daemon episode counters included) at
  the commit point; during recovery a replayed commit is verified
  against its marker, turning "deterministic replay" from an
  assumption into a checked invariant.

On-disk format: an 8-byte file header (``TJNL`` magic, ``u16``
version, ``u16`` reserved) followed by length-prefixed records —
``u32`` payload length, ``u32`` CRC-32 of the payload, then the
payload (canonical JSON, sorted keys).  Appends are flushed per
record, so the journal's durable prefix always ends on a record
boundary *except* when the process dies mid-append; :meth:`open`
detects that torn tail (bad length, bad CRC, short payload), truncates
it, and reports the healed byte count.  Idempotent appends — request
records deduplicated by ``seq``, commit markers by ``end_seq`` — make
recovery replay through the *same* journal safe: re-submitting a
journaled request is a no-op on disk (exactly-once, not
at-least-once).
"""

from __future__ import annotations

import base64
import json
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.crashpoints import (
    CRASH_JOURNAL_TORN_APPEND,
    SimulatedCrash,
    crashpoint_fires,
)
from repro.errors import JournalError
from repro.service.requests import TenantRequest

MAGIC = b"TJNL"

#: Bump when record semantics change; old journals are then refused
#: rather than misreplayed.
JOURNAL_VERSION = 1

_FILE_HEADER = struct.Struct("<4sHH")
_REC_HEADER = struct.Struct("<II")

#: Sanity bound on one record's payload; a length field beyond this is
#: torn-tail garbage, not a record.
_MAX_RECORD_BYTES = 1 << 24

#: Record kinds.
REC_REQUEST = "request"
REC_COMMIT = "commit"


def encode_rng_state(state: Tuple[object, ...]) -> str:
    """Compact, exact encoding of ``random.Random.getstate()``.

    The state is JSON (ints and an optional float survive exactly),
    zlib-compressed (624 Mersenne words squeeze well), base64-armored
    so it embeds in a JSON record.  No pickle: a journal must stay
    loadable by code that does not trust its bytes.
    """
    version, internal, gauss = state
    raw = json.dumps(
        [version, list(internal), gauss], separators=(",", ":")
    ).encode("ascii")
    return base64.b64encode(zlib.compress(raw, 6)).decode("ascii")


def decode_rng_state(blob: str) -> Tuple[object, ...]:
    raw = zlib.decompress(base64.b64decode(blob.encode("ascii")))
    version, internal, gauss = json.loads(raw)
    return (version, tuple(internal), gauss)


class ServiceJournal:
    """An append-only, CRC-checked WAL at ``path``.

    Opening an existing journal validates the header, loads every
    intact record, and truncates any torn tail in place (the healed
    byte count is kept in :attr:`healed_bytes`).  Opening a missing or
    empty file writes a fresh header.  The journal then stays open in
    append mode; every append is flushed before it returns, so the
    record is durable before its effects happen.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.records: List[Dict[str, object]] = []
        self.healed_bytes = 0
        self.appended = 0
        self._last_request_seq = -1
        self._commits: Dict[int, Dict[str, object]] = {}
        self._last_churn: Optional[Dict[str, object]] = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._load()
        # Append-only open: creates the file when missing, never
        # truncates an existing one (the atomic-write lint rule bans
        # mode "w" here on purpose — a journal is only ever appended).
        self._file = open(self.path, "ab")
        if self._file.tell() == 0:
            self._file.write(_FILE_HEADER.pack(MAGIC, JOURNAL_VERSION, 0))
            self._file.flush()

    # ------------------------------------------------------------------
    # Open / heal
    # ------------------------------------------------------------------

    def _load(self) -> None:
        try:
            data = self.path.read_bytes()
        except OSError:
            return
        if not data:
            return
        if len(data) < _FILE_HEADER.size:
            raise JournalError(f"{self.path}: shorter than a journal header")
        magic, version, _reserved = _FILE_HEADER.unpack_from(data)
        if magic != MAGIC:
            raise JournalError(f"{self.path}: bad journal magic {magic!r}")
        if version != JOURNAL_VERSION:
            raise JournalError(
                f"{self.path}: journal version {version} != "
                f"{JOURNAL_VERSION}"
            )
        offset = _FILE_HEADER.size
        good_end = offset
        size = len(data)
        while offset + _REC_HEADER.size <= size:
            length, crc = _REC_HEADER.unpack_from(data, offset)
            start = offset + _REC_HEADER.size
            end = start + length
            if length > _MAX_RECORD_BYTES or end > size:
                break
            payload = data[start:end]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                break
            try:
                record = json.loads(payload)
            except ValueError:
                break
            if not isinstance(record, dict):
                break
            self._index(record)
            good_end = end
            offset = end
        if good_end < size:
            # Torn tail: everything after the last intact record is a
            # partial append from the crash; truncate so the next
            # append lands on a record boundary.
            self.healed_bytes = size - good_end
            os.truncate(self.path, good_end)

    def _index(self, record: Dict[str, object]) -> None:
        self.records.append(record)
        kind = record.get("type")
        if kind == REC_REQUEST:
            seq = record.get("seq")
            if isinstance(seq, int) and seq > self._last_request_seq:
                self._last_request_seq = seq
            churn = record.get("churn")
            if isinstance(churn, dict):
                self._last_churn = churn
        elif kind == REC_COMMIT:
            end_seq = record.get("end_seq")
            if isinstance(end_seq, int):
                self._commits[end_seq] = record

    # ------------------------------------------------------------------
    # Introspection the recovery path reads
    # ------------------------------------------------------------------

    @property
    def last_request_seq(self) -> int:
        """Highest journaled request ``seq`` (-1 when none)."""
        return self._last_request_seq

    @property
    def last_churn_state(self) -> Optional[Dict[str, object]]:
        """Most recent churn-generator checkpoint, if any."""
        return self._last_churn

    def request_records(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("type") == REC_REQUEST]

    def commit_records(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("type") == REC_COMMIT]

    def horizon_ns(self) -> int:
        """Latest simulated time any journaled record describes — how
        far recovery must replay before live traffic may resume."""
        horizon = 0
        for record in self.records:
            kind = record.get("type")
            stamp = (
                record.get("arrival_ns")
                if kind == REC_REQUEST
                else record.get("now")
            )
            if isinstance(stamp, int) and stamp > horizon:
                horizon = stamp
        return horizon

    @staticmethod
    def request_from(record: Dict[str, object]) -> TenantRequest:
        """Rehydrate a journaled request record."""
        return TenantRequest(
            kind=str(record["kind"]),
            tenant=str(record["tenant"]),
            tier=record.get("tier"),  # type: ignore[arg-type]
            arrival_ns=int(record["arrival_ns"]),  # type: ignore[arg-type]
            seq=int(record["seq"]),  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    # Appends (idempotent)
    # ------------------------------------------------------------------

    def append_request(
        self,
        request: TenantRequest,
        churn_state: Optional[Dict[str, object]] = None,
    ) -> bool:
        """Journal one submitted request; ``False`` when ``seq`` is
        already durable (recovery replaying through this journal)."""
        if request.seq <= self._last_request_seq:
            return False
        record: Dict[str, object] = {
            "type": REC_REQUEST,
            "seq": request.seq,
            "kind": request.kind,
            "tenant": request.tenant,
            "tier": request.tier,
            "arrival_ns": request.arrival_ns,
            "churn": churn_state,
        }
        self._append(record)
        self._index(record)
        return True

    def append_commit(
        self, marker: Dict[str, object]
    ) -> Optional[Dict[str, object]]:
        """Journal one flush-window commit marker.

        Returns ``None`` when freshly appended; when a marker for the
        same ``end_seq`` is already durable, returns that existing
        record *without writing* — the caller compares it against the
        replayed state to verify recovery."""
        end_seq = marker["end_seq"]
        assert isinstance(end_seq, int)
        existing = self._commits.get(end_seq)
        if existing is not None:
            return existing
        self._append(marker)
        self._index(marker)
        return None

    def _append(self, record: Dict[str, object]) -> None:
        payload = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        frame = (
            _REC_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
            + payload
        )
        torn_at = crashpoint_fires(CRASH_JOURNAL_TORN_APPEND)
        if torn_at is not None:
            # Die mid-append: flush a prefix of the frame so the file
            # genuinely ends in a torn record, then kill the process.
            # The record is NOT in the durable prefix — recovery must
            # regenerate it (the churn stream is deterministic), which
            # is exactly what the torn-tail sweep test proves.
            self._file.write(frame[: max(1, len(frame) // 2)])
            self._file.flush()
            raise SimulatedCrash(CRASH_JOURNAL_TORN_APPEND, torn_at)
        self._file.write(frame)
        self._file.flush()
        self.appended += 1

    # ------------------------------------------------------------------

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "ServiceJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.records)
