"""The scheduler-as-a-service control plane.

:class:`SchedulerService` wraps :class:`~repro.xen.daemon.PlannerDaemon`
in a long-running request loop driven entirely by the simulated clock:

* **Bounded admission queue.**  Mutations wait in a queue of at most
  ``queue_limit`` entries; a full queue rejects with ``backpressure``
  (the caller sees the reason, the report counts it).  Creates that
  would exceed the machine's reservable capacity are rejected with
  ``admission`` before they ever occupy a queue slot.
* **Batched replans.**  A recurring flush tick drains the whole queue
  into *one* census change and one planning pass — one table push per
  batch, however bursty the arrivals.  While a replan is in flight the
  tick coalesces further arrivals into the next batch, and the window
  widens (``RecurringHandle.set_period``) when the queue keeps growing
  anyway — classic adaptive backpressure, narrowing back once drained.
* **Stale-while-revalidate reads.**  ``query-guarantees`` requests are
  answered immediately from the last *committed* census and plan, even
  while a replan is in flight; such reads are counted ``stale`` (the
  answer may be about to change) versus ``fresh``.
* **Deterministic latency.**  The simulated cost of a replan comes
  from :class:`~repro.service.latency.PlannerLatencyModel` — never
  from wall-clock planning time — so the full service history,
  latencies included, is a pure function of (topology, seeds, config).

The daemon's commit point maps onto the simulated clock: the census
flips at ``flush_time + model_cost``, which is when the batch's
requests complete and their sojourn is measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union, TYPE_CHECKING

from repro.core.params import (
    DEFAULT_TIERS,
    MS,
    SEC,
    Nanoseconds,
    ServiceTier,
    seconds_to_ns,
    vms_from_tiers,
)
from repro.crashpoints import (
    CRASH_SERVICE_ADMIT,
    CRASH_SERVICE_COMMIT,
    CRASH_SERVICE_FLUSH_POST_PUSH,
    CRASH_SERVICE_FLUSH_PRE_PUSH,
    crashpoint,
)
from repro.errors import ConfigurationError, RecoveryError, ReproError
from repro.service.churn import ChurnConfig, ChurnGenerator
from repro.service.journal import ServiceJournal
from repro.service.latency import PlannerLatencyModel
from repro.service.requests import (
    KIND_CREATE,
    KIND_QUERY,
    KIND_RECONFIGURE,
    KIND_TEARDOWN,
    REJECT_ADMISSION,
    REJECT_BACKPRESSURE,
    REJECT_PLAN_FAILED,
    REJECT_UNKNOWN_TENANT,
    REQUEST_KINDS,
    TenantRequest,
)
from repro.sim.engine import SimEngine
from repro.topology import Topology
from repro.xen.daemon import PlannerDaemon

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.plancache import PlanStore
    from repro.core.planner import PlanResult


@dataclass(frozen=True)
class ServiceConfig:
    """Operating knobs of one :class:`SchedulerService`.

    Attributes:
        queue_limit: Bounded admission-queue depth; beyond it requests
            are rejected with ``backpressure``.
        batch_window_ms: Base flush-tick period — the batching window.
        max_batch_window_ms: Ceiling the window may widen to under
            sustained backpressure.
        sojourn_slo_ns: Mutation-completion SLO; a committed request
            whose arrival→commit sojourn exceeds this counts as an SLO
            violation.
        utilization_headroom: Fraction of guest-core capacity the
            pre-admission check will fill before rejecting creates.
        history_limit: Daemon audit-ring size (see
            :class:`~repro.xen.daemon.PlannerDaemon`).
        tiers: Service-tier catalogue requests may name.
    """

    queue_limit: int = 64
    batch_window_ms: float = 1000.0
    max_batch_window_ms: float = 8000.0
    sojourn_slo_ns: int = 3 * SEC
    utilization_headroom: float = 0.95
    history_limit: int = 256
    tiers: Dict[str, ServiceTier] = field(
        default_factory=lambda: dict(DEFAULT_TIERS)
    )

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        if self.batch_window_ms <= 0:
            raise ConfigurationError("batch_window_ms must be positive")
        if self.max_batch_window_ms < self.batch_window_ms:
            raise ConfigurationError(
                "max_batch_window_ms must be >= batch_window_ms"
            )
        if not 0.0 < self.utilization_headroom <= 1.0:
            raise ConfigurationError(
                "utilization_headroom must be in (0, 1]"
            )

    @property
    def batch_window_ns(self) -> Nanoseconds:
        return Nanoseconds(int(self.batch_window_ms * MS))

    @property
    def max_batch_window_ns(self) -> Nanoseconds:
        return Nanoseconds(int(self.max_batch_window_ms * MS))


class SchedulerService:
    """A persistent planning control plane on a simulated clock.

    Args:
        topology: The machine whose tables the service maintains.
        config: Operating knobs (:class:`ServiceConfig`).
        scheduler: Scheduler axis value — selects the latency model
            (``tableau`` pays Fig. 3 table generation amortized by the
            shape cache; dynamic schedulers pay a flat runqueue
            reconfiguration cost).
        store: Optional on-disk plan store backing the daemon's table
            cache across runs.
        engine: Bring-your-own event loop (tests compose the service
            with other actors); by default the service owns one.
        journal: Optional write-ahead log.  Every submitted request is
            journaled *before* it takes effect and every flush-window
            commit appends a verified counter marker, so the service
            can be rebuilt from the journal after a crash
            (:meth:`recover`).  Attaching a journal that already holds
            history requires going through :meth:`recover` — silently
            continuing a fresh service on an old journal would corrupt
            the sequence space.
    """

    def __init__(
        self,
        topology: Topology,
        config: Optional[ServiceConfig] = None,
        scheduler: str = "tableau",
        store: Optional["PlanStore"] = None,
        engine: Optional[SimEngine] = None,
        journal: Optional[ServiceJournal] = None,
        _replaying: bool = False,
    ) -> None:
        if journal is not None and journal.records and not _replaying:
            raise ConfigurationError(
                f"journal {journal.path} already holds "
                f"{len(journal.records)} records; rebuild from it with "
                "SchedulerService.recover() instead of attaching it to "
                "a fresh service"
            )
        self.topology = topology
        self.config = config if config is not None else ServiceConfig()
        self.scheduler = scheduler
        self.engine = engine if engine is not None else SimEngine()
        self.model = PlannerLatencyModel.for_scheduler(scheduler)
        self.daemon = PlannerDaemon(
            topology,
            hypercall=None,
            cache=True,
            history_limit=self.config.history_limit,
            store=store,
        )
        self.capacity = self.config.utilization_headroom * len(
            topology.guest_cores
        )
        #: Census the service has *accepted* (committed plus queued
        #: effects) — what admission projects against and what the
        #: churn generator sees.
        self.accepted: Dict[str, str] = {}
        #: Census the last committed table serves — what queries read.
        self.committed: Dict[str, str] = {}
        self.committed_plan: Optional["PlanResult"] = None
        self.queue: List[TenantRequest] = []
        self._inflight: Optional[
            Tuple[List[TenantRequest], Dict[str, str], Nanoseconds]
        ] = None
        self._shapes_seen: set = set()
        self._flush_handle = self.engine.every(
            self.config.batch_window_ns, self._flush
        )

        # ---- durability ---------------------------------------------
        self.journal = journal
        #: Highest request seq this service instance has journaled;
        #: live submits with a stale seq (manual callers defaulting to
        #: 0) are restamped to keep the WAL's sequence space monotonic.
        self._last_seq = -1
        #: Churn checkpoint carried by the last journaled request —
        #: set by :meth:`recover` for
        #: :func:`repro.service.recovery.resume_service`.
        self.recovered_churn: Optional[Dict[str, object]] = None
        #: Request records replayed by :meth:`recover` (0 on a fresh
        #: service).
        self.replayed_requests = 0

        # ---- deterministic accounting ------------------------------
        self.requests_by_kind: Dict[str, int] = {
            kind: 0 for kind in REQUEST_KINDS
        }
        self.rejected: Dict[str, int] = {
            REJECT_BACKPRESSURE: 0,
            REJECT_ADMISSION: 0,
            REJECT_UNKNOWN_TENANT: 0,
            REJECT_PLAN_FAILED: 0,
        }
        self.queries_fresh = 0
        self.queries_stale = 0
        self.batches_committed = 0
        self.batches_failed = 0
        self.mutations_committed = 0
        self.table_pushes = 0
        self.slo_violations = 0
        self.peak_queue = 0
        self.peak_population = 0
        self.window_widenings = 0
        self.replan_latencies_ns: List[int] = []
        self.sojourns_ns: List[int] = []

    # ------------------------------------------------------------------
    # Census helpers
    # ------------------------------------------------------------------

    def tenant_names(self) -> List[str]:
        """Accepted tenants, sorted (the deterministic sampling frame)."""
        return sorted(self.accepted)

    @property
    def population(self) -> int:
        return len(self.accepted)

    def _tier(self, name: Optional[str]) -> ServiceTier:
        if name is None or name not in self.config.tiers:
            raise ConfigurationError(f"unknown service tier {name!r}")
        return self.config.tiers[name]

    def _accepted_utilization(self) -> float:
        return sum(
            self.config.tiers[tier].utilization
            for tier in self.accepted.values()
        )

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------

    def submit(
        self,
        request: TenantRequest,
        churn_state: Optional[Dict[str, object]] = None,
    ) -> Optional[str]:
        """Process one request *now*; returns a rejection reason or
        ``None`` (accepted / answered).

        With a journal attached the request is made durable *first*
        (write-ahead: a crash after the append but before any effect
        loses nothing — replay applies it), then the ``service.admit``
        crashpoint is consulted.  ``churn_state`` is the generator's
        RNG checkpoint riding the record; replayed requests deduplicate
        inside the journal by ``seq``.
        """
        if self.journal is not None:
            if request.seq <= self._last_seq:
                request = replace(request, seq=self._last_seq + 1)
            self.journal.append_request(request, churn_state)
            self._last_seq = request.seq
            crashpoint(CRASH_SERVICE_ADMIT)
        self.requests_by_kind[request.kind] = (
            self.requests_by_kind.get(request.kind, 0) + 1
        )
        if request.kind == KIND_QUERY:
            return self._serve_query(request)
        reason = self._admit(request)
        if reason is not None:
            self.rejected[reason] += 1
            return reason
        self._apply(self.accepted, request)
        self.queue.append(request)
        self.peak_queue = max(self.peak_queue, len(self.queue))
        self.peak_population = max(self.peak_population, self.population)
        return None

    def _serve_query(self, request: TenantRequest) -> Optional[str]:
        """Answer a guarantee read from the last committed state.

        Stale-while-revalidate: the answer always comes from the
        committed census/plan — never blocks on an in-flight replan —
        and is counted stale whenever it might be superseded (a replan
        in flight, or the tenant accepted but not yet committed).
        """
        if request.tenant not in self.accepted:
            self.rejected[REJECT_UNKNOWN_TENANT] += 1
            return REJECT_UNKNOWN_TENANT
        stale = (
            self._inflight is not None
            or request.tenant not in self.committed
        )
        if stale:
            self.queries_stale += 1
        else:
            self.queries_fresh += 1
        return None

    def guarantees_of(self, tenant: str) -> Optional[Dict[str, object]]:
        """The committed (U, L) guarantee of ``tenant``, if any."""
        tier_name = self.committed.get(tenant)
        if tier_name is None:
            return None
        tier = self.config.tiers[tier_name]
        return {
            "tenant": tenant,
            "tier": tier.name,
            "utilization": tier.utilization,
            "latency_ns": tier.latency_ns,
        }

    def _admit(self, request: TenantRequest) -> Optional[str]:
        if len(self.queue) >= self.config.queue_limit:
            return REJECT_BACKPRESSURE
        if request.kind == KIND_CREATE:
            if request.tenant in self.accepted:
                return REJECT_ADMISSION  # duplicate name
            tier = self._tier(request.tier)
            if self._accepted_utilization() + tier.utilization > self.capacity:
                return REJECT_ADMISSION
            return None
        if request.tenant not in self.accepted:
            return REJECT_UNKNOWN_TENANT
        if request.kind == KIND_RECONFIGURE:
            old = self.config.tiers[self.accepted[request.tenant]]
            new = self._tier(request.tier)
            delta = new.utilization - old.utilization
            if delta > 0 and self._accepted_utilization() + delta > self.capacity:
                return REJECT_ADMISSION
        return None

    @staticmethod
    def _apply(census: Dict[str, str], request: TenantRequest) -> None:
        if request.kind == KIND_CREATE or request.kind == KIND_RECONFIGURE:
            census[request.tenant] = request.tier  # type: ignore[assignment]
        elif request.kind == KIND_TEARDOWN:
            census.pop(request.tenant, None)

    # ------------------------------------------------------------------
    # Batched replanning
    # ------------------------------------------------------------------

    def _flush(self) -> None:
        if self._inflight is not None:
            # Busy-coalescing: arrivals keep queueing for the next
            # batch.  If the queue keeps growing anyway, widen the
            # window — fewer, larger batches under sustained pressure.
            if len(self.queue) >= self.config.queue_limit // 2:
                widened = min(
                    self._flush_handle.period * 2,
                    self.config.max_batch_window_ns,
                )
                if widened > self._flush_handle.period:
                    self._flush_handle.set_period(widened)
                    self.window_widenings += 1
            return
        if not self.queue:
            if self._flush_handle.period != self.config.batch_window_ns:
                # Drained: narrow back to the base cadence.
                self._flush_handle.set_period(self.config.batch_window_ns)
            return
        batch = self.queue
        self.queue = []
        census = dict(self.accepted)
        signature = tuple(sorted(census.values()))
        cache_hit = signature in self._shapes_seen
        cost = self.model.cost_ns(len(census), cache_hit)
        # Dying here loses the in-memory batch — but every request in
        # it is already journaled, so replay rebuilds and re-flushes it.
        crashpoint(CRASH_SERVICE_FLUSH_PRE_PUSH)
        if census:
            specs = vms_from_tiers(
                sorted(census.items()), tiers=self.config.tiers
            )
            try:
                self.daemon.replan(
                    specs, reason=f"batch of {len(batch)} @{self.engine.now}"
                )
            except ReproError:
                # The whole batch rolls back: the committed census and
                # table keep serving, the requests report plan-failed.
                self.batches_failed += 1
                self.rejected[REJECT_PLAN_FAILED] += len(batch)
                self._rollback(batch)
                return
        # Dying here loses a replan the daemon already performed (and
        # possibly a plan-store write); replay re-runs the same replan
        # from the same census, so the rebuilt daemon state matches.
        crashpoint(CRASH_SERVICE_FLUSH_POST_PUSH)
        self._shapes_seen.add(signature)
        self._inflight = (batch, census, cost)
        self.engine.after(cost, self._commit)

    def _commit(self) -> None:
        # Dying here loses the commit entirely — its journal marker was
        # never written, so replay re-commits and appends it then.
        crashpoint(CRASH_SERVICE_COMMIT)
        assert self._inflight is not None
        batch, census, cost = self._inflight
        self._inflight = None
        self.committed = census
        self.committed_plan = self.daemon.current_plan
        now = self.engine.now
        for request in batch:
            sojourn = now - request.arrival_ns
            self.sojourns_ns.append(sojourn)
            if sojourn > self.config.sojourn_slo_ns:
                self.slo_violations += 1
        self.mutations_committed += len(batch)
        self.replan_latencies_ns.append(int(cost))
        self.batches_committed += 1
        self.table_pushes += 1
        if self.journal is not None:
            marker: Dict[str, object] = {
                "type": "commit",
                "now": now,
                "end_seq": max(r.seq for r in batch),
                "batch": len(batch),
                "counters": self._counter_snapshot(),
            }
            existing = self.journal.append_commit(marker)
            if existing is not None and existing != marker:
                # Replay recommitted a journaled window with different
                # state than the crashed process durably recorded —
                # the rebuild is wrong; refuse to serve from it.
                raise RecoveryError(
                    "replayed commit diverged from journal marker at "
                    f"end_seq={marker['end_seq']}: journal={existing} "
                    f"replayed={marker}"
                )

    def _counter_snapshot(self) -> Dict[str, int]:
        """Running counters persisted in commit markers (and verified
        on replay) — including the daemon's exact episode counters and
        the hypercall's activation failures, which would otherwise
        silently reset across a crash-restart."""
        daemon = self.daemon
        hypercall = daemon.hypercall
        return {
            "batches_committed": self.batches_committed,
            "batches_failed": self.batches_failed,
            "mutations_committed": self.mutations_committed,
            "table_pushes": self.table_pushes,
            "slo_violations": self.slo_violations,
            "window_widenings": self.window_widenings,
            "queries_fresh": self.queries_fresh,
            "queries_stale": self.queries_stale,
            "requests_total": sum(self.requests_by_kind.values()),
            "rejected_total": sum(self.rejected.values()),
            "population": self.population,
            "peak_queue": self.peak_queue,
            "peak_population": self.peak_population,
            "daemon_total_replans": daemon.total_replans,
            "daemon_committed_replans": daemon.committed_replans,
            "daemon_failed_replans": daemon.failed_replans,
            "daemon_total_push_backoff_ns": daemon.total_push_backoff_ns,
            "daemon_history_len": len(daemon.history),
            "daemon_push_backoffs_len": len(daemon.push_backoffs_ns),
            "failed_activations": (
                hypercall.failed_activations if hypercall is not None else 0
            ),
        }

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        topology: Topology,
        journal: Union[str, Path, ServiceJournal],
        config: Optional[ServiceConfig] = None,
        scheduler: str = "tableau",
        store: Optional["PlanStore"] = None,
        engine: Optional[SimEngine] = None,
    ) -> "SchedulerService":
        """Rebuild a service from its journal (crash-restart).

        Opens (and tail-heals) ``journal``, then replays every
        journaled request through a fresh service at its original
        arrival time on a fresh simulated clock.  The replayed events
        are *chain-scheduled* — request *n+1* is scheduled from inside
        request *n*'s callback, mirroring the live churn generator —
        so same-timestamp ties resolve in the original heap order and
        the rebuilt history is bit-identical, flush windows, widenings
        and all.  Journaled commit markers deduplicate on re-append and
        are verified against the replayed counters
        (:class:`~repro.errors.RecoveryError` on divergence).

        Effects are exactly-once: replayed appends deduplicate by
        ``seq``, and the last journaled churn checkpoint is exposed as
        :attr:`recovered_churn` so
        :func:`repro.service.recovery.resume_service` continues the
        arrival stream precisely where the crashed run stopped.
        """
        if not isinstance(journal, ServiceJournal):
            journal = ServiceJournal(journal)
        service = cls(
            topology,
            config=config,
            scheduler=scheduler,
            store=store,
            engine=engine,
            journal=journal,
            _replaying=True,
        )
        service.recovered_churn = journal.last_churn_state
        requests = [
            (journal.request_from(record), record.get("churn"))
            for record in journal.request_records()
        ]
        service.replayed_requests = len(requests)
        if not requests:
            return service
        sim = service.engine

        def _replay(index: int) -> None:
            request, churn = requests[index]
            service.submit(request, churn_state=churn)  # type: ignore[arg-type]
            if index + 1 < len(requests):
                sim.at(
                    requests[index + 1][0].arrival_ns,
                    lambda: _replay(index + 1),
                )

        sim.at(requests[0][0].arrival_ns, lambda: _replay(0))
        sim.run_until(journal.horizon_ns())
        return service

    def _rollback(self, batch: List[TenantRequest]) -> None:
        """Recompute the accepted census as committed + queued effects
        (the failed batch's effects drop out)."""
        census = dict(self.committed)
        for request in self.queue:
            self._apply(census, request)
        self.accepted = census


def run_service(
    topology: Topology,
    duration_s: float,
    churn: Optional[ChurnConfig] = None,
    config: Optional[ServiceConfig] = None,
    scheduler: str = "tableau",
    store: Optional["PlanStore"] = None,
    journal: Optional[ServiceJournal] = None,
) -> SchedulerService:
    """Run a seeded churn stream against a fresh service for
    ``duration_s`` simulated seconds; returns the finished service.

    With ``journal`` attached the run is crash-recoverable: see
    :meth:`SchedulerService.recover` and
    :func:`repro.service.recovery.crash_recover_resume`.
    """
    service = SchedulerService(
        topology, config=config, scheduler=scheduler, store=store,
        journal=journal,
    )
    generator = ChurnGenerator(service, churn)
    until_ns = seconds_to_ns(duration_s)
    generator.start(until_ns)
    service.engine.run_until(until_ns)
    return service
