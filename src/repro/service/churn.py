"""Seeded tenant-churn generation with diurnal load shaping.

Arrivals follow a nonhomogeneous Poisson process whose rate traces a
sinusoidal diurnal curve (clouds see day/night swings, and the batching
behaviour of the control plane is only interesting if load actually
bursts).  The classic thinning construction keeps it exact and seeded:
candidate arrivals are drawn from a homogeneous process at the
envelope rate ``lambda_max`` and accepted with probability
``rate(t) / lambda_max`` — every draw comes from one
``random.Random(seed)``, so the full request stream is a pure function
of the config.

Request synthesis steers the tenant population toward a target size:
below target the mix leans to creates, above it to teardowns, with a
configurable fraction of guarantee queries and tier reconfigurations
mixed in.  Victims of teardown/reconfigure are drawn from the *sorted*
tenant list, so the stream never depends on hash order.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.params import SEC, Nanoseconds
from repro.errors import ConfigurationError
from repro.service.journal import decode_rng_state, encode_rng_state
from repro.service.requests import (
    KIND_CREATE,
    KIND_QUERY,
    KIND_RECONFIGURE,
    KIND_TEARDOWN,
    TenantRequest,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.service.control import SchedulerService
    from repro.sim.engine import SimEngine


@dataclass(frozen=True)
class ChurnConfig:
    """Shape of the synthetic tenant stream.

    Attributes:
        seed: Seed of the single RNG behind arrivals and request mix.
        arrival_rate_per_s: Mean arrival rate of the diurnal curve.
        diurnal_amplitude: Relative swing in [0, 1): rate peaks at
            ``mean * (1 + a)`` and troughs at ``mean * (1 - a)``.
        diurnal_period_s: One full day/night cycle, in simulated
            seconds (compressed from 24h so short runs see full
            cycles).
        target_population: Census size the create/teardown mix steers
            toward.
        tier_weights: ``(tier_name, weight)`` pairs for create and
            reconfigure tier draws.
        query_fraction: Share of requests that are guarantee queries.
        reconfigure_fraction: Share of *non-create* mutations that
            reconfigure rather than tear down.
    """

    seed: int = 42
    arrival_rate_per_s: float = 4.0
    diurnal_amplitude: float = 0.6
    diurnal_period_s: float = 1800.0
    target_population: int = 32
    tier_weights: Sequence[Tuple[str, int]] = (
        ("economy", 40),
        ("standard", 35),
        ("performance", 20),
        ("dedicated", 5),
    )
    query_fraction: float = 0.35
    reconfigure_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s <= 0:
            raise ConfigurationError("arrival_rate_per_s must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period_s <= 0:
            raise ConfigurationError("diurnal_period_s must be positive")
        if self.target_population < 1:
            raise ConfigurationError("target_population must be >= 1")
        if not self.tier_weights:
            raise ConfigurationError("tier_weights must be non-empty")
        if not 0.0 <= self.query_fraction < 1.0:
            raise ConfigurationError("query_fraction must be in [0, 1)")

    def rate_per_s(self, t_s: float) -> float:
        """Instantaneous arrival rate at simulated time ``t_s``."""
        phase = 2.0 * math.pi * t_s / self.diurnal_period_s
        return self.arrival_rate_per_s * (
            1.0 + self.diurnal_amplitude * math.sin(phase)
        )


class ChurnGenerator:
    """Drives a :class:`~repro.service.control.SchedulerService` with a
    seeded request stream on the service's own simulated clock.

    Usage::

        gen = ChurnGenerator(service, config)
        gen.start(until_ns=2 * 3600 * SEC)
        service.engine.run_until(2 * 3600 * SEC)
    """

    def __init__(
        self, service: "SchedulerService", config: Optional[ChurnConfig] = None
    ) -> None:
        self.service = service
        self.config = config if config is not None else ChurnConfig()
        self.rng = random.Random(self.config.seed)
        self.generated = 0
        self._births = 0
        self._t_s = 0.0  # last accepted arrival, in float seconds
        self._until_ns = 0

    # ------------------------------------------------------------------
    # Arrival process (thinning)
    # ------------------------------------------------------------------

    def _next_arrival_ns(self) -> Nanoseconds:
        """Absolute time of the next accepted arrival."""
        cfg = self.config
        lambda_max = cfg.arrival_rate_per_s * (1.0 + cfg.diurnal_amplitude)
        t = self._t_s
        while True:
            # Exponential envelope gap; log1p keeps u=0 finite.
            t += -math.log1p(-self.rng.random()) / lambda_max
            if self.rng.random() * lambda_max <= cfg.rate_per_s(t):
                self._t_s = t
                return Nanoseconds(int(t * SEC))

    # ------------------------------------------------------------------
    # Request synthesis
    # ------------------------------------------------------------------

    def _draw_tier(self) -> str:
        total = sum(w for _, w in self.config.tier_weights)
        pick = self.rng.randrange(total)
        acc = 0
        for name, weight in self.config.tier_weights:
            acc += weight
            if pick < acc:
                return name
        return self.config.tier_weights[-1][0]  # pragma: no cover

    def _make_request(self, arrival_ns: int) -> TenantRequest:
        cfg = self.config
        tenants = self.service.tenant_names()  # sorted — no hash order
        population = len(tenants)
        seq = self.generated
        if tenants and self.rng.random() < cfg.query_fraction:
            victim = tenants[self.rng.randrange(len(tenants))]
            return TenantRequest(
                KIND_QUERY, victim, arrival_ns=arrival_ns, seq=seq
            )
        # Population steering: create probability slides from ~0.9 when
        # far below target to ~0.1 when far above.
        drift = (cfg.target_population - population) / cfg.target_population
        p_create = min(0.9, max(0.1, 0.5 + 0.5 * drift))
        if not tenants or self.rng.random() < p_create:
            name = f"t{self._births:06d}"
            self._births += 1
            return TenantRequest(
                KIND_CREATE,
                name,
                tier=self._draw_tier(),
                arrival_ns=arrival_ns,
                seq=seq,
            )
        victim = tenants[self.rng.randrange(len(tenants))]
        if self.rng.random() < cfg.reconfigure_fraction:
            return TenantRequest(
                KIND_RECONFIGURE,
                victim,
                tier=self._draw_tier(),
                arrival_ns=arrival_ns,
                seq=seq,
            )
        return TenantRequest(
            KIND_TEARDOWN, victim, arrival_ns=arrival_ns, seq=seq
        )

    # ------------------------------------------------------------------
    # Clock wiring
    # ------------------------------------------------------------------

    def start(self, until_ns: int) -> None:
        """Schedule the arrival stream on the service's engine up to
        ``until_ns`` (arrivals past it are never scheduled)."""
        self._until_ns = until_ns
        self._schedule_next()

    def _schedule_next(self) -> None:
        arrival_ns = self._next_arrival_ns()
        if arrival_ns > self._until_ns:
            return
        self.service.engine.at(arrival_ns, self._fire)

    def _fire(self) -> None:
        now = self.service.engine.now
        request = self._make_request(now)
        self.generated += 1
        if self.service.journal is not None:
            self.service.submit(request, churn_state=self._checkpoint())
        else:
            self.service.submit(request)
        self._schedule_next()

    # ------------------------------------------------------------------
    # Crash checkpoints
    # ------------------------------------------------------------------

    def _checkpoint(self) -> "dict[str, object]":
        """Full generator state *after* synthesizing the request about
        to be submitted (rides that request's journal record, so the
        checkpoint is durable exactly when the request is).  Restoring
        it and calling :meth:`_schedule_next` reproduces the remainder
        of the stream draw-for-draw."""
        return {
            "generated": self.generated,
            "births": self._births,
            # float seconds, exactly: hex round-trips every bit.
            "t": self._t_s.hex(),
            "rng": encode_rng_state(self.rng.getstate()),
        }

    @classmethod
    def resume(
        cls,
        service: "SchedulerService",
        config: Optional[ChurnConfig],
        state: "dict[str, object]",
    ) -> "ChurnGenerator":
        """Rebuild a generator from a journaled checkpoint.

        The returned generator's next request (seq, name, kind, tier,
        arrival time) is bit-identical to what the crashed generator
        would have produced next.
        """
        generator = cls(service, config)
        generator.rng.setstate(decode_rng_state(str(state["rng"])))
        generator.generated = int(state["generated"])  # type: ignore[arg-type]
        generator._births = int(state["births"])  # type: ignore[arg-type]
        generator._t_s = float.fromhex(str(state["t"]))
        return generator
