"""Scheduler-as-a-service: the persistent control plane.

The paper's evaluation provisions a census once and measures steady
state; a real cloud control plane instead lives for months, absorbing a
stream of tenant create/reconfigure/teardown requests while answering
guarantee queries.  This package wraps the planner daemon in that
long-running shape, driven entirely by the simulated clock:

* :mod:`repro.service.requests` — the tenant-facing request and
  outcome vocabulary;
* :mod:`repro.service.churn` — a seeded request generator with
  diurnal (sinusoidal) load shaping, nonhomogeneous-Poisson arrivals
  via thinning, and population steering toward a target census size;
* :mod:`repro.service.latency` — the deterministic planner-latency
  model (simulated replan cost; wall-clock planning time is
  observability, never simulation input);
* :mod:`repro.service.control` — :class:`SchedulerService` itself:
  bounded admission queue, batched replans (one census change per
  table push), stale-while-revalidate guarantee reads, adaptive
  batch-window widening under backpressure;
* :mod:`repro.service.journal` — the write-ahead log
  (:class:`ServiceJournal`): every admitted request is durable before
  it takes effect, every flush-window commit appends a verified
  counter marker, torn tails heal on open;
* :mod:`repro.service.recovery` — crash → recover → resume harnesses
  (:func:`crash_recover_resume`) built on
  :meth:`SchedulerService.recover`'s deterministic journal replay.

Everything downstream of a (topology, churn seed, config) triple is
deterministic: two runs produce byte-identical service reports
(:func:`repro.metrics.service_report_json`) — *including* a run that
crashed at any registered crashpoint and was rebuilt from its journal.
"""

from repro.service.churn import ChurnConfig, ChurnGenerator
from repro.service.control import (
    SchedulerService,
    ServiceConfig,
    run_service,
)
from repro.service.journal import (
    JOURNAL_VERSION,
    REC_COMMIT,
    REC_REQUEST,
    ServiceJournal,
    decode_rng_state,
    encode_rng_state,
)
from repro.service.latency import PlannerLatencyModel
from repro.service.recovery import (
    CrashRecoveryOutcome,
    crash_recover_resume,
    resume_service,
    run_to_crash,
)
from repro.service.requests import (
    KIND_CREATE,
    KIND_QUERY,
    KIND_RECONFIGURE,
    KIND_TEARDOWN,
    MUTATION_KINDS,
    REJECT_ADMISSION,
    REJECT_BACKPRESSURE,
    REJECT_PLAN_FAILED,
    REJECT_UNKNOWN_TENANT,
    REQUEST_KINDS,
    TenantRequest,
)

__all__ = [
    "ChurnConfig",
    "ChurnGenerator",
    "CrashRecoveryOutcome",
    "JOURNAL_VERSION",
    "KIND_CREATE",
    "KIND_QUERY",
    "KIND_RECONFIGURE",
    "KIND_TEARDOWN",
    "MUTATION_KINDS",
    "PlannerLatencyModel",
    "REJECT_ADMISSION",
    "REJECT_BACKPRESSURE",
    "REJECT_PLAN_FAILED",
    "REC_COMMIT",
    "REC_REQUEST",
    "REJECT_UNKNOWN_TENANT",
    "REQUEST_KINDS",
    "SchedulerService",
    "ServiceConfig",
    "ServiceJournal",
    "TenantRequest",
    "crash_recover_resume",
    "decode_rng_state",
    "encode_rng_state",
    "resume_service",
    "run_service",
    "run_to_crash",
]
