"""Scheduler-as-a-service: the persistent control plane.

The paper's evaluation provisions a census once and measures steady
state; a real cloud control plane instead lives for months, absorbing a
stream of tenant create/reconfigure/teardown requests while answering
guarantee queries.  This package wraps the planner daemon in that
long-running shape, driven entirely by the simulated clock:

* :mod:`repro.service.requests` — the tenant-facing request and
  outcome vocabulary;
* :mod:`repro.service.churn` — a seeded request generator with
  diurnal (sinusoidal) load shaping, nonhomogeneous-Poisson arrivals
  via thinning, and population steering toward a target census size;
* :mod:`repro.service.latency` — the deterministic planner-latency
  model (simulated replan cost; wall-clock planning time is
  observability, never simulation input);
* :mod:`repro.service.control` — :class:`SchedulerService` itself:
  bounded admission queue, batched replans (one census change per
  table push), stale-while-revalidate guarantee reads, adaptive
  batch-window widening under backpressure.

Everything downstream of a (topology, churn seed, config) triple is
deterministic: two runs produce byte-identical service reports
(:func:`repro.metrics.service_report_json`).
"""

from repro.service.churn import ChurnConfig, ChurnGenerator
from repro.service.control import (
    SchedulerService,
    ServiceConfig,
    run_service,
)
from repro.service.latency import PlannerLatencyModel
from repro.service.requests import (
    KIND_CREATE,
    KIND_QUERY,
    KIND_RECONFIGURE,
    KIND_TEARDOWN,
    MUTATION_KINDS,
    REJECT_ADMISSION,
    REJECT_BACKPRESSURE,
    REJECT_PLAN_FAILED,
    REJECT_UNKNOWN_TENANT,
    REQUEST_KINDS,
    TenantRequest,
)

__all__ = [
    "ChurnConfig",
    "ChurnGenerator",
    "KIND_CREATE",
    "KIND_QUERY",
    "KIND_RECONFIGURE",
    "KIND_TEARDOWN",
    "MUTATION_KINDS",
    "PlannerLatencyModel",
    "REJECT_ADMISSION",
    "REJECT_BACKPRESSURE",
    "REJECT_PLAN_FAILED",
    "REJECT_UNKNOWN_TENANT",
    "REQUEST_KINDS",
    "SchedulerService",
    "ServiceConfig",
    "TenantRequest",
    "run_service",
]
