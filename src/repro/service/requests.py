"""The tenant-facing request vocabulary of the scheduler service.

Four request kinds cover a tenant lifecycle: ``create`` admits a new
VM at a service tier, ``reconfigure`` moves an existing VM to another
tier, ``teardown`` releases it, and ``query-guarantees`` reads the
(U, L) guarantee the currently *committed* table grants it.  Mutations
queue for the next batched replan; queries are answered immediately
from the last committed plan (stale-while-revalidate — see
:mod:`repro.service.control`).

A rejected request carries one of the ``REJECT_*`` reasons so the
generator (and the operator reading the report) can tell admission
pressure from queue pressure from plain bad requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

KIND_CREATE = "create"
KIND_RECONFIGURE = "reconfigure"
KIND_TEARDOWN = "teardown"
KIND_QUERY = "query-guarantees"

REQUEST_KINDS = (KIND_CREATE, KIND_RECONFIGURE, KIND_TEARDOWN, KIND_QUERY)

#: Kinds that change the census and therefore ride a batched replan.
MUTATION_KINDS = (KIND_CREATE, KIND_RECONFIGURE, KIND_TEARDOWN)

#: The admission queue is full (bounded backpressure).
REJECT_BACKPRESSURE = "backpressure"
#: The census would exceed the machine's reservable capacity.
REJECT_ADMISSION = "admission"
#: Reconfigure/teardown/query of a tenant the service does not know.
REJECT_UNKNOWN_TENANT = "unknown-tenant"
#: The batch carrying this request failed to plan; the census rolled
#: back and the request's effect never became a table.
REJECT_PLAN_FAILED = "plan-failed"

REJECT_REASONS = (
    REJECT_BACKPRESSURE,
    REJECT_ADMISSION,
    REJECT_UNKNOWN_TENANT,
    REJECT_PLAN_FAILED,
)


@dataclass(frozen=True)
class TenantRequest:
    """One request on the service's wire, as plain immutable data.

    Attributes:
        kind: One of :data:`REQUEST_KINDS`.
        tenant: VM name the request concerns.
        tier: Target service-tier name (create/reconfigure only).
        arrival_ns: Simulated arrival time (stamped by the generator).
        seq: Arrival sequence number — the deterministic tiebreak and
            the label batches refer to.
    """

    kind: str
    tenant: str
    tier: Optional[str] = None
    arrival_ns: int = 0
    seq: int = 0
