"""Crash → recover → resume: the full crash-consistency cycle.

Three layers on top of :meth:`~repro.service.control.SchedulerService.recover`:

* :func:`run_to_crash` — one journaled churn run that either survives
  or dies at an armed crashpoint (the :class:`SimulatedCrash` is caught
  and returned, the journal closed — the moral equivalent of the
  process being SIGKILLed with its WAL durable on disk).
* :func:`resume_service` — continue a *recovered* service to the
  original end time, rebuilding the churn generator from the journaled
  RNG checkpoint so the post-crash arrival stream is the exact
  continuation of the pre-crash one.
* :func:`crash_recover_resume` — the whole loop, with the crash plan
  staying armed throughout so multi-index plans kill the recovery too
  (double-crash); each recovery reopens the journal from disk (healing
  any torn tail) and, when a ``store_factory`` is given, opens a fresh
  plan store the way a restarted process would — which is what makes
  the startup orphan sweep part of the story rather than a footnote.

The acceptance property all of this exists to prove: for every
registered service crashpoint and any crash schedule that eventually
lets a run finish, the final
:func:`~repro.metrics.service.service_report_json` is **byte-identical**
to the same configuration run uninterrupted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Union, TYPE_CHECKING

from repro.core.params import seconds_to_ns
from repro.crashpoints import SimulatedCrash, crashes_armed
from repro.errors import ReproError
from repro.service.churn import ChurnConfig, ChurnGenerator
from repro.service.control import SchedulerService, ServiceConfig
from repro.service.journal import ServiceJournal
from repro.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.plancache import PlanStore
    from repro.faults.crash import CrashPlan


def run_to_crash(
    topology: Topology,
    duration_s: float,
    journal: Union[str, Path, ServiceJournal],
    churn: Optional[ChurnConfig] = None,
    config: Optional[ServiceConfig] = None,
    scheduler: str = "tableau",
    store: Optional["PlanStore"] = None,
) -> "tuple[SchedulerService, Optional[SimulatedCrash]]":
    """Run one journaled service until ``duration_s`` or the first
    armed crash, whichever comes first.

    Returns ``(service, crash)``; ``crash`` is ``None`` when the run
    survived.  On a crash the journal is closed (its durable prefix is
    on disk, exactly as a killed process would leave it) and the
    returned service is the *dead* instance — useful for asserting
    what was lost, never for continuing.
    """
    if not isinstance(journal, ServiceJournal):
        journal = ServiceJournal(journal)
    service = SchedulerService(
        topology, config=config, scheduler=scheduler, store=store,
        journal=journal,
    )
    generator = ChurnGenerator(service, churn)
    until_ns = seconds_to_ns(duration_s)
    generator.start(until_ns)
    try:
        service.engine.run_until(until_ns)
    except SimulatedCrash as crash:
        journal.close()
        return service, crash
    return service, None


def resume_service(
    service: SchedulerService,
    duration_s: float,
    churn: Optional[ChurnConfig] = None,
) -> SchedulerService:
    """Continue a recovered service to ``duration_s`` simulated seconds.

    The churn generator is rebuilt from the journal's last RNG
    checkpoint (:attr:`SchedulerService.recovered_churn`) when one
    exists — its next draw is the first arrival the crashed run never
    journaled — or started fresh when the crash predates every durable
    request (the whole stream regenerates identically from the seed).
    """
    until_ns = seconds_to_ns(duration_s)
    state = service.recovered_churn
    if state is not None:
        generator = ChurnGenerator.resume(service, churn, state)
    else:
        generator = ChurnGenerator(service, churn)
    generator.start(until_ns)
    service.engine.run_until(until_ns)
    return service


@dataclass
class CrashRecoveryOutcome:
    """What one :func:`crash_recover_resume` cycle observed."""

    service: SchedulerService
    #: Every simulated death, in order (empty when the plan never fired).
    crashes: List[SimulatedCrash] = field(default_factory=list)
    #: Torn-tail bytes truncated across all journal reopenings.
    healed_bytes: int = 0

    @property
    def crash_count(self) -> int:
        return len(self.crashes)


def crash_recover_resume(
    topology: Topology,
    duration_s: float,
    journal_path: Union[str, Path],
    plan: "CrashPlan",
    churn: Optional[ChurnConfig] = None,
    config: Optional[ServiceConfig] = None,
    scheduler: str = "tableau",
    store_factory: Optional[Callable[[], "PlanStore"]] = None,
    max_crashes: int = 8,
) -> CrashRecoveryOutcome:
    """Run a journaled service under ``plan``, recovering from every
    crash until the run completes.

    The plan stays armed for the whole cycle and its per-point counters
    persist across deaths, so a transient ``calls=(k,)`` spec fires
    once and lets the recovery finish, while ``calls=(k, m)`` or
    ``persistent_from`` schedules kill the recovery as well and are
    retried (up to ``max_crashes`` total deaths).  ``store_factory``,
    when given, is invoked once per process lifetime — the initial run
    and again for every recovery — modelling a restarted daemon opening
    the plan store anew (startup orphan sweep included).
    """
    outcome_crashes: List[SimulatedCrash] = []
    healed = 0
    with crashes_armed(plan):
        journal = ServiceJournal(journal_path)
        store = store_factory() if store_factory is not None else None
        service, crash = run_to_crash(
            topology,
            duration_s,
            journal,
            churn=churn,
            config=config,
            scheduler=scheduler,
            store=store,
        )
        while crash is not None:
            outcome_crashes.append(crash)
            if len(outcome_crashes) > max_crashes:
                raise ReproError(
                    f"crash plan still firing after {max_crashes} "
                    f"recoveries (last: {crash})"
                )
            journal = ServiceJournal(journal_path)
            healed += journal.healed_bytes
            store = store_factory() if store_factory is not None else None
            try:
                service = SchedulerService.recover(
                    topology,
                    journal,
                    config=config,
                    scheduler=scheduler,
                    store=store,
                )
                resume_service(service, duration_s, churn=churn)
                crash = None
            except SimulatedCrash as next_crash:
                journal.close()
                crash = next_crash
    if service.journal is not None:
        service.journal.close()
    return CrashRecoveryOutcome(
        service=service, crashes=outcome_crashes, healed_bytes=healed
    )


__all__ = [
    "CrashRecoveryOutcome",
    "crash_recover_resume",
    "resume_service",
    "run_to_crash",
]
