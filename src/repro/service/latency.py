"""Deterministic replan-cost model for the service control plane.

The daemon's measured ``generation_seconds`` is wall-clock — useful
observability, but it depends on the host machine and the plan cache's
temperature, so it must never drive the simulated clock (byte-identical
service reports are an acceptance invariant).  This model is the
simulation-side stand-in: replan cost as a pure integer function of the
census size and whether the table cache already holds the shape,
calibrated to the paper's Fig. 3 table-generation curve (hundreds of
milliseconds for dense censuses, amortized to almost nothing by the
Sec. 7.1 cache).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import MS, US, Nanoseconds
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PlannerLatencyModel:
    """Affine simulated replan cost: ``base + per_vcpu * n``, or a flat
    cache-hit cost when the census shape is already cached (a rebind is
    an O(table) rename, not a planning pass).

    The defaults model the Tableau planner.  Dynamic schedulers
    (credit, credit2, rtds) reconfigure runqueues instead of generating
    tables; :meth:`for_scheduler` gives them a flat microsecond-scale
    cost with no cache dependence — which is exactly why the batching
    sweep is interesting: batching buys Tableau an order of magnitude
    and buys credit almost nothing.
    """

    base_ns: int = 150 * MS
    per_vcpu_ns: int = 2 * MS
    cache_hit_ns: int = 4 * MS

    def __post_init__(self) -> None:
        if self.base_ns < 0 or self.per_vcpu_ns < 0 or self.cache_hit_ns < 0:
            raise ConfigurationError("latency-model costs must be >= 0")

    def cost_ns(self, num_vcpus: int, cache_hit: bool) -> Nanoseconds:
        if cache_hit:
            return Nanoseconds(self.cache_hit_ns)
        return Nanoseconds(self.base_ns + self.per_vcpu_ns * num_vcpus)

    @classmethod
    def for_scheduler(cls, scheduler: str) -> "PlannerLatencyModel":
        """The model matching a scheduler axis value."""
        if scheduler == "tableau":
            return cls()
        # Runqueue reconfiguration: flat, cheap, cache-indifferent.
        return cls(base_ns=200 * US, per_vcpu_ns=0, cache_hit_ns=200 * US)
