"""Reproduction of *Tableau: A High-Throughput and Predictable VM
Scheduler for High-Density Workloads* (Vanga, Gujarati, Brandenburg --
EuroSys 2018).

The library has three layers:

* :mod:`repro.core` -- the Tableau planner: on-demand generation of cyclic
  scheduling tables from per-vCPU (utilization, latency) reservations,
  via partitioned EDF, C=D semi-partitioning, and DP-WRAP clustering.
* :mod:`repro.sim`, :mod:`repro.schedulers`, :mod:`repro.workloads` -- a
  discrete-event hypervisor simulator with faithful models of the
  Tableau dispatcher and of Xen's Credit, Credit2, and RTDS schedulers,
  plus the paper's workloads (stress, ping, redis intrinsic latency,
  nginx/wrk2).
* :mod:`repro.xen` -- a model of the Xen control plane: domain lifecycle,
  the planner daemon, hypercall table pushes, and lock-free
  time-synchronized table switches.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

__version__ = "1.0.0"

from repro import core, topology
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    InvariantViolation,
    LatencyInfeasibleError,
    PlanningError,
    ReproError,
    SimulationError,
    TableFormatError,
    TablePushError,
)

__all__ = [
    "AdmissionError",
    "ConfigurationError",
    "InvariantViolation",
    "LatencyInfeasibleError",
    "PlanningError",
    "ReproError",
    "SimulationError",
    "TableFormatError",
    "TablePushError",
    "core",
    "topology",
]
