"""Rule base class and the global rule registry.

A rule is a small object with a stable ``id``, a one-line
``description``, an optional package ``scope``, and a ``check`` method
yielding :class:`~repro.lint.findings.Finding` objects for one module.
Rules self-register at import time via the :func:`register` decorator;
the driver iterates :func:`iter_rules` so adding a rule is a one-file
change (define it, import the module from ``repro.lint.rules``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Type

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding


class Rule:
    """Base class for lint rules.

    Class attributes:
        id: Stable kebab-case identifier used in reports and in
            ``# repro: allow[...]`` suppression comments.
        family: Rule family (``determinism``, ``time-units``,
            ``hot-path``, ``error-handling``, ``layering``).
        description: One-line summary shown by ``lint --list-rules``.
        scope: Dotted package prefixes the rule applies to; empty means
            every linted module.
    """

    id: str = ""
    family: str = ""
    description: str = ""
    scope: tuple = ()

    def applies_to(self, ctx: ModuleContext) -> bool:
        if not self.scope:
            return True
        return ctx.in_package(*self.scope)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    # Convenience for subclasses -----------------------------------------

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 0)
        return Finding(
            rule_id=self.id,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            end_line=getattr(node, "end_lineno", line) or line,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add a rule to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def iter_rules(only: Optional[Iterable[str]] = None) -> Iterator[Rule]:
    """All registered rules, or the subset named in ``only``."""
    _load_builtin_rules()
    if only is None:
        yield from (_REGISTRY[key] for key in sorted(_REGISTRY))
        return
    wanted = list(only)
    unknown = [rule_id for rule_id in wanted if rule_id not in _REGISTRY]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    yield from (_REGISTRY[key] for key in sorted(wanted))


def rule_ids() -> List[str]:
    _load_builtin_rules()
    return sorted(_REGISTRY)


_loaded = False


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (they register on import)."""
    global _loaded
    if not _loaded:
        _loaded = True
        import repro.lint.rules  # noqa: F401
