"""Finding and report value types for the repo linter.

A :class:`Finding` is one rule violation anchored to a file and line; a
:class:`LintReport` is the outcome of one driver run (findings plus
coverage counters).  Both are plain dataclasses so reporters can render
them as text or JSON without reaching back into the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        rule_id: Stable kebab-case rule identifier (e.g.
            ``det-wallclock``) — the same id used in suppression
            comments (``# repro: allow[det-wallclock]``).
        path: File the violation was found in (as given to the driver).
        line: 1-based line number of the offending node.
        col: 0-based column offset of the offending node.
        message: Human-readable explanation of what is wrong and why.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    #: Last physical line of the offending statement (suppression
    #: comments trailing any spanned line are honoured).
    end_line: int = 0
    #: Interprocedural evidence: one human-readable hop per element,
    #: source to sink, produced by the ``flow-*`` whole-program passes
    #: (empty for single-site findings).
    trace: Tuple[str, ...] = ()

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


@dataclass(frozen=True)
class SuppressionSite:
    """One ``# repro: allow[...]`` comment and what it actually silenced.

    Attributes:
        path: File the comment lives in.
        line: 1-based line of the comment.
        rule_ids: Rule ids the comment allows, sorted.
        used_ids: The subset that silenced at least one finding in this
            run — ids outside it are *stale* (the code they excused no
            longer trips the rule).
    """

    path: str
    line: int
    rule_ids: Tuple[str, ...]
    used_ids: Tuple[str, ...]

    @property
    def stale_ids(self) -> Tuple[str, ...]:
        return tuple(r for r in self.rule_ids if r not in self.used_ids)


@dataclass
class LintReport:
    """Outcome of one lint run.

    Attributes:
        findings: Violations that were *not* suppressed, ordered by
            (path, line, rule id).
        files_checked: Number of Python files analysed.
        suppressed: Violations silenced by ``# repro: allow[...]``
            comments (counted so a report can surface suppression creep).
        parse_errors: Files that could not be parsed (each also yields a
            ``lint-parse-error`` finding).
        suppression_sites: Inventory of every allow-comment seen, with
            per-id liveness (``tableau-repro lint --list-suppressions``).
        cache_hits / cache_misses: Incremental-cache accounting (both 0
            when no cache was attached).
        flow_functions / flow_edges: Call-graph size when the flow
            passes ran (0 otherwise).
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    parse_errors: int = 0
    suppression_sites: List[SuppressionSite] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    flow_functions: int = 0
    flow_edges: int = 0
    #: The resolved project call graph when the flow passes ran (a
    #: :class:`repro.lint.flow.callgraph.CallGraph`; ``None`` otherwise).
    #: Untyped here so the value types stay import-free.
    callgraph: object = None

    @property
    def ok(self) -> bool:
        """True when the tree is clean (suppressions do not fail a run)."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def sorted_findings(self) -> List[Finding]:
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
        )
