"""repro.lint — repo-specific static analysis for the Tableau reproduction.

An AST-based pass that enforces the invariants the runtime tests cannot
see until they break: determinism of everything feeding scheduling
decisions, integer-nanosecond time flow, allocation-free ``@hotpath``
functions, transactional error handling, and the import-layer diagram.
Run it as ``tableau-repro lint src/repro`` (human output) or with
``--format=json`` for the CI artifact; suppress a finding with a
``# repro: allow[rule-id]`` comment plus a justification.

Rule families
-------------

=============== ==================================================
``det-*``       determinism (seeded RNG, no wall clock, ordered
                iteration, no env branches)
``time-*``      integer-nanosecond flow over ``*_ns`` names
``hot-*``       allocation discipline inside ``@hotpath`` functions
``err-*``       bare excepts, swallowed errors, registry rollback
``lay-*``       import layering
``flow-*``      whole-program passes over the project call graph:
                taint into deterministic scope, float escapes into
                ``*_ns`` names, transitive hot-path allocation, and
                the journal/crashpoint protocol (multi-hop traces;
                see :mod:`repro.lint.flow`)
``lint-*``      meta (parse errors, stale allow-comments)
=============== ==================================================
"""

from repro.lint.cache import LintCache
from repro.lint.driver import discover_files, lint_paths, lint_source
from repro.lint.findings import Finding, LintReport, SuppressionSite
from repro.lint.registry import Rule, iter_rules, register, rule_ids
from repro.lint.reporters import format_human, format_json, format_suppressions

__all__ = [
    "Finding",
    "LintCache",
    "LintReport",
    "Rule",
    "SuppressionSite",
    "discover_files",
    "format_human",
    "format_json",
    "format_suppressions",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "register",
    "rule_ids",
]
