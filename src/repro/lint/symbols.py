"""Project-wide symbol table for the time-unit flow check.

The time rules need to know, at a call site like
``LatencySummary(mean_ns=0.0)``, whether the ``*_ns`` parameter is a
*measured* quantity that is deliberately ``float`` (latency summaries,
cost-model charges) or a *clock* quantity that must stay an integer
(``Nanoseconds = NewType("Nanoseconds", int)``).  Annotations carry that
intent, so before any rule runs the driver builds one
:class:`ProjectSymbols` over every module in the run: a map from
``(callable name, parameter name)`` to the declared category, plus the
per-module set of names whose ``float`` type was declared explicitly.

This is deliberately name-based (no import resolution): callables are
keyed by their terminal name, which is unambiguous enough inside this
repository and keeps the pass to a single cheap AST walk per file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

#: Names that end a nanosecond-valued identifier.  ``*_per_ns`` names
#: are rates (1/ns), not durations, and are exempt.
def is_ns_name(name: Optional[str]) -> bool:
    if not name:
        return False
    lowered = name.lower()
    return lowered.endswith("_ns") and not lowered.endswith("_per_ns")


FLOAT_DECLARED = "float"
INT_DECLARED = "int"

#: Annotation spellings that mean "integer nanoseconds on the clock".
_INT_ANNOTATIONS = {"int", "Nanoseconds"}


def annotation_category(annotation: Optional[ast.expr]) -> Optional[str]:
    """Classify an annotation as float-intent, int-intent, or unknown."""
    if annotation is None:
        return None
    names = {
        node.id if isinstance(node, ast.Name) else node.attr
        for node in ast.walk(annotation)
        if isinstance(node, (ast.Name, ast.Attribute))
    }
    # String annotations (``"float"``) show up as constants.
    for node in ast.walk(annotation):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
    if "float" in names:
        return FLOAT_DECLARED
    if names & _INT_ANNOTATIONS:
        return INT_DECLARED
    return None


@dataclass
class ProjectSymbols:
    """Declared types of ``*_ns`` parameters, fields, and names."""

    #: (callable-or-class name, parameter/field name) -> category.
    ns_params: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: module -> names (globals, class fields, self attributes) that
    #: were annotated ``float`` somewhere in that module.
    float_names: Dict[str, Set[str]] = field(default_factory=dict)

    def param_category(self, callee: str, param: str) -> Optional[str]:
        return self.ns_params.get((callee, param))

    def declared_float(self, module: str, name: str) -> bool:
        return name in self.float_names.get(module, ())

    # ------------------------------------------------------------------

    def add_module(self, module: str, tree: ast.Module) -> None:
        floats = self.float_names.setdefault(module, set())
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_callable(node)
            elif isinstance(node, ast.ClassDef):
                self._add_class(node)
            elif isinstance(node, ast.AnnAssign):
                name = _target_name(node.target)
                if name and annotation_category(node.annotation) == FLOAT_DECLARED:
                    floats.add(name)

    def _add_callable(self, node) -> None:
        args = list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        )
        for arg in args:
            if not is_ns_name(arg.arg):
                continue
            category = annotation_category(arg.annotation)
            if category is not None:
                self._record(node.name, arg.arg, category)

    def _add_class(self, node: ast.ClassDef) -> None:
        # Dataclass-style fields: AnnAssign statements in the class body
        # double as ``__init__`` keyword parameters.
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign):
                name = _target_name(statement.target)
                if name and is_ns_name(name):
                    category = annotation_category(statement.annotation)
                    if category is not None:
                        self._record(node.name, name, category)

    def record(self, callee: str, param: str, category: str) -> None:
        """Merge one declaration (cache rehydration uses this directly).

        Conflicting declarations across same-named callables resolve to
        float (the permissive reading avoids false positives).
        """
        current = self.ns_params.get((callee, param))
        if current == FLOAT_DECLARED:
            return
        self.ns_params[(callee, param)] = category

    _record = record


def build_symbols(modules: Iterable[Tuple[str, ast.Module]]) -> ProjectSymbols:
    symbols = ProjectSymbols()
    for module, tree in modules:
        symbols.add_module(module, tree)
    return symbols


def _target_name(target: ast.expr) -> Optional[str]:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None
