"""Per-module analysis context: source, AST, module name, suppressions.

The driver parses each file once and hands every rule the same
:class:`ModuleContext`.  The context also owns the suppression protocol:
a violation is silenced by a ``# repro: allow[rule-id]`` comment either
trailing any line of the offending statement or on a comment line
directly above it.  Multiple ids may be listed, comma-separated::

    table = {c: t for c in cores}  # repro: allow[hot-comprehension]

    # repro: allow[det-wallclock] -- wall time feeds stats, never the clock
    started = time.perf_counter()
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.lint.symbols import ProjectSymbols

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


def parse_suppressions(lines: List[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids allowed on that line.

    Line-based fallback: matches the allow pattern anywhere on a line,
    including inside string literals.  Prefer
    :func:`parse_suppression_comments`, which tokenizes and therefore
    cannot mistake a docstring that *mentions* the syntax for a real
    suppression (the stale-allow detector made that distinction
    matter).
    """
    allowed: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        _collect_allow(text, number, allowed)
    return allowed


def parse_suppression_comments(source: str) -> Dict[int, Set[str]]:
    """Suppression map from actual ``#`` comment tokens only."""
    allowed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                _collect_allow(token.string, token.start[0], allowed)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unfinished constructs etc. — fall back to the line scan so a
        # file the AST parser accepts never loses its suppressions.
        return parse_suppressions(source.splitlines())
    return allowed


def _collect_allow(text: str, number: int, allowed: Dict[int, Set[str]]) -> None:
    match = _ALLOW_RE.search(text)
    if match is None:
        return
    ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
    if ids:
        allowed[number] = ids


def module_name_for(path: str) -> str:
    """Infer the dotted module name from a file path.

    Looks for the right-most ``repro`` path component and joins from
    there (``.../src/repro/sim/engine.py`` -> ``repro.sim.engine``;
    package ``__init__.py`` maps to the package itself).  Files outside
    a ``repro`` tree get an empty module name, which keeps package-
    scoped rules from firing on unrelated code such as test fixtures.
    """
    parts = path.replace("\\", "/").split("/")
    try:
        start = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return ""
    dotted = parts[start:]
    if dotted[-1].endswith(".py"):
        dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


@dataclass
class ModuleContext:
    """Everything a rule needs to analyse one module."""

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    type_checking_spans: List[Tuple[int, int]] = field(default_factory=list)
    #: Project-wide ``*_ns`` signature table, installed by the driver.
    symbols: Optional["ProjectSymbols"] = None
    #: This module's interprocedural findings, installed by the driver
    #: when the flow passes run (the ``flow-*`` registry rules adapt
    #: them into ordinary findings).
    flow_findings: List[object] = field(default_factory=list)

    @classmethod
    def from_source(
        cls, source: str, path: str, module: Optional[str] = None
    ) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        ctx = cls(
            path=path,
            module=module_name_for(path) if module is None else module,
            source=source,
            tree=tree,
            lines=lines,
            suppressions=parse_suppression_comments(source),
        )
        ctx.type_checking_spans = _type_checking_spans(tree)
        return ctx

    @classmethod
    def from_file(cls, path: str, module: Optional[str] = None) -> "ModuleContext":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_source(handle.read(), path, module)

    # ------------------------------------------------------------------

    def in_package(self, *prefixes: str) -> bool:
        """True when this module lives under any of the dotted prefixes."""
        for prefix in prefixes:
            if self.module == prefix or self.module.startswith(prefix + "."):
                return True
        return False

    def is_suppressed(self, rule_id: str, node: ast.AST) -> bool:
        """True when an allow-comment covers ``node`` for ``rule_id``.

        Checks the comment line directly above the node plus every
        physical line the node spans (so trailing comments work on
        multi-line statements).
        """
        if not self.suppressions:
            return False
        first = getattr(node, "lineno", 0)
        last = getattr(node, "end_lineno", first) or first
        for line in range(first - 1, last + 1):
            if rule_id in self.suppressions.get(line, ()):
                return True
        return False

    def in_type_checking(self, node: ast.AST) -> bool:
        """True when ``node`` sits inside an ``if TYPE_CHECKING:`` block."""
        line = getattr(node, "lineno", 0)
        for start, end in self.type_checking_spans:
            if start <= line <= end:
                return True
        return False


def _type_checking_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and _mentions_type_checking(node.test):
            end = node.end_lineno if node.end_lineno is not None else node.lineno
            spans.append((node.lineno, end))
    return spans


def _mentions_type_checking(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id == "TYPE_CHECKING":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING":
            return True
    return False
