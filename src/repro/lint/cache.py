"""Content-hashed incremental cache for the lint driver.

One JSON document maps each linted file to everything the driver would
otherwise recompute by parsing it: the flow :class:`ModuleSummary`, the
module's ``*_ns`` symbol contributions, its suppression comments, and
the raw (pre-suppression) single-site findings.  Entries are keyed by
the sha256 of the file's bytes, so a touched-but-identical file still
hits and an edited file misses only for itself.

Findings are additionally keyed by the *project symbol digest*: the
single-site time-unit rules consult signatures from other modules, so
an unchanged file's findings are only reusable while every ``*_ns``
declaration in the project is unchanged too.  Summaries and symbol
contributions have no such dependency and survive digest changes.

The flow passes themselves are never cached — they are whole-program
by definition — but on a warm run they start from cached summaries, so
no file is opened or parsed at all.  The cache is only consulted on
full-rule-set runs; ``--rules`` subsets bypass it entirely (their raw
findings would poison later full runs).

Writes are atomic (temp file + ``os.replace``) and any unreadable or
version-mismatched cache is discarded wholesale.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from repro.lint.flow.summary import SUMMARY_VERSION

#: Bump to invalidate every existing cache (schema or rule semantics).
CACHE_VERSION = 1


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class LintCache:
    """Load/store per-file lint products keyed by content hash."""

    def __init__(self, path: str, entries: Optional[Dict[str, dict]] = None):
        self.path = path
        self.entries: Dict[str, dict] = entries or {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: str) -> "LintCache":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return cls(path)
        if (
            not isinstance(document, dict)
            or document.get("cache_version") != CACHE_VERSION
            or document.get("summary_version") != SUMMARY_VERSION
        ):
            return cls(path)
        entries = document.get("files")
        if not isinstance(entries, dict):
            return cls(path)
        return cls(path, entries)

    # ------------------------------------------------------------------

    def lookup(self, file_path: str, digest: str) -> Optional[dict]:
        """The entry for ``file_path`` if its content still matches."""
        entry = self.entries.get(file_path)
        if entry is not None and entry.get("hash") == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, file_path: str, entry: dict) -> None:
        self.entries[file_path] = entry

    def prune(self, keep_paths) -> None:
        """Drop entries for files no longer part of the run."""
        keep = set(keep_paths)
        for stale in [p for p in self.entries if p not in keep]:
            del self.entries[stale]

    def save(self) -> None:
        document = {
            "cache_version": CACHE_VERSION,
            "summary_version": SUMMARY_VERSION,
            "files": self.entries,
        }
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
