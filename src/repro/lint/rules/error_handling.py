"""Error-handling rules (``err-*``).

PR 2 made the control path transactional: a failed replan, push, or
lifecycle operation must leave the registry, the staged table, and the
daemon history exactly as they were.  These rules guard the discipline
that keeps it that way: no bare excepts, no silently swallowed
``ReproError``s, and no registry mutation that a later fallible call
could strand without a rollback handler.

The crash-consistency work extends the discipline to *durable state*:
``err-nonatomic-write`` forbids truncating writes to files in the
persistence-bearing packages — a crash mid-``open(..., "w")`` leaves a
torn file that recovery then trusts.  Durable writes go through
:func:`repro.core.atomicio.atomic_write_bytes` (temp + ``os.replace``);
append-mode opens are exempt because appending *is* their atomicity
story (the journal's CRC framing heals a torn tail).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: The repo's error hierarchy (repro.errors) plus the stdlib roots a
#: handler could hide it behind.
_REPRO_ERRORS = {
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "PlanningError",
    "AdmissionError",
    "TableFormatError",
    "TablePushError",
    "InvariantViolation",
    "Exception",
    "BaseException",
}

#: Receiver names that hold control-plane registries.
_REGISTRY_NAMES = {"registry", "_domains", "_staged", "_retired_tables"}

#: Mutating methods on a registry object.
_MUTATORS = {
    "add",
    "remove",
    "replace",
    "restore",
    "clear",
    "update",
    "pop",
    "popitem",
    "setdefault",
    "append",
}

#: Control-plane calls documented to raise ReproError subclasses.
_FALLIBLE = {
    "replan",
    "plan",
    "push_table",
    "push_system_table",
    "rotate_table",
    "create_vm",
    "destroy_vm",
    "reconfigure_vm",
}


@register
class BareExceptRule(Rule):
    id = "err-bare-except"
    family = "error-handling"
    description = (
        "bare `except:` catches KeyboardInterrupt/SystemExit and hides "
        "programming errors; name the exceptions."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except: catches everything including "
                    "KeyboardInterrupt; name the exception types",
                )


@register
class SwallowedErrorRule(Rule):
    id = "err-swallowed-error"
    family = "error-handling"
    description = (
        "an except handler that catches a ReproError and does nothing "
        "hides control-plane failures from the audit trail."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _caught_names(node.type)
            if not (caught & _REPRO_ERRORS):
                continue
            if _handler_does_nothing(node.body):
                names = ", ".join(sorted(caught & _REPRO_ERRORS))
                yield self.finding(
                    ctx,
                    node,
                    f"handler swallows {names} without recording, "
                    "re-raising, or compensating; failures must stay "
                    "observable (log/append/raise)",
                )


def _caught_names(node: Optional[ast.expr]) -> Set[str]:
    if node is None:
        return set()
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


def _handler_does_nothing(body: List[ast.stmt]) -> bool:
    """True when the handler neither records, raises, nor compensates."""
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring / ellipsis
        if isinstance(statement, (ast.Continue, ast.Break)):
            continue
        return False
    return True


@register
class RegistryRollbackRule(Rule):
    id = "err-registry-rollback"
    family = "error-handling"
    description = (
        "in repro.xen, a registry mutation followed by a fallible "
        "control-plane call needs a rollback handler (try/except that "
        "restores and re-raises)."
    )
    scope = ("repro.xen",)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(self, ctx: ModuleContext, function) -> Iterator[Finding]:
        protected = _protected_lines(function)
        events: List[Tuple[int, str, ast.AST, str]] = []
        for node in ast.walk(function):
            mutation = _registry_mutation(node)
            if mutation is not None:
                events.append((node.lineno, "mutate", node, mutation))
            fallible = _fallible_call(node)
            if fallible is not None:
                events.append((node.lineno, "call", node, fallible))
        events.sort(key=lambda item: item[0])
        pending: List[Tuple[int, str]] = []
        for line, kind, node, name in events:
            inside = any(start <= line <= end for start, end in protected)
            if kind == "mutate":
                if not inside:
                    pending.append((line, name))
            elif pending and not inside:
                mutated_line, mutated = pending[0]
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() may raise, but the {mutated} mutation at "
                    f"line {mutated_line} has no rollback handler; wrap "
                    "the fallible call in try/except that restores the "
                    "registry and re-raises",
                )


def _protected_lines(function) -> List[Tuple[int, int]]:
    """Line spans of try-bodies whose handlers re-raise (rollback shape)."""
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(function):
        if not isinstance(node, ast.Try):
            continue
        reraises = any(
            any(isinstance(child, ast.Raise) for child in ast.walk(handler))
            for handler in node.handlers
        )
        if reraises and node.body:
            start = node.body[0].lineno
            end = node.body[-1].end_lineno or node.body[-1].lineno
            spans.append((start, end))
    return spans


def _registry_mutation(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        receiver = node.func.value
        name = (
            receiver.attr
            if isinstance(receiver, ast.Attribute)
            else receiver.id if isinstance(receiver, ast.Name) else None
        )
        if name in _REGISTRY_NAMES and node.func.attr in _MUTATORS:
            return f"{name}.{node.func.attr}"
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            inner = target.value if isinstance(target, ast.Subscript) else target
            if isinstance(inner, ast.Attribute) and inner.attr in _REGISTRY_NAMES:
                return inner.attr
    if isinstance(node, ast.Delete):
        for target in node.targets:
            inner = target.value if isinstance(target, ast.Subscript) else target
            if isinstance(inner, ast.Attribute) and inner.attr in _REGISTRY_NAMES:
                return inner.attr
    return None


def _fallible_call(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if name in _FALLIBLE:
            return name
    return None


#: ``Path`` convenience writers that truncate in place (no temp file,
#: no rename — a crash mid-call tears the destination).
_PATH_WRITERS = {"write_bytes", "write_text"}


@register
class NonatomicWriteRule(Rule):
    id = "err-nonatomic-write"
    family = "error-handling"
    description = (
        "in the persistence-bearing packages, truncating file writes "
        "(open mode 'w'/'x', Path.write_bytes/write_text) tear durable "
        "state when the process dies mid-write; use "
        "repro.core.atomicio.atomic_write_bytes/_text (temp file + "
        "atomic os.replace).  Append-mode opens are exempt."
    )
    scope = ("repro.service", "repro.core.plancache", "repro.campaign")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                modes = _open_modes(node)
                bad = sorted(m for m in modes if _truncating_mode(m))
                if bad:
                    yield self.finding(
                        ctx,
                        node,
                        f"open() with truncating mode {bad[0]!r} can tear "
                        "this file if the process dies mid-write; write "
                        "through repro.core.atomicio.atomic_write_bytes/"
                        "_text, or append (mode 'a') if this file is a "
                        "log/journal",
                    )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _PATH_WRITERS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f".{func.attr}() truncates in place (torn file on "
                    "crash); write through repro.core.atomicio."
                    "atomic_write_bytes/_text",
                )


def _open_modes(call: ast.Call) -> Set[str]:
    """Every string constant the call's mode argument could evaluate to.

    Covers a literal mode and conditional expressions over literals
    (``"a" if resume else "w"``); a fully dynamic mode yields nothing —
    the rule only flags what it can prove.
    """
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return set()
    return {
        child.value
        for child in ast.walk(mode)
        if isinstance(child, ast.Constant) and isinstance(child.value, str)
    }


def _truncating_mode(mode: str) -> bool:
    return "w" in mode or "x" in mode
