"""Built-in rule families; importing this package registers them all.

To add a rule: subclass :class:`repro.lint.registry.Rule` in the
matching family module (or a new one), decorate it with ``@register``,
and import the module here.  Give it a kebab-case ``id`` — that id is
what ``# repro: allow[...]`` suppressions and reports use — and add a
known-good/known-bad fixture pair under ``tests/lint/fixtures/``.
"""

from repro.lint.flow import rules as flow_rules  # noqa: F401  (registration)
from repro.lint.rules import (  # noqa: F401  (imported for registration)
    determinism,
    error_handling,
    hotpath,
    layering,
    time_units,
)

__all__ = [
    "determinism",
    "error_handling",
    "flow_rules",
    "hotpath",
    "layering",
    "time_units",
]
