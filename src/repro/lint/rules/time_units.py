"""Time-unit rules (``time-*``).

Simulated time is integer nanoseconds end to end (the event heap orders
``(time_ns, seq)`` tuples); the planner's tables are integer ns; only
*measured* quantities (latency summaries, modelled overhead charges) are
floats, and those declare it with a ``float`` annotation.  These rules
implement a lightweight flow check anchored on ``*_ns`` names and the
project-wide annotation table built by the driver:

* a float value flowing into a ``*_ns`` name that is not declared
  ``float`` is a bug waiting to desynchronise the clock
  (``time-float-ns``);
* true division produces floats even for exact multiples, so ``/``
  flowing into an integer ``*_ns`` name must be ``//`` or an explicit
  ``int(...)`` (``time-truediv-ns``);
* passing ``foo_ms``/``foo_us``/``foo_s`` straight into a ``*_ns``
  parameter is a unit mismatch no type checker catches, because they
  are all ints (``time-unit-mismatch``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.symbols import (
    FLOAT_DECLARED,
    ProjectSymbols,
    annotation_category,
    is_ns_name,
)

#: Identifier endings that denote a non-nanosecond time unit.
_OTHER_UNIT_SUFFIXES = (
    "_ms",
    "_us",
    "_s",
    "_sec",
    "_secs",
    "_seconds",
    "_minutes",
    "_hz",
)

#: Calls that make an integer out of anything — explicit conversion
#: means the author thought about the unit boundary.
_INT_CASTS = {"int", "round", "floor", "ceil"}


def _callee_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_int_cast(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and _callee_name(node.func) in _INT_CASTS
    )


def _contains_truediv(node: ast.expr) -> bool:
    """True division anywhere in the expression, outside int casts."""
    if _is_int_cast(node):
        return False
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _contains_truediv(node.left) or _contains_truediv(node.right)
    if isinstance(node, ast.UnaryOp):
        return _contains_truediv(node.operand)
    if isinstance(node, ast.IfExp):
        return _contains_truediv(node.body) or _contains_truediv(node.orelse)
    return False


def _is_float_expr(node: ast.expr) -> bool:
    """Expression that is statically a float (literal-driven, shallow)."""
    if _is_int_cast(node):
        return False
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        return _callee_name(node.func) == "float"
    if isinstance(node, ast.UnaryOp):
        return _is_float_expr(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return False  # owned by time-truediv-ns
        return _is_float_expr(node.left) or _is_float_expr(node.right)
    if isinstance(node, ast.IfExp):
        return _is_float_expr(node.body) or _is_float_expr(node.orelse)
    return False


class _NsFlowRule(Rule):
    """Shared walk: visit every (ns-name, value expression) flow edge."""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        symbols = ctx.symbols if ctx.symbols is not None else ProjectSymbols()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                yield from self._check_assignment(ctx, symbols, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, symbols, node)

    # ------------------------------------------------------------------

    def _check_assignment(self, ctx, symbols, node) -> Iterator[Finding]:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
            declared = None
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
            value = node.value
            declared = None
        else:  # AnnAssign
            targets = [node.target]
            value = node.value
            declared = annotation_category(node.annotation)
        if value is None:
            return
        for target in targets:
            name = _target_ns_name(target)
            if name is None:
                continue
            if declared == FLOAT_DECLARED:
                continue
            if declared is None and symbols.declared_float(ctx.module, name):
                continue
            yield from self.check_flow(ctx, node, name, value, f"assignment to {name}")

    def _check_call(self, ctx, symbols, node: ast.Call) -> Iterator[Finding]:
        callee = _callee_name(node.func)
        for keyword in node.keywords:
            if keyword.arg is None or not is_ns_name(keyword.arg):
                continue
            if (
                callee is not None
                and symbols.param_category(callee, keyword.arg) == FLOAT_DECLARED
            ):
                continue
            yield from self.check_flow(
                ctx,
                keyword.value,
                keyword.arg,
                keyword.value,
                f"argument {keyword.arg}= of {callee or 'call'}()",
            )

    def check_flow(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        name: str,
        value: ast.expr,
        where: str,
    ) -> Iterator[Finding]:
        raise NotImplementedError


def _target_ns_name(target: ast.expr) -> Optional[str]:
    if isinstance(target, ast.Name) and is_ns_name(target.id):
        return target.id
    if isinstance(target, ast.Attribute) and is_ns_name(target.attr):
        return target.attr
    return None


@register
class FloatNsRule(_NsFlowRule):
    id = "time-float-ns"
    family = "time-units"
    description = (
        "Float values must not flow into *_ns names unless the name is "
        "declared float (measured quantity); clock ns are integers."
    )

    def check_flow(self, ctx, node, name, value, where) -> Iterator[Finding]:
        if _is_float_expr(value):
            yield self.finding(
                ctx,
                node,
                f"float value flows into {where}; nanosecond clock values "
                "are integers — annotate ': float' if this is a measured "
                "quantity, or convert with int(...)",
            )


@register
class TrueDivNsRule(_NsFlowRule):
    id = "time-truediv-ns"
    family = "time-units"
    description = (
        "True division (/) flowing into a *_ns name produces floats; "
        "use // for tick arithmetic or wrap in int(...)."
    )

    def check_flow(self, ctx, node, name, value, where) -> Iterator[Finding]:
        if _contains_truediv(value):
            yield self.finding(
                ctx,
                node,
                f"true division flows into {where}; use // (or an explicit "
                "int(...) cast) so the event clock stays integral",
            )


def _contains_mult(node: ast.expr) -> bool:
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Mult):
            return True
        return _contains_mult(node.left) or _contains_mult(node.right)
    if isinstance(node, ast.UnaryOp):
        return _contains_mult(node.operand)
    return False


def _has_lossy_int_div(value: ast.expr) -> bool:
    """An int cast whose body true-divides a *product* anywhere in ``value``.

    The shape ``int(a * b / c)`` computes the product exactly but then
    divides it in float space, where a 64-bit float has already dropped
    low-order bits of any product above 2**53 — the ``int()`` just
    freezes the damage.  ``int(a / b)`` with no product on the left is
    left alone: that is the idiomatic exact-enough rate inversion
    (``int(1e9 / rate)``), and flagging it would make the cast exemption
    of ``time-truediv-ns`` meaningless.
    """
    for node in ast.walk(value):
        if not _is_int_cast(node):
            continue
        for inner in ast.walk(node.args[0] if node.args else node):
            if (
                isinstance(inner, ast.BinOp)
                and isinstance(inner.op, ast.Div)
                and _contains_mult(inner.left)
            ):
                return True
    return False


@register
class LossyDivNsRule(_NsFlowRule):
    id = "time-lossy-div-ns"
    family = "time-units"
    description = (
        "int(product / divisor) flowing into a *_ns name divides in "
        "float space before truncating; convert once (seconds_to_ns) "
        "and divide with // in integer space."
    )

    def check_flow(self, ctx, node, name, value, where) -> Iterator[Finding]:
        if _has_lossy_int_div(value):
            yield self.finding(
                ctx,
                node,
                f"lossy float division under int(...) flows into {where}; "
                "the product exceeds float precision before the divide — "
                "convert once with repro.core.seconds_to_ns (or int "
                "multiplication) and split with //",
            )


@register
class UnitMismatchRule(Rule):
    id = "time-unit-mismatch"
    family = "time-units"
    description = (
        "Passing a *_ms/_us/_s-suffixed value directly to a *_ns "
        "parameter is a unit mismatch (both are plain numbers to the "
        "type checker)."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg is None or not is_ns_name(keyword.arg):
                    continue
                source = _terminal_name(keyword.value)
                if source is None or is_ns_name(source):
                    continue
                lowered = source.lower()
                for suffix in _OTHER_UNIT_SUFFIXES:
                    if lowered.endswith(suffix):
                        yield self.finding(
                            ctx,
                            keyword.value,
                            f"{source} (unit suffix {suffix!r}) passed to "
                            f"nanosecond parameter {keyword.arg}=; convert "
                            "the unit explicitly",
                        )
                        break


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
