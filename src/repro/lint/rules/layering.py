"""Import-layering rules (``lay-*``).

The dependency direction the architecture relies on::

    errors, topology          (leaves: import nothing from repro)
        ^
    core (planner, tables)    never imports sim/schedulers/xen/health
        ^
    sim (engine, machine)     never imports xen or schedulers (runtime)
        ^
    schedulers                never imports xen
        ^
    xen (daemon, toolstack)   control plane; may use core + schedulers
        ^
    faults / health / metrics / experiments
        ^
    campaign                  orchestration; nothing below imports it

``repro.health`` reaches the planner *only* through
:class:`repro.xen.daemon.PlannerDaemon` — importing
``repro.core.planner`` (or ``Planner``/``TableCache`` from
``repro.core``) from health code bypasses the transactional replan path
PR 2 introduced.  Imports under ``if TYPE_CHECKING:`` are annotation-
only and exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: (importing package, forbidden import prefix, why).
FORBIDDEN_EDGES: Tuple[Tuple[str, str, str], ...] = (
    (
        "repro.schedulers",
        "repro.xen",
        "schedulers are hypervisor-agnostic policies; the xen control "
        "plane plugs into them, never the reverse",
    ),
    (
        "repro.core",
        "repro.sim",
        "the planner is a pure table compiler; it must not depend on "
        "the runtime simulator",
    ),
    (
        "repro.core",
        "repro.schedulers",
        "the planner emits tables; dispatch policy lives above it",
    ),
    (
        "repro.core",
        "repro.xen",
        "the planner must stay usable without the control plane",
    ),
    (
        "repro.core",
        "repro.health",
        "core is a leaf layer; supervision sits on top",
    ),
    (
        "repro.sim",
        "repro.xen",
        "the machine model knows schedulers only through the Scheduler "
        "interface; the xen layer is above it",
    ),
    (
        "repro.sim",
        "repro.schedulers",
        "the machine calls policy through repro.schedulers.base's "
        "interface at runtime; only annotations may name concrete "
        "schedulers (use `if TYPE_CHECKING:`)",
    ),
    (
        "repro.health",
        "repro.core.planner",
        "health talks to the planner only via PlannerDaemon so every "
        "recovery replan stays transactional and audited",
    ),
    (
        "repro.faults",
        "repro.health",
        "fault injection is consulted by the health layer, never the "
        "reverse",
    ),
    (
        "repro.core",
        "repro.campaign",
        "the campaign engine orchestrates experiments from above; the "
        "deterministic core must stay independent of it",
    ),
    (
        "repro.sim",
        "repro.campaign",
        "the machine model must not know about campaign orchestration",
    ),
    (
        "repro.schedulers",
        "repro.campaign",
        "dispatch policy must not depend on the experiment harness",
    ),
    (
        "repro.xen",
        "repro.campaign",
        "the control plane runs under campaigns, never the reverse",
    ),
    (
        "repro.experiments",
        "repro.campaign",
        "experiment drivers are the campaign engine's building blocks; "
        "importing campaign back would create a cycle",
    ),
    (
        "repro.core",
        "repro.service",
        "the planner must stay usable without the service control plane",
    ),
    (
        "repro.sim",
        "repro.service",
        "the machine model must not know about the tenant-facing "
        "service layer",
    ),
    (
        "repro.schedulers",
        "repro.service",
        "dispatch policy is below the control plane",
    ),
    (
        "repro.xen",
        "repro.service",
        "the service wraps PlannerDaemon from above; the daemon must "
        "not depend back on it",
    ),
    (
        "repro.faults",
        "repro.service",
        "fault plans are injected into the service, never imported by "
        "the fault layer",
    ),
    (
        "repro.health",
        "repro.service",
        "machine-level supervision and the tenant service are sibling "
        "consumers of the daemon",
    ),
    (
        "repro.experiments",
        "repro.service",
        "experiment drivers measure machines; the service scenario is "
        "driven from the campaign layer above",
    ),
)

#: Names that, imported from ``repro.core`` into health code, smuggle a
#: direct planner dependency past the module-level edge check.
_PLANNER_NAMES = {"Planner", "TableCache"}


@register
class ImportLayeringRule(Rule):
    id = "lay-import"
    family = "layering"
    description = (
        "imports must respect the layer diagram (schedulers!->xen, "
        "core!->sim, health->planner only via PlannerDaemon, ...)."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.module.startswith("repro"):
            return
        is_package = ctx.path.replace("\\", "/").endswith("/__init__.py")
        for node in ast.walk(ctx.tree):
            imports = _imported_modules(node, ctx.module, is_package)
            if not imports:
                continue
            if ctx.in_type_checking(node):
                continue
            for imported, names in imports:
                yield from self._check_edge(ctx, node, imported, names)

    def _check_edge(
        self, ctx: ModuleContext, node: ast.AST, imported: str, names: List[str]
    ) -> Iterable[Finding]:
        for source, forbidden, why in FORBIDDEN_EDGES:
            if not ctx.in_package(source):
                continue
            if imported == forbidden or imported.startswith(forbidden + "."):
                yield self.finding(
                    ctx,
                    node,
                    f"{ctx.module} imports {imported}, but {source} must "
                    f"not depend on {forbidden}: {why}",
                )
        if ctx.in_package("repro.health") and imported == "repro.core":
            smuggled = sorted(set(names) & _PLANNER_NAMES)
            if smuggled:
                yield self.finding(
                    ctx,
                    node,
                    f"{ctx.module} imports {', '.join(smuggled)} from "
                    "repro.core; health drives planning only through "
                    "repro.xen.daemon.PlannerDaemon",
                )


def _imported_modules(
    node: ast.AST, current_module: str, is_package: bool
) -> List[Tuple[str, List[str]]]:
    """(imported module, imported names) pairs for an import node."""
    if isinstance(node, ast.Import):
        return [(alias.name, []) for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        names = [alias.name for alias in node.names]
        if node.level == 0:
            return [(node.module or "", names)]
        # Relative import: resolve against the containing package (the
        # module's own package for ``__init__``, its parent otherwise).
        parts = current_module.split(".")
        drop = node.level - 1 if is_package else node.level
        base = parts[: len(parts) - drop] if drop else parts
        prefix = ".".join(base)
        module = f"{prefix}.{node.module}" if node.module else prefix
        return [(module, names)]
    return []
