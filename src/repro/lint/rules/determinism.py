"""Determinism rules (``det-*``).

The reproduction's headline property is bit-identical same-seed traces
(fingerprint ``eb99ea934a2278f6``).  Everything that can silently break
that — global RNG state, wall-clock reads, hash-order iteration, and
environment-dependent branches — is banned from the packages that feed
scheduling decisions: ``repro.sim``, ``repro.schedulers``,
``repro.core``, ``repro.faults``, and ``repro.service`` (whose report
is byte-compared across runs in CI).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

from repro.lint.patterns import (
    DETERMINISM_SCOPE,
    ENV_SUFFIXES as _ENV_SUFFIXES,
    NUMPY_SEEDED as _NUMPY_SEEDED,
    SEEDED_CONSTRUCTORS as _SEEDED_CONSTRUCTORS,
    WALLCLOCK_NAMES as _WALLCLOCK_NAMES,
    WALLCLOCK_SUFFIXES as _WALLCLOCK_SUFFIXES,
    dotted_path,
    matches_suffix as _matches_suffix,
)

__all__ = ["DETERMINISM_SCOPE", "dotted_path"]


def _walk_scope(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Pre-order walk of one scope, not descending into nested defs."""
    stack: List[ast.AST] = list(reversed(body))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


@register
class UnseededRngRule(Rule):
    id = "det-unseeded-rng"
    family = "determinism"
    description = (
        "Scheduling code must draw randomness from an explicitly seeded "
        "random.Random (or numpy Generator), never the global RNG."
    )
    scope = DETERMINISM_SCOPE

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name not in _SEEDED_CONSTRUCTORS
                ]
                if bad:
                    yield self.finding(
                        ctx,
                        node,
                        "importing global-RNG function(s) "
                        f"{', '.join(sorted(bad))} from random; construct a "
                        "seeded random.Random(seed) instead",
                    )
            elif isinstance(node, ast.Call):
                path = dotted_path(node.func)
                if not path:
                    continue
                parts = path.split(".")
                if (
                    parts[0] == "random"
                    and len(parts) == 2
                    and parts[1] not in _SEEDED_CONSTRUCTORS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"call to global RNG random.{parts[1]}(); scheduling "
                        "decisions must use a seeded random.Random instance",
                    )
                elif (
                    len(parts) >= 3
                    and parts[-2] == "random"
                    and parts[0] in ("np", "numpy")
                    and parts[-1] not in _NUMPY_SEEDED
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"call to numpy global RNG {path}(); use "
                        "numpy.random.default_rng(seed)",
                    )


@register
class WallClockRule(Rule):
    id = "det-wallclock"
    family = "determinism"
    description = (
        "Scheduling code runs on the simulated clock; wall-clock reads "
        "(time.time, perf_counter, datetime.now, ...) are forbidden."
    )
    scope = DETERMINISM_SCOPE

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name in _WALLCLOCK_NAMES
                ]
                if bad:
                    yield self.finding(
                        ctx,
                        node,
                        f"importing wall-clock function(s) {', '.join(sorted(bad))} "
                        "from time into scheduling code",
                    )
            elif isinstance(node, ast.Call):
                path = dotted_path(node.func)
                if path and _matches_suffix(path, _WALLCLOCK_SUFFIXES):
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock read {path}(); simulated components must "
                        "take time from SimEngine.now",
                    )


@register
class EnvBranchRule(Rule):
    id = "det-env-branch"
    family = "determinism"
    description = (
        "Scheduling code must not branch on the process environment "
        "(os.environ, os.cpu_count, platform, hostname)."
    )
    scope = DETERMINISM_SCOPE

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                path = dotted_path(node)
                if path and _matches_suffix(path, _ENV_SUFFIXES):
                    yield self.finding(
                        ctx,
                        node,
                        f"environment-dependent value {path} in scheduling "
                        "code; behaviour must not vary across hosts",
                    )


@register
class UnorderedIterationRule(Rule):
    id = "det-unordered-iter"
    family = "determinism"
    description = (
        "Iterating a set (hash order, varies with PYTHONHASHSEED) or "
        "popping dict items positionally must not feed scheduling "
        "decisions; iterate sorted(...) or keep a list."
    )
    scope = DETERMINISM_SCOPE

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        # Scopes are checked independently so local set bindings do not
        # leak across functions.
        yield from self._check_scope(ctx, ctx.tree.body, set())
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, node.body, set())
            elif isinstance(node, ast.Call):
                # dict.popitem() pops in unspecified-intent order; the
                # ordered variants pass an explicit argument.
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "popitem"
                    and not node.args
                    and not node.keywords
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "bare dict.popitem() feeding scheduling state; pop an "
                        "explicit key (or OrderedDict.popitem(last=False))",
                    )

    # ------------------------------------------------------------------

    def _check_scope(
        self, ctx: ModuleContext, body: List[ast.stmt], set_names: Set[str]
    ) -> Iterator[Finding]:
        """Walk one function (or module) body tracking local set bindings."""
        for node in _walk_scope(body):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if self._is_set_expr(node.value, set_names):
                            set_names.add(target.id)
                        else:
                            set_names.discard(target.id)
            iterated = self._iterated_expr(node)
            if iterated is not None and self._is_set_expr(iterated, set_names):
                yield self.finding(
                    ctx,
                    node,
                    "iteration over a set has hash-dependent order; wrap "
                    "in sorted(...) or use an ordered container",
                )

    @staticmethod
    def _iterated_expr(node: ast.AST) -> Optional[ast.expr]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return node.iter
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return node.generators[0].iter
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            # Converting a set to an ordered container preserves hash
            # order; sorted()/len()/min()/max()/sum() are order-safe.
            if node.func.id in ("list", "tuple", "iter", "enumerate") and node.args:
                return node.args[0]
        return None

    @staticmethod
    def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # Set algebra (union/intersection/difference) stays a set.
            return UnorderedIterationRule._is_set_expr(
                node.left, set_names
            ) or UnorderedIterationRule._is_set_expr(node.right, set_names)
        return False
