"""Hot-path allocation rules (``hot-*``).

Functions marked ``@hotpath`` (see :mod:`repro.hotpath`) are the
dispatch-rate-critical paths whose 2x throughput win PR 1 measured:
``TableauScheduler.pick_next`` (with its inlined L2 settle),
``SimEngine.run_until``, and the machine's resched path.  CPython
allocates for comprehensions, closure cells, f-string assembly, and
``*args`` packing on every call, so those constructs are banned inside
marked functions — anything slow must move to assembly/attach time.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register


def is_hotpath_marked(node) -> bool:
    """True when a function carries the ``@hotpath`` decorator."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "hotpath":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "hotpath":
            return True
    return False


def _marked_functions(tree: ast.Module) -> List[ast.FunctionDef]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and is_hotpath_marked(node)
    ]


def _walk_body(function) -> Iterator[ast.AST]:
    """Every node of the function body (the def's own header excluded)."""
    for statement in function.body:
        yield from ast.walk(statement)


class _HotRule(Rule):
    family = "hot-path"
    scope = ()

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for function in _marked_functions(ctx.tree):
            yield from self.check_function(ctx, function)

    def check_function(self, ctx, function) -> Iterator[Finding]:
        raise NotImplementedError


@register
class HotComprehensionRule(_HotRule):
    id = "hot-comprehension"
    description = (
        "@hotpath functions must not build comprehensions or generator "
        "expressions (a fresh object + frame per call)."
    )

    def check_function(self, ctx, function) -> Iterator[Finding]:
        for node in _walk_body(function):
            if isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                kind = type(node).__name__
                yield self.finding(
                    ctx,
                    node,
                    f"{kind} inside @hotpath {function.name}(); hoist the "
                    "allocation out of the dispatch path or use an "
                    "explicit loop over a preallocated container",
                )


@register
class HotClosureRule(_HotRule):
    id = "hot-closure"
    description = (
        "@hotpath functions must not define closures or lambdas (cell "
        "and function-object allocation per call); bind callbacks once "
        "at assembly time."
    )

    def check_function(self, ctx, function) -> Iterator[Finding]:
        for node in _walk_body(function):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                name = getattr(node, "name", "<lambda>")
                yield self.finding(
                    ctx,
                    node,
                    f"nested function {name} inside @hotpath "
                    f"{function.name}(); bind callbacks once at assembly "
                    "(see _Cpu.resched_cb) instead of per decision",
                )


@register
class HotFStringRule(_HotRule):
    id = "hot-fstring"
    description = (
        "@hotpath functions must not assemble f-strings (per-call "
        "formatting and allocation); error paths may suppress with a "
        "justification."
    )

    def check_function(self, ctx, function) -> Iterator[Finding]:
        for node in _walk_body(function):
            if isinstance(node, ast.JoinedStr):
                yield self.finding(
                    ctx,
                    node,
                    f"f-string inside @hotpath {function.name}(); format "
                    "lazily or precompute the string",
                )


@register
class HotStarArgsRule(_HotRule):
    id = "hot-star-args"
    description = (
        "@hotpath functions must not pack/unpack *args/**kwargs (tuple "
        "and dict allocation per call)."
    )

    def check_function(self, ctx, function) -> Iterator[Finding]:
        if function.args.vararg is not None:
            yield self.finding(
                ctx,
                function,
                f"@hotpath {function.name}() declares *{function.args.vararg.arg}; "
                "hot entry points take a fixed signature",
            )
        if function.args.kwarg is not None:
            yield self.finding(
                ctx,
                function,
                f"@hotpath {function.name}() declares **{function.args.kwarg.arg}; "
                "hot entry points take a fixed signature",
            )
        for node in _walk_body(function):
            if isinstance(node, ast.Call):
                for arg in node.args:
                    if isinstance(arg, ast.Starred):
                        yield self.finding(
                            ctx,
                            arg,
                            f"*-unpacking in a call inside @hotpath "
                            f"{function.name}(); pass arguments positionally",
                        )
                for keyword in node.keywords:
                    if keyword.arg is None:
                        yield self.finding(
                            ctx,
                            keyword.value,
                            f"**-unpacking in a call inside @hotpath "
                            f"{function.name}(); pass arguments explicitly",
                        )
