"""Render a :class:`~repro.lint.findings.LintReport` for humans or CI.

The human format is one ``path:line:col rule-id message`` line per
finding — plus, for interprocedural (``flow-*``) findings, the indented
source→sink trace naming every call edge — and a summary; the JSON
format is a stable document the CI job uploads as an artifact
(``findings`` list, suppression inventory, counters), so downstream
tooling can diff runs.  :func:`format_suppressions` renders the
allow-comment inventory behind ``lint --list-suppressions``.
"""

from __future__ import annotations

import json

from repro.lint.findings import LintReport


def format_human(report: LintReport) -> str:
    lines = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: {finding.rule_id}: {finding.message}")
        for hop in finding.trace:
            lines.append(f"    | {hop}")
    status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
    summary = (
        f"checked {report.files_checked} file(s): {status}"
        f" ({report.suppressed} suppressed)"
    )
    if report.flow_functions:
        summary += (
            f" [flow: {report.flow_functions} functions, "
            f"{report.flow_edges} edges]"
        )
    if report.cache_hits or report.cache_misses:
        summary += (
            f" [cache: {report.cache_hits} hit(s), "
            f"{report.cache_misses} miss(es)]"
        )
    lines.append(summary)
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    document = {
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "parse_errors": report.parse_errors,
        "ok": report.ok,
        "flow": {
            "functions": report.flow_functions,
            "edges": report.flow_edges,
        },
        "cache": {
            "hits": report.cache_hits,
            "misses": report.cache_misses,
        },
        "findings": [
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col + 1,
                "message": finding.message,
                "trace": list(finding.trace),
            }
            for finding in report.findings
        ],
        "suppressions": [
            {
                "path": site.path,
                "line": site.line,
                "rules": list(site.rule_ids),
                "used": list(site.used_ids),
                "stale": list(site.stale_ids),
            }
            for site in report.suppression_sites
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def format_suppressions(report: LintReport) -> str:
    """One line per allow-comment with per-id liveness.

    The ``live``/``STALE`` tag is per rule id: an id is live when it
    silenced at least one finding in this run.  The same format is
    diffed against the checked-in allowlist in CI, so the line shape is
    part of the contract — ``path:line rule-id live|STALE``.
    """
    lines = []
    for site in sorted(report.suppression_sites, key=lambda s: (s.path, s.line)):
        for rule_id in site.rule_ids:
            tag = "live" if rule_id in site.used_ids else "STALE"
            lines.append(f"{site.path}:{site.line} {rule_id} {tag}")
    lines.append(f"{len(lines)} suppression id(s)")
    return "\n".join(lines)
