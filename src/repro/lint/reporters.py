"""Render a :class:`~repro.lint.findings.LintReport` for humans or CI.

The human format is one ``path:line:col rule-id message`` line per
finding plus a summary; the JSON format is a stable document the CI job
uploads as an artifact (``findings`` list plus counters), so downstream
tooling can diff runs.
"""

from __future__ import annotations

import json

from repro.lint.findings import LintReport


def format_human(report: LintReport) -> str:
    lines = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: {finding.rule_id}: {finding.message}")
    status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
    lines.append(
        f"checked {report.files_checked} file(s): {status}"
        f" ({report.suppressed} suppressed)"
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    document = {
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "parse_errors": report.parse_errors,
        "ok": report.ok,
        "findings": [
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col + 1,
                "message": finding.message,
            }
            for finding in report.findings
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
