"""The lint driver: discover files, run rules, collect findings.

Two passes: the first parses every file and builds the project-wide
:class:`~repro.lint.symbols.ProjectSymbols` table (annotations of
``*_ns`` parameters and fields); the second runs every applicable rule
over every module, filtering findings through the suppression comments.
Files are visited in sorted order so reports are deterministic.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, LintReport
from repro.lint.registry import Rule, iter_rules
from repro.lint.symbols import ProjectSymbols, build_symbols

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".ruff_cache"}


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                for name in sorted(names):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        elif path.endswith(".py"):
            found.append(path)
    return sorted(dict.fromkeys(found))


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with the selected rules."""
    report = LintReport()
    contexts: List[ModuleContext] = []
    for path in discover_files(paths):
        try:
            contexts.append(ModuleContext.from_file(path))
        except SyntaxError as error:
            report.parse_errors += 1
            report.findings.append(
                Finding(
                    rule_id="lint-parse-error",
                    path=path,
                    line=error.lineno or 0,
                    col=(error.offset or 1) - 1,
                    message=f"file does not parse: {error.msg}",
                )
            )
    report.files_checked = len(contexts)
    symbols = build_symbols((ctx.module, ctx.tree) for ctx in contexts)
    selected = list(iter_rules(rules))
    for ctx in contexts:
        _check_module(ctx, selected, symbols, report)
    report.findings = report.sorted_findings()
    return report


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    rules: Optional[Iterable[str]] = None,
    symbols: Optional[ProjectSymbols] = None,
) -> LintReport:
    """Lint one in-memory module (the test harness entry point).

    ``module`` overrides the dotted module name inferred from ``path``
    so fixtures can exercise package-scoped rules without living inside
    the real tree.
    """
    report = LintReport()
    ctx = ModuleContext.from_source(source, path, module)
    report.files_checked = 1
    if symbols is None:
        symbols = build_symbols([(ctx.module, ctx.tree)])
    _check_module(ctx, list(iter_rules(rules)), symbols, report)
    report.findings = report.sorted_findings()
    return report


def _check_module(
    ctx: ModuleContext,
    rules: Sequence[Rule],
    symbols: ProjectSymbols,
    report: LintReport,
) -> None:
    ctx.symbols = symbols
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            anchor = ast.Constant(value=None)
            anchor.lineno = finding.line  # type: ignore[attr-defined]
            anchor.end_lineno = finding.end_line or finding.line  # type: ignore[attr-defined]
            if ctx.is_suppressed(finding.rule_id, anchor):
                report.suppressed += 1
            else:
                report.findings.append(finding)
