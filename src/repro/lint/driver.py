"""The lint driver: discover files, run rules, collect findings.

A full run has four stages, all deterministic (files sorted, fixpoints
order-independent):

1. **Extract** — every file is parsed once and reduced to its
   per-module products: the suppression map, its ``*_ns`` symbol
   contributions, and the flow :class:`ModuleSummary`.  With a cache
   attached (``--cache``), files whose content hash matches skip this
   stage entirely; with ``jobs > 1`` the misses are parsed on a process
   pool.
2. **Single-site rules** — every registered per-module rule runs over
   each parsed module, producing *raw* (pre-suppression) findings.
   Cached raw findings are reused while the project's ``*_ns`` symbol
   digest is unchanged (the time-unit rules read other modules'
   signatures, so a signature edit anywhere invalidates findings — but
   not summaries — everywhere).
3. **Flow passes** — the whole-program call graph is built from the
   summaries and the interprocedural passes run
   (:mod:`repro.lint.flow`); they are never cached, but on a warm run
   they start from cached summaries so no file is reopened.
4. **Assemble** — raw findings filter through the allow-comments; which
   allow silenced what is recorded, yielding the suppression inventory
   (``--list-suppressions``) and, on full runs, ``lint-stale-allow``
   findings for allows that silenced nothing.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.cache import LintCache, content_hash
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, LintReport, SuppressionSite
from repro.lint.flow.callgraph import build_call_graph
from repro.lint.flow.engine import FlowAnalysis, FlowFinding
from repro.lint.flow.rules import FLOW_RULE_IDS
from repro.lint.flow.summary import ModuleSummary, summarize_module
from repro.lint.registry import Rule, iter_rules
from repro.lint.symbols import ProjectSymbols, build_symbols

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".ruff_cache"}


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                for name in sorted(names):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        elif path.endswith(".py"):
            found.append(path)
    return sorted(dict.fromkeys(found))


# ----------------------------------------------------------------------
# Per-file record
# ----------------------------------------------------------------------


@dataclass
class _FileRecord:
    path: str
    digest: str
    module: str = ""
    source: str = ""
    summary: Optional[ModuleSummary] = None
    suppressions: Dict[int, Set[str]] = dc_field(default_factory=dict)
    contrib: Dict[str, list] = dc_field(
        default_factory=lambda: {"ns_params": [], "float_names": []}
    )
    #: Raw single-site findings (pre-suppression); ``None`` = not yet
    #: computed for the current symbol digest.
    raw: Optional[List[Finding]] = None
    ctx: Optional[ModuleContext] = None
    parse_error: Optional[dict] = None
    cached_entry: Optional[dict] = None


def _symbols_contrib(module: str, tree: ast.Module) -> Dict[str, list]:
    scratch = ProjectSymbols()
    scratch.add_module(module, tree)
    return {
        "ns_params": sorted(
            [callee, param, category]
            for (callee, param), category in scratch.ns_params.items()
        ),
        "float_names": sorted(scratch.float_names.get(module, ())),
    }


def _merge_symbols(records: Sequence[_FileRecord]) -> ProjectSymbols:
    symbols = ProjectSymbols()
    for record in records:
        if record.parse_error is not None:
            continue
        for callee, param, category in record.contrib["ns_params"]:
            symbols.record(callee, param, category)
        if record.module and record.contrib["float_names"]:
            symbols.float_names.setdefault(record.module, set()).update(
                record.contrib["float_names"]
            )
    return symbols


def _symbols_digest(symbols: ProjectSymbols) -> str:
    payload = json.dumps(
        {
            "ns": sorted(
                [callee, param, category]
                for (callee, param), category in symbols.ns_params.items()
            ),
            "float": {
                module: sorted(names)
                for module, names in symbols.float_names.items()
                if names
            },
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _finding_to_dict(finding: Finding) -> dict:
    return {
        "rule_id": finding.rule_id,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "end_line": finding.end_line,
    }


def _finding_from_dict(data: dict, path: str) -> Finding:
    return Finding(
        rule_id=data["rule_id"],
        path=path,
        line=data["line"],
        col=data["col"],
        message=data["message"],
        end_line=data.get("end_line", data["line"]),
    )


def _parse_error_dict(error: SyntaxError) -> dict:
    return {
        "line": error.lineno or 0,
        "col": (error.offset or 1) - 1,
        "message": f"file does not parse: {error.msg}",
    }


def _extract_into(record: _FileRecord, source: str) -> None:
    try:
        ctx = ModuleContext.from_source(source, record.path)
    except SyntaxError as error:
        record.parse_error = _parse_error_dict(error)
        return
    record.ctx = ctx
    record.module = ctx.module
    record.suppressions = ctx.suppressions
    record.summary = summarize_module(
        ctx.module, record.path, ctx.tree, ctx.suppressions
    )
    record.contrib = _symbols_contrib(ctx.module, ctx.tree)


def _hydrate_from_cache(record: _FileRecord, entry: dict) -> None:
    record.cached_entry = entry
    record.module = entry.get("module", "")
    if entry.get("parse_error") is not None:
        record.parse_error = entry["parse_error"]
        return
    record.summary = ModuleSummary.from_dict(entry["summary"])
    record.suppressions = {
        int(line): set(ids) for line, ids in entry["suppressions"].items()
    }
    record.contrib = entry["contrib"]


def _run_site_rules(
    ctx: ModuleContext, rules: Sequence[Rule], symbols: ProjectSymbols
) -> List[Finding]:
    ctx.symbols = symbols
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies_to(ctx):
            raw.extend(rule.check(ctx))
    return raw


# ----------------------------------------------------------------------
# Process-pool workers (module level for pickling)
# ----------------------------------------------------------------------


def _extract_worker(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    record = _FileRecord(path=path, digest="")
    _extract_into(record, source)
    if record.parse_error is not None:
        return {"path": path, "parse_error": record.parse_error, "module": ""}
    return {
        "path": path,
        "parse_error": None,
        "module": record.module,
        "summary": record.summary.to_dict(),
        "suppressions": {
            str(line): sorted(ids) for line, ids in record.suppressions.items()
        },
        "contrib": record.contrib,
    }


_WORKER_SYMBOLS: Optional[ProjectSymbols] = None


def _init_rules_worker(symbols: ProjectSymbols) -> None:
    global _WORKER_SYMBOLS
    _WORKER_SYMBOLS = symbols


def _rules_worker(args: Tuple[str, Tuple[str, ...]]) -> Tuple[str, list]:
    path, rule_ids = args
    ctx = ModuleContext.from_file(path)
    symbols = _WORKER_SYMBOLS or build_symbols([(ctx.module, ctx.tree)])
    raw = _run_site_rules(ctx, list(iter_rules(rule_ids)), symbols)
    return path, [_finding_to_dict(f) for f in raw]


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Iterable[str]] = None,
    *,
    flow: bool = True,
    cache_path: Optional[str] = None,
    jobs: int = 1,
) -> LintReport:
    """Lint every Python file under ``paths`` with the selected rules.

    ``flow`` gates the whole-program passes (on by default; a ``rules``
    subset naming no ``flow-*`` id skips them regardless).
    ``cache_path`` attaches the incremental cache — full-rule-set runs
    only.  ``jobs > 1`` parses cache misses and runs the single-site
    rules on a process pool.
    """
    report = LintReport()
    files = discover_files(paths)
    selected = list(iter_rules(rules))
    selected_ids = {rule.id for rule in selected}
    site_rules = [
        rule
        for rule in selected
        if rule.id not in FLOW_RULE_IDS and rule.id != "lint-stale-allow"
    ]
    site_rule_ids = tuple(sorted(rule.id for rule in site_rules))
    run_flow = flow and bool(selected_ids & FLOW_RULE_IDS)
    full_run = rules is None
    cache = (
        LintCache.load(cache_path) if (cache_path and full_run) else None
    )

    # Stage 1: extract (cache hits hydrate, misses parse).
    records: List[_FileRecord] = []
    misses: List[_FileRecord] = []
    for path in files:
        with open(path, "rb") as handle:
            data = handle.read()
        record = _FileRecord(path=path, digest=content_hash(data))
        entry = cache.lookup(path, record.digest) if cache is not None else None
        if entry is not None:
            _hydrate_from_cache(record, entry)
        else:
            record.source = data.decode("utf-8")
            misses.append(record)
        records.append(record)
    if jobs > 1 and len(misses) > 1:
        by_path = {record.path: record for record in misses}
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for result in pool.map(
                _extract_worker, sorted(by_path), chunksize=4
            ):
                record = by_path[result["path"]]
                if result["parse_error"] is not None:
                    record.parse_error = result["parse_error"]
                    continue
                record.module = result["module"]
                record.summary = ModuleSummary.from_dict(result["summary"])
                record.suppressions = {
                    int(line): set(ids)
                    for line, ids in result["suppressions"].items()
                }
                record.contrib = result["contrib"]
    else:
        for record in misses:
            _extract_into(record, record.source)
    for record in records:
        record.source = ""  # parsed (or failed); free the memory

    report.files_checked = sum(
        1 for record in records if record.parse_error is None
    )

    # Stage 2: single-site rules (cached raw findings where valid).
    symbols = _merge_symbols(records)
    digest_ns = _symbols_digest(symbols)
    need_rules: List[_FileRecord] = []
    for record in records:
        if record.parse_error is not None:
            continue
        if full_run and record.cached_entry is not None:
            cached = record.cached_entry.get("findings", {}).get(digest_ns)
            if cached is not None:
                record.raw = [
                    _finding_from_dict(item, record.path) for item in cached
                ]
                continue
        need_rules.append(record)
    if jobs > 1 and len(need_rules) > 1:
        by_path = {record.path: record for record in need_rules}
        tasks = [(path, site_rule_ids) for path in sorted(by_path)]
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_rules_worker,
            initargs=(symbols,),
        ) as pool:
            for path, raw_dicts in pool.map(_rules_worker, tasks, chunksize=4):
                by_path[path].raw = [
                    _finding_from_dict(item, path) for item in raw_dicts
                ]
    else:
        for record in need_rules:
            ctx = record.ctx or ModuleContext.from_file(record.path)
            record.raw = _run_site_rules(ctx, site_rules, symbols)

    # Stage 3: flow passes over the summaries.
    flow_results: Dict[str, List[FlowFinding]] = {}
    flow_owner: Dict[str, str] = {}
    if run_flow:
        summaries: Dict[str, ModuleSummary] = {}
        for record in records:
            if record.summary is None or not record.module:
                continue
            if record.module in summaries:
                continue  # first sorted path wins on module collisions
            summaries[record.module] = record.summary
            flow_owner[record.module] = record.path
        graph = build_call_graph(summaries)
        analysis = FlowAnalysis(graph, symbols).run()
        flow_results = analysis.findings
        report.flow_functions = len(graph.nodes)
        report.flow_edges = graph.edge_count()
        report.callgraph = graph

    # Stage 4: suppression filtering + inventory + staleness.
    used: Dict[str, Dict[int, Set[str]]] = {}
    for record in records:
        if record.parse_error is not None:
            report.parse_errors += 1
            report.findings.append(
                Finding(
                    rule_id="lint-parse-error",
                    path=record.path,
                    line=record.parse_error["line"],
                    col=record.parse_error["col"],
                    message=record.parse_error["message"],
                )
            )
            continue
        candidates = list(record.raw or [])
        if flow_owner.get(record.module) == record.path:
            for flow_finding in flow_results.get(record.module, []):
                if flow_finding.rule_id not in selected_ids:
                    continue
                candidates.append(
                    Finding(
                        rule_id=flow_finding.rule_id,
                        path=record.path,
                        line=flow_finding.line,
                        col=flow_finding.col,
                        message=flow_finding.message,
                        end_line=flow_finding.line,
                        trace=tuple(flow_finding.trace),
                    )
                )
        for finding in candidates:
            match_line = _match_suppression(record.suppressions, finding)
            if match_line is not None:
                report.suppressed += 1
                used.setdefault(record.path, {}).setdefault(
                    match_line, set()
                ).add(finding.rule_id)
            else:
                report.findings.append(finding)

    detect_stale = full_run and flow
    for record in records:
        if record.parse_error is not None:
            continue
        path_used = used.get(record.path, {})
        for line in sorted(record.suppressions):
            site = SuppressionSite(
                path=record.path,
                line=line,
                rule_ids=tuple(sorted(record.suppressions[line])),
                used_ids=tuple(sorted(path_used.get(line, ()))),
            )
            report.suppression_sites.append(site)
            if not detect_stale:
                continue
            for stale_id in site.stale_ids:
                if stale_id == "lint-stale-allow":
                    continue
                finding = Finding(
                    rule_id="lint-stale-allow",
                    path=record.path,
                    line=line,
                    col=0,
                    message=(
                        f"allow[{stale_id}] no longer suppresses any "
                        f"finding here; remove it (suppression debt hides "
                        f"real regressions)"
                    ),
                    end_line=line,
                )
                if _match_suppression(record.suppressions, finding) is not None:
                    report.suppressed += 1
                else:
                    report.findings.append(finding)

    # Persist the cache for the next run.
    if cache is not None:
        for record in records:
            entry: dict = {"hash": record.digest, "module": record.module}
            if record.parse_error is not None:
                entry["parse_error"] = record.parse_error
            else:
                assert record.summary is not None and record.raw is not None
                entry["summary"] = record.summary.to_dict()
                entry["suppressions"] = {
                    str(line): sorted(ids)
                    for line, ids in record.suppressions.items()
                }
                entry["contrib"] = record.contrib
                entry["findings"] = {
                    digest_ns: [_finding_to_dict(f) for f in record.raw]
                }
            cache.store(record.path, entry)
        cache.prune(files)
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
        cache.save()

    report.findings = report.sorted_findings()
    return report


def _match_suppression(
    suppressions: Dict[int, Set[str]], finding: Finding
) -> Optional[int]:
    """The allow-comment line silencing ``finding``, or ``None``.

    Same protocol as :meth:`ModuleContext.is_suppressed`: the line
    above the statement or any physical line it spans.
    """
    if not suppressions:
        return None
    first = finding.line
    last = finding.end_line or first
    for line in range(first - 1, last + 1):
        if finding.rule_id in suppressions.get(line, ()):
            return line
    return None


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    rules: Optional[Iterable[str]] = None,
    symbols: Optional[ProjectSymbols] = None,
    flow: bool = True,
) -> LintReport:
    """Lint one in-memory module (the test harness entry point).

    ``module`` overrides the dotted module name inferred from ``path``
    so fixtures can exercise package-scoped rules without living inside
    the real tree.  With ``flow`` enabled the interprocedural passes run
    over this single module (cross-module laundering needs
    :func:`lint_paths` over a package tree).
    """
    report = LintReport()
    ctx = ModuleContext.from_source(source, path, module)
    report.files_checked = 1
    if symbols is None:
        symbols = build_symbols([(ctx.module, ctx.tree)])
    if flow and ctx.module:
        summary = summarize_module(ctx.module, path, ctx.tree, ctx.suppressions)
        graph = build_call_graph({ctx.module: summary})
        analysis = FlowAnalysis(graph, symbols).run()
        ctx.flow_findings = list(analysis.findings.get(ctx.module, []))
        report.flow_functions = len(graph.nodes)
        report.flow_edges = graph.edge_count()
    _check_module(ctx, list(iter_rules(rules)), symbols, report)
    report.findings = report.sorted_findings()
    return report


def _check_module(
    ctx: ModuleContext,
    rules: Sequence[Rule],
    symbols: ProjectSymbols,
    report: LintReport,
) -> None:
    ctx.symbols = symbols
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            anchor = ast.Constant(value=None)
            anchor.lineno = finding.line  # type: ignore[attr-defined]
            anchor.end_lineno = finding.end_line or finding.line  # type: ignore[attr-defined]
            if ctx.is_suppressed(finding.rule_id, anchor):
                report.suppressed += 1
            else:
                report.findings.append(finding)
