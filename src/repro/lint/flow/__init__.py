"""repro.lint.flow — whole-program flow analysis for the repo linter.

The per-function rules of :mod:`repro.lint.rules` see one body at a
time, so an invariant violation laundered through a call — a wall-clock
read returned by a helper, a float reaching nanosecond arithmetic two
frames up, an allocating function *called from* ``@hotpath`` code, an
effect the journal never covered — is invisible to them.  This package
closes that gap with four interprocedural passes over a project-wide
call graph:

``flow-taint-*``
    Wall-clock, unseeded-RNG, and environment values tracked across
    call/return boundaries into the deterministic packages, reported as
    multi-hop source→sink traces.
``flow-unit-escape``
    Integer-nanosecond typing propagated through signatures and
    returns, so a float (or true division) entering ns arithmetic
    anywhere upstream is flagged at the point it lands in a ``*_ns``
    name.
``flow-hot-transitive``
    Every function reachable from a ``@hotpath`` root inherits the
    allocation discipline; ``@coldpath`` cuts traversal at deliberate
    slow paths.
``flow-unjournaled-effect`` / ``flow-effect-order``
    The WAL protocol of the crash-consistent control plane (PR 8)
    encoded as checkable rules over journal appends, crashpoints, and
    state mutations in ``repro.service`` / ``repro.core.plancache``.

The pipeline: :mod:`.summary` reduces each module to a serialisable
:class:`~repro.lint.flow.summary.ModuleSummary` (cached by content hash
— see :mod:`repro.lint.cache`); :mod:`.callgraph` resolves call sites
to a project :class:`~repro.lint.flow.callgraph.CallGraph` (methods via
class-hierarchy analysis, ``functools.partial`` edges where the target
is nameable); :mod:`.engine` runs the fixpoints and materialises
per-module findings; :mod:`.rules` adapts those findings into the
ordinary rule registry so selection, suppression, and reporting work
exactly as for single-site rules.
"""

from repro.lint.flow.callgraph import CallGraph, build_call_graph
from repro.lint.flow.engine import FlowAnalysis
from repro.lint.flow.summary import ModuleSummary, summarize_module

__all__ = [
    "CallGraph",
    "FlowAnalysis",
    "ModuleSummary",
    "build_call_graph",
    "summarize_module",
]
