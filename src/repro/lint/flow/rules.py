"""Registry adapters for the whole-program flow findings.

The flow engine (:mod:`repro.lint.flow.engine`) produces
:class:`~repro.lint.flow.engine.FlowFinding` records per module; these
rule classes exist so the interprocedural passes participate in the
ordinary rule machinery — ``--list-rules`` documents them, ``--rules``
selects them, and ``# repro: allow[flow-...]`` comments suppress them
at the reported line like any single-site rule.

For single-module runs (:func:`repro.lint.driver.lint_source`, the
fixture harness) the driver attaches the module's flow findings to
``ctx.flow_findings`` and ``check`` converts them; for project runs the
driver converts engine output directly (cached modules have no AST
context to adapt through) — same records, same filtering, one producer.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register


class _FlowAdapterRule(Rule):
    family = "flow"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for flow_finding in getattr(ctx, "flow_findings", ()) or ():
            if flow_finding.rule_id != self.id:
                continue
            yield Finding(
                rule_id=self.id,
                path=ctx.path,
                line=flow_finding.line,
                col=flow_finding.col,
                message=flow_finding.message,
                end_line=flow_finding.line,
                trace=flow_finding.trace,
            )


@register
class FlowTaintWallclock(_FlowAdapterRule):
    id = "flow-taint-wallclock"
    description = (
        "wall-clock reading reaches deterministic scope through calls "
        "(reported with the full source-to-sink trace)"
    )


@register
class FlowTaintRng(_FlowAdapterRule):
    id = "flow-taint-rng"
    description = (
        "unseeded RNG draw reaches deterministic scope through calls"
    )


@register
class FlowTaintEnv(_FlowAdapterRule):
    id = "flow-taint-env"
    description = (
        "environment probe value reaches deterministic scope through calls"
    )


@register
class FlowUnitEscape(_FlowAdapterRule):
    id = "flow-unit-escape"
    description = (
        "float-returning call result lands in an integer-nanosecond name"
    )


@register
class FlowHotTransitive(_FlowAdapterRule):
    id = "flow-hot-transitive"
    description = (
        "per-call allocation in a function reachable from a @hotpath root "
        "(mark deliberate slow paths @coldpath)"
    )


@register
class FlowUnjournaledEffect(_FlowAdapterRule):
    id = "flow-unjournaled-effect"
    description = (
        "service state mutated before the covering WAL append on a commit "
        "path"
    )


@register
class FlowEffectOrder(_FlowAdapterRule):
    id = "flow-effect-order"
    description = (
        "journal protocol order violated (mutation after commit marker, or "
        "crashpoint before WAL append)"
    )


@register
class StaleAllow(Rule):
    """Driver-synthesised: allow-comments that silence nothing.

    ``check`` yields nothing — staleness is a whole-run fact (an allow
    is live if *any* rule's finding matched it), so the driver computes
    it after every other rule ran, and only on full runs (a ``--rules``
    subset would mark everything else's suppressions stale).
    """

    id = "lint-stale-allow"
    family = "lint"
    description = (
        "# repro: allow[...] comment no longer suppresses any finding "
        "(full runs only)"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()


#: Ids whose findings come from the flow engine, not per-module checks.
FLOW_RULE_IDS = frozenset(
    {
        "flow-taint-wallclock",
        "flow-taint-rng",
        "flow-taint-env",
        "flow-unit-escape",
        "flow-hot-transitive",
        "flow-unjournaled-effect",
        "flow-effect-order",
    }
)
