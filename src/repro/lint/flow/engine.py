"""Interprocedural fixpoints over the project call graph.

:class:`FlowAnalysis` runs the four whole-program passes and
materialises their violations as :class:`FlowFinding` records keyed by
module, which :mod:`repro.lint.flow.rules` then adapts into ordinary
registry rules (so ``--rules`` selection, allow-comments, and the
reporters treat them exactly like single-site findings).

All iteration is over sorted node ids and per-function source order,
and every fixpoint records only the *first* origin it discovers for a
fact — so findings, messages, and traces are bit-identical across runs
and machines regardless of dict insertion order.

The passes:

taint (``flow-taint-wallclock`` / ``-rng`` / ``-env``)
    ``returns_taint`` fixpoint: a function returns taint when an
    unsuppressed source value may reach one of its ``return``
    statements, directly or via a call to a taint-returning function.
    A finding fires at every call site *inside the deterministic
    scope* whose callee returns taint — the local ``det-*`` rules
    already cover direct sources, so the flow rules report only the
    laundered, cross-function cases, each with the full source→sink
    hop list.

units (``flow-unit-escape``)
    ``returns_float`` fixpoint (float literal / true division /
    ``-> float`` declaration reaching a return, transitively through
    calls); fires where such a call result lands in a ``*_ns`` name
    that was not explicitly declared a measured float.

hot paths (``flow-hot-transitive``)
    BFS from ``@hotpath`` roots (skipping ``@coldpath`` callees and
    ``raise``-statement edges) with parent pointers; allocation sites
    in reached unmarked functions fire with the root→alloc call chain.

crash protocol (``flow-unjournaled-effect`` / ``flow-effect-order``)
    In ``repro.service`` and ``repro.core.plancache``: within any
    function that appends WAL records, ``self`` mutations (direct or
    through transitively-mutating method calls) and crashpoints must
    come after the first append; within any function that appends a
    commit marker, no mutation may follow the last append.  Early-exit
    blocks (validation rejections, exception handlers) are off the
    commit path and exempt.  Functions that touch no journal at all
    are out of scope — replay covers them (e.g. the flush path).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.flow.callgraph import CallEdge, CallGraph
from repro.lint.flow.summary import FunctionSummary
from repro.lint.patterns import DETERMINISM_SCOPE
from repro.lint.symbols import FLOAT_DECLARED, ProjectSymbols

#: Modules whose journal discipline the crash-protocol passes check.
CRASH_SCOPE_PREFIXES = ("repro.service", "repro.core.plancache")

_TAINT_RULE = {
    "wallclock": "flow-taint-wallclock",
    "rng": "flow-taint-rng",
    "env": "flow-taint-env",
}


@dataclass(frozen=True)
class FlowFinding:
    """One interprocedural violation, pre-resolved to a location."""

    rule_id: str
    module: str
    line: int
    col: int
    message: str
    trace: Tuple[str, ...] = ()


@dataclass
class _Origin:
    """Why a summary fact holds for a function.

    ``via`` is ``None`` for direct evidence (``desc``/``line`` point at
    it) and ``(callee, call_line)`` when the fact was inherited through
    a call.
    """

    desc: str
    line: int
    via: Optional[Tuple[str, int]] = None


def _in_scope(module: str, prefixes: Tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


class FlowAnalysis:
    """Run all passes; findings land in :attr:`findings` per module."""

    def __init__(
        self, graph: CallGraph, symbols: Optional[ProjectSymbols] = None
    ) -> None:
        self.graph = graph
        self.symbols = symbols
        self.findings: Dict[str, List[FlowFinding]] = {}
        #: node -> taint kind -> origin (the returns-taint fixpoint).
        self.taint_ret: Dict[str, Dict[str, _Origin]] = {}
        #: node -> origin (the returns-float fixpoint).
        self.float_ret: Dict[str, _Origin] = {}
        #: node -> origin of a (transitive) self-mutation.
        self.mutates: Dict[str, _Origin] = {}
        #: node -> (hot root, parent chain) discovery for reachability.
        self.hot_parent: Dict[str, Tuple[str, int]] = {}
        self.hot_reached: Set[str] = set()
        self._edges_by_site: Dict[str, Dict[int, List[CallEdge]]] = {}
        for node, edges in graph.edges.items():
            by_site: Dict[int, List[CallEdge]] = {}
            for edge in edges:
                by_site.setdefault(edge.call_index, []).append(edge)
            self._edges_by_site[node] = by_site

    def run(self) -> "FlowAnalysis":
        self._fix_taint_returns()
        self._fix_float_returns()
        self._fix_mutations()
        self._walk_hot()
        self._emit_taint_findings()
        self._emit_unit_findings()
        self._emit_hot_findings()
        self._emit_crash_findings()
        for module in self.findings:
            self.findings[module].sort(key=lambda f: (f.line, f.col, f.rule_id))
        return self

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _site_edges(self, node: str, call_index: int) -> List[CallEdge]:
        return self._edges_by_site.get(node, {}).get(call_index, [])

    def _fn(self, node: str) -> FunctionSummary:
        return self.graph.function(node)

    def _loc(self, node: str, line: int) -> str:
        return f"{self.graph.path_of(node)}:{line}"

    def _add(self, node: str, finding: FlowFinding) -> None:
        self.findings.setdefault(self.graph.module_of(node), []).append(finding)

    # ------------------------------------------------------------------
    # fixpoints
    # ------------------------------------------------------------------

    def _fix_taint_returns(self) -> None:
        changed = True
        while changed:
            changed = False
            for node in sorted(self.graph.nodes):
                fn = self._fn(node)
                entry = self.taint_ret.setdefault(node, {})
                for idx in fn.returns_sources:
                    source = fn.sources[idx]
                    if source.suppressed or source.kind in entry:
                        continue
                    entry[source.kind] = _Origin(
                        desc=f"{source.what}()", line=source.line
                    )
                    changed = True
                for idx in fn.returns_calls:
                    for edge in self._site_edges(node, idx):
                        for kind in sorted(self.taint_ret.get(edge.callee, ())):
                            if kind in entry or edge.callee == node:
                                continue
                            entry[kind] = _Origin(
                                desc="", line=edge.line, via=(edge.callee, edge.line)
                            )
                            changed = True

    def _fix_float_returns(self) -> None:
        changed = True
        while changed:
            changed = False
            for node in sorted(self.graph.nodes):
                if node in self.float_ret:
                    continue
                fn = self._fn(node)
                if fn.returns_float_direct:
                    self.float_ret[node] = _Origin(
                        desc="float literal or true division",
                        line=fn.returns_float_line or fn.line,
                    )
                    changed = True
                    continue
                if fn.ret_ann == FLOAT_DECLARED:
                    self.float_ret[node] = _Origin(
                        desc="declared '-> float'", line=fn.line
                    )
                    changed = True
                    continue
                for idx in fn.returns_calls_float:
                    for edge in self._site_edges(node, idx):
                        if edge.callee != node and edge.callee in self.float_ret:
                            self.float_ret[node] = _Origin(
                                desc="",
                                line=edge.line,
                                via=(edge.callee, edge.line),
                            )
                            changed = True
                            break
                    if node in self.float_ret:
                        break

    def _fix_mutations(self) -> None:
        changed = True
        while changed:
            changed = False
            for node in sorted(self.graph.nodes):
                if node in self.mutates:
                    continue
                fn = self._fn(node)
                if fn.mutations:
                    first = min(fn.mutations, key=lambda m: (m.line, m.attr))
                    self.mutates[node] = _Origin(
                        desc=f"self.{first.attr}", line=first.line
                    )
                    changed = True
                    continue
                for site in fn.calls:
                    if site.kind != "self":
                        continue
                    for edge in self._site_edges(node, site.index):
                        if edge.callee != node and edge.callee in self.mutates:
                            self.mutates[node] = _Origin(
                                desc="", line=site.line, via=(edge.callee, site.line)
                            )
                            changed = True
                            break
                    if node in self.mutates:
                        break

    def _walk_hot(self) -> None:
        roots = sorted(
            node for node in self.graph.nodes if self._fn(node).hot
        )
        self.hot_reached = set(roots)
        queue = deque(roots)
        while queue:
            current = queue.popleft()
            for edge in self.graph.out_edges(current):
                if edge.in_raise or edge.callee in self.hot_reached:
                    continue
                if self._fn(edge.callee).cold:
                    continue
                self.hot_reached.add(edge.callee)
                self.hot_parent[edge.callee] = (current, edge.line)
                queue.append(edge.callee)

    # ------------------------------------------------------------------
    # findings
    # ------------------------------------------------------------------

    def _taint_trace(self, callee: str, kind: str, sink_hop: str) -> Tuple[str, ...]:
        """Source-first hop list ending at the sink call."""
        hops: List[str] = []
        current = callee
        guard: Set[str] = set()
        while current not in guard:
            guard.add(current)
            origin = self.taint_ret[current][kind]
            if origin.via is None:
                hops.append(
                    f"{self.graph.pretty(current)} reads {origin.desc} "
                    f"({self._loc(current, origin.line)})"
                )
                break
            nxt, line = origin.via
            hops.append(
                f"{self.graph.pretty(current)} returns value of "
                f"{self.graph.pretty(nxt)} ({self._loc(current, line)})"
            )
            current = nxt
        hops.reverse()
        hops.append(sink_hop)
        return tuple(hops)

    def _emit_taint_findings(self) -> None:
        for node in sorted(self.graph.nodes):
            module = self.graph.module_of(node)
            if not _in_scope(module, DETERMINISM_SCOPE):
                continue
            fn = self._fn(node)
            for site in fn.calls:
                for edge in self._site_edges(node, site.index):
                    for kind in sorted(self.taint_ret.get(edge.callee, ())):
                        sink_hop = (
                            f"{self.graph.pretty(node)} consumes it "
                            f"({self._loc(node, site.line)})"
                        )
                        trace = self._taint_trace(edge.callee, kind, sink_hop)
                        self._add(
                            node,
                            FlowFinding(
                                rule_id=_TAINT_RULE[kind],
                                module=module,
                                line=site.line,
                                col=site.col,
                                message=(
                                    f"call to {self.graph.pretty(edge.callee)} "
                                    f"returns a {kind}-derived value inside the "
                                    f"deterministic scope; the source is "
                                    f"{trace[0]}"
                                ),
                                trace=trace,
                            ),
                        )

    def _float_trace(self, callee: str, sink_hop: str) -> Tuple[str, ...]:
        hops: List[str] = []
        current = callee
        guard: Set[str] = set()
        while current not in guard:
            guard.add(current)
            origin = self.float_ret[current]
            if origin.via is None:
                hops.append(
                    f"{self.graph.pretty(current)} returns {origin.desc} "
                    f"({self._loc(current, origin.line)})"
                )
                break
            nxt, line = origin.via
            hops.append(
                f"{self.graph.pretty(current)} returns value of "
                f"{self.graph.pretty(nxt)} ({self._loc(current, line)})"
            )
            current = nxt
        hops.reverse()
        hops.append(sink_hop)
        return tuple(hops)

    def _emit_unit_findings(self) -> None:
        for node in sorted(self.graph.nodes):
            module = self.graph.module_of(node)
            fn = self._fn(node)
            for sink in fn.ns_sinks:
                if self.symbols is not None:
                    if sink.via == "assign" and self.symbols.declared_float(
                        module, sink.ns_name
                    ):
                        continue
                    if sink.via.startswith("kwarg:"):
                        callee_name = sink.via.split(":", 1)[1]
                        if (
                            self.symbols.param_category(callee_name, sink.ns_name)
                            == FLOAT_DECLARED
                        ):
                            continue
                for edge in self._site_edges(node, sink.call_index):
                    if edge.callee not in self.float_ret:
                        continue
                    sink_hop = (
                        f"{self.graph.pretty(node)} stores it in "
                        f"'{sink.ns_name}' ({self._loc(node, sink.line)})"
                    )
                    trace = self._float_trace(edge.callee, sink_hop)
                    self._add(
                        node,
                        FlowFinding(
                            rule_id="flow-unit-escape",
                            module=module,
                            line=sink.line,
                            col=sink.col,
                            message=(
                                f"'{sink.ns_name}' is integer nanoseconds but "
                                f"receives the result of "
                                f"{self.graph.pretty(edge.callee)}, which "
                                f"returns float ({trace[0]}); cast at the "
                                f"boundary or declare the name float"
                            ),
                            trace=trace,
                        ),
                    )

    def _hot_chain(self, node: str) -> Tuple[str, ...]:
        """Root-first call chain establishing hot reachability."""
        chain: List[str] = []
        current = node
        guard: Set[str] = set()
        while current in self.hot_parent and current not in guard:
            guard.add(current)
            parent, line = self.hot_parent[current]
            chain.append(
                f"{self.graph.pretty(parent)} calls "
                f"{self.graph.pretty(current)} ({self._loc(parent, line)})"
            )
            current = parent
        chain.append(f"{self.graph.pretty(current)} is @hotpath")
        chain.reverse()
        return tuple(chain)

    def _emit_hot_findings(self) -> None:
        for node in sorted(self.hot_reached):
            fn = self._fn(node)
            if fn.hot or fn.cold:
                continue
            chain = None
            for alloc in fn.allocs:
                if alloc.in_raise:
                    continue
                if chain is None:
                    chain = self._hot_chain(node)
                self._add(
                    node,
                    FlowFinding(
                        rule_id="flow-hot-transitive",
                        module=self.graph.module_of(node),
                        line=alloc.line,
                        col=alloc.col,
                        message=(
                            f"{alloc.detail} allocates per call, and "
                            f"{self.graph.pretty(node)} is reachable from a "
                            f"@hotpath root ({chain[0].split(' is ')[0]}); "
                            f"hoist the allocation or mark a deliberate slow "
                            f"path @coldpath"
                        ),
                        trace=chain
                        + (f"{alloc.detail} allocated at {self._loc(node, alloc.line)}",),
                    ),
                )

    def _mutation_trace(self, callee: str, sink_hop: str) -> Tuple[str, ...]:
        hops: List[str] = [sink_hop]
        current = callee
        guard: Set[str] = set()
        while current not in guard:
            guard.add(current)
            origin = self.mutates[current]
            if origin.via is None:
                hops.append(
                    f"{self.graph.pretty(current)} mutates {origin.desc} "
                    f"({self._loc(current, origin.line)})"
                )
                break
            nxt, line = origin.via
            hops.append(
                f"{self.graph.pretty(current)} calls "
                f"{self.graph.pretty(nxt)} ({self._loc(current, line)})"
            )
            current = nxt
        return tuple(hops)

    def _emit_crash_findings(self) -> None:
        for node in sorted(self.graph.nodes):
            module = self.graph.module_of(node)
            if not _in_scope(module, CRASH_SCOPE_PREFIXES):
                continue
            fn = self._fn(node)
            wal_orders = [op.order for op in fn.journal_ops if op.kind == "wal"]
            marker_orders = [
                op.order for op in fn.journal_ops if op.kind == "marker"
            ]
            if wal_orders:
                self._check_wal_discipline(node, module, fn, min(wal_orders))
            if marker_orders:
                self._check_marker_discipline(node, module, fn, max(marker_orders))

    def _check_wal_discipline(
        self, node: str, module: str, fn: FunctionSummary, first_wal: int
    ) -> None:
        wal_line = next(
            op.line for op in fn.journal_ops if op.kind == "wal"
        )
        for mut in fn.mutations:
            if mut.order >= first_wal or mut.exits:
                continue
            self._add(
                node,
                FlowFinding(
                    rule_id="flow-unjournaled-effect",
                    module=module,
                    line=mut.line,
                    col=0,
                    message=(
                        f"self.{mut.attr} is mutated before the WAL append at "
                        f"line {wal_line}; a crash between them loses the "
                        f"effect without a record to replay"
                    ),
                    trace=(
                        f"{self.graph.pretty(node)} mutates self.{mut.attr} "
                        f"({self._loc(node, mut.line)})",
                        f"WAL append follows at {self._loc(node, wal_line)}",
                    ),
                ),
            )
        for site in fn.calls:
            if site.kind != "self" or site.order >= first_wal or site.exits:
                continue
            for edge in self._site_edges(node, site.index):
                if edge.callee not in self.mutates:
                    continue
                sink_hop = (
                    f"{self.graph.pretty(node)} calls "
                    f"{self.graph.pretty(edge.callee)} before the WAL append "
                    f"({self._loc(node, site.line)})"
                )
                self._add(
                    node,
                    FlowFinding(
                        rule_id="flow-unjournaled-effect",
                        module=module,
                        line=site.line,
                        col=site.col,
                        message=(
                            f"call to {self.graph.pretty(edge.callee)} mutates "
                            f"service state before the WAL append at line "
                            f"{wal_line}"
                        ),
                        trace=self._mutation_trace(edge.callee, sink_hop),
                    ),
                )
        for crash in fn.crashpoints:
            if crash.order >= first_wal or crash.exits:
                continue
            self._add(
                node,
                FlowFinding(
                    rule_id="flow-effect-order",
                    module=module,
                    line=crash.line,
                    col=0,
                    message=(
                        f"crashpoint '{crash.name}' fires before the WAL "
                        f"append at line {wal_line}; recovery would find no "
                        f"record for the interrupted operation"
                    ),
                    trace=(
                        f"crashpoint at {self._loc(node, crash.line)}",
                        f"WAL append follows at {self._loc(node, wal_line)}",
                    ),
                ),
            )

    def _check_marker_discipline(
        self, node: str, module: str, fn: FunctionSummary, last_marker: int
    ) -> None:
        marker_line = max(
            op.line for op in fn.journal_ops if op.kind == "marker"
        )
        for mut in fn.mutations:
            if mut.order <= last_marker or mut.exits:
                continue
            self._add(
                node,
                FlowFinding(
                    rule_id="flow-effect-order",
                    module=module,
                    line=mut.line,
                    col=0,
                    message=(
                        f"self.{mut.attr} is mutated after the commit marker "
                        f"append at line {marker_line}; the marker must be "
                        f"the last effect so replay sees a consistent "
                        f"snapshot"
                    ),
                    trace=(
                        f"commit marker appended at {self._loc(node, marker_line)}",
                        f"{self.graph.pretty(node)} then mutates self."
                        f"{mut.attr} ({self._loc(node, mut.line)})",
                    ),
                ),
            )
        for site in fn.calls:
            if site.kind != "self" or site.order <= last_marker or site.exits:
                continue
            for edge in self._site_edges(node, site.index):
                if edge.callee not in self.mutates:
                    continue
                sink_hop = (
                    f"{self.graph.pretty(node)} calls "
                    f"{self.graph.pretty(edge.callee)} after the commit "
                    f"marker ({self._loc(node, site.line)})"
                )
                self._add(
                    node,
                    FlowFinding(
                        rule_id="flow-effect-order",
                        module=module,
                        line=site.line,
                        col=site.col,
                        message=(
                            f"call to {self.graph.pretty(edge.callee)} mutates "
                            f"state after the commit marker append at line "
                            f"{marker_line}"
                        ),
                        trace=self._mutation_trace(edge.callee, sink_hop),
                    ),
                )
