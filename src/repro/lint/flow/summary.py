"""Per-module flow summaries: everything the whole-program passes need.

One :class:`ModuleSummary` reduces a module's AST to plain, JSON-round-
trippable records — the functions it defines, the calls they make (with
enough reference structure to resolve later), taint sources, allocation
sites, self-state mutations, journal operations, crashpoints, and a
small local dataflow result (which calls/sources reach a ``return``,
which call results land in ``*_ns`` names).  Summaries are *module
local* by construction: nothing in here looks at another file, which is
what lets :mod:`repro.lint.cache` key them purely on content hash and
lets the driver extract them on a process pool.

The local dataflow is a token propagation over local names: every
expression is reduced to the set of {source-site, call-site, float
evidence} tokens it may carry, assignments transfer tokens to names,
and returns/sinks collect them.  It is deliberately flow-insensitive
within a function (a name's tokens accumulate over all assignments) and
does not descend into nested ``def``/``lambda`` bodies — both are the
conservative direction for taint and unit escapes, and keep extraction
to a small fixed number of passes per function.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.patterns import (
    WALLCLOCK_FLOAT_SUFFIXES,
    dotted_path,
    has_marker,
    matches_suffix,
    taint_kind_of_attr,
    taint_kind_of_call,
)

#: Bump when the summary schema changes so stale caches self-invalidate.
SUMMARY_VERSION = 2

#: Calls that make an integer out of anything (unit-boundary casts).
_INT_CASTS = {"int", "round", "floor", "ceil"}

#: typing-module names that are containers, not receiver classes.
_TYPING_NAMES = {
    "Optional", "Union", "List", "Dict", "Tuple", "Set", "Sequence",
    "Iterable", "Iterator", "Callable", "Mapping", "Type", "FrozenSet",
    "Deque", "DefaultDict", "Any", "ClassVar", "Final", "Literal",
    "Annotated", "Awaitable", "Coroutine", "Generator", "NewType",
    "type", "list", "dict", "tuple", "set", "frozenset", "None",
    "int", "float", "str", "bytes", "bool", "object",
}

#: Journal-append method names, split by protocol role: WAL records
#: must precede the effects they cover; commit markers must follow the
#: counters they snapshot.
_JOURNAL_WAL_METHODS = {"append_request"}
_JOURNAL_MARKER_METHODS = {"append_commit"}

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "remove", "discard", "clear", "setdefault", "appendleft",
}


# ----------------------------------------------------------------------
# Record types (all dict-round-trippable via dataclasses.asdict)
# ----------------------------------------------------------------------


@dataclass
class CallSite:
    """One call expression inside a function body.

    ``kind`` describes how the callee was named, which drives
    resolution: ``"name"`` (bare name — local function, import, or
    class constructor), ``"self"`` (``self.m(...)``), ``"attr"``
    (``recv.m(...)`` with ``recv_type`` carrying the receiver's
    declared/inferred type reference when known), ``"dotted"``
    (``pkg.mod.f(...)``), or ``"partial"`` (the target of a
    ``functools.partial`` — a deferred call edge).
    """

    index: int
    kind: str
    target: str
    recv_type: str
    line: int
    col: int
    order: int
    in_raise: bool = False
    #: The call sits in a block that exits early (raise/return/continue
    #: before the enclosing suite rejoins) — off the commit path.
    exits: bool = False
    #: The call is one of the wall-clock readers that return float
    #: seconds (feeds the unit-inference pass directly).
    returns_float_builtin: bool = False


@dataclass
class TaintSource:
    """A direct nondeterminism source (wall clock / RNG / environment)."""

    kind: str
    what: str
    line: int
    col: int
    #: An allow-comment for the matching det-* or flow-taint-* rule
    #: covers the source line: the justification sanctions every flow
    #: out of it, so the taint pass does not seed from here.
    suppressed: bool = False


@dataclass
class AllocSite:
    """A per-call allocation the hot-path rules ban."""

    kind: str
    detail: str
    line: int
    col: int
    #: Allocation feeds a ``raise`` — an error path the transitive
    #: hot-path rule treats as cold (the local ``hot-*`` rules stay
    #: strict inside directly-marked functions).
    in_raise: bool = False


@dataclass
class MutationSite:
    """A write to ``self`` state (attribute assign or mutating call)."""

    attr: str
    line: int
    order: int
    #: Mutation happens on an early-exit path (validation rejection,
    #: exception handler) — not part of the journaled commit path.
    exits: bool = False


@dataclass
class JournalOp:
    """A journal append: ``wal`` (write-ahead) or ``marker`` (commit)."""

    kind: str
    line: int
    order: int


@dataclass
class CrashSite:
    """A ``crashpoint(...)`` consultation."""

    name: str
    line: int
    order: int
    exits: bool = False


@dataclass
class NsSink:
    """A call result flowing into a ``*_ns`` name.

    ``via`` is ``"assign"`` or ``"kwarg:<callee>"``; the engine decides
    whether the call's resolved target returns float (and whether the
    name was declared a measured float, which exempts it).
    """

    call_index: int
    ns_name: str
    line: int
    col: int
    via: str


@dataclass
class FunctionSummary:
    """Everything the flow passes know about one function."""

    name: str
    cls: str
    line: int
    end_line: int
    hot: bool
    cold: bool
    ret_ann: str
    calls: List[CallSite] = field(default_factory=list)
    sources: List[TaintSource] = field(default_factory=list)
    allocs: List[AllocSite] = field(default_factory=list)
    mutations: List[MutationSite] = field(default_factory=list)
    journal_ops: List[JournalOp] = field(default_factory=list)
    crashpoints: List[CrashSite] = field(default_factory=list)
    ns_sinks: List[NsSink] = field(default_factory=list)
    #: Indexes into ``sources`` whose value may reach a ``return``.
    returns_sources: List[int] = field(default_factory=list)
    #: Indexes into ``calls`` whose result may reach a ``return``.
    returns_calls: List[int] = field(default_factory=list)
    #: Same, but as the float fixpoint sees it: an ``int()``/``round()``
    #: cast on the return path drops the call here (it launders
    #: float-ness) while ``returns_calls`` keeps it (a cast does not
    #: launder taint).
    returns_calls_float: List[int] = field(default_factory=list)
    #: A float literal or true division reaches a ``return`` directly.
    returns_float_direct: bool = False
    returns_float_line: int = 0


@dataclass
class ClassInfo:
    """Class shape for hierarchy analysis and receiver typing."""

    name: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    #: attribute name -> raw type reference (annotation or constructor).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleSummary:
    """The flow-relevant reduction of one module."""

    module: str
    path: str
    is_package: bool = False
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "path": self.path,
            "is_package": self.is_package,
            "imports": self.imports,
            "functions": {k: asdict(v) for k, v in self.functions.items()},
            "classes": {k: asdict(v) for k, v in self.classes.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleSummary":
        functions = {}
        for key, raw in data["functions"].items():  # type: ignore[union-attr]
            fn = FunctionSummary(
                **{
                    k: v
                    for k, v in raw.items()
                    if k
                    not in (
                        "calls", "sources", "allocs", "mutations",
                        "journal_ops", "crashpoints", "ns_sinks",
                    )
                }
            )
            fn.calls = [CallSite(**c) for c in raw["calls"]]
            fn.sources = [TaintSource(**s) for s in raw["sources"]]
            fn.allocs = [AllocSite(**a) for a in raw["allocs"]]
            fn.mutations = [MutationSite(**m) for m in raw["mutations"]]
            fn.journal_ops = [JournalOp(**j) for j in raw["journal_ops"]]
            fn.crashpoints = [CrashSite(**c) for c in raw["crashpoints"]]
            fn.ns_sinks = [NsSink(**n) for n in raw["ns_sinks"]]
            functions[key] = fn
        return cls(
            module=data["module"],  # type: ignore[arg-type]
            path=data["path"],  # type: ignore[arg-type]
            is_package=bool(data.get("is_package")),
            imports=dict(data["imports"]),  # type: ignore[arg-type]
            functions=functions,
            classes={
                k: ClassInfo(**v)
                for k, v in data["classes"].items()  # type: ignore[union-attr]
            },
        )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------


def summarize_module(
    module: str,
    path: str,
    tree: ast.Module,
    suppressions: Optional[Dict[int, Set[str]]] = None,
) -> ModuleSummary:
    """Reduce one parsed module to its :class:`ModuleSummary`.

    ``suppressions`` is the module's allow-comment map (line -> rule
    ids); taint sources covered by a matching allow are marked
    suppressed so the justification at the source sanctions the flow.
    """
    summary = ModuleSummary(
        module=module,
        path=path,
        is_package=path.replace("\\", "/").endswith("/__init__.py"),
    )
    suppressions = suppressions or {}
    _collect_imports(tree, summary)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _add_function(summary, node, cls="", suppressions=suppressions)
        elif isinstance(node, ast.ClassDef):
            _add_class(summary, node, suppressions)
    return summary


def _collect_imports(tree: ast.Module, summary: ModuleSummary) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    summary.imports[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``; dotted references
                    # resolve through the untranslated path.
                    summary.imports[alias.name.split(".")[0]] = alias.name.split(
                        "."
                    )[0]
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from_base(node, summary)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                summary.imports[bound] = f"{base}.{alias.name}" if base else alias.name


def _resolve_from_base(node: ast.ImportFrom, summary: ModuleSummary) -> Optional[str]:
    if node.level == 0:
        return node.module or ""
    parts = summary.module.split(".") if summary.module else []
    # For a plain module the importing package is parts[:-1]; for a
    # package __init__ it is the package itself.  Each extra level
    # strips one more component.
    drop = node.level if summary.is_package else node.level
    if not summary.is_package:
        parts = parts[:-1]
        drop -= 1
    if drop > 0:
        parts = parts[: len(parts) - drop] if drop <= len(parts) else []
    base = ".".join(parts)
    if node.module:
        base = f"{base}.{node.module}" if base else node.module
    return base


def _add_class(
    summary: ModuleSummary, node: ast.ClassDef, suppressions: Dict[int, Set[str]]
) -> None:
    info = ClassInfo(name=node.name, line=node.lineno)
    for base in node.bases:
        ref = dotted_path(base)
        if ref:
            info.bases.append(ref)
    # Shape first (methods, attribute types), then bodies: method
    # extraction types ``self.attr`` receivers through ``attr_types``,
    # so the class must be registered before any body is walked.
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods.append(statement.name)
        elif isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            ref = _annotation_ref(statement.annotation)
            if ref:
                info.attr_types[statement.target.id] = ref
    init = next(
        (
            s
            for s in node.body
            if isinstance(s, ast.FunctionDef) and s.name == "__init__"
        ),
        None,
    )
    if init is not None:
        _collect_init_attr_types(init, info)
    summary.classes[node.name] = info
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _add_function(
                summary, statement, cls=node.name, suppressions=suppressions
            )


def _collect_init_attr_types(init: ast.FunctionDef, info: ClassInfo) -> None:
    param_types: Dict[str, str] = {}
    args = list(init.args.posonlyargs) + list(init.args.args) + list(
        init.args.kwonlyargs
    )
    for arg in args:
        ref = _annotation_ref(arg.annotation)
        if ref:
            param_types[arg.arg] = ref
    for statement in _iter_statements(init.body):
        if not isinstance(statement, ast.Assign):
            continue
        for target in statement.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                ref = _value_type_ref(statement.value, param_types)
                if ref and target.attr not in info.attr_types:
                    info.attr_types[target.attr] = ref


def _value_type_ref(value: ast.expr, param_types: Dict[str, str]) -> Optional[str]:
    """Type reference of an ``__init__`` assignment RHS, if inferable."""
    if isinstance(value, ast.Name):
        return param_types.get(value.id)
    if isinstance(value, ast.Call):
        ref = dotted_path(value.func)
        if ref and ref.split(".")[-1][:1].isupper():
            return ref
        return None
    if isinstance(value, ast.IfExp):
        # ``x if x is not None else Default()`` — either branch works;
        # prefer the constructor (it names the concrete class).
        return _value_type_ref(value.orelse, param_types) or _value_type_ref(
            value.body, param_types
        )
    return None


def _annotation_ref(annotation: Optional[ast.expr]) -> Optional[str]:
    """Extract the first class-like reference from an annotation."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    for node in ast.walk(annotation):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            candidate = node.value.strip()
            if candidate and candidate not in _TYPING_NAMES:
                return candidate
        ref: Optional[str] = None
        if isinstance(node, ast.Attribute):
            ref = dotted_path(node)
        elif isinstance(node, ast.Name):
            ref = node.id
        if ref and ref.split(".")[-1] not in _TYPING_NAMES:
            return ref
    return None


# ----------------------------------------------------------------------
# Function-body extraction
# ----------------------------------------------------------------------


def _suite_exits(suite: List[ast.stmt]) -> bool:
    """True when control cannot fall off the end of ``suite``."""
    return isinstance(suite[-1], (ast.Raise, ast.Return, ast.Continue, ast.Break))


def _iter_with_exits(
    body: List[ast.stmt], exits: bool
) -> Iterator[Tuple[ast.stmt, bool]]:
    """Source-ordered statement walk tagging early-exit blocks.

    Nested ``def``/``class`` bodies are not entered.  ``exits`` is True
    for statements in a suite that terminates with raise/return/
    continue/break (and everything it dominates) and for exception
    handlers — paths that never rejoin the enclosing fall-through flow.
    """
    for statement in body:
        if isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield statement, exits
        for field_name, value in ast.iter_fields(statement):
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                yield from _iter_with_exits(value, exits or _suite_exits(value))
            elif field_name == "handlers" and isinstance(value, list):
                for handler in value:
                    if isinstance(handler, ast.ExceptHandler):
                        yield from _iter_with_exits(handler.body, True)


def _iter_statements(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Source-ordered statement walk that does not enter nested defs."""
    for statement, _ in _iter_with_exits(body, False):
        yield statement


def _walk_expr(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an expression without descending into lambda bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Lambda):
            yield current
            continue
        yield current
        stack.extend(reversed(list(ast.iter_child_nodes(current))))


class _FunctionExtractor:
    """Single-function extraction: call sites, sources, local dataflow."""

    def __init__(
        self,
        summary: ModuleSummary,
        node: ast.FunctionDef,
        cls: str,
        suppressions: Dict[int, Set[str]],
    ) -> None:
        self.summary = summary
        self.node = node
        self.cls = cls
        self.suppressions = suppressions
        qual = f"{cls}.{node.name}" if cls else node.name
        self.fn = FunctionSummary(
            name=qual,
            cls=cls,
            line=node.lineno,
            end_line=node.end_lineno or node.lineno,
            hot=has_marker(node, "hotpath"),
            cold=has_marker(node, "coldpath"),
            ret_ann=_return_category(node),
        )
        #: call AST node id -> call index (for token collection).
        self._call_ids: Dict[int, int] = {}
        #: source AST node id -> source index.
        self._source_ids: Dict[int, int] = {}
        self._local_types: Dict[str, str] = {}
        self._order = 0

    # -- pass 1: enumerate calls, sources, allocations, protocol ops ----

    def extract(self) -> FunctionSummary:
        self._collect_param_types()
        tagged = list(_iter_with_exits(self.node.body, False))
        for statement, exits in tagged:
            self._order += 1
            order = self._order
            in_raise = isinstance(statement, ast.Raise)
            for expr in self._statement_exprs(statement):
                for sub in _walk_expr(expr):
                    if isinstance(sub, ast.Call):
                        self._record_call(sub, order, in_raise, exits)
                    self._record_alloc(sub, in_raise)
                    self._record_attr_source(sub)
            self._record_local_type(statement)
            self._record_mutation(statement, order, exits)
        self._local_dataflow([s for s, _ in tagged])
        return self.fn

    def _statement_exprs(self, statement: ast.stmt) -> Iterator[ast.expr]:
        """Expressions owned directly by ``statement`` (not sub-stmts)."""
        for field_name, value in ast.iter_fields(statement):
            if isinstance(value, ast.expr):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        yield item

    def _collect_param_types(self) -> None:
        args = list(self.node.args.posonlyargs) + list(self.node.args.args) + list(
            self.node.args.kwonlyargs
        )
        for arg in args:
            ref = _annotation_ref(arg.annotation)
            if ref:
                self._local_types[arg.arg] = ref

    def _record_call(
        self, node: ast.Call, order: int, in_raise: bool, exits: bool
    ) -> None:
        func = node.func
        path = dotted_path(func)
        # Taint source?
        kind = taint_kind_of_call(path) if path else None
        if kind is not None:
            index = len(self.fn.sources)
            self.fn.sources.append(
                TaintSource(
                    kind=kind,
                    what=path,
                    line=node.lineno,
                    col=node.col_offset,
                    suppressed=self._source_suppressed(node, kind),
                )
            )
            self._source_ids[id(node)] = index
            return
        site = self._call_site_for(node, func, path, order, in_raise, exits)
        if site is not None:
            self._call_ids[id(node)] = site.index
            self.fn.calls.append(site)
            self._record_journal_op(path, order, node)
            self._record_crashpoint(node, path, order, exits)
        # functools.partial targets become deferred call edges.
        if path.split(".")[-1] == "partial" and node.args:
            target = node.args[0]
            tpath = dotted_path(target)
            if tpath:
                index = len(self.fn.calls)
                self.fn.calls.append(
                    CallSite(
                        index=index,
                        kind="partial",
                        target=tpath,
                        recv_type=self._receiver_type(target),
                        line=node.lineno,
                        col=node.col_offset,
                        order=order,
                        in_raise=in_raise,
                        exits=exits,
                    )
                )

    def _call_site_for(
        self,
        node: ast.Call,
        func: ast.expr,
        path: str,
        order: int,
        in_raise: bool,
        exits: bool,
    ) -> Optional[CallSite]:
        index = len(self.fn.calls)
        base = dict(
            index=index,
            line=node.lineno,
            col=node.col_offset,
            order=order,
            in_raise=in_raise,
            exits=exits,
            returns_float_builtin=bool(
                path and matches_suffix(path, WALLCLOCK_FLOAT_SUFFIXES)
            ),
        )
        if isinstance(func, ast.Name):
            return CallSite(kind="name", target=func.id, recv_type="", **base)
        if isinstance(func, ast.Attribute):
            recv = func.value
            if isinstance(recv, ast.Name) and recv.id == "self":
                return CallSite(
                    kind="self", target=func.attr, recv_type=self.cls, **base
                )
            recv_type = self._receiver_type(func)
            if recv_type:
                return CallSite(
                    kind="attr", target=func.attr, recv_type=recv_type, **base
                )
            if path:
                return CallSite(kind="dotted", target=path, recv_type="", **base)
            return CallSite(kind="attr", target=func.attr, recv_type="", **base)
        return None

    def _receiver_type(self, func: ast.expr) -> str:
        """Declared type of the receiver of ``recv.m`` (or '' unknown)."""
        if not isinstance(func, ast.Attribute):
            return ""
        recv = func.value
        if isinstance(recv, ast.Name):
            return self._local_types.get(recv.id, "")
        if (
            isinstance(recv, ast.Attribute)
            and isinstance(recv.value, ast.Name)
            and recv.value.id == "self"
            and self.cls
        ):
            info = self.summary.classes.get(self.cls)
            if info is not None:
                return info.attr_types.get(recv.attr, "")
        return ""

    def _record_local_type(self, statement: ast.stmt) -> None:
        """Track local-variable types from annotations and simple binds."""
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            ref = _annotation_ref(statement.annotation)
            if ref:
                self._local_types[statement.target.id] = ref
            return
        if not isinstance(statement, ast.Assign) or len(statement.targets) != 1:
            return
        target = statement.targets[0]
        if not isinstance(target, ast.Name):
            return
        value = statement.value
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and self.cls
        ):
            info = self.summary.classes.get(self.cls)
            if info is not None:
                ref = info.attr_types.get(value.attr)
                if ref:
                    self._local_types[target.id] = ref
                    return
        if isinstance(value, ast.Call):
            ref = dotted_path(value.func)
            if ref and ref.split(".")[-1][:1].isupper():
                self._local_types[target.id] = ref

    def _record_alloc(self, node: ast.AST, in_raise: bool) -> None:
        kind = detail = ""
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            kind, detail = "comprehension", type(node).__name__
        elif isinstance(node, ast.Lambda):
            kind, detail = "closure", "lambda"
        elif isinstance(node, ast.JoinedStr):
            kind, detail = "fstring", "f-string"
        elif isinstance(node, ast.Starred):
            kind, detail = "star-args", "*-unpacking"
        if kind:
            self.fn.allocs.append(
                AllocSite(
                    kind=kind,
                    detail=detail,
                    line=node.lineno,  # type: ignore[attr-defined]
                    col=node.col_offset,  # type: ignore[attr-defined]
                    in_raise=in_raise,
                )
            )

    def _record_attr_source(self, node: ast.AST) -> None:
        """Bare attribute taint reads (``os.environ[...]``)."""
        if not isinstance(node, ast.Attribute):
            return
        path = dotted_path(node)
        kind = taint_kind_of_attr(path)
        if kind is None:
            return
        self.fn.sources.append(
            TaintSource(
                kind=kind,
                what=path,
                line=node.lineno,
                col=node.col_offset,
                suppressed=self._source_suppressed(node, kind),
            )
        )
        self._source_ids[id(node)] = len(self.fn.sources) - 1

    def _source_suppressed(self, node: ast.AST, kind: str) -> bool:
        det_rule = {
            "wallclock": "det-wallclock",
            "rng": "det-unseeded-rng",
            "env": "det-env-branch",
        }[kind]
        flow_rule = f"flow-taint-{kind}"
        line = getattr(node, "lineno", 0)
        end = getattr(node, "end_lineno", line) or line
        for check in range(line - 1, end + 1):
            ids = self.suppressions.get(check, ())
            if det_rule in ids or flow_rule in ids:
                return True
        return False

    def _record_journal_op(self, path: str, order: int, node: ast.Call) -> None:
        terminal = path.split(".")[-1] if path else ""
        if terminal in _JOURNAL_WAL_METHODS:
            self.fn.journal_ops.append(
                JournalOp(kind="wal", line=node.lineno, order=order)
            )
        elif terminal in _JOURNAL_MARKER_METHODS:
            self.fn.journal_ops.append(
                JournalOp(kind="marker", line=node.lineno, order=order)
            )

    def _record_crashpoint(
        self, node: ast.Call, path: str, order: int, exits: bool
    ) -> None:
        if path.split(".")[-1] != "crashpoint":
            return
        name = ""
        if node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                name = arg.value
            else:
                name = dotted_path(arg) or ""
        self.fn.crashpoints.append(
            CrashSite(name=name, line=node.lineno, order=order, exits=exits)
        )

    def _record_mutation(
        self, statement: ast.stmt, order: int, exits: bool
    ) -> None:
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = list(statement.targets)
        elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
            targets = [statement.target]
        elif isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Call
        ):
            func = statement.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
            ):
                attr = _self_attr_of(func.value)
                if attr is not None:
                    self.fn.mutations.append(
                        MutationSite(
                            attr=attr,
                            line=statement.lineno,
                            order=order,
                            exits=exits,
                        )
                    )
            return
        for target in targets:
            attr = _self_attr_of(target)
            if attr is not None:
                self.fn.mutations.append(
                    MutationSite(
                        attr=attr, line=statement.lineno, order=order, exits=exits
                    )
                )

    # -- pass 2: local token dataflow ----------------------------------

    def _local_dataflow(self, statements: List[ast.stmt]) -> None:
        taint: Dict[str, Set[Tuple[str, int]]] = {}
        floaty: Dict[str, Set[Tuple[str, int]]] = {}
        # Fixpoint over the (flow-insensitive) assignment relation;
        # token sets only grow, so this terminates quickly.
        for _ in range(8):
            changed = False
            for statement in statements:
                changed |= self._flow_statement(statement, taint, floaty)
            if not changed:
                break
        for statement in statements:
            self._collect_returns(statement, taint, floaty)
            self._collect_ns_sinks(statement, floaty)

    def _expr_tokens(
        self,
        expr: ast.expr,
        env: Dict[str, Set[Tuple[str, int]]],
        float_mode: bool,
    ) -> Set[Tuple[str, int]]:
        tokens: Set[Tuple[str, int]] = set()
        if float_mode and _is_int_cast(expr):
            # An explicit integer cast launders float-ness (but a taint
            # walk never takes this branch: int(time.time()) is still
            # nondeterministic).
            return tokens
        if isinstance(expr, ast.Call):
            source = self._source_ids.get(id(expr))
            if source is not None and not float_mode:
                tokens.add(("src", source))
            call = self._call_ids.get(id(expr))
            if call is not None:
                tokens.add(("call", call))
            if float_mode:
                source = self._source_ids.get(id(expr))
                if source is not None and self.fn.sources[source].kind == "wallclock":
                    what = self.fn.sources[source].what
                    if matches_suffix(what, WALLCLOCK_FLOAT_SUFFIXES):
                        tokens.add(("floatlit", self.fn.sources[source].line))
            for child in list(expr.args) + [kw.value for kw in expr.keywords]:
                tokens |= self._expr_tokens(child, env, float_mode)
            # Attribute sources live in the receiver chain of method
            # calls (``os.environ.get(...)``); args alone miss them.
            if isinstance(expr.func, ast.Attribute):
                tokens |= self._expr_tokens(expr.func.value, env, float_mode)
            return tokens
        if isinstance(expr, ast.Attribute):
            source = self._source_ids.get(id(expr))
            if source is not None and not float_mode:
                tokens.add(("src", source))
            tokens |= self._expr_tokens(expr.value, env, float_mode)
            return tokens
        if isinstance(expr, ast.Name):
            tokens |= env.get(expr.id, set())
            return tokens
        if float_mode:
            if isinstance(expr, ast.Constant) and isinstance(expr.value, float):
                tokens.add(("floatlit", getattr(expr, "lineno", 0)))
                return tokens
            if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
                tokens.add(("truediv", getattr(expr, "lineno", 0)))
                tokens |= self._expr_tokens(expr.left, env, float_mode)
                tokens |= self._expr_tokens(expr.right, env, float_mode)
                return tokens
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, ast.expr):
                tokens |= self._expr_tokens(child, env, float_mode)
            elif isinstance(child, ast.comprehension):
                tokens |= self._expr_tokens(child.iter, env, float_mode)
        return tokens

    def _flow_statement(
        self,
        statement: ast.stmt,
        taint: Dict[str, Set[Tuple[str, int]]],
        floaty: Dict[str, Set[Tuple[str, int]]],
    ) -> bool:
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            value = statement.value
            targets = list(statement.targets)
        elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
            value = statement.value
            targets = [statement.target]
        if value is None:
            return False
        names: List[str] = []
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                names.extend(
                    e.id for e in target.elts if isinstance(e, ast.Name)
                )
        if not names:
            return False
        changed = False
        t_tokens = self._expr_tokens(value, taint, float_mode=False)
        f_tokens = self._expr_tokens(value, floaty, float_mode=True)
        for name in names:
            before = len(taint.get(name, ())) + len(floaty.get(name, ()))
            taint.setdefault(name, set()).update(t_tokens)
            floaty.setdefault(name, set()).update(f_tokens)
            after = len(taint[name]) + len(floaty[name])
            changed |= after != before
        return changed

    def _collect_returns(
        self,
        statement: ast.stmt,
        taint: Dict[str, Set[Tuple[str, int]]],
        floaty: Dict[str, Set[Tuple[str, int]]],
    ) -> None:
        if not isinstance(statement, ast.Return) or statement.value is None:
            return
        for kind, index in sorted(
            self._expr_tokens(statement.value, taint, float_mode=False)
        ):
            if kind == "src" and index not in self.fn.returns_sources:
                self.fn.returns_sources.append(index)
            elif kind == "call" and index not in self.fn.returns_calls:
                self.fn.returns_calls.append(index)
        for kind, index in sorted(
            self._expr_tokens(statement.value, floaty, float_mode=True)
        ):
            if kind in ("floatlit", "truediv") and not self.fn.returns_float_direct:
                self.fn.returns_float_direct = True
                self.fn.returns_float_line = index or statement.lineno
            elif kind == "call" and index not in self.fn.returns_calls_float:
                self.fn.returns_calls_float.append(index)

    def _collect_ns_sinks(
        self,
        statement: ast.stmt,
        floaty: Dict[str, Set[Tuple[str, int]]],
    ) -> None:
        # Assignments to *_ns names.
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            value = statement.value
            targets = list(statement.targets)
        elif isinstance(statement, ast.AugAssign):
            value = statement.value
            targets = [statement.target]
        elif isinstance(statement, ast.AnnAssign):
            from repro.lint.symbols import FLOAT_DECLARED, annotation_category

            if annotation_category(statement.annotation) == FLOAT_DECLARED:
                value = None
            else:
                value = statement.value
            targets = [statement.target]
        if value is not None:
            ns_names = [n for n in map(_ns_target_name, targets) if n]
            if ns_names:
                tokens = self._expr_tokens(value, floaty, float_mode=True)
                for kind, index in sorted(tokens):
                    if kind != "call":
                        continue
                    for name in ns_names:
                        self.fn.ns_sinks.append(
                            NsSink(
                                call_index=index,
                                ns_name=name,
                                line=statement.lineno,
                                col=statement.col_offset,
                                via="assign",
                            )
                        )
        # Keyword arguments foo_ns=<call-derived expression>.
        for expr in self._statement_exprs(statement):
            for sub in _walk_expr(expr):
                if not isinstance(sub, ast.Call):
                    continue
                callee = sub.func
                callee_name = (
                    callee.attr
                    if isinstance(callee, ast.Attribute)
                    else callee.id if isinstance(callee, ast.Name) else ""
                )
                for keyword in sub.keywords:
                    if keyword.arg is None or not _is_ns_name(keyword.arg):
                        continue
                    tokens = self._expr_tokens(
                        keyword.value, floaty, float_mode=True
                    )
                    for kind, index in sorted(tokens):
                        if kind == "call":
                            self.fn.ns_sinks.append(
                                NsSink(
                                    call_index=index,
                                    ns_name=keyword.arg,
                                    line=keyword.value.lineno,
                                    col=keyword.value.col_offset,
                                    via=f"kwarg:{callee_name}",
                                )
                            )


def _add_function(
    summary: ModuleSummary,
    node: ast.FunctionDef,
    cls: str,
    suppressions: Dict[int, Set[str]],
) -> None:
    extractor = _FunctionExtractor(summary, node, cls, suppressions)
    fn = extractor.extract()
    summary.functions[fn.name] = fn


def _return_category(node: ast.FunctionDef) -> str:
    from repro.lint.symbols import annotation_category

    category = annotation_category(node.returns)
    return category or ""


def _is_int_cast(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute) else ""
    )
    return name in _INT_CASTS


def _ns_target_name(target: ast.expr) -> str:
    """Assignment-target name when it is a ``*_ns`` identifier ('' if not)."""
    name = ""
    if isinstance(target, ast.Name):
        name = target.id
    elif isinstance(target, ast.Attribute):
        name = target.attr
    return name if name and _is_ns_name(name) else ""


def _is_ns_name(name: str) -> bool:
    lowered = name.lower()
    return lowered.endswith("_ns") and not lowered.endswith("_per_ns")


def _self_attr_of(target: ast.expr) -> Optional[str]:
    """``self.attr`` (or a deeper path rooted at it) as an attr name."""
    node = target
    if isinstance(node, ast.Subscript):
        node = node.value
    while isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return node.attr
        node = node.value
        if isinstance(node, ast.Subscript):
            node = node.value
    return None
