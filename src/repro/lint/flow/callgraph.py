"""Project call graph over module summaries.

Call sites recorded by :mod:`repro.lint.flow.summary` carry reference
structure (bare name / ``self`` method / typed receiver / dotted path /
``functools.partial`` target) but no resolution — that needs the whole
project, and happens here.  Resolution is deliberately *static and
conservative*:

* bare names resolve through the defining module's functions, then its
  imports (a name imported from a project module links to that module's
  function or class constructor);
* ``self.m(...)`` and typed-receiver calls dispatch by class-hierarchy
  analysis — an edge to the defining ancestor's implementation plus one
  to every override in a descendant of the *declared* receiver class;
* dotted calls resolve their head through imports and then take the
  longest module prefix known to the project;
* ``partial(f, ...)`` adds a deferred edge to ``f`` under the same
  rules.

Anything else (``callback()`` through a stored function value, calls
into the stdlib) resolves to nothing and simply bounds the analysis.
Unresolved *taint-relevant* facts are still caught at the source by the
single-site ``det-*`` rules, so the conservatism loses transitive
evidence, not soundness of the local layer.

Node ids are ``<module>:<qualname>`` (``repro.sim.machine:Machine._do_resched``);
:func:`CallGraph.pretty` renders them dotted for human traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.flow.summary import CallSite, FunctionSummary, ModuleSummary


@dataclass(frozen=True)
class CallEdge:
    """One resolved call edge out of a function."""

    callee: str
    call_index: int
    line: int
    kind: str
    in_raise: bool = False


@dataclass
class CallGraph:
    """Resolved project call graph plus the summaries it was built from."""

    summaries: Dict[str, ModuleSummary]
    #: node id -> (module, function summary)
    nodes: Dict[str, Tuple[str, FunctionSummary]] = field(default_factory=dict)
    #: caller node id -> outgoing edges (sorted by call order).
    edges: Dict[str, List[CallEdge]] = field(default_factory=dict)
    #: callee node id -> caller node ids (derived, for reverse walks).
    callers: Dict[str, List[str]] = field(default_factory=dict)

    def function(self, node_id: str) -> FunctionSummary:
        return self.nodes[node_id][1]

    def module_of(self, node_id: str) -> str:
        return self.nodes[node_id][0]

    def path_of(self, node_id: str) -> str:
        return self.summaries[self.nodes[node_id][0]].path

    @staticmethod
    def pretty(node_id: str) -> str:
        return node_id.replace(":", ".")

    def out_edges(self, node_id: str) -> List[CallEdge]:
        return self.edges.get(node_id, [])

    def edge_count(self) -> int:
        return sum(len(e) for e in self.edges.values())

    # -- exports -------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        nodes = []
        for node_id in sorted(self.nodes):
            module, fn = self.nodes[node_id]
            nodes.append(
                {
                    "id": node_id,
                    "module": module,
                    "function": fn.name,
                    "line": fn.line,
                    "hot": fn.hot,
                    "cold": fn.cold,
                }
            )
        edges = []
        for caller in sorted(self.edges):
            for edge in self.edges[caller]:
                edges.append(
                    {
                        "caller": caller,
                        "callee": edge.callee,
                        "line": edge.line,
                        "kind": edge.kind,
                    }
                )
        return {"nodes": nodes, "edges": edges}

    def to_dot(self) -> str:
        lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box];"]
        for node_id in sorted(self.nodes):
            _, fn = self.nodes[node_id]
            attrs = ""
            if fn.hot:
                attrs = ' style=filled fillcolor="#ffd0d0"'
            elif fn.cold:
                attrs = ' style=filled fillcolor="#d0e0ff"'
            lines.append(
                f'  "{self.pretty(node_id)}" [label="{self.pretty(node_id)}"{attrs}];'
            )
        for caller in sorted(self.edges):
            seen: Set[str] = set()
            for edge in self.edges[caller]:
                if edge.callee in seen:
                    continue
                seen.add(edge.callee)
                style = ' [style=dashed]' if edge.kind == "partial" else ""
                lines.append(
                    f'  "{self.pretty(caller)}" -> "{self.pretty(edge.callee)}"{style};'
                )
        lines.append("}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Build
# ----------------------------------------------------------------------


class _Resolver:
    def __init__(self, summaries: Dict[str, ModuleSummary]) -> None:
        self.summaries = summaries
        #: class id ("module:Class") -> ClassInfo
        self.class_ids: Dict[str, object] = {}
        #: bare class name -> class ids defining it (for unique fallback)
        self.class_names: Dict[str, List[str]] = {}
        #: class id -> resolved base class ids
        self.bases: Dict[str, List[str]] = {}
        #: class id -> direct subclass ids
        self.subclasses: Dict[str, List[str]] = {}
        for module in sorted(summaries):
            for cls_name in sorted(summaries[module].classes):
                cid = f"{module}:{cls_name}"
                self.class_ids[cid] = summaries[module].classes[cls_name]
                self.class_names.setdefault(cls_name, []).append(cid)
        for module in sorted(summaries):
            summary = summaries[module]
            for cls_name in sorted(summary.classes):
                cid = f"{module}:{cls_name}"
                resolved = []
                for base_ref in summary.classes[cls_name].bases:
                    base_id = self.resolve_class_ref(base_ref, module)
                    if base_id is not None:
                        resolved.append(base_id)
                        self.subclasses.setdefault(base_id, []).append(cid)
                self.bases[cid] = resolved

    # -- class references ----------------------------------------------

    def resolve_class_ref(self, ref: str, module: str) -> Optional[str]:
        """Resolve a textual class reference seen in ``module``."""
        if not ref:
            return None
        summary = self.summaries.get(module)
        parts = ref.split(".")
        if len(parts) == 1:
            if summary is not None and ref in summary.classes:
                return f"{module}:{ref}"
            if summary is not None and ref in summary.imports:
                return self._class_id_of_dotted(summary.imports[ref])
            candidates = self.class_names.get(ref, [])
            if len(candidates) == 1:
                return candidates[0]
            return None
        # Dotted: translate the head through imports, then treat the
        # last component as the class name.
        head = parts[0]
        if summary is not None and head in summary.imports:
            dotted = ".".join([summary.imports[head]] + parts[1:])
        else:
            dotted = ref
        return self._class_id_of_dotted(dotted)

    def _class_id_of_dotted(self, dotted: str) -> Optional[str]:
        parts = dotted.split(".")
        cls_name = parts[-1]
        mod = ".".join(parts[:-1])
        if mod and f"{mod}:{cls_name}" in self.class_ids:
            return f"{mod}:{cls_name}"
        # Re-exported name (``from repro.sim import SimEngine``): the
        # "module" path is really a package; fall back to the unique
        # definer of that class name.
        candidates = self.class_names.get(cls_name, [])
        if len(candidates) == 1:
            return candidates[0]
        # Prefer a definer whose module is inside the dotted prefix.
        scoped = [c for c in candidates if mod and c.split(":")[0].startswith(mod)]
        if len(scoped) == 1:
            return scoped[0]
        return None

    # -- hierarchy walks -----------------------------------------------

    def ancestors(self, class_id: str) -> Iterable[str]:
        """``class_id`` then its base classes, breadth-first."""
        seen: Set[str] = set()
        queue = [class_id]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            yield current
            queue.extend(self.bases.get(current, []))

    def descendants(self, class_id: str) -> Iterable[str]:
        """All transitive subclasses of ``class_id`` (exclusive)."""
        seen: Set[str] = set()
        queue = list(self.subclasses.get(class_id, []))
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            yield current
            queue.extend(self.subclasses.get(current, []))

    def method_targets(self, class_id: str, method: str) -> List[str]:
        """CHA dispatch: defining-ancestor impl + descendant overrides."""
        targets: List[str] = []
        for ancestor in self.ancestors(class_id):
            node = self._method_node(ancestor, method)
            if node is not None:
                targets.append(node)
                break
        for descendant in sorted(self.descendants(class_id)):
            node = self._method_node(descendant, method)
            if node is not None and node not in targets:
                targets.append(node)
        return targets

    def _method_node(self, class_id: str, method: str) -> Optional[str]:
        module, cls_name = class_id.split(":", 1)
        summary = self.summaries.get(module)
        if summary is None:
            return None
        qual = f"{cls_name}.{method}"
        if qual in summary.functions:
            return f"{module}:{qual}"
        return None

    # -- function references -------------------------------------------

    def resolve_dotted_function(self, dotted: str) -> Optional[str]:
        """``pkg.mod.f`` / ``pkg.mod.Class`` -> function node id."""
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:split])
            summary = self.summaries.get(mod)
            if summary is None:
                continue
            rest = parts[split:]
            if len(rest) == 1:
                name = rest[0]
                if name in summary.functions:
                    return f"{mod}:{name}"
                if name in summary.classes:
                    return self._constructor_node(f"{mod}:{name}")
            elif len(rest) == 2:
                qual = f"{rest[0]}.{rest[1]}"
                if qual in summary.functions:
                    return f"{mod}:{qual}"
            return None
        return None

    def _constructor_node(self, class_id: str) -> Optional[str]:
        for ancestor in self.ancestors(class_id):
            node = self._method_node(ancestor, "__init__")
            if node is not None:
                return node
        return None

    def resolve_name(self, name: str, module: str) -> Optional[str]:
        summary = self.summaries.get(module)
        if summary is None:
            return None
        if name in summary.functions:
            return f"{module}:{name}"
        if name in summary.classes:
            return self._constructor_node(f"{module}:{name}")
        dotted = summary.imports.get(name)
        if dotted:
            return self.resolve_dotted_function(dotted)
        return None


def _resolve_site(
    resolver: _Resolver, module: str, cls: str, site: CallSite
) -> List[str]:
    if site.kind == "name":
        target = resolver.resolve_name(site.target, module)
        return [target] if target else []
    if site.kind == "self":
        if not cls:
            return []
        return resolver.method_targets(f"{module}:{cls}", site.target)
    if site.kind == "attr":
        if not site.recv_type:
            return []
        class_id = resolver.resolve_class_ref(site.recv_type, module)
        if class_id is None:
            return []
        return resolver.method_targets(class_id, site.target)
    if site.kind == "dotted":
        parts = site.target.split(".")
        summary = resolver.summaries.get(module)
        head = parts[0]
        if summary is not None and head in summary.imports:
            dotted = ".".join([summary.imports[head]] + parts[1:])
        else:
            dotted = site.target
        target = resolver.resolve_dotted_function(dotted)
        return [target] if target else []
    if site.kind == "partial":
        if site.target.startswith("self."):
            method = site.target[len("self.") :]
            if cls and "." not in method:
                return resolver.method_targets(f"{module}:{cls}", method)
            return []
        if "." not in site.target:
            target = resolver.resolve_name(site.target, module)
            return [target] if target else []
        parts = site.target.split(".")
        summary = resolver.summaries.get(module)
        if summary is not None and parts[0] in summary.imports:
            dotted = ".".join([summary.imports[parts[0]]] + parts[1:])
        else:
            dotted = site.target
        target = resolver.resolve_dotted_function(dotted)
        return [target] if target else []
    return []


def build_call_graph(summaries: Dict[str, ModuleSummary]) -> CallGraph:
    """Resolve every recorded call site against the project."""
    graph = CallGraph(summaries=summaries)
    resolver = _Resolver(summaries)
    for module in sorted(summaries):
        for qual in sorted(summaries[module].functions):
            graph.nodes[f"{module}:{qual}"] = (
                module,
                summaries[module].functions[qual],
            )
    for module in sorted(summaries):
        summary = summaries[module]
        for qual in sorted(summary.functions):
            fn = summary.functions[qual]
            caller = f"{module}:{qual}"
            out: List[CallEdge] = []
            for site in fn.calls:
                for callee in _resolve_site(resolver, module, fn.cls, site):
                    if callee not in graph.nodes:
                        continue
                    out.append(
                        CallEdge(
                            callee=callee,
                            call_index=site.index,
                            line=site.line,
                            kind=site.kind,
                            in_raise=site.in_raise,
                        )
                    )
            if out:
                graph.edges[caller] = out
                for edge in out:
                    callers = graph.callers.setdefault(edge.callee, [])
                    if caller not in callers:
                        callers.append(caller)
    return graph
