"""Shared syntactic pattern tables for the single-site and flow rules.

The determinism rules (:mod:`repro.lint.rules.determinism`) and the
whole-program taint pass (:mod:`repro.lint.flow`) must agree on what
counts as a wall-clock read, an unseeded RNG draw, or an environment
probe — otherwise a value the local rules ban could launder through a
helper the flow pass does not recognise.  This module is the single
source of truth; it deliberately imports nothing from the rest of the
lint package so both layers (and the cached summary extractor) can use
it without cycles.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

#: Packages whose code feeds scheduling decisions (the determinism and
#: taint-sink scope).  ``repro.service``'s report is byte-compared
#: across runs in CI, which makes it deterministic state too.
DETERMINISM_SCOPE = (
    "repro.sim",
    "repro.schedulers",
    "repro.core",
    "repro.faults",
    "repro.service",
)

#: ``random`` module attributes that are fine: seeded generator
#: constructors, not draws from the hidden global generator.
SEEDED_CONSTRUCTORS = {"Random", "SystemRandom"}

#: numpy.random attributes that construct explicitly seeded generators.
NUMPY_SEEDED = {"default_rng", "RandomState", "Generator", "SeedSequence"}

#: Dotted call paths that read a wall clock.
WALLCLOCK_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Wall-clock readers that return (float) seconds, not integer ns.
WALLCLOCK_FLOAT_SUFFIXES = (
    "time.time",
    "time.monotonic",
    "time.perf_counter",
    "time.process_time",
)

#: Function names importable from :mod:`time` that read a wall clock.
WALLCLOCK_NAMES = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
}

#: Environment probes whose value varies across hosts/processes.
ENV_SUFFIXES = (
    "os.environ",
    "os.getenv",
    "os.cpu_count",
    "os.uname",
    "sys.platform",
    "platform.system",
    "platform.machine",
    "platform.node",
    "socket.gethostname",
)


def dotted_path(node: ast.expr) -> str:
    """Flatten ``a.b.c`` attribute chains to a dotted string ('' if not)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def matches_suffix(path: str, suffixes: Iterable[str]) -> bool:
    return any(path == s or path.endswith("." + s) for s in suffixes)


def taint_kind_of_call(path: str) -> Optional[str]:
    """Classify a dotted call path as a taint source (``None`` if not).

    Returns ``"wallclock"``, ``"rng"``, or ``"env"`` — the same split
    the ``det-*`` rules enforce locally.
    """
    if not path:
        return None
    if matches_suffix(path, WALLCLOCK_SUFFIXES):
        return "wallclock"
    parts = path.split(".")
    if (
        parts[0] == "random"
        and len(parts) == 2
        and parts[1] not in SEEDED_CONSTRUCTORS
    ):
        return "rng"
    if (
        len(parts) >= 3
        and parts[-2] == "random"
        and parts[0] in ("np", "numpy")
        and parts[-1] not in NUMPY_SEEDED
    ):
        return "rng"
    if matches_suffix(path, ENV_SUFFIXES):
        return "env"
    return None


def taint_kind_of_attr(path: str) -> Optional[str]:
    """Taint kind of a bare attribute access (``os.environ`` reads)."""
    if path and matches_suffix(path, ENV_SUFFIXES):
        return "env"
    return None


def has_marker(node: ast.AST, marker: str) -> bool:
    """True when a function def carries decorator ``@marker`` (bare,
    called, or attribute-qualified)."""
    for decorator in getattr(node, "decorator_list", ()):
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == marker:
            return True
        if isinstance(target, ast.Attribute) and target.attr == marker:
            return True
    return False
