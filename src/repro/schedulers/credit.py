"""Model of Xen's Credit scheduler (the default VM scheduler).

Credit is a weighted proportional-share scheduler (Sec. 7.2): every
accounting period each vCPU earns credits in proportion to its weight
and burns them while running.  vCPUs with positive credits run at
priority UNDER, exhausted ones at OVER; capped vCPUs may not run at all
once out of credits.  Two Credit behaviours matter for the paper's
results and are modelled explicitly:

* **I/O boosting** — a vCPU waking from I/O at priority UNDER is lifted
  to BOOST and preempts lower-priority vCPUs immediately.  This is the
  heuristic that "backfires" under high density: when *every* vCPU does
  I/O, all are boosted and effectively none is (Sec. 2.1).
* **Work stealing** — an idle core scans its peers for runnable
  UNDER/BOOST vCPUs, which keeps the machine work-conserving but makes
  scheduling cost grow with machine size.

Cost constants are calibrated against the Credit column of Tables 1/2;
the *structure* (runqueue scans, steal scans over all cores, idle-mask
tickling on wakeup) is what makes the costs scale the way the paper
measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.schedulers.base import Decision, Scheduler, WakeAction
from repro.sim.overheads import IPI_WIRE_NS
from repro.sim.vm import VCpu

#: Priorities, in scheduling order.
PRIO_BOOST = 0
PRIO_UNDER = 1
PRIO_OVER = 2
#: Parked capped vCPUs (out of credit) are not runnable at all.
PRIO_PARKED = 3

DEFAULT_TIMESLICE_NS = 30_000_000
#: The paper configures Credit per documented best practice for I/O work.
TUNED_TIMESLICE_NS = 5_000_000
ACCOUNTING_PERIOD_NS = 30_000_000

# Cost-model constants (ns), calibrated to Table 1/2's Credit column.
PICK_BASE_NS: float = 1_500.0
PICK_SCALED_NS: float = 5_400.0  # x socket_factor
PICK_PER_ENTRY_NS: float = 260.0  # local runqueue scan
STEAL_PER_CORE_NS: float = 240.0  # peer runqueue peek during work stealing
WAKE_BASE_NS: float = 40.0
WAKE_TICKLE_PER_CORE_NS: float = 140.0  # idle-mask scan covers every core
MIGRATE_LOCAL_NS: float = 220.0
MIGRATE_SCALED_NS: float = 100.0


@dataclass
class _CreditState:
    credits: float = 0.0
    priority: int = PRIO_UNDER
    boosted: bool = False
    home: int = 0
    runtime_seen: int = 0  # vcpu.runtime_ns at the last settlement


class CreditScheduler(Scheduler):
    """Weighted fair-share with boosting, caps, and work stealing.

    Args:
        timeslice_ns: Preemption quantum (the paper uses 5 ms, not the
            30 ms default, per documented best practice for I/O loads).
        boost: Enable the I/O boost heuristic (on in real Credit; the
            ablation benchmark turns it off).
        caps: Map of vCPU name -> maximum utilization in [0, 1]; capped
            vCPUs are parked when their credits run out.
    """

    name = "credit"

    def __init__(
        self,
        timeslice_ns: int = TUNED_TIMESLICE_NS,
        boost: bool = True,
        caps: Optional[Dict[str, float]] = None,
    ) -> None:
        super().__init__()
        self.timeslice_ns = timeslice_ns
        self.boost_enabled = boost
        self.caps = dict(caps) if caps else {}
        self._state: Dict[str, _CreditState] = {}
        self._runq: Dict[int, List[VCpu]] = {}
        self._vcpus: List[VCpu] = []
        self._cpu_pool: List[int] = []
        self._next_home = 0

    # ------------------------------------------------------------------

    def attach(self, machine) -> None:
        super().attach(machine)
        self._cpu_pool = machine.topology.guest_cores
        self._runq = {cpu: [] for cpu in self._cpu_pool}
        machine.engine.at(ACCOUNTING_PERIOD_NS, self._accounting_tick)

    def add_vcpu(self, vcpu: VCpu) -> None:
        home = self._cpu_pool[self._next_home % len(self._cpu_pool)]
        self._next_home += 1
        self._vcpus.append(vcpu)
        self._state[vcpu.name] = _CreditState(
            credits=self._fair_share_ns(vcpu), home=home
        )

    # ------------------------------------------------------------------
    # Credit accounting
    # ------------------------------------------------------------------

    def _fair_share_ns(self, vcpu: VCpu) -> float:
        """Credits (in ns of CPU time) one vCPU earns per accounting period."""
        total_weight = sum(v.weight for v in self._vcpus) or vcpu.weight
        share = vcpu.weight / total_weight
        capacity = ACCOUNTING_PERIOD_NS * len(self._cpu_pool)
        earned = share * capacity
        cap = self.caps.get(vcpu.name)
        if cap is not None:
            earned = min(earned, cap * ACCOUNTING_PERIOD_NS)
        return earned

    def _accounting_tick(self) -> None:
        now = self.machine.engine.now
        for vcpu in self._vcpus:
            state = self._state[vcpu.name]
            self._burn(vcpu, now)
            state.credits += self._fair_share_ns(vcpu)
            # Xen caps hoarded credits at roughly one period's worth.
            state.credits = min(state.credits, ACCOUNTING_PERIOD_NS)
            previously_parked = state.priority == PRIO_PARKED
            state.boosted = False
            state.priority = self._base_priority(vcpu, state)
            if previously_parked and state.priority != PRIO_PARKED and vcpu.runnable:
                # Un-park: put the vCPU back on its home runqueue (it was
                # dropped from all queues when it ran out of credit).
                if vcpu.pcpu is None:
                    self._enqueue(state.home, vcpu)
                self.machine.request_resched(state.home)
        self.machine.engine.after(ACCOUNTING_PERIOD_NS, self._accounting_tick)

    def _base_priority(self, vcpu: VCpu, state: _CreditState) -> int:
        if state.credits > 0:
            return PRIO_UNDER
        if vcpu.name in self.caps:
            return PRIO_PARKED
        return PRIO_OVER

    def _burn(self, vcpu: VCpu, now: int) -> None:
        """Charge runtime since the last settlement against credits."""
        state = self._state[vcpu.name]
        ran = vcpu.runtime_ns - state.runtime_seen
        state.runtime_seen = vcpu.runtime_ns
        state.credits -= ran
        if state.credits <= 0 and not state.boosted:
            state.priority = self._base_priority(vcpu, state)

    # ------------------------------------------------------------------
    # Scheduling entry points
    # ------------------------------------------------------------------

    def pick_next(self, cpu: int, now: int) -> Decision:
        if cpu not in self._runq:
            return Decision(None, quantum_end=None, cost_ns=0.0)
        cost = PICK_BASE_NS + PICK_SCALED_NS * self.machine.costs.socket_factor

        current = self.machine.cpus[cpu].current
        if current is not None:
            self._burn(current, now)
            state = self._state[current.name]
            state.boosted = False
            state.priority = self._base_priority(current, state)
            if current.runnable and state.priority != PRIO_PARKED:
                # Preempted vCPUs go back to their *home* queue (a stolen
                # vCPU ran here once; it does not move house).
                self._enqueue(state.home, current)

        queue = self._runq[cpu]
        cost += PICK_PER_ENTRY_NS * len(queue)
        chosen = self._dequeue_best(cpu)
        if chosen is None or self._priority_of(chosen) == PRIO_OVER:
            stolen, scanned = self._steal(cpu, chosen)
            cost += STEAL_PER_CORE_NS * scanned
            if stolen is not None:
                if chosen is not None:
                    self._enqueue(cpu, chosen)
                chosen = stolen
        if chosen is None:
            return Decision(None, quantum_end=None, cost_ns=cost)
        return Decision(
            chosen, quantum_end=now + self.timeslice_ns, level=1, cost_ns=cost
        )

    def on_block(self, vcpu: VCpu, now: int) -> None:
        self._burn(vcpu, now)
        self._remove(vcpu)

    def on_wakeup(self, vcpu: VCpu, now: int) -> WakeAction:
        cost = WAKE_BASE_NS + WAKE_TICKLE_PER_CORE_NS * self.machine.topology.num_cores
        state = self._state[vcpu.name]
        if state.priority == PRIO_PARKED:
            return WakeAction(cpu=vcpu.last_cpu, cost_ns=cost, resched_cpu=None)
        if self.boost_enabled and state.priority == PRIO_UNDER:
            state.boosted = True
            state.priority = PRIO_BOOST
        target = state.home
        self._enqueue(target, vcpu)
        # Tickle: preempt the target core if we beat what runs there.
        running = self.machine.cpus[target].current
        preempt = running is None or self._priority_of(vcpu) < self._priority_of(
            running
        )
        return WakeAction(
            cpu=vcpu.last_cpu,
            cost_ns=cost,
            resched_cpu=target if preempt else None,
            ipi_delay_ns=IPI_WIRE_NS,
        )

    def post_schedule(
        self, cpu: int, prev: Optional[VCpu], chosen: Optional[VCpu], now: int
    ) -> float:
        return MIGRATE_LOCAL_NS + MIGRATE_SCALED_NS * self.machine.costs.socket_factor

    def runnable_on(self, cpu: int) -> int:
        return len(self._runq.get(cpu, ()))

    # ------------------------------------------------------------------
    # Runqueue helpers
    # ------------------------------------------------------------------

    def _priority_of(self, vcpu: VCpu) -> int:
        return self._state[vcpu.name].priority

    def _enqueue(self, cpu: int, vcpu: VCpu) -> None:
        queue = self._runq[cpu]
        if vcpu not in queue:
            queue.append(vcpu)

    def _remove(self, vcpu: VCpu) -> None:
        for queue in self._runq.values():
            if vcpu in queue:
                queue.remove(vcpu)
                return

    def _dequeue_best(self, cpu: int) -> Optional[VCpu]:
        queue = self._runq[cpu]
        best: Optional[VCpu] = None
        for vcpu in queue:
            if not vcpu.runnable or self._priority_of(vcpu) == PRIO_PARKED:
                continue
            if vcpu.pcpu is not None and vcpu.pcpu != cpu:
                continue
            if best is None or self._priority_of(vcpu) < self._priority_of(best):
                best = vcpu
        if best is not None:
            queue.remove(best)
        return best

    def _steal(
        self, thief: int, have: Optional[VCpu]
    ) -> Tuple[Optional[VCpu], int]:
        """Scan peer runqueues for UNDER/BOOST work; returns (vcpu, scanned)."""
        have_priority = self._priority_of(have) if have is not None else PRIO_PARKED
        scanned = 0
        for cpu in self._cpu_pool:
            if cpu == thief:
                continue
            scanned += 1
            for vcpu in self._runq[cpu]:
                if not vcpu.runnable or (vcpu.pcpu is not None):
                    continue
                if self._priority_of(vcpu) < min(have_priority, PRIO_OVER):
                    self._runq[cpu].remove(vcpu)
                    return vcpu, scanned
        return None, scanned
